/**
 * @file
 * Example: log / unstructured-text analytics (the paper's motivation:
 * high-speed analysis of system logs and text streams, §1).
 *
 * Demonstrates the full API surface: regexes with classes, repetitions and
 * anchors; ANML round-tripping; the CA_S optimization pipeline; the
 * configuration-image bitstream; and report post-processing.
 *
 * Run: ./build/examples/log_analytics
 */
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baseline/nfa_engine.h"
#include "compiler/config_image.h"
#include "compiler/mapping.h"
#include "nfa/anml.h"
#include "nfa/glushkov.h"
#include "nfa/transform.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "telemetry/telemetry.h"

int
main(int argc, char **argv)
{
    using namespace ca;

    telemetry::CliSession telemetry_session(argc, argv);

    // 1. Log-scanning rules, each a named detector.
    struct Rule
    {
        const char *name;
        const char *pattern;
    };
    const std::vector<Rule> detectors = {
        {"error-line", "ERROR[: ]"},
        {"fatal-line", "FATAL[: ]"},
        {"timeout", "timed? ?out after [0-9]+ ?ms"},
        {"oom", "out of memory"},
        {"ipv4", "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}"},
        {"http-5xx", "HTTP/1\\.[01]\" 5[0-9]{2}"},
        {"stack-frame", "  at [a-z]+\\.[a-z]+"},
        {"retry-storm", "retry #[0-9]{2,}"},
    };
    std::vector<std::string> patterns;
    for (const Rule &r : detectors)
        patterns.push_back(r.pattern);
    Nfa nfa = compileRuleset(patterns);
    std::printf("compiled %zu detectors into %zu STEs\n", detectors.size(),
                nfa.numStates());

    // 2. Round-trip through ANML (the AP interchange format).
    Nfa round = parseAnml(writeAnml(nfa, "log-analytics"));
    std::printf("ANML round trip: %zu states, %zu transitions preserved\n",
                round.numStates(), round.numTransitions());

    // 3. Space optimization then mapping + configuration bitstream.
    TransformStats ts = optimizeForSpace(round);
    std::printf("space pipeline: %zu -> %zu states\n", ts.statesBefore,
                ts.statesAfter);
    MappedAutomaton mapped = mapSpace(nfa);
    ConfigImage image = buildConfigImage(mapped);
    std::printf("configuration image: %zu partitions, %zu bits (%zu KB "
                "serialized)\n",
                image.partitions.size(), image.totalBits(),
                image.serialize().size() >> 10);

    // 4. A synthetic log stream with incidents sprinkled in.
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = patterns;
    spec.plantsPer4k = 6.0;
    std::vector<uint8_t> log = buildInput(spec, 512 << 10, 99);

    // 5. Scan, verify, and summarize per detector.
    CacheAutomatonSim sim(mapped);
    SimResult res = sim.run(log);
    NfaEngine oracle(mapped.nfa());
    bool ok = oracle.run(log) == res.reports;

    std::map<uint32_t, size_t> counts;
    for (const Report &r : res.reports)
        ++counts[r.reportId];
    std::printf("\nscan of 512 KB log (%s oracle):\n",
                ok ? "matches" : "MISMATCHES");
    for (const auto &[id, n] : counts)
        std::printf("  %-12s %zu hits\n", detectors[id].name, n);
    std::printf("total: %zu events; FIFO refills %llu; output-buffer "
                "interrupts %llu\n",
                res.reports.size(),
                static_cast<unsigned long long>(res.fifoRefills),
                static_cast<unsigned long long>(
                    res.outputBufferInterrupts));
    return ok ? 0 : 1;
}
