/**
 * @file
 * Example: one Cache Automaton serving many concurrent traffic streams.
 *
 * The intrusion_detection example scans one stream on one thread; this
 * demo runs the paper's §2.8-2.9 system-integration story end to end: a
 * StreamServer owns one compiled signature ruleset, a handful of
 * pcap-like packet streams are pumped concurrently by producer threads,
 * a worker pool time-multiplexes the sessions with checkpoint-based
 * context switches, and per-stream alerts arrive through report sinks.
 * One stream is suspended mid-flight and resumed — the OS context
 * switch — and every stream's alerts are verified against the
 * single-threaded CPU oracle.
 *
 * Run: ./build/examples/stream_server_demo [streams] [workers] [stream_kb]
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/glushkov.h"
#include "runtime/report_sink.h"
#include "runtime/stream_server.h"
#include "sim/engine.h"
#include "telemetry/telemetry.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

int
main(int argc, char **argv)
{
    using namespace ca;

    telemetry::CliSession telemetry_session(argc, argv);

    size_t n_streams = argc > 1 ? std::atoi(argv[1]) : 6;
    size_t n_workers = argc > 2 ? std::atoi(argv[2]) : 3;
    size_t stream_kb = argc > 3 ? std::atoi(argv[3]) : 64;

    // One immutable compiled ruleset, shared read-only by every worker.
    std::vector<std::string> rules = genSnortRules(300, /*seed=*/2024);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton mapped = mapPerformance(nfa);
    std::printf("ruleset: %zu signatures -> %zu states, %zu partitions "
                "(%.2f MB of LLC)\n",
                rules.size(), nfa.numStates(), mapped.numPartitions(),
                mapped.utilizationMB());

    // Independent pcap-like streams with planted attack payloads.
    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns.assign(rules.begin(), rules.begin() + 32);
    spec.plantsPer4k = 2.0;
    std::vector<std::vector<uint8_t>> streams;
    for (size_t i = 0; i < n_streams; ++i)
        streams.push_back(
            buildInput(spec, stream_kb << 10, /*seed=*/40 + i));

    runtime::StreamServerOptions opts;
    opts.workers = n_workers;
    opts.sessionQueueDepth = 8;
    opts.sliceSymbols = 8 << 10; // small quantum: show context switching
    runtime::CollectingSink sink;
    runtime::StreamServer server(mapped, opts);
    std::printf("server: %zu workers, %zu sessions, %zu B quantum\n\n",
                server.workerCount(), n_streams,
                static_cast<size_t>(opts.sliceSymbols));

    std::vector<runtime::StreamSession *> sessions;
    for (size_t i = 0; i < n_streams; ++i)
        sessions.push_back(&server.open(sink));

    // One producer per stream, submitting MTU-sized packets.
    std::vector<std::thread> producers;
    for (size_t i = 0; i < n_streams; ++i) {
        producers.emplace_back([&, i] {
            constexpr size_t kMtu = 1500;
            const auto &in = streams[i];
            for (size_t pos = 0; pos < in.size(); pos += kMtu)
                sessions[i]->submit(in.data() + pos,
                                    std::min(kMtu, in.size() - pos));
        });
    }

    // §2.9 demo on stream 0: suspend (saving the active-state vector +
    // input offset, like the hardware), then resume the same session.
    SimCheckpoint ckpt = sessions[0]->suspend();
    std::printf("suspended stream 0 at offset %llu with %zu active "
                "states; resuming\n",
                static_cast<unsigned long long>(ckpt.symbolOffset),
                ckpt.enabledStates.size());
    sessions[0]->resume();

    for (auto &t : producers)
        t.join();
    for (auto *s : sessions)
        s->close();

    // Verify every stream against the single-threaded CPU oracle and
    // print the per-stream alert tallies.
    NfaEngine oracle(mapped.nfa());
    bool all_ok = true;
    for (size_t i = 0; i < n_streams; ++i) {
        auto got = sink.reports(sessions[i]->id());
        bool ok = oracle.run(streams[i]) == got;
        all_ok = all_ok && ok;
        runtime::SessionStats st = sessions[i]->stats();
        std::printf("stream %zu: %5zu alerts in %zu KB, %3llu slices, "
                    "%3llu ctx switches, workers {", i, got.size(),
                    stream_kb,
                    static_cast<unsigned long long>(st.slices),
                    static_cast<unsigned long long>(st.contextSwitches));
        for (size_t w = 0; w < 64; ++w)
            if (st.workerMask & (uint64_t{1} << w))
                std::printf("%zu", w);
        std::printf("} (%s oracle)\n", ok ? "matches" : "MISMATCHES");
    }

    runtime::ServerStats st = server.stats();
    std::printf("\nserver totals: %llu symbols, %llu reports, %llu "
                "slices, %llu context switches\n",
                static_cast<unsigned long long>(st.symbols),
                static_cast<unsigned long long>(st.reports),
                static_cast<unsigned long long>(st.slices),
                static_cast<unsigned long long>(st.contextSwitches));
    std::printf("determinism: every session's report stream %s its "
                "single-threaded oracle\n",
                all_ok ? "matches" : "MISMATCHES");
    return all_ok ? 0 : 1;
}
