/**
 * @file
 * Example: network intrusion detection (the paper's Snort/Bro use case).
 *
 * Compiles a Snort-like signature ruleset, maps it with both policies,
 * streams synthetic network traffic with planted attacks through the
 * Cache Automaton simulator, and reports the alerts plus the performance
 * and energy the architecture models predict.
 *
 * Run: ./build/examples/intrusion_detection [ruleset_size] [stream_kb]
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/comparison.h"
#include "arch/energy.h"
#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"
#include "telemetry/telemetry.h"

int
main(int argc, char **argv)
{
    using namespace ca;

    telemetry::CliSession telemetry_session(argc, argv);

    int rules_n = argc > 1 ? std::atoi(argv[1]) : 400;
    size_t stream_kb = argc > 2 ? std::atoi(argv[2]) : 256;

    // 1. Signature ruleset (synthetic Snort-style payload rules).
    std::vector<std::string> rules = genSnortRules(rules_n, /*seed=*/2024);
    std::printf("ruleset: %d signatures, e.g. /%s/\n", rules_n,
                rules[0].c_str());

    Nfa nfa = compileRuleset(rules);
    nfa.validate();
    ComponentInfo cc = connectedComponents(nfa);
    std::printf("NFA: %zu states in %zu components (largest %zu)\n",
                nfa.numStates(), cc.numComponents(), cc.largestSize());

    // 2. Compile to the cache with both policies.
    MappedAutomaton perf = mapPerformance(nfa);
    MappedAutomaton space = mapSpace(nfa);
    std::printf("CA_P: %zu partitions (%.2f MB of LLC)\n",
                perf.numPartitions(), perf.utilizationMB());
    std::printf("CA_S: %zu partitions (%.2f MB), %zu states after "
                "prefix merging\n",
                space.numPartitions(), space.utilizationMB(),
                space.nfa().numStates());

    // 3. Synthetic traffic with planted attack payloads.
    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns.assign(rules.begin(),
                              rules.begin() + std::min<size_t>(
                                  rules.size(), 48));
    spec.plantsPer4k = 2.0;
    std::vector<uint8_t> traffic =
        buildInput(spec, stream_kb << 10, /*seed=*/7);

    // 4. Scan with the performance design; verify against the CPU oracle.
    CacheAutomatonSim sim(perf);
    SimResult res = sim.run(traffic);
    NfaEngine oracle(perf.nfa());
    bool ok = oracle.run(traffic) == res.reports;
    std::printf("scan: %zu KB of traffic -> %zu alerts (%s oracle)\n",
                stream_kb, res.reports.size(),
                ok ? "matches" : "MISMATCHES");
    for (size_t i = 0; i < res.reports.size() && i < 5; ++i) {
        const Report &r = res.reports[i];
        std::printf("  alert: rule %u at offset %llu\n", r.reportId,
                    static_cast<unsigned long long>(r.offset));
    }
    if (res.reports.size() > 5)
        std::printf("  ... %zu more\n", res.reports.size() - 5);

    // 5. What the hardware models say about this scan.
    const Design &d = perf.design();
    EnergyBreakdown e = computeEnergyPerSymbol(d, res.activity());
    double seconds = res.seconds(d.operatingFreqHz);
    std::printf("\nat %.1f GHz: %.2f Gb/s line rate, scan time %.3f ms, "
                "%.1f pJ/byte, avg %.2f W\n",
                d.operatingFreqHz / 1e9, throughputGbps(d.operatingFreqHz),
                seconds * 1e3, e.totalPj(),
                averagePowerW(e.totalPj(), d.operatingFreqHz));
    std::printf("speedup vs Micron AP: %.1fx; vs x86 CPU: %.0fx\n",
                speedupOverAp(d), speedupOverCpu(d));
    return ok ? 0 : 1;
}
