/**
 * @file
 * Example: approximate DNA motif search (the paper's bioinformatics use
 * case — Hamming / Levenshtein distance automata on the AP, §1, Table 1).
 *
 * Builds edit-distance automata for a set of motifs, maps them onto the
 * cache, scans a synthetic genome, and reports approximate occurrences —
 * including ones with substitutions, insertions, and deletions.
 *
 * Run: ./build/examples/dna_motif_search [num_motifs] [genome_kb]
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "core/rng.h"
#include "sim/engine.h"
#include "workload/distance.h"
#include "workload/input_gen.h"
#include "telemetry/telemetry.h"

namespace {

std::string
randomMotif(ca::Rng &rng, int len)
{
    static const char bases[] = "ACGT";
    std::string m;
    for (int i = 0; i < len; ++i)
        m.push_back(bases[rng.below(4)]);
    return m;
}

/** Corrupts a motif with one random edit. */
std::string
corrupt(const std::string &motif, ca::Rng &rng)
{
    std::string s = motif;
    size_t pos = rng.below(s.size());
    switch (rng.below(3)) {
      case 0: // substitution
        s[pos] = "ACGT"[rng.below(4)];
        break;
      case 1: // insertion
        s.insert(s.begin() + pos, "ACGT"[rng.below(4)]);
        break;
      default: // deletion
        s.erase(s.begin() + pos);
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ca;

    telemetry::CliSession telemetry_session(argc, argv);

    int motifs_n = argc > 1 ? std::atoi(argv[1]) : 24;
    size_t genome_kb = argc > 2 ? std::atoi(argv[2]) : 128;
    const int kDistance = 2;
    const int kMotifLen = 18;

    // 1. Motifs and their edit-distance automata (unanchored scan mode).
    Rng rng(0xD0A);
    std::vector<std::string> motifs;
    Nfa nfa;
    for (int i = 0; i < motifs_n; ++i) {
        motifs.push_back(randomMotif(rng, kMotifLen));
        nfa.merge(levenshteinNfa(motifs.back(), kDistance,
                                 static_cast<uint32_t>(i),
                                 /*anchored=*/false));
    }
    std::printf("built %d Levenshtein(k=%d) automata, %zu states total\n",
                motifs_n, kDistance, nfa.numStates());

    // 2. Map (space-optimized: distance grids share lots of structure).
    MappedAutomaton mapped = mapSpace(nfa);
    std::printf("mapped to %zu partitions (%.3f MB); %zu states after "
                "optimization\n",
                mapped.numPartitions(), mapped.utilizationMB(),
                mapped.nfa().numStates());

    // 3. Synthetic genome with planted exact and corrupted occurrences.
    std::vector<uint8_t> genome;
    {
        InputSpec spec;
        spec.kind = StreamKind::Dna;
        genome = buildInput(spec, genome_kb << 10, 11);
        // Plant: every ~4 KB, an exact motif or a 1-edit corruption.
        for (size_t off = 2048; off + 32 < genome.size(); off += 4096) {
            const std::string &m = motifs[rng.below(motifs.size())];
            std::string occ = rng.chance(0.5) ? m : corrupt(m, rng);
            for (size_t i = 0; i < occ.size(); ++i)
                genome[off + i] = static_cast<uint8_t>(occ[i]);
        }
    }

    // 4. Scan and cross-check.
    CacheAutomatonSim sim(mapped);
    SimResult res = sim.run(genome);
    NfaEngine oracle(mapped.nfa());
    bool ok = oracle.run(genome) == res.reports;

    // Count distinct motifs found (overlapping grid states fire several
    // reports per occurrence; group by motif).
    std::vector<size_t> hits(motifs.size(), 0);
    for (const Report &r : res.reports)
        ++hits[r.reportId];
    size_t found = 0;
    for (size_t h : hits)
        found += h > 0;
    std::printf("scan of %zu KB genome: %zu report events, %zu/%d motifs "
                "matched (%s oracle)\n",
                genome_kb, res.reports.size(), found, motifs_n,
                ok ? "matches" : "MISMATCHES");
    std::printf("avg active states/symbol: %.1f; scan time at %.1f GHz: "
                "%.3f ms\n",
                res.avgActiveStates(),
                mapped.design().operatingFreqHz / 1e9,
                res.seconds(mapped.design().operatingFreqHz) * 1e3);
    return ok ? 0 : 1;
}
