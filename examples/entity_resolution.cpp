/**
 * @file
 * Example: entity resolution in databases — the paper's §3.3 case study
 * and one of the AP's flagship applications (434x reported speedup).
 *
 * Reproduces the case study's flow: a large record-matching ruleset is
 * compiled, the space pipeline collapses shared name tokens, and the
 * mapping spreads the big merged component across ways of the slice.
 *
 * Run: ./build/examples/entity_resolution [records]
 */
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"
#include "telemetry/telemetry.h"

int
main(int argc, char **argv)
{
    using namespace ca;

    telemetry::CliSession telemetry_session(argc, argv);

    int records = argc > 1 ? std::atoi(argv[1]) : 200;

    // 1. Record-matching rules: each matches a person record in several
    //    token orders with optional middle initials.
    std::vector<std::string> rules =
        genEntityResolutionRules(records, /*seed=*/0xE5);
    Nfa nfa = compileRuleset(rules);
    ComponentInfo cc = connectedComponents(nfa);
    std::printf("baseline NFA: %zu states, %zu components (largest %zu)\n",
                nfa.numStates(), cc.numComponents(), cc.largestSize());

    // 2. The §3.3 flow: CA_S merges shared prefixes (names repeat across
    //    records), fusing components and shrinking the automaton.
    MappedAutomaton perf = mapPerformance(nfa);
    MappedAutomaton space = mapSpace(nfa);
    ComponentInfo cc_s = connectedComponents(space.nfa());
    std::printf("CA_S after merging: %zu states, %zu components "
                "(largest %zu)\n",
                space.nfa().numStates(), cc_s.numComponents(),
                cc_s.largestSize());
    std::printf("cache: CA_P %.3f MB -> CA_S %.3f MB (%.1f%% saved)\n",
                perf.utilizationMB(), space.utilizationMB(),
                100.0 * (1.0 - space.utilizationMB() /
                             perf.utilizationMB()));

    // How the mapping spreads over ways (the paper's Figure 6 story).
    std::map<std::pair<int, int>, int> way_partitions;
    for (const PartitionInfo &p : space.partitions())
        ++way_partitions[{p.slice, p.way}];
    std::printf("CA_S placement: %zu partitions across %zu way(s); "
                "%zu G1 + %zu G4 cross edges\n",
                space.numPartitions(), way_partitions.size(),
                space.stats().g1Edges, space.stats().g4Edges);

    // 3. Resolve entities in a text stream containing record mentions.
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns.assign(rules.begin(),
                              rules.begin() + std::min<size_t>(
                                  rules.size(), 64));
    spec.plantsPer4k = 4.0;
    std::vector<uint8_t> stream = buildInput(spec, 256 << 10, 5);

    CacheAutomatonSim sim(space);
    SimResult res = sim.run(stream);
    NfaEngine oracle(space.nfa());
    bool ok = oracle.run(stream) == res.reports;

    std::map<uint32_t, size_t> matches;
    for (const Report &r : res.reports)
        ++matches[r.reportId];
    std::printf("\nresolved %zu record mentions across %zu distinct "
                "records (%s oracle)\n",
                res.reports.size(), matches.size(),
                ok ? "matches" : "MISMATCHES");
    std::printf("avg active states/symbol: %.1f (CA_S reduces redundant "
                "activity)\n",
                res.avgActiveStates());
    return ok ? 0 : 1;
}
