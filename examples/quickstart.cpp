/**
 * @file
 * Quickstart: compile a small ruleset, map it onto the cache, simulate a
 * stream, and print what the paper's Figure 7 / Figure 9 pipeline reports.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arch/comparison.h"
#include "arch/energy.h"
#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "telemetry/telemetry.h"
#include "workload/input_gen.h"

int
main(int argc, char **argv)
{
    using namespace ca;

    // Telemetry doubles as the quickstart's demo: every pipeline stage
    // below records spans + counters, summarized at exit. --metrics-out /
    // --trace-out additionally write the machine-readable artifacts.
    telemetry::CliSession session(argc, argv);
    telemetry::setEnabled(true);

    // 1. A toy ruleset — the paper's working example (§2.3) plus friends.
    std::vector<std::string> rules = {
        "bar?t?",          // bat, bar, bart ...
        "c?a(r|t)t?",      // ar, at, art, car, cat, cart ...
        "GET /[a-z]+",     // a Bro-flavoured rule
        "\\d{3}-\\d{4}",   // a phone-number shape
    };
    Nfa nfa = compileRuleset(rules);
    nfa.validate();
    NfaStats st = nfa.stats();
    std::printf("NFA: %zu states, %zu transitions, %zu start, %zu report\n",
                st.numStates, st.numTransitions, st.numStartStates,
                st.numReportStates);
    ComponentInfo cc = connectedComponents(nfa);
    std::printf("     %zu connected components (largest %zu)\n",
                cc.numComponents(), cc.largestSize());

    // 2. Map with both policies.
    MappedAutomaton perf = mapPerformance(nfa);
    MappedAutomaton space = mapSpace(nfa);
    std::printf("CA_P: %zu partitions, %.3f MB cache\n",
                perf.numPartitions(), perf.utilizationMB());
    std::printf("CA_S: %zu partitions, %.3f MB cache\n",
                space.numPartitions(), space.utilizationMB());

    // 3. Simulate a 64 KB stream with planted matches.
    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 4.0;
    std::vector<uint8_t> input = buildInput(spec, 64 << 10, /*seed=*/42);

    CacheAutomatonSim sim(perf);
    SimResult res = sim.run(input);
    std::printf("sim:  %llu symbols, %zu reports, "
                "%.2f avg active states/symbol\n",
                static_cast<unsigned long long>(res.symbols),
                res.reports.size(), res.avgActiveStates());

    // 4. Cross-check against the CPU oracle engine.
    NfaEngine oracle(perf.nfa());
    std::vector<Report> expect = oracle.run(input);
    std::printf("oracle: %zu reports -> %s\n", expect.size(),
                expect == res.reports ? "MATCH" : "MISMATCH");

    // 5. Performance and energy the architecture models predict.
    const Design &d = perf.design();
    EnergyBreakdown e = computeEnergyPerSymbol(d, res.activity());
    std::printf("CA_P @ %.1f GHz: %.2f Gb/s (%.1fx over AP), "
                "%.1f pJ/symbol\n",
                d.operatingFreqHz / 1e9, throughputGbps(d.operatingFreqHz),
                speedupOverAp(d), e.totalPj());

    // 6. Where the time went (the telemetry layer's stage spans).
    std::printf("\nPer-stage timing (ca.* telemetry spans):\n");
    telemetry::printStageSummary(std::cout);
    return expect == res.reports ? 0 : 1;
}
