/**
 * @file
 * Quickstart: compile a small ruleset, map it onto the cache, simulate a
 * stream, and print what the paper's Figure 7 / Figure 9 pipeline reports.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Artifact workflow (docs/PERSIST.md):
 *   quickstart --save-artifact rules.caa   # compile once, persist
 *   quickstart --load-artifact rules.caa   # warm-start, skip the compile
 */
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "arch/comparison.h"
#include "arch/energy.h"
#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"
#include "sim/engine.h"
#include "telemetry/telemetry.h"
#include "workload/input_gen.h"

namespace {

/** Finds `--flag <value>` or `--flag=value` in argv; empty when absent. */
std::string
argValue(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == flag && i + 1 < argc)
            return argv[i + 1];
        if (arg.rfind(flag + "=", 0) == 0)
            return arg.substr(flag.size() + 1);
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ca;

    // Telemetry doubles as the quickstart's demo: every pipeline stage
    // below records spans + counters, summarized at exit. --metrics-out /
    // --trace-out additionally write the machine-readable artifacts.
    telemetry::CliSession session(argc, argv);
    telemetry::setEnabled(true);

    const std::string save_path =
        argValue(argc, argv, "--save-artifact");
    const std::string load_path =
        argValue(argc, argv, "--load-artifact");

    // 1. A toy ruleset — the paper's working example (§2.3) plus friends.
    std::vector<std::string> rules = {
        "bar?t?",          // bat, bar, bart ...
        "c?a(r|t)t?",      // ar, at, art, car, cat, cart ...
        "GET /[a-z]+",     // a Bro-flavoured rule
        "\\d{3}-\\d{4}",   // a phone-number shape
    };

    // 2. Compile + map — or warm-start from a saved artifact, the §2.9
    //    compile-once/load-many deployment path.
    std::shared_ptr<const MappedAutomaton> perf;
    if (!load_path.empty()) {
        persist::LoadedArtifact loaded = persist::loadArtifact(load_path);
        perf = loaded.automaton;
        std::printf("loaded artifact %s (label '%s'): %zu states, "
                    "%zu partitions\n",
                    load_path.c_str(), loaded.meta.label.c_str(),
                    perf->nfa().numStates(), perf->numPartitions());
    } else {
        Nfa nfa = compileRuleset(rules);
        nfa.validate();
        NfaStats st = nfa.stats();
        std::printf("NFA: %zu states, %zu transitions, %zu start, "
                    "%zu report\n",
                    st.numStates, st.numTransitions, st.numStartStates,
                    st.numReportStates);
        ComponentInfo cc = connectedComponents(nfa);
        std::printf("     %zu connected components (largest %zu)\n",
                    cc.numComponents(), cc.largestSize());

        MappedAutomaton space = mapSpace(nfa);
        perf = std::make_shared<const MappedAutomaton>(
            mapPerformance(nfa));
        std::printf("CA_P: %zu partitions, %.3f MB cache\n",
                    perf->numPartitions(), perf->utilizationMB());
        std::printf("CA_S: %zu partitions, %.3f MB cache\n",
                    space.numPartitions(), space.utilizationMB());
    }
    if (!save_path.empty()) {
        persist::ArtifactMeta meta;
        meta.label = "quickstart CA_P";
        persist::saveArtifact(save_path, *perf, meta);
        std::printf("saved artifact %s\n", save_path.c_str());
    }

    // 3. Simulate a 64 KB stream with planted matches.
    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 4.0;
    std::vector<uint8_t> input = buildInput(spec, 64 << 10, /*seed=*/42);

    CacheAutomatonSim sim(perf);
    SimResult res = sim.run(input);
    std::printf("sim:  %llu symbols, %zu reports, "
                "%.2f avg active states/symbol\n",
                static_cast<unsigned long long>(res.symbols),
                res.reports.size(), res.avgActiveStates());

    // 4. Cross-check against the CPU oracle engine.
    NfaEngine oracle(perf->nfa());
    std::vector<Report> expect = oracle.run(input);
    std::printf("oracle: %zu reports -> %s\n", expect.size(),
                expect == res.reports ? "MATCH" : "MISMATCH");

    // 5. Performance and energy the architecture models predict.
    const Design &d = perf->design();
    EnergyBreakdown e = computeEnergyPerSymbol(d, res.activity());
    std::printf("CA_P @ %.1f GHz: %.2f Gb/s (%.1fx over AP), "
                "%.1f pJ/symbol\n",
                d.operatingFreqHz / 1e9, throughputGbps(d.operatingFreqHz),
                speedupOverAp(d), e.totalPj());

    // 6. Where the time went (the telemetry layer's stage spans).
    std::printf("\nPer-stage timing (ca.* telemetry spans):\n");
    telemetry::printStageSummary(std::cout);
    return expect == res.reports ? 0 : 1;
}
