file(REMOVE_RECURSE
  "libca_bench_common.a"
)
