file(REMOVE_RECURSE
  "CMakeFiles/ca_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/ca_bench_common.dir/bench_common.cpp.o.d"
  "libca_bench_common.a"
  "libca_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
