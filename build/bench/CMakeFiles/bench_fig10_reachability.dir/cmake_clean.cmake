file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_reachability.dir/bench_fig10_reachability.cpp.o"
  "CMakeFiles/bench_fig10_reachability.dir/bench_fig10_reachability.cpp.o.d"
  "bench_fig10_reachability"
  "bench_fig10_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
