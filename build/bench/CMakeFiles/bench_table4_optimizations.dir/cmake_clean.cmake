file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_optimizations.dir/bench_table4_optimizations.cpp.o"
  "CMakeFiles/bench_table4_optimizations.dir/bench_table4_optimizations.cpp.o.d"
  "bench_table4_optimizations"
  "bench_table4_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
