# Empty compiler generated dependencies file for bench_scaling_instances.
# This may be replaced when dependencies are built.
