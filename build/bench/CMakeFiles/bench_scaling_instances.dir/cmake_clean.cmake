file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_instances.dir/bench_scaling_instances.cpp.o"
  "CMakeFiles/bench_scaling_instances.dir/bench_scaling_instances.cpp.o.d"
  "bench_scaling_instances"
  "bench_scaling_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
