file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_asic_comparison.dir/bench_table5_asic_comparison.cpp.o"
  "CMakeFiles/bench_table5_asic_comparison.dir/bench_table5_asic_comparison.cpp.o.d"
  "bench_table5_asic_comparison"
  "bench_table5_asic_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_asic_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
