file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_switches.dir/bench_table2_switches.cpp.o"
  "CMakeFiles/bench_table2_switches.dir/bench_table2_switches.cpp.o.d"
  "bench_table2_switches"
  "bench_table2_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
