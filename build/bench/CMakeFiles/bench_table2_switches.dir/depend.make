# Empty dependencies file for bench_table2_switches.
# This may be replaced when dependencies are built.
