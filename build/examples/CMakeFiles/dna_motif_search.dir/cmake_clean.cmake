file(REMOVE_RECURSE
  "CMakeFiles/dna_motif_search.dir/dna_motif_search.cpp.o"
  "CMakeFiles/dna_motif_search.dir/dna_motif_search.cpp.o.d"
  "dna_motif_search"
  "dna_motif_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_motif_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
