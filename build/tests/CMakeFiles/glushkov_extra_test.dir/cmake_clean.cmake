file(REMOVE_RECURSE
  "CMakeFiles/glushkov_extra_test.dir/glushkov_extra_test.cpp.o"
  "CMakeFiles/glushkov_extra_test.dir/glushkov_extra_test.cpp.o.d"
  "glushkov_extra_test"
  "glushkov_extra_test.pdb"
  "glushkov_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glushkov_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
