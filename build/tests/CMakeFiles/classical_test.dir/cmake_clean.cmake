file(REMOVE_RECURSE
  "CMakeFiles/classical_test.dir/classical_test.cpp.o"
  "CMakeFiles/classical_test.dir/classical_test.cpp.o.d"
  "classical_test"
  "classical_test.pdb"
  "classical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
