# Empty compiler generated dependencies file for anml_test.
# This may be replaced when dependencies are built.
