file(REMOVE_RECURSE
  "CMakeFiles/anml_test.dir/anml_test.cpp.o"
  "CMakeFiles/anml_test.dir/anml_test.cpp.o.d"
  "anml_test"
  "anml_test.pdb"
  "anml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
