
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform_test.cpp" "tests/CMakeFiles/transform_test.dir/transform_test.cpp.o" "gcc" "tests/CMakeFiles/transform_test.dir/transform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/ca_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ca_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ca_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ca_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ca_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/nfa/CMakeFiles/ca_nfa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
