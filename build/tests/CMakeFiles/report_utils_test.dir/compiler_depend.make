# Empty compiler generated dependencies file for report_utils_test.
# This may be replaced when dependencies are built.
