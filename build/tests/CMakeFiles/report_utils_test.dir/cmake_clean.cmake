file(REMOVE_RECURSE
  "CMakeFiles/report_utils_test.dir/report_utils_test.cpp.o"
  "CMakeFiles/report_utils_test.dir/report_utils_test.cpp.o.d"
  "report_utils_test"
  "report_utils_test.pdb"
  "report_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
