file(REMOVE_RECURSE
  "CMakeFiles/dfa_test.dir/dfa_test.cpp.o"
  "CMakeFiles/dfa_test.dir/dfa_test.cpp.o.d"
  "dfa_test"
  "dfa_test.pdb"
  "dfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
