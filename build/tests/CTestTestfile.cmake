# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/nfa_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/dfa_test[1]_include.cmake")
include("/root/repo/build/tests/classical_test[1]_include.cmake")
include("/root/repo/build/tests/anml_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/distance_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/report_utils_test[1]_include.cmake")
include("/root/repo/build/tests/glushkov_extra_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
