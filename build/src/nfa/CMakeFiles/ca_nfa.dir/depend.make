# Empty dependencies file for ca_nfa.
# This may be replaced when dependencies are built.
