file(REMOVE_RECURSE
  "libca_nfa.a"
)
