file(REMOVE_RECURSE
  "CMakeFiles/ca_nfa.dir/analysis.cpp.o"
  "CMakeFiles/ca_nfa.dir/analysis.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/anml.cpp.o"
  "CMakeFiles/ca_nfa.dir/anml.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/classical.cpp.o"
  "CMakeFiles/ca_nfa.dir/classical.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/dfa.cpp.o"
  "CMakeFiles/ca_nfa.dir/dfa.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/dot.cpp.o"
  "CMakeFiles/ca_nfa.dir/dot.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/glushkov.cpp.o"
  "CMakeFiles/ca_nfa.dir/glushkov.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/nfa.cpp.o"
  "CMakeFiles/ca_nfa.dir/nfa.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/regex_ast.cpp.o"
  "CMakeFiles/ca_nfa.dir/regex_ast.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/regex_parser.cpp.o"
  "CMakeFiles/ca_nfa.dir/regex_parser.cpp.o.d"
  "CMakeFiles/ca_nfa.dir/transform.cpp.o"
  "CMakeFiles/ca_nfa.dir/transform.cpp.o.d"
  "libca_nfa.a"
  "libca_nfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_nfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
