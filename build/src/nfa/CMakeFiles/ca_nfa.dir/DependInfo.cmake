
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfa/analysis.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/analysis.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/analysis.cpp.o.d"
  "/root/repo/src/nfa/anml.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/anml.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/anml.cpp.o.d"
  "/root/repo/src/nfa/classical.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/classical.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/classical.cpp.o.d"
  "/root/repo/src/nfa/dfa.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/dfa.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/dfa.cpp.o.d"
  "/root/repo/src/nfa/dot.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/dot.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/dot.cpp.o.d"
  "/root/repo/src/nfa/glushkov.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/glushkov.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/glushkov.cpp.o.d"
  "/root/repo/src/nfa/nfa.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/nfa.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/nfa.cpp.o.d"
  "/root/repo/src/nfa/regex_ast.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/regex_ast.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/regex_ast.cpp.o.d"
  "/root/repo/src/nfa/regex_parser.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/regex_parser.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/regex_parser.cpp.o.d"
  "/root/repo/src/nfa/transform.cpp" "src/nfa/CMakeFiles/ca_nfa.dir/transform.cpp.o" "gcc" "src/nfa/CMakeFiles/ca_nfa.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
