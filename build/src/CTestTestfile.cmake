# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("telemetry")
subdirs("core")
subdirs("nfa")
subdirs("partition")
subdirs("arch")
subdirs("compiler")
subdirs("baseline")
subdirs("sim")
subdirs("workload")
