file(REMOVE_RECURSE
  "libca_arch.a"
)
