# Empty dependencies file for ca_arch.
# This may be replaced when dependencies are built.
