
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/comparison.cpp" "src/arch/CMakeFiles/ca_arch.dir/comparison.cpp.o" "gcc" "src/arch/CMakeFiles/ca_arch.dir/comparison.cpp.o.d"
  "/root/repo/src/arch/design.cpp" "src/arch/CMakeFiles/ca_arch.dir/design.cpp.o" "gcc" "src/arch/CMakeFiles/ca_arch.dir/design.cpp.o.d"
  "/root/repo/src/arch/energy.cpp" "src/arch/CMakeFiles/ca_arch.dir/energy.cpp.o" "gcc" "src/arch/CMakeFiles/ca_arch.dir/energy.cpp.o.d"
  "/root/repo/src/arch/geometry.cpp" "src/arch/CMakeFiles/ca_arch.dir/geometry.cpp.o" "gcc" "src/arch/CMakeFiles/ca_arch.dir/geometry.cpp.o.d"
  "/root/repo/src/arch/sram_timing.cpp" "src/arch/CMakeFiles/ca_arch.dir/sram_timing.cpp.o" "gcc" "src/arch/CMakeFiles/ca_arch.dir/sram_timing.cpp.o.d"
  "/root/repo/src/arch/switch_model.cpp" "src/arch/CMakeFiles/ca_arch.dir/switch_model.cpp.o" "gcc" "src/arch/CMakeFiles/ca_arch.dir/switch_model.cpp.o.d"
  "/root/repo/src/arch/system.cpp" "src/arch/CMakeFiles/ca_arch.dir/system.cpp.o" "gcc" "src/arch/CMakeFiles/ca_arch.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
