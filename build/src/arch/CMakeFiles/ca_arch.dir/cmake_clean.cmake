file(REMOVE_RECURSE
  "CMakeFiles/ca_arch.dir/comparison.cpp.o"
  "CMakeFiles/ca_arch.dir/comparison.cpp.o.d"
  "CMakeFiles/ca_arch.dir/design.cpp.o"
  "CMakeFiles/ca_arch.dir/design.cpp.o.d"
  "CMakeFiles/ca_arch.dir/energy.cpp.o"
  "CMakeFiles/ca_arch.dir/energy.cpp.o.d"
  "CMakeFiles/ca_arch.dir/geometry.cpp.o"
  "CMakeFiles/ca_arch.dir/geometry.cpp.o.d"
  "CMakeFiles/ca_arch.dir/sram_timing.cpp.o"
  "CMakeFiles/ca_arch.dir/sram_timing.cpp.o.d"
  "CMakeFiles/ca_arch.dir/switch_model.cpp.o"
  "CMakeFiles/ca_arch.dir/switch_model.cpp.o.d"
  "CMakeFiles/ca_arch.dir/system.cpp.o"
  "CMakeFiles/ca_arch.dir/system.cpp.o.d"
  "libca_arch.a"
  "libca_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
