# Empty compiler generated dependencies file for ca_baseline.
# This may be replaced when dependencies are built.
