file(REMOVE_RECURSE
  "CMakeFiles/ca_baseline.dir/dfa_engine.cpp.o"
  "CMakeFiles/ca_baseline.dir/dfa_engine.cpp.o.d"
  "CMakeFiles/ca_baseline.dir/nfa_engine.cpp.o"
  "CMakeFiles/ca_baseline.dir/nfa_engine.cpp.o.d"
  "CMakeFiles/ca_baseline.dir/report_utils.cpp.o"
  "CMakeFiles/ca_baseline.dir/report_utils.cpp.o.d"
  "libca_baseline.a"
  "libca_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
