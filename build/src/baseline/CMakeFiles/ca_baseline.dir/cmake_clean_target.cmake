file(REMOVE_RECURSE
  "libca_baseline.a"
)
