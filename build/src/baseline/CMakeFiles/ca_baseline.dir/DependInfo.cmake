
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dfa_engine.cpp" "src/baseline/CMakeFiles/ca_baseline.dir/dfa_engine.cpp.o" "gcc" "src/baseline/CMakeFiles/ca_baseline.dir/dfa_engine.cpp.o.d"
  "/root/repo/src/baseline/nfa_engine.cpp" "src/baseline/CMakeFiles/ca_baseline.dir/nfa_engine.cpp.o" "gcc" "src/baseline/CMakeFiles/ca_baseline.dir/nfa_engine.cpp.o.d"
  "/root/repo/src/baseline/report_utils.cpp" "src/baseline/CMakeFiles/ca_baseline.dir/report_utils.cpp.o" "gcc" "src/baseline/CMakeFiles/ca_baseline.dir/report_utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfa/CMakeFiles/ca_nfa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
