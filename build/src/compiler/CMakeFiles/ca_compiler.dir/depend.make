# Empty dependencies file for ca_compiler.
# This may be replaced when dependencies are built.
