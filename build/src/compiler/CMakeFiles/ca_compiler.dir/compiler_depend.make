# Empty compiler generated dependencies file for ca_compiler.
# This may be replaced when dependencies are built.
