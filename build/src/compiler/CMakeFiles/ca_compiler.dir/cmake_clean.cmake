file(REMOVE_RECURSE
  "CMakeFiles/ca_compiler.dir/config_image.cpp.o"
  "CMakeFiles/ca_compiler.dir/config_image.cpp.o.d"
  "CMakeFiles/ca_compiler.dir/mapping.cpp.o"
  "CMakeFiles/ca_compiler.dir/mapping.cpp.o.d"
  "CMakeFiles/ca_compiler.dir/visualize.cpp.o"
  "CMakeFiles/ca_compiler.dir/visualize.cpp.o.d"
  "libca_compiler.a"
  "libca_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
