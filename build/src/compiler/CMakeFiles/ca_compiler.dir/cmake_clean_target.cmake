file(REMOVE_RECURSE
  "libca_compiler.a"
)
