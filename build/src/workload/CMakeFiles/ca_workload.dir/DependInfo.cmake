
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/distance.cpp" "src/workload/CMakeFiles/ca_workload.dir/distance.cpp.o" "gcc" "src/workload/CMakeFiles/ca_workload.dir/distance.cpp.o.d"
  "/root/repo/src/workload/input_gen.cpp" "src/workload/CMakeFiles/ca_workload.dir/input_gen.cpp.o" "gcc" "src/workload/CMakeFiles/ca_workload.dir/input_gen.cpp.o.d"
  "/root/repo/src/workload/rulegen.cpp" "src/workload/CMakeFiles/ca_workload.dir/rulegen.cpp.o" "gcc" "src/workload/CMakeFiles/ca_workload.dir/rulegen.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "src/workload/CMakeFiles/ca_workload.dir/suite.cpp.o" "gcc" "src/workload/CMakeFiles/ca_workload.dir/suite.cpp.o.d"
  "/root/repo/src/workload/witness.cpp" "src/workload/CMakeFiles/ca_workload.dir/witness.cpp.o" "gcc" "src/workload/CMakeFiles/ca_workload.dir/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfa/CMakeFiles/ca_nfa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
