file(REMOVE_RECURSE
  "CMakeFiles/ca_workload.dir/distance.cpp.o"
  "CMakeFiles/ca_workload.dir/distance.cpp.o.d"
  "CMakeFiles/ca_workload.dir/input_gen.cpp.o"
  "CMakeFiles/ca_workload.dir/input_gen.cpp.o.d"
  "CMakeFiles/ca_workload.dir/rulegen.cpp.o"
  "CMakeFiles/ca_workload.dir/rulegen.cpp.o.d"
  "CMakeFiles/ca_workload.dir/suite.cpp.o"
  "CMakeFiles/ca_workload.dir/suite.cpp.o.d"
  "CMakeFiles/ca_workload.dir/witness.cpp.o"
  "CMakeFiles/ca_workload.dir/witness.cpp.o.d"
  "libca_workload.a"
  "libca_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
