file(REMOVE_RECURSE
  "CMakeFiles/ca_partition.dir/graph.cpp.o"
  "CMakeFiles/ca_partition.dir/graph.cpp.o.d"
  "CMakeFiles/ca_partition.dir/partitioner.cpp.o"
  "CMakeFiles/ca_partition.dir/partitioner.cpp.o.d"
  "libca_partition.a"
  "libca_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
