file(REMOVE_RECURSE
  "libca_partition.a"
)
