# Empty dependencies file for ca_partition.
# This may be replaced when dependencies are built.
