file(REMOVE_RECURSE
  "CMakeFiles/ca_core.dir/bitvector.cpp.o"
  "CMakeFiles/ca_core.dir/bitvector.cpp.o.d"
  "CMakeFiles/ca_core.dir/logging.cpp.o"
  "CMakeFiles/ca_core.dir/logging.cpp.o.d"
  "CMakeFiles/ca_core.dir/string_utils.cpp.o"
  "CMakeFiles/ca_core.dir/string_utils.cpp.o.d"
  "CMakeFiles/ca_core.dir/symbol_set.cpp.o"
  "CMakeFiles/ca_core.dir/symbol_set.cpp.o.d"
  "libca_core.a"
  "libca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
