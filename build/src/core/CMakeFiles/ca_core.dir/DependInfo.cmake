
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bitvector.cpp" "src/core/CMakeFiles/ca_core.dir/bitvector.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/bitvector.cpp.o.d"
  "/root/repo/src/core/logging.cpp" "src/core/CMakeFiles/ca_core.dir/logging.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/logging.cpp.o.d"
  "/root/repo/src/core/string_utils.cpp" "src/core/CMakeFiles/ca_core.dir/string_utils.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/string_utils.cpp.o.d"
  "/root/repo/src/core/symbol_set.cpp" "src/core/CMakeFiles/ca_core.dir/symbol_set.cpp.o" "gcc" "src/core/CMakeFiles/ca_core.dir/symbol_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/ca_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
