file(REMOVE_RECURSE
  "libca_core.a"
)
