#!/usr/bin/env bash
# Tier-1 verification: build + test the default configuration, then the
# telemetry-disabled one (-DCA_TELEMETRY=OFF) so both sides of the
# compile-time gate stay green.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_config() {
    local dir=$1
    shift
    echo "=== configure $dir ($*) ==="
    cmake -B "$dir" -S . "$@"
    echo "=== build $dir ==="
    cmake --build "$dir" -j "$JOBS"
    echo "=== test $dir ==="
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build -DCA_TELEMETRY=ON
run_config build-telemetry-off -DCA_TELEMETRY=OFF

# The telemetry suite on its own (fast sanity for iterating).
ctest --test-dir build -L telemetry --output-on-failure -j "$JOBS"

# The persist suite in both telemetry configurations: the artifact layer
# is instrumented (ca.persist.* spans/counters), so it must behave
# identically with the instrumentation compiled out.
ctest --test-dir build -L persist --output-on-failure -j "$JOBS"
ctest --test-dir build-telemetry-off -L persist --output-on-failure -j "$JOBS"

# The network suite in both telemetry configurations: the service layer
# is instrumented end to end (ca.net.* spans/counters), and its loopback
# determinism contract must hold with the instrumentation compiled out.
ctest --test-dir build -L net --output-on-failure -j "$JOBS"
ctest --test-dir build-telemetry-off -L net --output-on-failure -j "$JOBS"

# The observability suite in both telemetry configurations: the stats
# plane (docs/OBSERVABILITY.md) promises identical snapshot/percentile/
# CASN behavior whether or not the instrumentation macros are compiled
# in — only the recorded values differ.
ctest --test-dir build -L observability --output-on-failure -j "$JOBS"
ctest --test-dir build-telemetry-off -L observability --output-on-failure \
    -j "$JOBS"

# The cluster suite in both telemetry configurations: replication and
# hot-swap must behave identically with the ca.cluster.* / ca.net.*
# instrumentation compiled out.
ctest --test-dir build -L cluster --output-on-failure -j "$JOBS"
ctest --test-dir build-telemetry-off -L cluster --output-on-failure \
    -j "$JOBS"

# The match suite in both telemetry configurations: the chunk-parallel
# matcher is instrumented (ca.match.* counters), and its speculative
# joins must stay report-identical with the instrumentation compiled
# out (docs/MATCH.md).
ctest --test-dir build -L match --output-on-failure -j "$JOBS"
ctest --test-dir build-telemetry-off -L match --output-on-failure \
    -j "$JOBS"

# The scored-automata suite in both telemetry configurations: the
# exact-score contract (docs/SCORING.md) binds every kernel and the
# MatchEngine to the scored oracle, and must hold with instrumentation
# compiled out.
ctest --test-dir build -L score --output-on-failure -j "$JOBS"
ctest --test-dir build-telemetry-off -L score --output-on-failure \
    -j "$JOBS"

# The sim suite under each execution kernel: CA_SIM_KERNEL overrides
# SimOptions::kernel process-wide, so the oracle-equivalence, streaming,
# and checkpoint contracts are enforced with the sparse and the dense
# stepper (Auto is the in-tree default and already ran above).
CA_SIM_KERNEL=sparse ctest --test-dir build -L sim --output-on-failure \
    -j "$JOBS"
CA_SIM_KERNEL=dense ctest --test-dir build -L sim --output-on-failure \
    -j "$JOBS"

# The kernel-comparison bench's plumbing (table + cross-kernel report
# check) at smoke size, so the bench binary cannot rot between releases.
./build/bench/bench_kernel_comparison --smoke >/dev/null

# The chunk-parallel matching bench's plumbing (table + per-degree
# report cross-check against the sim) at smoke size.
./build/bench/bench_parallel_match --smoke >/dev/null

# The scored-matching bench's plumbing (scored vs plain table + oracle
# cross-check of every arm's reports and scores) at smoke size.
./build/bench/bench_scored_match --smoke >/dev/null

# The observability-overhead bench's plumbing at smoke size: it must
# drive real traffic with a live STATS poller ("polls > 0" in its
# output proves the stats plane answered mid-load).
./build/bench/bench_observability_overhead --smoke >/dev/null

# The cluster-replication bench's plumbing at smoke size: a real
# loopback peer pull into a cold cache plus the warm-hit path.
./build/bench/bench_cluster_replication --smoke >/dev/null

# End-to-end scrape smoke: a real ca_server with the stats endpoint and
# a real ca_top against the in-band STATS protocol. The scrape uses
# bash's /dev/tcp so CI needs no curl/netcat.
echo "=== ca_server stats endpoint + ca_top smoke ==="
./build/tools/ca_server --pattern 'cat|dog' --port 0 \
    --stats-port 0 >/tmp/ca_ci_obs_server.log 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "stats listening" /tmp/ca_ci_obs_server.log && break
    sleep 0.1
done
MATCH_PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    /tmp/ca_ci_obs_server.log | head -1)
STATS_PORT=$(sed -n 's/.*stats listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    /tmp/ca_ci_obs_server.log | head -1)
exec 9<>"/dev/tcp/127.0.0.1/${STATS_PORT}"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
SCRAPE=$(cat <&9)
exec 9<&- 9>&-
echo "$SCRAPE" | grep -q "200 OK"
echo "$SCRAPE" | grep -q "ca_server_uptime_seconds"
echo "$SCRAPE" | grep -q "ca_net_frames_in_total"
./build/tools/ca_top --port "$MATCH_PORT" --once \
    | grep -q "ca_top"
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT

# Loopback two-server cluster smoke (docs/CLUSTER.md): node A serves an
# artifact, ca_artifact fetch pulls it by fingerprint, node B starts
# from nothing but the fingerprint + A as a peer, and A hot-swaps on
# SIGHUP while a client is streaming.
echo "=== two-server replication + hot-swap smoke ==="
CLDIR=$(mktemp -d /tmp/ca_ci_cluster.XXXXXX)
trap 'kill "${A_PID:-}" "${B_PID:-}" 2>/dev/null || true; rm -rf "$CLDIR"' EXIT
./build/tools/ca_artifact pack --out "$CLDIR/rules.caa" \
    --pattern 'cat|dog' >/dev/null
./build/tools/ca_server --artifact "$CLDIR/rules.caa" --port 0 \
    --admin-port 0 >"$CLDIR/a.log" 2>&1 &
A_PID=$!
for _ in $(seq 50); do
    grep -q "^fingerprint" "$CLDIR/a.log" && break
    sleep 0.1
done
A_PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    "$CLDIR/a.log" | head -1)
FP=$(sed -n 's/^fingerprint \([0-9a-f]*\)$/\1/p' "$CLDIR/a.log" | head -1)

# Out-of-band pull + full verification of the fetched artifact.
./build/tools/ca_artifact fetch "$FP" --from "127.0.0.1:${A_PORT}" \
    --out "$CLDIR/fetched.caa" >/dev/null
./build/tools/ca_artifact verify "$CLDIR/fetched.caa" \
    --input-bytes 4096 >/dev/null

# Node B: fingerprint + peer only; must serve the identical automaton
# (the client pins the fingerprint it got from A).
./build/tools/ca_server --fingerprint "$FP" \
    --peer "127.0.0.1:${A_PORT}" --cache-dir "$CLDIR/cache_b" \
    --port 0 >"$CLDIR/b.log" 2>&1 &
B_PID=$!
for _ in $(seq 50); do
    grep -q "^fingerprint" "$CLDIR/b.log" && break
    sleep 0.1
done
B_PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    "$CLDIR/b.log" | head -1)
head -c 2097152 /dev/urandom >"$CLDIR/input.bin"
./build/tools/ca_client --port "$B_PORT" --fingerprint "$FP" \
    "$CLDIR/input.bin" >/dev/null
grep -q "ca-fp-${FP}.caa" <<<"$(ls "$CLDIR/cache_b")"

# Hot-swap A to a new ruleset on SIGHUP while a client is mid-stream;
# the stream must finish cleanly and A must report the swap.
./build/tools/ca_artifact pack --out "$CLDIR/rules.caa" \
    --pattern 'fish|owl' >/dev/null
./build/tools/ca_client --port "$A_PORT" --chunk-bytes 4096 \
    "$CLDIR/input.bin" >/dev/null &
CLIENT_PID=$!
sleep 0.2
kill -HUP "$A_PID"
wait "$CLIENT_PID"
for _ in $(seq 50); do
    grep -q "^SIGHUP: swapped" "$CLDIR/a.log" && break
    sleep 0.1
done
grep -q "^SIGHUP: swapped ${FP} ->" "$CLDIR/a.log"
NEW_FP=$(sed -n 's/^SIGHUP: swapped [0-9a-f]* -> \([0-9a-f]*\).*/\1/p' \
    "$CLDIR/a.log" | head -1)
./build/tools/ca_client --port "$A_PORT" --fingerprint "$NEW_FP" \
    "$CLDIR/input.bin" >/dev/null
kill "$A_PID" "$B_PID"
wait "$A_PID" "$B_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$CLDIR"

# ThreadSanitizer over the concurrency code: build only the runtime-
# labeled tests (the multi-stream runtime, the checkpoint/streaming
# contract it is built on, the persist cache's shared-directory
# concurrency, and the TCP match service's reader/writer/sink threads)
# with -fsanitize=thread and run that subset. persist_test, net_test,
# and observability_test carry the runtime label, so their concurrent
# tests (including snapshot-while-mutating) run under TSan here.
echo "=== configure build-tsan (ThreadSanitizer, runtime label) ==="
cmake -B build-tsan -S . -DCA_TELEMETRY=ON \
    "-DCMAKE_CXX_FLAGS=-fsanitize=thread"
cmake --build build-tsan -j "$JOBS" \
    --target runtime_test streaming_test persist_test net_test \
    observability_test cluster_test match_test score_test
ctest --test-dir build-tsan -L runtime --output-on-failure -j "$JOBS"

# The scored suite under TSan: the scored ParallelMatcher path must
# fall back to serial (speculation cannot certify scores), and the
# fallback decision itself must be race-free.
ctest --test-dir build-tsan -L score --output-on-failure -j "$JOBS"

# The same TSan subset with every worker engine forced onto the dense
# kernel: its lazily-built tables and frontier bitvectors are per-sim
# state, and this run proves the multi-stream scheduler keeps them
# data-race-free under context switching.
CA_SIM_KERNEL=dense ctest --test-dir build-tsan -L runtime \
    --output-on-failure -j "$JOBS"

echo "ci: all configurations passed"
