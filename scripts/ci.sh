#!/usr/bin/env bash
# Tier-1 verification: build + test the default configuration, then the
# telemetry-disabled one (-DCA_TELEMETRY=OFF) so both sides of the
# compile-time gate stay green.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_config() {
    local dir=$1
    shift
    echo "=== configure $dir ($*) ==="
    cmake -B "$dir" -S . "$@"
    echo "=== build $dir ==="
    cmake --build "$dir" -j "$JOBS"
    echo "=== test $dir ==="
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build -DCA_TELEMETRY=ON
run_config build-telemetry-off -DCA_TELEMETRY=OFF

# The telemetry suite on its own (fast sanity for iterating).
ctest --test-dir build -L telemetry --output-on-failure -j "$JOBS"

# ThreadSanitizer over the concurrency code: build only the runtime-
# labeled tests (the multi-stream runtime and the checkpoint/streaming
# contract it is built on) with -fsanitize=thread and run that subset.
echo "=== configure build-tsan (ThreadSanitizer, runtime label) ==="
cmake -B build-tsan -S . -DCA_TELEMETRY=ON \
    "-DCMAKE_CXX_FLAGS=-fsanitize=thread"
cmake --build build-tsan -j "$JOBS" --target runtime_test streaming_test
ctest --test-dir build-tsan -L runtime --output-on-failure -j "$JOBS"

echo "ci: all configurations passed"
