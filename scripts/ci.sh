#!/usr/bin/env bash
# Tier-1 verification: build + test the default configuration, then the
# telemetry-disabled one (-DCA_TELEMETRY=OFF) so both sides of the
# compile-time gate stay green.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_config() {
    local dir=$1
    shift
    echo "=== configure $dir ($*) ==="
    cmake -B "$dir" -S . "$@"
    echo "=== build $dir ==="
    cmake --build "$dir" -j "$JOBS"
    echo "=== test $dir ==="
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build -DCA_TELEMETRY=ON
run_config build-telemetry-off -DCA_TELEMETRY=OFF

# The telemetry suite on its own (fast sanity for iterating).
ctest --test-dir build -L telemetry --output-on-failure -j "$JOBS"

echo "ci: all configurations passed"
