/**
 * @file
 * ca_artifact: pack / inspect / verify compiled-automaton artifacts.
 *
 *   ca_artifact pack --out f.caa --benchmark Snort [--scale 0.1]
 *                    [--seed N] [--policy perf|space] [--label text]
 *   ca_artifact pack --out f.caa --pattern 'ab+c' [--pattern ...]
 *   ca_artifact pack --out f.caa --rules rules.txt
 *   ca_artifact inspect f.caa
 *   ca_artifact verify f.caa [--input-bytes 65536] [--seed N]
 *   ca_artifact fetch HEX --from host:port [--out f.caa]
 *
 * pack compiles+maps a ruleset and atomically publishes the artifact;
 * inspect prints the header, section table, and decoded summaries;
 * verify re-checks everything an artifact promises: checksums, structural
 * cross-validation, config-image equivalence against a fresh rebuild,
 * and report-stream equality between the restored sim and the CPU
 * oracle on a deterministic random input. Exit status 0 iff all checks
 * pass (CaError diagnostics go to stderr).
 *
 * fetch pulls the artifact for a fingerprint from a running ca_server
 * (docs/CLUSTER.md) — repeat --from for failover — fully validates it,
 * and publishes it atomically to --out (default: the fingerprint-
 * addressed cache name, ca-fp-<hex>.caa). Operators use it to pre-seed
 * --cache-dir directories before pointing a --fingerprint server at
 * them.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/nfa_engine.h"
#include "cluster/replication.h"
#include "core/error.h"
#include "core/rng.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"
#include "persist/cache.h"
#include "score/oracle.h"
#include "sim/engine.h"
#include "telemetry/telemetry.h"
#include "workload/suite.h"

namespace {

using namespace ca;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  ca_artifact pack --out <file> (--benchmark <name> | --rules "
        "<file> | --pattern <re>...)\n"
        "              [--scale S] [--seed N] [--policy perf|space] "
        "[--label text]\n"
        "  ca_artifact inspect <file>\n"
        "  ca_artifact verify <file> [--input-bytes N] [--seed N]\n"
        "  ca_artifact fetch <fingerprint-hex> --from <host:port> "
        "[--from ...] [--out <file>]\n");
    return 2;
}

struct Args
{
    std::vector<std::string> positional;
    std::vector<std::pair<std::string, std::string>> options;

    std::string
    opt(const std::string &name, const std::string &fallback = {}) const
    {
        for (const auto &[k, v] : options)
            if (k == name)
                return v;
        return fallback;
    }

    std::vector<std::string>
    optAll(const std::string &name) const
    {
        std::vector<std::string> out;
        for (const auto &[k, v] : options)
            if (k == name)
                out.push_back(v);
        return out;
    }
};

Args
parseArgs(int argc, char **argv, int start)
{
    Args args;
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) == 0) {
            std::string key = a.substr(2);
            std::string value;
            size_t eq = key.find('=');
            if (eq != std::string::npos) {
                value = key.substr(eq + 1);
                key = key.substr(0, eq);
            } else if (i + 1 < argc) {
                value = argv[++i];
            }
            args.options.emplace_back(key, value);
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

std::vector<std::string>
readRulesFile(const std::string &path)
{
    std::ifstream is(path);
    CA_FATAL_IF(!is, "cannot open rules file " << path);
    std::vector<std::string> rules;
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] != '#')
            rules.push_back(line);
    }
    CA_FATAL_IF(rules.empty(), "no rules in " << path);
    return rules;
}

int
cmdPack(const Args &args)
{
    std::string out = args.opt("out");
    if (out.empty()) {
        std::fprintf(stderr, "pack: --out is required\n");
        return usage();
    }
    double scale = args.opt("scale").empty()
        ? 1.0
        : std::stod(args.opt("scale"));
    uint64_t seed = args.opt("seed").empty()
        ? kDefaultRuleSeed
        : std::stoull(args.opt("seed"));
    std::string policy = args.opt("policy", "perf");
    CA_FATAL_IF(policy != "perf" && policy != "space",
                "pack: unknown policy '" << policy << "'");

    Nfa nfa;
    std::string label = args.opt("label");
    if (!args.opt("benchmark").empty()) {
        const Benchmark &b = findBenchmark(args.opt("benchmark"));
        nfa = b.build(scale, seed);
        if (label.empty())
            label = b.name;
    } else if (!args.opt("rules").empty()) {
        nfa = compileRuleset(readRulesFile(args.opt("rules")));
        if (label.empty())
            label = args.opt("rules");
    } else if (!args.optAll("pattern").empty()) {
        nfa = compileRuleset(args.optAll("pattern"));
        if (label.empty())
            label = "patterns";
    } else {
        std::fprintf(stderr,
                     "pack: one of --benchmark/--rules/--pattern "
                     "is required\n");
        return usage();
    }

    MappedAutomaton mapped = policy == "space" ? mapSpace(nfa)
                                               : mapPerformance(nfa);
    persist::ArtifactMeta meta;
    meta.label = label;
    persist::saveArtifact(out, mapped, meta);

    std::printf("packed %s: %zu states, %zu partitions, policy %s\n",
                out.c_str(), mapped.nfa().numStates(),
                mapped.numPartitions(), policy.c_str());
    return 0;
}

int
cmdInspect(const Args &args)
{
    if (args.positional.empty()) {
        std::fprintf(stderr, "inspect: artifact path required\n");
        return usage();
    }
    persist::ArtifactReader reader(args.positional[0]);

    std::printf("artifact:  %s (%zu bytes)\n", args.positional[0].c_str(),
                reader.fileBytes());
    std::printf("format:    CAAF v%u\n", reader.version());
    std::printf("tool:      %s\n", reader.meta().tool.c_str());
    std::printf("label:     %s\n", reader.meta().label.c_str());
    std::printf("cache key: %016llx\n",
                static_cast<unsigned long long>(reader.meta().contentKey));

    std::printf("\nsections:\n");
    for (const persist::SectionInfo &s : reader.sections())
        std::printf("  %-4s  %10llu bytes  crc32 %08x\n",
                    persist::sectionName(s.id).c_str(),
                    static_cast<unsigned long long>(s.size), s.crc);

    MappedAutomaton mapped = reader.automaton();
    const Design &d = mapped.design();
    const MappingStats &st = mapped.stats();
    NfaStats ns = mapped.nfa().stats();
    std::printf("\ndesign:    %s (%d STEs/partition, G1 %d, G4 %d wires, "
                "%.1f GHz)\n",
                d.name.c_str(), d.partitionStes, d.g1WiresPerPartition,
                d.g4WiresPerPartition, d.operatingFreqHz / 1e9);
    std::printf("automaton: %zu states, %zu transitions, %zu reports\n",
                ns.numStates, ns.numTransitions, ns.numReportStates);
    if (mapped.nfa().hasWeights()) {
        size_t weighted_edges = 0, weighted_starts = 0;
        for (const NfaState &st : mapped.nfa().states()) {
            for (Weight w : st.outWeight)
                if (w != 0)
                    ++weighted_edges;
            if (st.startWeight != 0)
                ++weighted_starts;
        }
        std::printf("scoring:   weighted (%zu weighted edges, %zu weighted "
                    "starts)\n",
                    weighted_edges, weighted_starts);
    } else {
        std::printf("scoring:   unweighted\n");
    }
    std::printf("mapping:   %zu partitions, %.3f MB, %zu intra / %zu G1 / "
                "%zu G4 edges\n",
                st.partitions, st.utilizationMB, st.intraPartitionEdges,
                st.g1Edges, st.g4Edges);

    ConfigImage img = reader.image();
    std::printf("image:     %zu partitions, %zu routes, %zu config bits\n",
                img.partitions.size(), img.routes.size(), img.totalBits());
    return 0;
}

int
cmdVerify(const Args &args)
{
    if (args.positional.empty()) {
        std::fprintf(stderr, "verify: artifact path required\n");
        return usage();
    }
    const std::string &path = args.positional[0];
    size_t input_bytes = args.opt("input-bytes").empty()
        ? (64u << 10)
        : std::stoull(args.opt("input-bytes"));
    uint64_t seed = args.opt("seed").empty()
        ? 0xCAFEu
        : std::stoull(args.opt("seed"));

    // 1. Checksums + structural cross-validation (throws on failure).
    persist::LoadedArtifact loaded = persist::loadArtifact(path);
    std::printf("checksums + structure: OK (%zu states, %zu partitions)\n",
                loaded.automaton->nfa().numStates(),
                loaded.automaton->numPartitions());

    // 2. The stored config image must equal a fresh rebuild from the
    //    stored automaton (catches stale or cross-wired sections).
    ConfigImage rebuilt = buildConfigImage(*loaded.automaton);
    if (!persist::configImagesEqual(loaded.image, rebuilt)) {
        std::fprintf(stderr,
                     "verify: stored config image differs from rebuild\n");
        return 1;
    }
    std::printf("config image rebuild:  OK (%zu config bits)\n",
                rebuilt.totalBits());

    // 3. The restored sim must report identically to the CPU oracle on
    //    a deterministic random stream.
    Rng rng(seed);
    std::vector<uint8_t> input(input_bytes);
    for (uint8_t &b : input)
        b = rng.byte();
    CacheAutomatonSim sim(loaded.automaton);
    SimResult res = sim.run(input);
    // Weighted artifacts restore scoring, so the sim's reports carry
    // scores; hold them to the scored oracle (exact-score contract)
    // rather than the boolean one, whose scores are all zero.
    std::vector<Report> expect;
    if (loaded.automaton->nfa().hasWeights()) {
        ScoredOracle oracle(loaded.automaton->nfa());
        expect = oracle.run(input);
    } else {
        NfaEngine oracle(loaded.automaton->nfa());
        expect = oracle.run(input);
    }
    if (res.reports != expect) {
        std::fprintf(stderr,
                     "verify: restored sim reports diverge from oracle "
                     "(%zu vs %zu)\n",
                     res.reports.size(), expect.size());
        return 1;
    }
    std::printf("sim vs oracle:         OK (%zu reports over %zu bytes)\n",
                expect.size(), input.size());
    std::printf("verify: %s OK\n", path.c_str());
    return 0;
}

int
cmdFetch(const Args &args)
{
    if (args.positional.empty()) {
        std::fprintf(stderr, "fetch: fingerprint (hex) required\n");
        return usage();
    }
    std::vector<std::string> from = args.optAll("from");
    if (from.empty()) {
        std::fprintf(stderr, "fetch: --from host:port required\n");
        return usage();
    }
    uint64_t fp = std::stoull(args.positional[0], nullptr, 16);
    std::vector<cluster::PeerAddress> peers;
    for (const std::string &spec : from)
        peers.push_back(cluster::parsePeer(spec));

    cluster::Replicator repl(std::move(peers));
    std::vector<uint8_t> bytes = repl.fetchBytes(fp);

    std::string out = args.opt("out");
    if (out.empty()) {
        std::ostringstream os;
        os << std::hex << fp;
        std::string hex = os.str();
        out = "ca-fp-" + std::string(16 - hex.size(), '0') + hex + ".caa";
    }
    persist::writeBytesAtomic(out, bytes);
    std::printf("fetched %016llx: %zu bytes -> %s\n",
                static_cast<unsigned long long>(fp), bytes.size(),
                out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ca::telemetry::CliSession session(argc, argv);
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    Args args = parseArgs(argc, argv, 2);
    try {
        if (cmd == "pack")
            return cmdPack(args);
        if (cmd == "inspect")
            return cmdInspect(args);
        if (cmd == "verify")
            return cmdVerify(args);
        if (cmd == "fetch")
            return cmdFetch(args);
    } catch (const ca::CaError &e) {
        std::fprintf(stderr, "ca_artifact %s: %s\n", cmd.c_str(),
                     e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
}
