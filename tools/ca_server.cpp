/**
 * @file
 * ca_server: serve a compiled automaton over TCP (docs/NET.md).
 *
 *   ca_server --artifact f.caa [--port N] [...]
 *   ca_server --benchmark Snort [--scale 0.1] [--seed N] [--port N]
 *   ca_server --rules rules.txt | --pattern 're' [--pattern ...]
 *   ca_server --fingerprint HEX --peer host:port [--cache-dir DIR]
 *
 * Options:
 *   --port N            bind port (default 0 = ephemeral, printed)
 *   --bind ADDR         bind address (default 127.0.0.1)
 *   --workers N         simulation worker threads
 *   --max-conns N       admission cap (over-cap connects get BUSY)
 *   --max-streams N     streams per connection
 *   --queue-depth N     per-session submit queue depth (backpressure)
 *   --kernel K          simulator kernel: sparse | dense | auto (default)
 *   --match-parallel P  chunk-parallel single-stream matching
 *                       (docs/MATCH.md): off (default) | auto | thread
 *                       count >= 2; $CA_MATCH_PARALLEL overrides
 *   --idle-timeout-ms N idle connection teardown (<=0 disables)
 *   --duration-s N      exit after N seconds (default: run until signal)
 *   --metrics-out F / --trace-out F   telemetry artifacts at shutdown
 *   --stats-port N      scrapeable stats endpoint (Prometheus text,
 *                       docs/OBSERVABILITY.md); prints the bound port
 *   --stats-bind ADDR   stats endpoint bind address (default = --bind)
 *   --stats-interval-s N  re-export live gauges (and rewrite
 *                       --metrics-out, when given) every N seconds
 *
 * Cluster plane (docs/CLUSTER.md):
 *   --peer HOST:PORT    peer server to replicate artifacts from
 *                       (repeatable; tried in order)
 *   --cache-dir DIR     fingerprint-addressed artifact cache; remote
 *                       pulls are published here atomically
 *   --fingerprint HEX   serve this artifact, pulling it from the cache
 *                       or peers (no local compile at all)
 *   --admin-port N      open the admin listener; SWAP requests are only
 *                       honored there (0 = ephemeral, printed)
 *   --admin-bind ADDR   admin bind address (default = --bind)
 *   --watch-artifact    hot-swap automatically when the --artifact file
 *                       is republished (mtime poll, 1 s)
 *
 * SIGHUP reloads the --artifact file as a zero-downtime hot swap: live
 * streams drain on the old ruleset, new streams match the new one.
 *
 * The server prints "listening on HOST:PORT" and "fingerprint HEX" on
 * stdout (line-buffered, so scripts can scrape them), serves until
 * SIGINT/SIGTERM or --duration-s, then shuts down gracefully: open
 * sessions drain, pending reports are delivered, and final ServerStats /
 * NetServerStats are printed and exported as ca.net.* gauges. The final
 * flush runs on *every* exit path — signal, --duration-s, or an error
 * unwinding out of the serve loop — so the telemetry artifacts always
 * reflect the server's last known state.
 */
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/replication.h"
#include "compiler/mapping.h"
#include "core/error.h"
#include "match/parallel_matcher.h"
#include "net/match_server.h"
#include "net/stats_listener.h"
#include "nfa/glushkov.h"
#include "telemetry/metrics.h"
#include "telemetry/runtime.h"
#include "telemetry/snapshot.h"
#include "telemetry/telemetry.h"
#include "workload/suite.h"

namespace {

using namespace ca;

std::sig_atomic_t volatile g_stop = 0;
std::sig_atomic_t volatile g_hup = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
onHangup(int)
{
    g_hup = 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  ca_server (--artifact <file> | --benchmark <name> | --rules "
        "<file> | --pattern <re>...)\n"
        "            [--port N] [--bind ADDR] [--workers N] "
        "[--max-conns N]\n"
        "            [--max-streams N] [--queue-depth N] "
        "[--idle-timeout-ms N]\n"
        "            [--kernel sparse|dense|auto] "
        "[--match-parallel off|auto|N]\n"
        "            [--scale S] [--seed N] [--duration-s N]\n"
        "            [--metrics-out F] [--trace-out F]\n"
        "            [--stats-port N] [--stats-bind ADDR] "
        "[--stats-interval-s N]\n"
        "            [--peer HOST:PORT ...] [--cache-dir DIR] "
        "[--fingerprint HEX]\n"
        "            [--admin-port N] [--admin-bind ADDR] "
        "[--watch-artifact]\n");
    return 2;
}

struct Args
{
    std::vector<std::string> positional;
    std::vector<std::pair<std::string, std::string>> options;

    std::string
    opt(const std::string &name, const std::string &fallback = {}) const
    {
        for (const auto &[k, v] : options)
            if (k == name)
                return v;
        return fallback;
    }

    std::vector<std::string>
    optAll(const std::string &name) const
    {
        std::vector<std::string> out;
        for (const auto &[k, v] : options)
            if (k == name)
                out.push_back(v);
        return out;
    }
};

Args
parseArgs(int argc, char **argv, int start)
{
    Args args;
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) == 0) {
            std::string key = a.substr(2);
            std::string value;
            size_t eq = key.find('=');
            if (eq != std::string::npos) {
                value = key.substr(eq + 1);
                key = key.substr(0, eq);
            } else if (key != "watch-artifact" && i + 1 < argc) {
                // Boolean flags take no value; everything else consumes
                // the next token.
                value = argv[++i];
            }
            args.options.emplace_back(key, value);
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

std::vector<std::string>
readRulesFile(const std::string &path)
{
    std::ifstream is(path);
    CA_FATAL_IF(!is, "cannot open rules file " << path);
    std::vector<std::string> rules;
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] != '#')
            rules.push_back(line);
    }
    CA_FATAL_IF(rules.empty(), "no rules in " << path);
    return rules;
}

void
exportShutdownGauges(const net::MatchServer &server)
{
    net::NetServerStats n = server.stats();
    runtime::ServerStats s = server.streamStats();
    CA_GAUGE_SET("ca.net.final_connections_accepted",
                 static_cast<double>(n.connectionsAccepted));
    CA_GAUGE_SET("ca.net.final_connections_rejected",
                 static_cast<double>(n.connectionsRejected));
    CA_GAUGE_SET("ca.net.final_streams_opened",
                 static_cast<double>(n.streamsOpened));
    CA_GAUGE_SET("ca.net.final_frames_in",
                 static_cast<double>(n.framesIn));
    CA_GAUGE_SET("ca.net.final_frames_out",
                 static_cast<double>(n.framesOut));
    CA_GAUGE_SET("ca.net.final_bytes_in",
                 static_cast<double>(n.bytesIn));
    CA_GAUGE_SET("ca.net.final_bytes_out",
                 static_cast<double>(n.bytesOut));
    CA_GAUGE_SET("ca.net.final_reports_sent",
                 static_cast<double>(n.reportsSent));
    CA_GAUGE_SET("ca.net.final_protocol_errors",
                 static_cast<double>(n.protocolErrors));
    CA_GAUGE_SET("ca.net.final_slow_consumer_drops",
                 static_cast<double>(n.slowConsumerDrops));
    CA_GAUGE_SET("ca.net.final_stream_symbols",
                 static_cast<double>(s.symbols));
    CA_GAUGE_SET("ca.net.final_stream_reports",
                 static_cast<double>(s.reports));
    CA_GAUGE_SET("ca.net.final_context_switches",
                 static_cast<double>(s.contextSwitches));
}

/**
 * Renders the scrape page: server totals, per-session and per-worker
 * series (with labels), then the process metrics registry — all in the
 * Prometheus text exposition format.
 */
std::string
renderStatsPage(const net::MatchServer &server)
{
    net::StatsReplyBody b = server.statsSnapshot();
    std::ostringstream os;
    auto counter = [&](const char *name, uint64_t v) {
        os << "# TYPE " << name << " counter\n"
           << name << " " << v << "\n";
    };
    auto gauge = [&](const char *name, double v) {
        os << "# TYPE " << name << " gauge\n"
           << name << " " << v << "\n";
    };
    const net::WireServerTotals &t = b.totals;
    gauge("ca_server_uptime_seconds",
          static_cast<double>(t.uptimeMicros) / 1e6);
    gauge("ca_server_workers", t.workers);
    gauge("ca_server_active_connections",
          static_cast<double>(t.activeConnections));
    gauge("ca_server_telemetry_enabled",
          b.telemetryCompiled && b.telemetryEnabled ? 1 : 0);
    counter("ca_net_connections_accepted_total", t.connectionsAccepted);
    counter("ca_net_connections_rejected_total", t.connectionsRejected);
    counter("ca_net_connections_closed_total", t.connectionsClosed);
    counter("ca_net_streams_opened_total", t.streamsOpened);
    counter("ca_net_streams_closed_total", t.streamsClosed);
    counter("ca_net_frames_in_total", t.framesIn);
    counter("ca_net_frames_out_total", t.framesOut);
    counter("ca_net_bytes_in_total", t.bytesIn);
    counter("ca_net_bytes_out_total", t.bytesOut);
    counter("ca_net_reports_sent_total", t.reportsSent);
    counter("ca_net_scored_reports_sent_total", t.scoredReportsSent);
    gauge("ca_server_automaton_weighted",
          static_cast<double>(t.automatonWeighted));
    counter("ca_net_protocol_errors_total", t.protocolErrors);
    counter("ca_net_idle_timeouts_total", t.idleTimeouts);
    counter("ca_net_write_timeouts_total", t.writeTimeouts);
    counter("ca_net_slow_consumer_drops_total", t.slowConsumerDrops);
    counter("ca_runtime_sessions_opened_total", t.sessionsOpened);
    counter("ca_runtime_sessions_closed_total", t.sessionsClosed);
    counter("ca_runtime_symbols_total", t.streamSymbols);
    counter("ca_runtime_reports_total", t.streamReports);
    counter("ca_runtime_slices_total", t.slices);
    counter("ca_runtime_context_switches_total", t.contextSwitches);

    // Cluster plane: which automaton generation is serving, and the
    // replication/swap counters (docs/CLUSTER.md).
    gauge("ca_cluster_epoch", static_cast<double>(t.epoch));
    {
        std::ostringstream fp;
        fp << std::hex;
        fp.width(16);
        fp.fill('0');
        fp << t.automatonFp;
        os << "# TYPE ca_cluster_automaton_info gauge\n"
           << "ca_cluster_automaton_info{fingerprint=\"" << fp.str()
           << "\"} 1\n";
    }
    gauge("ca_cluster_epochs_draining",
          static_cast<double>(t.epochsDraining));
    counter("ca_cluster_swaps_completed_total", t.swapsCompleted);
    counter("ca_cluster_swaps_failed_total", t.swapsFailed);
    counter("ca_cluster_epochs_retired_total", t.epochsRetired);
    counter("ca_cluster_artifact_queries_total", t.artifactQueries);
    counter("ca_cluster_artifact_chunks_served_total",
            t.artifactChunksServed);
    counter("ca_cluster_artifact_bytes_served_total",
            t.artifactBytesServed);

    os << "# TYPE ca_session_symbols_per_second gauge\n";
    for (const runtime::SessionLiveStats &s : b.sessions)
        if (!s.closed)
            os << "ca_session_symbols_per_second{session=\"" << s.id
               << "\"} " << s.symbolsPerSec << "\n";
    os << "# TYPE ca_session_queued_bytes gauge\n";
    for (const runtime::SessionLiveStats &s : b.sessions)
        if (!s.closed)
            os << "ca_session_queued_bytes{session=\"" << s.id << "\"} "
               << s.queuedBytes << "\n";

    os << "# TYPE ca_kernel_blocks_total counter\n";
    for (size_t w = 0; w < b.kernels.size(); ++w) {
        const KernelDecisionStats &k = b.kernels[w];
        os << "ca_kernel_blocks_total{worker=\"" << w
           << "\",kernel=\"sparse\"} " << k.sparseBlocks << "\n";
        os << "ca_kernel_blocks_total{worker=\"" << w
           << "\",kernel=\"dense\"} " << k.denseBlocks << "\n";
    }
    os << "# TYPE ca_kernel_flips_total counter\n";
    for (size_t w = 0; w < b.kernels.size(); ++w)
        os << "ca_kernel_flips_total{worker=\"" << w << "\"} "
           << b.kernels[w].kernelFlips << "\n";
    os << "# TYPE ca_kernel_density_ewma gauge\n";
    for (size_t w = 0; w < b.kernels.size(); ++w)
        os << "ca_kernel_density_ewma{worker=\"" << w << "\"} "
           << b.kernels[w].densityEwma << "\n";

    // Whatever the process-wide registry holds (empty when telemetry is
    // compiled out or disabled — the page above still works).
    telemetry::MetricsSnapshot snap;
    if (!b.metricsSnapshot.empty())
        snap = telemetry::MetricsSnapshot::deserialize(b.metricsSnapshot);
    os << snap.prometheusText();
    return os.str();
}

int
run(const Args &args)
{
    net::MatchServerOptions opts;
    opts.bindAddress = args.opt("bind", "127.0.0.1");
    if (!args.opt("port").empty())
        opts.port = static_cast<uint16_t>(std::stoul(args.opt("port")));
    if (!args.opt("max-conns").empty())
        opts.maxConnections = std::stoull(args.opt("max-conns"));
    if (!args.opt("max-streams").empty())
        opts.maxStreamsPerConnection =
            std::stoull(args.opt("max-streams"));
    if (!args.opt("idle-timeout-ms").empty())
        opts.idleTimeoutMs = std::stoi(args.opt("idle-timeout-ms"));
    if (!args.opt("workers").empty())
        opts.stream.workers = std::stoull(args.opt("workers"));
    if (!args.opt("queue-depth").empty())
        opts.stream.sessionQueueDepth =
            std::stoull(args.opt("queue-depth"));
    if (!args.opt("kernel").empty()) {
        const std::string kernel = args.opt("kernel");
        if (std::optional<SimKernel> k = parseKernelName(kernel)) {
            opts.stream.sim.kernel = *k;
        } else {
            std::fprintf(stderr, "ca_server: unknown --kernel %s\n",
                         kernel.c_str());
            return usage();
        }
    }
    if (!args.opt("match-parallel").empty()) {
        const std::string mp = args.opt("match-parallel");
        if (std::optional<size_t> deg = match::parseMatchParallel(mp)) {
            opts.stream.matchParallelism = *deg;
        } else {
            std::fprintf(stderr,
                         "ca_server: bad --match-parallel %s "
                         "(off|auto|<count>)\n",
                         mp.c_str());
            return usage();
        }
    }

    // Register before the (possibly long) compile/load so an early ^C
    // still lands in the orderly-shutdown path below.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGHUP, onHangup);

    if (!args.opt("admin-port").empty()) {
        opts.adminEnabled = true;
        opts.adminPort = static_cast<uint16_t>(
            std::stoul(args.opt("admin-port")));
        opts.adminBindAddress = args.opt("admin-bind");
    }

    // Cluster wiring: peers feed a Replicator; --cache-dir persists the
    // pulls (and serves them back to other peers via artifactResolver).
    std::unique_ptr<cluster::Replicator> replicator;
    std::vector<cluster::PeerAddress> peers;
    for (const std::string &spec : args.optAll("peer"))
        peers.push_back(cluster::parsePeer(spec));
    if (!peers.empty())
        replicator = std::make_unique<cluster::Replicator>(peers);
    std::unique_ptr<persist::ArtifactCache> cache;
    if (!args.opt("cache-dir").empty()) {
        cache =
            std::make_unique<persist::ArtifactCache>(args.opt("cache-dir"));
        if (replicator)
            cache->setRemoteFetcher(replicator->cacheFetcher());
    }
    if (cache) {
        persist::ArtifactCache *c = cache.get();
        opts.artifactResolver = [c](uint64_t fp) {
            return c->tryReadBytesByFingerprint(fp);
        };
    }
    {
        persist::ArtifactCache *c = cache.get();
        cluster::Replicator *r = replicator.get();
        opts.swapLoader = [c, r](uint64_t fp, const std::string &source)
            -> persist::LoadedArtifact {
            if (!source.empty())
                return persist::loadArtifact(source);
            CA_FATAL_IF(fp == 0, "SWAP needs a fingerprint or a source");
            if (c)
                return c->getOrFetch(fp);
            if (r)
                return r->fetch(fp);
            CA_THROW("no --cache-dir or --peer to resolve the swap "
                     "fingerprint");
        };
    }

    // The observability flags imply the operator wants live metrics:
    // turn the runtime telemetry switch on even without CA_TELEMETRY=1
    // in the environment (a telemetry-off *build* still serves the
    // always-on sections and says so in the page/reply flags).
    if (!args.opt("stats-port").empty() ||
        !args.opt("stats-interval-s").empty())
        telemetry::setEnabled(true);

    std::unique_ptr<net::MatchServer> server;
    if (!args.opt("fingerprint").empty()) {
        // Fingerprint-only start: no rules, no compile — the artifact
        // comes from the local cache or is replicated from a peer.
        uint64_t fp = std::stoull(args.opt("fingerprint"), nullptr, 16);
        persist::LoadedArtifact loaded;
        if (cache) {
            loaded = cache->getOrFetch(fp);
        } else if (replicator) {
            loaded = replicator->fetch(fp);
        } else {
            std::fprintf(stderr,
                         "ca_server: --fingerprint needs --peer and/or "
                         "--cache-dir\n");
            return usage();
        }
        server = std::make_unique<net::MatchServer>(
            std::move(loaded.automaton), opts);
        std::printf("serving replicated artifact %016llx\n",
                    static_cast<unsigned long long>(fp));
    } else if (!args.opt("artifact").empty()) {
        server = net::MatchServer::fromArtifact(args.opt("artifact"),
                                                opts);
        std::printf("serving artifact %s\n",
                    args.opt("artifact").c_str());
    } else {
        double scale = args.opt("scale").empty()
            ? 1.0
            : std::stod(args.opt("scale"));
        uint64_t seed = args.opt("seed").empty()
            ? kDefaultRuleSeed
            : std::stoull(args.opt("seed"));
        Nfa nfa;
        if (!args.opt("benchmark").empty()) {
            nfa = findBenchmark(args.opt("benchmark")).build(scale, seed);
        } else if (!args.opt("rules").empty()) {
            nfa = compileRuleset(readRulesFile(args.opt("rules")));
        } else if (!args.optAll("pattern").empty()) {
            nfa = compileRuleset(args.optAll("pattern"));
        } else {
            std::fprintf(stderr,
                         "ca_server: one of --artifact/--fingerprint/"
                         "--benchmark/--rules/--pattern is required\n");
            return usage();
        }
        auto mapped =
            std::make_shared<MappedAutomaton>(mapPerformance(nfa));
        server = std::make_unique<net::MatchServer>(std::move(mapped),
                                                    opts);
    }

    std::printf("listening on %s:%u\n", opts.bindAddress.c_str(),
                static_cast<unsigned>(server->port()));
    if (opts.adminEnabled)
        std::printf("admin listening on %s:%u\n",
                    (opts.adminBindAddress.empty()
                         ? opts.bindAddress
                         : opts.adminBindAddress)
                        .c_str(),
                    static_cast<unsigned>(server->adminPort()));
    std::printf("fingerprint %016llx\n",
                static_cast<unsigned long long>(server->fingerprint()));
    std::fflush(stdout);

    // Scrapeable stats endpoint (docs/OBSERVABILITY.md).
    std::unique_ptr<net::StatsListener> stats_listener;
    if (!args.opt("stats-port").empty()) {
        net::StatsListenerOptions sopts;
        sopts.bindAddress = args.opt("stats-bind", opts.bindAddress);
        sopts.port = static_cast<uint16_t>(
            std::stoul(args.opt("stats-port")));
        net::MatchServer *raw = server.get();
        stats_listener = std::make_unique<net::StatsListener>(
            [raw] { return renderStatsPage(*raw); }, sopts);
        std::printf("stats listening on %s:%u\n",
                    sopts.bindAddress.c_str(),
                    static_cast<unsigned>(stats_listener->port()));
        std::fflush(stdout);
    }

    // Whatever ends this serve — signal, --duration-s, or an exception
    // unwinding out of the loop — the shutdown flush must still run, so
    // it rides an RAII guard instead of straight-line code.
    struct ShutdownFlush
    {
        net::MatchServer &server;
        net::StatsListener *listener;
        const std::string metricsPath;
        ~ShutdownFlush()
        {
            if (listener)
                listener->stop(); // stop scraping a dying server
            server.stop();
            exportShutdownGauges(server);
            if (!metricsPath.empty())
                ca::telemetry::dumpMetrics(metricsPath);
        }
    } flush_guard{*server, stats_listener.get(),
                  args.opt("metrics-out")};

    long duration_ms = args.opt("duration-s").empty()
        ? -1
        : std::stol(args.opt("duration-s")) * 1000;
    long interval_ms = args.opt("stats-interval-s").empty()
        ? -1
        : std::stol(args.opt("stats-interval-s")) * 1000;
    const std::string artifact_path = args.opt("artifact");
    const bool watch_artifact =
        args.options.end() !=
        std::find_if(args.options.begin(), args.options.end(),
                     [](const auto &kv) {
                         return kv.first == "watch-artifact";
                     });
    auto artifactMtime = [&artifact_path] {
        std::error_code ec;
        return std::filesystem::last_write_time(artifact_path, ec);
    };
    std::filesystem::file_time_type last_mtime{};
    if (watch_artifact && !artifact_path.empty())
        last_mtime = artifactMtime();
    auto hotSwap = [&](const char *why) {
        if (artifact_path.empty()) {
            std::fprintf(stderr,
                         "ca_server: %s ignored (no --artifact to "
                         "reload)\n",
                         why);
            return;
        }
        try {
            net::MatchServer::SwapResult r =
                server->swapFromArtifact(artifact_path);
            std::printf("%s: %s %016llx -> %016llx (epoch %llu)\n", why,
                        r.swapped ? "swapped" : "unchanged",
                        static_cast<unsigned long long>(r.oldFingerprint),
                        static_cast<unsigned long long>(r.newFingerprint),
                        static_cast<unsigned long long>(r.epoch));
            std::fflush(stdout);
        } catch (const CaError &e) {
            // A bad artifact must never take down the serving epoch.
            std::fprintf(stderr, "ca_server: %s swap failed: %s\n", why,
                         e.what());
        }
    };
    long waited_ms = 0;
    long last_flush_ms = 0;
    long last_watch_ms = 0;
    while (!g_stop && (duration_ms < 0 || waited_ms < duration_ms)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        waited_ms += 50;
        if (g_hup) {
            g_hup = 0;
            hotSwap("SIGHUP");
        }
        if (watch_artifact && !artifact_path.empty() &&
            waited_ms - last_watch_ms >= 1000) {
            last_watch_ms = waited_ms;
            std::filesystem::file_time_type now_mtime = artifactMtime();
            if (now_mtime != last_mtime) {
                last_mtime = now_mtime;
                hotSwap("watch-artifact");
            }
        }
        if (interval_ms > 0 && waited_ms - last_flush_ms >= interval_ms) {
            last_flush_ms = waited_ms;
            // Periodic flush: refresh the exported gauges and rewrite
            // the metrics artifact so a crash loses at most one window.
            exportShutdownGauges(*server);
            if (!args.opt("metrics-out").empty())
                telemetry::dumpMetrics(args.opt("metrics-out"));
        }
    }

    std::printf("shutting down (%zu active connections)...\n",
                server->activeConnections());
    // Orderly path: stop now so the printed totals are final (the guard
    // re-runs these — both stops are idempotent).
    if (stats_listener)
        stats_listener->stop();
    server->stop();

    net::NetServerStats n = server->stats();
    runtime::ServerStats s = server->streamStats();
    std::printf("connections: %llu accepted, %llu rejected, "
                "%llu closed\n",
                static_cast<unsigned long long>(n.connectionsAccepted),
                static_cast<unsigned long long>(n.connectionsRejected),
                static_cast<unsigned long long>(n.connectionsClosed));
    std::printf("streams:     %llu opened, %llu closed\n",
                static_cast<unsigned long long>(n.streamsOpened),
                static_cast<unsigned long long>(n.streamsClosed));
    std::printf("frames:      %llu in (%llu bytes), %llu out "
                "(%llu bytes)\n",
                static_cast<unsigned long long>(n.framesIn),
                static_cast<unsigned long long>(n.bytesIn),
                static_cast<unsigned long long>(n.framesOut),
                static_cast<unsigned long long>(n.bytesOut));
    std::printf("reports:     %llu sent (%llu scored); errors: "
                "%llu protocol, %llu idle, %llu write, %llu "
                "slow-consumer\n",
                static_cast<unsigned long long>(n.reportsSent),
                static_cast<unsigned long long>(n.scoredReportsSent),
                static_cast<unsigned long long>(n.protocolErrors),
                static_cast<unsigned long long>(n.idleTimeouts),
                static_cast<unsigned long long>(n.writeTimeouts),
                static_cast<unsigned long long>(n.slowConsumerDrops));
    std::printf("runtime:     %llu symbols, %llu reports, %llu slices, "
                "%llu context switches\n",
                static_cast<unsigned long long>(s.symbols),
                static_cast<unsigned long long>(s.reports),
                static_cast<unsigned long long>(s.slices),
                static_cast<unsigned long long>(s.contextSwitches));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ca::telemetry::CliSession session(argc, argv);
    Args args = parseArgs(argc, argv, 1);
    try {
        return run(args);
    } catch (const ca::CaError &e) {
        std::fprintf(stderr, "ca_server: %s\n", e.what());
        return 1;
    }
}
