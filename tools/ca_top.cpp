/**
 * @file
 * ca_top: a live terminal dashboard for a running ca_server, in the
 * spirit of top(1) (docs/OBSERVABILITY.md).
 *
 *   ca_top --port N [--host H] [--interval-ms N] [--count N] [--once]
 *          [--no-clear]
 *
 * Options:
 *   --host H         server address (default 127.0.0.1)
 *   --port N         server match port (required)
 *   --interval-ms N  poll period (default 1000)
 *   --count N        exit after N refreshes (default: until ^C)
 *   --once           single poll, plain print (same as --count 1
 *                    --no-clear; for scripts and CI smoke tests)
 *   --no-clear       append refreshes instead of redrawing in place
 *
 * ca_top speaks the in-band STATS protocol over an ordinary client
 * connection — no second port to open, and the numbers come from the
 * same snapshot path the Prometheus endpoint serves. Each refresh shows
 * the server totals with interval rates (derived from consecutive
 * polls), the per-session table, and each worker's sparse/dense kernel
 * mix. When the server was built without telemetry, or telemetry is
 * disabled at runtime, the header line says so instead of showing a
 * misleading wall of zeros.
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "net/client.h"
#include "telemetry/snapshot.h"

namespace {

using namespace ca;

std::sig_atomic_t volatile g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: ca_top --port N [--host H] [--interval-ms N]\n"
                 "              [--count N] [--once] [--no-clear]\n");
    return 2;
}

/** "12.3M", "456k" — compact magnitudes for fixed-width columns. */
std::string
human(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
}

/** Interval rate between two polls (0 when time stood still). */
double
rate(uint64_t now, uint64_t then, double dtSec)
{
    if (dtSec <= 0 || now < then)
        return 0;
    return static_cast<double>(now - then) / dtSec;
}

void
render(const net::StatsReplyBody &b, const net::StatsReplyBody &prev,
       bool havePrev, bool clear)
{
    const net::WireServerTotals &t = b.totals;
    double dt = havePrev
        ? static_cast<double>(t.uptimeMicros -
                              prev.totals.uptimeMicros) /
            1e6
        : 0;
    if (clear)
        std::printf("\x1b[H\x1b[2J"); // home + clear: redraw in place

    std::printf("ca_top — uptime %.1fs, %u workers, %llu conns",
                static_cast<double>(t.uptimeMicros) / 1e6, t.workers,
                static_cast<unsigned long long>(t.activeConnections));
    if (!b.telemetryCompiled)
        std::printf("   [telemetry compiled out]");
    else if (!b.telemetryEnabled)
        std::printf("   [telemetry disabled]");
    std::printf("\n");
    std::printf("automaton     fingerprint %016llx, epoch %llu%s",
                static_cast<unsigned long long>(t.automatonFp),
                static_cast<unsigned long long>(t.epoch),
                t.automatonWeighted ? ", weighted" : "");
    if (t.epochsDraining)
        std::printf(" (+%llu draining)",
                    static_cast<unsigned long long>(t.epochsDraining));
    std::printf("\n\n");

    std::printf("totals        symbols %-10s reports %-10s bytes in "
                "%-10s out %-10s\n",
                human(static_cast<double>(t.streamSymbols)).c_str(),
                human(static_cast<double>(t.streamReports)).c_str(),
                human(static_cast<double>(t.bytesIn)).c_str(),
                human(static_cast<double>(t.bytesOut)).c_str());
    if (havePrev)
        std::printf(
            "rates/s       symbols %-10s reports %-10s bytes in "
            "%-10s out %-10s\n",
            human(rate(t.streamSymbols, prev.totals.streamSymbols, dt))
                .c_str(),
            human(rate(t.streamReports, prev.totals.streamReports, dt))
                .c_str(),
            human(rate(t.bytesIn, prev.totals.bytesIn, dt)).c_str(),
            human(rate(t.bytesOut, prev.totals.bytesOut, dt)).c_str());
    std::printf("lifecycle     conns %llu/%llu acc/rej, streams %llu "
                "open %llu closed, slices %llu, ctx %llu\n",
                static_cast<unsigned long long>(t.connectionsAccepted),
                static_cast<unsigned long long>(t.connectionsRejected),
                static_cast<unsigned long long>(t.streamsOpened),
                static_cast<unsigned long long>(t.streamsClosed),
                static_cast<unsigned long long>(t.slices),
                static_cast<unsigned long long>(t.contextSwitches));
    if (t.automatonWeighted)
        std::printf("scoring       scored reports sent %s\n",
                    human(static_cast<double>(t.scoredReportsSent))
                        .c_str());
    std::printf("errors        protocol %llu, idle %llu, write %llu, "
                "slow-consumer %llu\n",
                static_cast<unsigned long long>(t.protocolErrors),
                static_cast<unsigned long long>(t.idleTimeouts),
                static_cast<unsigned long long>(t.writeTimeouts),
                static_cast<unsigned long long>(t.slowConsumerDrops));
    std::printf("cluster       swaps %llu ok / %llu failed, epochs "
                "retired %llu, artifact q %llu served %llu chunks "
                "(%s)\n\n",
                static_cast<unsigned long long>(t.swapsCompleted),
                static_cast<unsigned long long>(t.swapsFailed),
                static_cast<unsigned long long>(t.epochsRetired),
                static_cast<unsigned long long>(t.artifactQueries),
                static_cast<unsigned long long>(t.artifactChunksServed),
                human(static_cast<double>(t.artifactBytesServed)).c_str());

    size_t live = 0;
    for (const runtime::SessionLiveStats &s : b.sessions)
        if (!s.closed)
            ++live;
    std::printf("sessions (%zu live / %zu total)\n", live,
                b.sessions.size());
    std::printf("  %6s %10s %10s %8s %9s %7s %6s %s\n", "id", "symbols",
                "sym/s", "reports", "queued", "stalls", "susp", "state");
    for (const runtime::SessionLiveStats &s : b.sessions) {
        if (s.closed)
            continue;
        const char *state = s.suspended ? "suspended"
            : s.closing                 ? "closing"
                                        : "running";
        std::printf("  %6u %10s %10s %8s %9s %7llu %6llu %s\n", s.id,
                    human(static_cast<double>(s.stats.symbols)).c_str(),
                    human(s.symbolsPerSec).c_str(),
                    human(static_cast<double>(s.stats.reports)).c_str(),
                    human(static_cast<double>(s.queuedBytes)).c_str(),
                    static_cast<unsigned long long>(
                        s.stats.queueFullStalls),
                    static_cast<unsigned long long>(s.stats.suspensions),
                    state);
    }

    std::printf("\nkernels\n");
    std::printf("  %6s %10s %10s %8s %9s %s\n", "worker", "sparse",
                "dense", "flips", "density", "last");
    for (size_t w = 0; w < b.kernels.size(); ++w) {
        const KernelDecisionStats &k = b.kernels[w];
        const char *last = k.lastKernel < 0 ? "-"
            : k.lastKernel == 0             ? "sparse"
                                            : "dense";
        std::printf("  %6zu %10s %10s %8llu %9.3f %s\n", w,
                    human(static_cast<double>(k.sparseBlocks)).c_str(),
                    human(static_cast<double>(k.denseBlocks)).c_str(),
                    static_cast<unsigned long long>(k.kernelFlips),
                    k.densityEwma, last);
    }

    // Registry highlights: the handful of process metrics that aren't
    // already covered by a dedicated panel above.
    if (b.telemetryCompiled && b.telemetryEnabled &&
        !b.metricsSnapshot.empty()) {
        telemetry::MetricsSnapshot snap =
            telemetry::MetricsSnapshot::deserialize(b.metricsSnapshot);

        // Chunk-parallel matching (docs/MATCH.md): the ca.match.*
        // counters travel in the registry image, so a server with
        // --match-parallel off (or no parallel traffic yet) simply has
        // no ca.match.chunks and the line is omitted.
        auto counterOf = [&](const char *name) -> uint64_t {
            const telemetry::MetricValue *v = snap.find(name);
            return v != nullptr ? v->counter : 0;
        };
        uint64_t mchunks = counterOf("ca.match.chunks");
        if (mchunks > 0) {
            uint64_t hits = counterOf("ca.match.speculation_hits");
            uint64_t replays = counterOf("ca.match.replays");
            uint64_t spec = hits + replays;
            double hit_pct = spec == 0
                ? 100.0
                : 100.0 * static_cast<double>(hits) /
                    static_cast<double>(spec);
            std::printf("\nmatch (chunk-parallel)\n");
            std::printf("  %10s %10s %10s %8s %10s %10s\n", "chunks",
                        "spec hits", "replays", "hit%", "replayed",
                        "join ms");
            std::printf(
                "  %10s %10s %10s %7.1f%% %10s %10.1f\n",
                human(static_cast<double>(mchunks)).c_str(),
                human(static_cast<double>(hits)).c_str(),
                human(static_cast<double>(replays)).c_str(), hit_pct,
                human(static_cast<double>(
                          counterOf("ca.match.replayed_bytes")))
                    .c_str(),
                static_cast<double>(counterOf("ca.match.join_micros")) /
                    1e3);
        }

        std::printf("\nprocess metrics: %zu registered\n",
                    snap.size());
    }
    std::fflush(stdout);
}

struct Options
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    int intervalMs = 1000;
    long count = -1;
    bool clear = true;
};

int
runTop(const Options &o)
{
    net::MatchClient client;
    client.connect(o.host, o.port);

    net::StatsReplyBody prev;
    bool havePrev = false;
    for (long i = 0; (o.count < 0 || i < o.count) && !g_stop; ++i) {
        if (i > 0) {
            int waited = 0;
            while (waited < o.intervalMs && !g_stop) {
                int step = std::min(50, o.intervalMs - waited);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(step));
                waited += step;
            }
            if (g_stop)
                break;
        }
        net::StatsReplyBody b = client.requestStats();
        render(b, prev, havePrev, o.clear);
        prev = std::move(b);
        havePrev = true;
    }
    client.close();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> std::string {
            size_t eq = a.find('=');
            if (eq != std::string::npos)
                return a.substr(eq + 1);
            CA_FATAL_IF(i + 1 >= argc, "ca_top: " << a << " needs a value");
            return argv[++i];
        };
        std::string key = a.substr(0, a.find('='));
        try {
            if (key == "--host")
                o.host = value();
            else if (key == "--port")
                o.port = static_cast<uint16_t>(std::stoul(value()));
            else if (key == "--interval-ms")
                o.intervalMs = std::stoi(value());
            else if (key == "--count")
                o.count = std::stol(value());
            else if (key == "--once") {
                o.count = 1;
                o.clear = false;
            } else if (key == "--no-clear")
                o.clear = false;
            else
                return usage();
        } catch (const ca::CaError &e) {
            std::fprintf(stderr, "ca_top: %s\n", e.what());
            return 2;
        }
    }
    if (o.port == 0)
        return usage();

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    try {
        return runTop(o);
    } catch (const ca::CaError &e) {
        std::fprintf(stderr, "ca_top: %s\n", e.what());
        return 1;
    }
}
