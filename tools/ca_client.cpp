/**
 * @file
 * ca_client: stream bytes to a ca_server and collect match reports.
 *
 *   ca_client --port N [--host H] file1 [file2 ...]
 *   ca_client --port N --gen-benchmark Snort --gen-bytes 1048576
 *
 * Each positional file (or the generated input) becomes one stream on a
 * single connection; bytes are sent in --chunk-bytes chunks, the stream
 * is flushed and closed, and the report count (plus the first reports
 * with --print N) is printed per stream.
 *
 * Options:
 *   --host H          server host (default 127.0.0.1)
 *   --port N          server port (required)
 *   --chunk-bytes N   DATA chunk size (default 65536)
 *   --fingerprint HEX require this automaton fingerprint in HELLO
 *   --gen-benchmark B generate the benchmark's input instead of files
 *   --gen-bytes N     generated input length (default 1 MiB)
 *   --gen-scale S     ruleset scale used for witness planting
 *   --seed N          generated input seed
 *   --print N         print the first N reports of each stream
 *   --metrics-out F / --trace-out F   telemetry artifacts at exit
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "net/client.h"
#include "telemetry/telemetry.h"
#include "workload/suite.h"

namespace {

using namespace ca;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  ca_client --port N [--host H] [--chunk-bytes N] "
        "[--fingerprint HEX]\n"
        "            [--print N] [--metrics-out F] [--trace-out F]\n"
        "            (<input-file>... | --gen-benchmark B "
        "[--gen-bytes N] [--seed N])\n");
    return 2;
}

struct Args
{
    std::vector<std::string> positional;
    std::vector<std::pair<std::string, std::string>> options;

    std::string
    opt(const std::string &name, const std::string &fallback = {}) const
    {
        for (const auto &[k, v] : options)
            if (k == name)
                return v;
        return fallback;
    }
};

Args
parseArgs(int argc, char **argv, int start)
{
    Args args;
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) == 0) {
            std::string key = a.substr(2);
            std::string value;
            size_t eq = key.find('=');
            if (eq != std::string::npos) {
                value = key.substr(eq + 1);
                key = key.substr(0, eq);
            } else if (i + 1 < argc) {
                value = argv[++i];
            }
            args.options.emplace_back(key, value);
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    CA_FATAL_IF(!is, "cannot open input file " << path);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(is),
                                std::istreambuf_iterator<char>());
}

int
run(const Args &args)
{
    if (args.opt("port").empty()) {
        std::fprintf(stderr, "ca_client: --port is required\n");
        return usage();
    }
    uint16_t port = static_cast<uint16_t>(std::stoul(args.opt("port")));
    std::string host = args.opt("host", "127.0.0.1");
    size_t chunk_bytes = args.opt("chunk-bytes").empty()
        ? (64u << 10)
        : std::stoull(args.opt("chunk-bytes"));
    CA_FATAL_IF(chunk_bytes == 0, "ca_client: --chunk-bytes must be > 0");
    size_t print_n = args.opt("print").empty()
        ? 0
        : std::stoull(args.opt("print"));

    // Assemble (name, bytes) inputs: files, or one generated stream.
    std::vector<std::pair<std::string, std::vector<uint8_t>>> inputs;
    if (!args.opt("gen-benchmark").empty()) {
        const Benchmark &b = findBenchmark(args.opt("gen-benchmark"));
        size_t gen_bytes = args.opt("gen-bytes").empty()
            ? (1u << 20)
            : std::stoull(args.opt("gen-bytes"));
        uint64_t seed = args.opt("seed").empty()
            ? 0xCAFEu
            : std::stoull(args.opt("seed"));
        double scale = args.opt("gen-scale").empty()
            ? 1.0
            : std::stod(args.opt("gen-scale"));
        inputs.emplace_back(b.name + " (generated)",
                            benchmarkInput(b, gen_bytes, seed, scale));
    } else if (!args.positional.empty()) {
        for (const std::string &path : args.positional)
            inputs.emplace_back(path, readFile(path));
    } else {
        std::fprintf(stderr,
                     "ca_client: input files or --gen-benchmark "
                     "required\n");
        return usage();
    }

    net::ClientOptions copts;
    if (!args.opt("fingerprint").empty())
        copts.expectedFingerprint =
            std::stoull(args.opt("fingerprint"), nullptr, 16);

    net::MatchClient client;
    client.connect(host, port, copts);
    std::printf("connected to %s:%u (fingerprint %016llx)\n",
                host.c_str(), static_cast<unsigned>(port),
                static_cast<unsigned long long>(
                    client.serverFingerprint()));

    uint64_t total_reports = 0;
    for (const auto &[name, bytes] : inputs) {
        uint32_t stream = client.openStream();
        for (size_t pos = 0; pos < bytes.size(); pos += chunk_bytes) {
            size_t n = std::min(chunk_bytes, bytes.size() - pos);
            client.send(stream, bytes.data() + pos, n);
        }
        if (bytes.empty())
            client.send(stream, bytes.data(), 0);
        client.flush(stream);
        net::StreamSummary sum = client.closeStream(stream);
        std::vector<Report> reports = client.takeReports(stream);
        CA_FATAL_IF(reports.size() != sum.reports,
                    "ca_client: server reported " << sum.reports
                        << " reports but delivered " << reports.size());
        std::printf("%s: %zu bytes, %zu reports\n", name.c_str(),
                    bytes.size(), reports.size());
        for (size_t i = 0; i < std::min(print_n, reports.size()); ++i)
            std::printf("  offset %llu  report %u  state %u\n",
                        static_cast<unsigned long long>(
                            reports[i].offset),
                        reports[i].reportId, reports[i].state);
        total_reports += reports.size();
    }
    client.close();
    std::printf("total: %zu streams, %llu reports\n", inputs.size(),
                static_cast<unsigned long long>(total_reports));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ca::telemetry::CliSession session(argc, argv);
    Args args = parseArgs(argc, argv, 1);
    try {
        return run(args);
    } catch (const ca::CaError &e) {
        std::fprintf(stderr, "ca_client: %s\n", e.what());
        return 1;
    }
}
