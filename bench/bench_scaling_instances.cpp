/**
 * @file
 * Reproduces §5.2's observation that "space savings can be directly
 * translated to speedup by matching against multiple NFA instances":
 * for each benchmark, how many independent copies of the automaton fit
 * in an 8-slice, 8-way cache budget under each design, and the aggregate
 * scan rate those copies deliver on independent streams.
 */
#include <cmath>
#include <cstdio>

#include "arch/system.h"
#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "workload/suite.h"

using namespace ca;
using namespace ca::bench;

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Instance scaling (8 slices x 8 ways): space -> throughput",
           cfg);

    const int kSlices = 8;
    TablePrinter t({"Benchmark", "CA_P inst", "CA_P Gb/s", "CA_S inst",
                    "CA_S Gb/s", "CA_S/CA_P agg"});
    double geo = 1.0;
    int counted = 0;
    for (const Benchmark &b : benchmarkSuite()) {
        std::fprintf(stderr, "[bench] %s\n", b.name.c_str());
        Nfa nfa = b.build(cfg.scale, cfg.seed);
        MappedAutomaton mp = mapPerformance(nfa);
        MappedAutomaton ms = mapSpace(nfa);
        InstanceScaling sp = scaleInstances(
            mp.design(), static_cast<int>(mp.numPartitions()), kSlices);
        InstanceScaling ss = scaleInstances(
            ms.design(), static_cast<int>(ms.numPartitions()), kSlices);
        double ratio = ss.aggregateGbps / sp.aggregateGbps;
        t.addRow({b.name, std::to_string(sp.instances),
                  fixed(sp.aggregateGbps, 1), std::to_string(ss.instances),
                  fixed(ss.aggregateGbps, 1), fixed(ratio, 2) + "x"});
        geo *= ratio;
        ++counted;
    }
    t.print();
    std::printf("\nGeomean aggregate CA_S/CA_P: %.2fx — the denser design "
                "overtakes the faster one\nwhen the cache is shared by "
                "many instances (%s).\n",
                std::pow(geo, 1.0 / counted),
                "the paper's multi-instance argument");
    return 0;
}
