/**
 * @file
 * Scored vs plain Levenshtein matching throughput (docs/SCORING.md).
 *
 *   bench_scored_match [--smoke] [--metrics-out F] [--trace-out F]
 *
 * The scoring subsystem's two performance promises, measured on the
 * bioinformatics workload family:
 *
 *   1. Scored matching is affordable: a weighted Levenshtein automaton
 *      (affine-gap DNA alignment) through each sim kernel and the
 *      functional MatchEngine, against the *same automaton with its
 *      weights stripped* — identical topology, so the table's
 *      scored-cost column isolates exactly what score accumulation
 *      adds per kernel.
 *
 *   2. Unscored automata pay nothing: the unscored arms run the exact
 *      pre-scoring kernels (Scored=false is an if-constexpr twin), and
 *      the guard section re-times the stripped automaton against a
 *      structurally identical one whose weight vectors are materialized
 *      but all-zero. hasWeights() is value-based, so both must take the
 *      unscored path; any daylight between them means the unscored path
 *      started keying on weight *presence* instead of weight *values*.
 *      Bar: <2%, matching the observability-plane precedent.
 *
 * Every timed run is cross-checked against the scored CPU oracle —
 * report streams must match exactly, scores included (the
 * tests/score_test.cpp contract, re-enforced at bench scale); any
 * mismatch exits nonzero.
 *
 * Environment knobs: CA_BENCH_SCALE (pattern count), CA_BENCH_BYTES
 * (stream bytes, floored at 512 KiB outside --smoke so the guard's
 * timed arms outlast timer noise; oracle cost scales with this too).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "match/match_engine.h"
#include "nfa/glushkov.h"
#include "score/bioseq.h"
#include "score/oracle.h"

using namespace ca;
using namespace ca::bench;

namespace {

double
mbps(size_t bytes, double wall_ms)
{
    return wall_ms > 0.0
        ? (static_cast<double>(bytes) / 1e6) / (wall_ms / 1e3)
        : 0.0;
}

struct TimedRun
{
    double mbps = 0.0;
    std::vector<Report> reports;
};

TimedRun
timeSim(const MappedAutomaton &mapped, const std::vector<uint8_t> &input,
        SimKernel kernel)
{
    SimOptions opts;
    opts.kernel = kernel;
    CacheAutomatonSim sim(mapped, opts);
    sim.run(input.data(), std::min<size_t>(input.size(), 4096)); // warm
    auto t0 = std::chrono::steady_clock::now();
    SimResult r = sim.run(input);
    auto t1 = std::chrono::steady_clock::now();
    TimedRun tr;
    tr.mbps = mbps(input.size(),
                   std::chrono::duration<double, std::milli>(t1 - t0)
                       .count());
    tr.reports = std::move(r.reports);
    return tr;
}

TimedRun
timeEngine(const std::shared_ptr<const match::MatchContext> &ctx,
           const std::vector<uint8_t> &input)
{
    match::MatchEngine warm(ctx, {});
    warm.feed(input.data(), std::min<size_t>(input.size(), 4096));
    match::MatchEngine eng(ctx, {});
    auto t0 = std::chrono::steady_clock::now();
    eng.feed(input.data(), input.size());
    auto t1 = std::chrono::steady_clock::now();
    TimedRun tr;
    tr.mbps = mbps(input.size(),
                   std::chrono::duration<double, std::milli>(t1 - t0)
                       .count());
    tr.reports = eng.takeReports();
    return tr;
}

/** Same topology, no weights: the plain-Levenshtein comparison arm. */
Nfa
stripWeights(const Nfa &src)
{
    Nfa out = src;
    for (StateId s = 0; s < out.numStates(); ++s) {
        out.state(s).outWeight.clear();
        out.state(s).startWeight = 0;
    }
    return out;
}

/** Weight vectors materialized but all-zero: still an unscored automaton. */
Nfa
zeroWeights(const Nfa &src)
{
    Nfa out = src;
    for (StateId s = 0; s < out.numStates(); ++s) {
        NfaState &st = out.state(s);
        st.outWeight.assign(st.out.size(), 0);
        st.startWeight = 0;
    }
    return out;
}

bool
checkOracle(const char *label, const std::vector<Report> &got,
            const std::vector<Report> &want)
{
    if (got == want)
        return true;
    std::fprintf(stderr,
                 "FAIL: %s diverged from the scored oracle "
                 "(%zu reports vs %zu expected)\n",
                 label, got.size(), want.size());
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    BenchConfig cfg = BenchConfig::fromEnv();
    size_t stream_bytes = cfg.streamBytes;
    int reps = 3;
    if (smoke) {
        cfg.scale = std::min(cfg.scale, 0.25);
        stream_bytes = std::min<size_t>(stream_bytes, 8u << 10);
        reps = 1;
    } else {
        // Sub-second arms drown the <2% guard in timer noise; floor the
        // stream so each timed run is long enough to resolve it.
        stream_bytes = std::max<size_t>(stream_bytes, 512u << 10);
    }

    int patterns = std::max(2, static_cast<int>(8 * cfg.scale));
    BioPatternOptions popt;
    popt.maxEdits = 2;
    popt.score = BioScoreParams{2, -1, -2, -1}; // affine-gap DNA
    BioWorkload w =
        makeBioWorkload(patterns, 12, popt, kDnaAlphabet, cfg.seed);
    std::vector<uint8_t> input =
        bioSampleInput(w, stream_bytes, 0.01, cfg.seed + 1);

    Nfa plain_nfa = stripWeights(w.nfa);
    MappedAutomaton scored_m = mapPerformance(w.nfa);
    MappedAutomaton plain_m = mapPerformance(plain_nfa);

    std::printf("Scored match — %d DNA patterns, k=%d affine gaps, "
                "%zu states, %.1f KiB stream\n\n",
                patterns, popt.maxEdits, scored_m.nfa().numStates(),
                static_cast<double>(input.size()) / 1024.0);

    std::vector<Report> scored_want = ScoredOracle(w.nfa).run(input);
    std::vector<Report> plain_want = ScoredOracle(plain_nfa).run(input);
    std::fprintf(stderr, "oracle: %zu scored reports\n",
                 scored_want.size());

    bool ok = true;
    TablePrinter t({"Kernel", "Plain MB/s", "Scored MB/s", "Score cost"});
    struct KernelArm
    {
        const char *name;
        SimKernel kernel;
    };
    const KernelArm kernels[] = {
        {"sparse", SimKernel::Sparse},
        {"dense", SimKernel::Dense},
        {"auto", SimKernel::Auto},
    };
    for (const KernelArm &k : kernels) {
        TimedRun plain = timeSim(plain_m, input, k.kernel);
        TimedRun scored = timeSim(scored_m, input, k.kernel);
        ok &= checkOracle((std::string("plain sim/") + k.name).c_str(),
                          plain.reports, plain_want);
        ok &= checkOracle((std::string("scored sim/") + k.name).c_str(),
                          scored.reports, scored_want);
        double cost_pct = plain.mbps > 0
            ? (1.0 - scored.mbps / plain.mbps) * 100.0
            : 0.0;
        t.addRow({k.name, fixed(plain.mbps, 1), fixed(scored.mbps, 1),
                  fixed(cost_pct, 1) + "%"});
    }
    {
        auto plain_ctx = std::make_shared<match::MatchContext>(
            std::make_shared<const MappedAutomaton>(
                mapPerformance(plain_nfa)));
        auto scored_ctx = std::make_shared<match::MatchContext>(
            std::make_shared<const MappedAutomaton>(
                mapPerformance(w.nfa)));
        TimedRun plain = timeEngine(plain_ctx, input);
        TimedRun scored = timeEngine(scored_ctx, input);
        ok &= checkOracle("plain engine", plain.reports, plain_want);
        ok &= checkOracle("scored engine", scored.reports, scored_want);
        double cost_pct = plain.mbps > 0
            ? (1.0 - scored.mbps / plain.mbps) * 100.0
            : 0.0;
        t.addRow({"engine", fixed(plain.mbps, 1), fixed(scored.mbps, 1),
                  fixed(cost_pct, 1) + "%"});
    }
    t.print();

    // Unscored-path overhead guard: stripped vs zero-materialized
    // weights, interleaved reps, best-rep estimator.
    Nfa zeroed_nfa = zeroWeights(w.nfa);
    MappedAutomaton zeroed_m = mapPerformance(zeroed_nfa);
    double best_stripped = 0.0, best_zeroed = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        TimedRun a = timeSim(plain_m, input, SimKernel::Auto);
        TimedRun b = timeSim(zeroed_m, input, SimKernel::Auto);
        ok &= checkOracle("guard stripped", a.reports, plain_want);
        ok &= checkOracle("guard zeroed", b.reports, plain_want);
        best_stripped = std::max(best_stripped, a.mbps);
        best_zeroed = std::max(best_zeroed, b.mbps);
    }
    double overhead_pct = best_stripped > 0
        ? (1.0 - best_zeroed / best_stripped) * 100.0
        : 0.0;
    std::printf("\nunscored-path overhead (zeroed vs stripped weights): "
                "%.2f%% (target < 2%%)\n",
                overhead_pct);
    CA_GAUGE_SET("ca.bench.scored_unscored_overhead_pct", overhead_pct);
    if (smoke)
        std::printf("(smoke run: plumbing check, not a measurement — "
                    "the oracle cross-checks still bind)\n");
    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: scored/plain report streams diverged from "
                     "the oracle\n");
        return 1;
    }
    return 0;
}
