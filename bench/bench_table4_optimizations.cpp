/**
 * @file
 * Reproduces Table 4: the impact of sense-amplifier cycling and of reusing
 * slower H-Bus wires on the achievable frequency of both designs.
 */
#include <algorithm>
#include <cstdio>

#include "arch/design.h"
#include "arch/sram_timing.h"
#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

namespace {

/** Paper's conservative "operated" derating: the paper operates 0.85-0.9x
 *  below the max stage-limited frequency; we print the raw max alongside a
 *  derated figure rounded the way §5.5 quotes it. */
double
achievedGHz(const Design &d, const TimingOptions &opts)
{
    return computeTiming(d, opts).maxFreqHz() / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Table 4: impact of optimizations and parameters", cfg);

    TablePrinter t({"Design", "Achieved", "w/o SA cycling", "with H-Bus"});
    for (const Design &d : {designCaP(), designCaS()}) {
        TimingOptions base;
        TimingOptions no_sa;
        no_sa.senseAmpCycling = false;
        TimingOptions hbus;
        hbus.useHBusWires = true;
        t.addRow({d.name,
                  fixed(d.operatingFreqHz / 1e9, 1) + " GHz (max " +
                      fixed(achievedGHz(d, base), 2) + ")",
                  fixed(achievedGHz(d, no_sa), 2) + " GHz",
                  fixed(achievedGHz(d, hbus), 2) + " GHz"});
    }
    t.print();

    std::printf("\nPaper reference: CA_P 2 GHz / 1 GHz / 1.5 GHz; "
                "CA_S 1.2 GHz / 500 MHz / 1 GHz.\n"
                "(w/o SA cycling & H-Bus columns are max stage-limited "
                "frequencies; the paper\nquotes operated points derated "
                "below these.)\n");

    // The Figure 4 control-signal schedules behind the first two columns.
    std::printf("\n-- Optimized read sequence (Figure 4, 4-way mux) --\n%s",
                formatReadSequence(planArrayRead(4, true)).c_str());
    std::printf("\n-- Baseline read sequence --\n%s",
                formatReadSequence(planArrayRead(4, false)).c_str());
    return 0;
}
