/**
 * @file
 * Network service throughput: loopback connections × streams sweep.
 *
 * The paper's deployment model (§2.8-2.9) feeds one shared accelerator
 * from many independent input FIFOs; src/net puts those FIFOs on TCP
 * sockets. This bench drives a loopback MatchServer with a load
 * generator: C client connections, each multiplexing S streams, push a
 * fixed total traffic volume in MTU-sized DATA frames. Rows report
 * aggregate goodput (input bits through the matcher / wall seconds) and
 * the p50/p99 FLUSH round-trip latency — one full frame → simulate →
 * reports → ack cycle, i.e. the service's end-to-end pipeline latency
 * under that load.
 *
 * Environment knobs:
 *   CA_BENCH_BYTES — total traffic volume (default 4 MiB).
 *   CA_BENCH_SCALE — ruleset size factor (default 1.0 = 200 rules).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "net/client.h"
#include "net/match_server.h"
#include "nfa/glushkov.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

using namespace ca;
using namespace ca::bench;

namespace {

struct SweepResult
{
    double wallMs = 0.0;
    double aggregateGbps = 0.0;
    uint64_t reports = 0;
    double p50FlushMs = 0.0;
    double p99FlushMs = 0.0;
};

SweepResult
runSweep(net::MatchServer &server,
         const std::vector<std::vector<uint8_t>> &streams,
         size_t connections)
{
    const size_t per_conn = streams.size() / connections;
    uint64_t total_bytes = 0;
    for (const auto &s : streams)
        total_bytes += s.size();

    // One shared recorder: Histogram updates are atomic, so generator
    // threads record without a latency vector + mutex of their own.
    LatencyRecorder flush_lat;
    std::atomic<uint64_t> reports{0};

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> generators;
    for (size_t cn = 0; cn < connections; ++cn) {
        generators.emplace_back([&, cn] {
            net::MatchClient client;
            client.connect("127.0.0.1", server.port());
            std::vector<uint32_t> ids(per_conn);
            for (size_t s = 0; s < per_conn; ++s)
                ids[s] = client.openStream();

            // Round-robin MTU-sized chunks across this connection's
            // streams; a timed FLUSH every ~64 KiB per stream (or a
            // quarter of a short stream) samples the end-to-end
            // pipeline latency under load.
            constexpr size_t kMtu = 1500;
            const size_t kFlushEvery = std::max<size_t>(
                kMtu, std::min<size_t>(64u << 10,
                                       streams[cn * per_conn].size() / 4));
            std::vector<size_t> pos(per_conn, 0);
            std::vector<size_t> since_flush(per_conn, 0);
            for (bool any = true; any;) {
                any = false;
                for (size_t s = 0; s < per_conn; ++s) {
                    const auto &in = streams[cn * per_conn + s];
                    if (pos[s] >= in.size())
                        continue;
                    any = true;
                    size_t n = std::min(kMtu, in.size() - pos[s]);
                    client.send(ids[s], in.data() + pos[s], n);
                    pos[s] += n;
                    since_flush[s] += n;
                    if (since_flush[s] >= kFlushEvery) {
                        since_flush[s] = 0;
                        auto f0 = std::chrono::steady_clock::now();
                        client.flush(ids[s]);
                        auto f1 = std::chrono::steady_clock::now();
                        flush_lat.recordMs(
                            std::chrono::duration<double, std::milli>(
                                f1 - f0)
                                .count());
                    }
                }
            }
            for (size_t s = 0; s < per_conn; ++s) {
                net::StreamSummary sum = client.closeStream(ids[s]);
                reports += sum.reports;
            }
            client.close();
        });
    }
    for (auto &t : generators)
        t.join();
    auto t1 = std::chrono::steady_clock::now();

    SweepResult r;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.aggregateGbps = static_cast<double>(total_bytes) * 8.0 /
        (r.wallMs * 1e-3) / 1e9;
    r.reports = reports.load();
    r.p50FlushMs = flush_lat.p50Ms();
    r.p99FlushMs = flush_lat.p99Ms();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    size_t total_bytes = cfg.streamBytes;
    if (total_bytes == (64u << 10)) // bench_common default: too small here
        total_bytes = 4u << 20;

    int rules_n = static_cast<int>(200 * cfg.scale);
    std::vector<std::string> rules = genSnortRules(rules_n, cfg.seed);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton mapped = mapPerformance(nfa);
    std::printf("Network service throughput (loopback TCP) — %d "
                "Snort-like rules, %zu states, %zu partitions, %.1f MiB "
                "total traffic\n\n",
                rules_n, mapped.nfa().numStates(), mapped.numPartitions(),
                static_cast<double>(total_bytes) / (1 << 20));

    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns.assign(
        rules.begin(), rules.begin() + std::min<size_t>(rules.size(), 32));
    spec.plantsPer4k = 2.0;

    net::MatchServerOptions opts;
    opts.maxConnections = 32;
    opts.stream.workers = std::max<size_t>(
        2, std::thread::hardware_concurrency() / 2);
    net::MatchServer server(mapped, opts);

    TablePrinter t({"Conns", "Streams/conn", "Wall ms", "Agg Gb/s",
                    "Reports", "p50 flush ms", "p99 flush ms"});
    for (size_t connections : {size_t{1}, size_t{4}, size_t{16}}) {
        for (size_t streams_per : {size_t{1}, size_t{4}}) {
            size_t n_streams = connections * streams_per;
            size_t per = total_bytes / n_streams;
            std::vector<std::vector<uint8_t>> streams;
            for (size_t i = 0; i < n_streams; ++i)
                streams.push_back(buildInput(spec, per, cfg.seed + i));
            std::fprintf(stderr, "[bench] %zu conns x %zu streams\n",
                         connections, streams_per);
            SweepResult r = runSweep(server, streams, connections);
            t.addRow({std::to_string(connections),
                      std::to_string(streams_per), fixed(r.wallMs, 1),
                      fixed(r.aggregateGbps, 3),
                      std::to_string(r.reports), fixed(r.p50FlushMs, 3),
                      fixed(r.p99FlushMs, 3)});
        }
    }
    server.stop();
    t.print();

    runtime::ServerStats st = server.streamStats();
    net::NetServerStats ns = server.stats();
    std::printf("\nserver totals: %llu sessions, %llu symbols, %llu "
                "reports, %llu context switches, %llu frames in, %llu "
                "frames out\n",
                static_cast<unsigned long long>(st.sessionsOpened),
                static_cast<unsigned long long>(st.symbols),
                static_cast<unsigned long long>(st.reports),
                static_cast<unsigned long long>(st.contextSwitches),
                static_cast<unsigned long long>(ns.framesIn),
                static_cast<unsigned long long>(ns.framesOut));
    std::printf("(aggregate = total traffic bits / wall seconds; flush "
                "RTT = DATA drained + reports delivered + ack)\n");
    return 0;
}
