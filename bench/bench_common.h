/**
 * @file
 * Shared infrastructure for the table/figure reproduction binaries.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation (§5): it builds the 20-benchmark suite, maps it with both
 * design policies, optionally simulates the benchmark input stream, and
 * prints the same rows/series the paper reports, alongside the published
 * values where they exist.
 *
 * Environment knobs:
 *   CA_BENCH_SCALE  — suite scale factor (default 1.0 = published sizes).
 *   CA_BENCH_BYTES  — simulated stream bytes (default 64 KiB; activity
 *                     averages converge well before that).
 *   CA_FULL_INPUT=1 — use the paper's 10 MB streams instead.
 */
#ifndef CA_BENCH_BENCH_COMMON_H
#define CA_BENCH_BENCH_COMMON_H

#include <optional>
#include <string>
#include <vector>

#include "compiler/mapping.h"
#include "sim/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "workload/suite.h"

namespace ca::bench {

/**
 * Drop one of these at the top of every bench main(): it implements the
 * standard `--metrics-out <file.json|.csv>` / `--trace-out <file.json>`
 * flags, runtime-enables telemetry when either is passed, and writes the
 * artifacts when main() returns — so every benchmark run can produce
 * machine-readable metrics alongside its stdout table.
 */
using TelemetrySession = ca::telemetry::CliSession;

/** Everything a table needs about one benchmark under one design. */
struct DesignRun
{
    size_t states = 0;
    size_t connectedComponents = 0;
    size_t largestComponent = 0;
    size_t partitions = 0;
    double utilizationMB = 0.0;
    double avgActiveStates = 0.0;
    ActivityStats activity;
    size_t reports = 0;
    size_t budgetViolations = 0;
};

/** One benchmark's measured results under both designs. */
struct BenchmarkRun
{
    const Benchmark *spec = nullptr;
    DesignRun perf;
    DesignRun space;
};

/** Config resolved from the environment. */
struct BenchConfig
{
    double scale = 1.0;
    size_t streamBytes = 64 << 10;
    uint64_t seed = kDefaultRuleSeed;

    static BenchConfig fromEnv();
};

/**
 * Builds, maps, and (optionally) simulates every suite benchmark.
 * Progress notes go to stderr so stdout stays a clean table.
 */
std::vector<BenchmarkRun> runSuite(const BenchConfig &cfg,
                                   bool simulate);

/** Fixed-width table printer. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Renders to stdout with a separator under the header. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Latency series on the telemetry histogram (telemetry/metrics.h):
 * samples land in microseconds in a log2 Histogram — atomic, so
 * generator threads share one recorder without a mutex or a
 * sample vector — and quantiles come back through the histogram's
 * percentile accessors. Replaces the ad-hoc sort-a-vector percentile
 * math the bench binaries used to carry (log2 buckets bound the error
 * to the sample's power-of-two bracket, plenty for a latency table).
 */
class LatencyRecorder
{
  public:
    /** Records one sample measured in milliseconds. */
    void
    recordMs(double ms)
    {
        double us = ms * 1e3;
        hist_.observe(us <= 0 ? 0 : static_cast<uint64_t>(us + 0.5));
    }

    /** Quantile @p q in [0,1], in milliseconds. */
    double
    percentileMs(double q) const
    {
        return hist_.percentile(q) / 1e3;
    }

    double p50Ms() const { return percentileMs(0.50); }
    double p99Ms() const { return percentileMs(0.99); }
    double meanMs() const { return hist_.mean() / 1e3; }
    uint64_t samples() const { return hist_.count(); }
    void reset() { hist_.reset(); }

  private:
    telemetry::Histogram hist_;
};

/** Geometric mean of a positive series. */
double geomean(const std::vector<double> &values);

/** Prints the standard bench banner (title + config). */
void banner(const std::string &title, const BenchConfig &cfg);

} // namespace ca::bench

#endif // CA_BENCH_BENCH_COMMON_H
