/**
 * @file
 * Ablation of the compiler's design choices (not a paper table; §3's
 * algorithmic claims made measurable):
 *
 *  1. The CA_S optimization pipeline — how much each stage (pruning,
 *     prefix merge, suffix merge) contributes to state reduction.
 *  2. Capacity peeling vs plain balanced splitting — packing density and
 *     edge cut of oversized components.
 *  3. Greedy component packing vs one-CC-per-partition — the value of
 *     §3.2's bin packing.
 *
 * A subset of benchmarks keeps the runtime low; CA_BENCH_SCALE applies.
 */
#include <cstdio>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "nfa/analysis.h"
#include "nfa/transform.h"
#include "partition/graph.h"
#include "partition/partitioner.h"
#include "workload/suite.h"

using namespace ca;
using namespace ca::bench;

namespace {

const char *kSubset[] = {"Bro217", "Brill", "EntityResolution", "SPM",
                         "Protomata"};

void
ablationOptimizationPipeline(const BenchConfig &cfg)
{
    std::printf("-- (1) Space-pipeline stages: states remaining --\n");
    TablePrinter t({"Benchmark", "Baseline", "+prune", "+prefix-merge",
                    "+suffix-merge", "Total reduction"});
    for (const char *name : kSubset) {
        const Benchmark &b = findBenchmark(name);
        Nfa nfa = b.build(cfg.scale, cfg.seed);
        size_t base = nfa.numStates();
        removeUnreachable(nfa);
        removeDead(nfa);
        size_t pruned = nfa.numStates();
        mergePrefixes(nfa);
        size_t prefixed = nfa.numStates();
        mergeSuffixes(nfa);
        size_t suffixed = nfa.numStates();
        t.addRow({name, std::to_string(base), std::to_string(pruned),
                  std::to_string(prefixed), std::to_string(suffixed),
                  fixed(100.0 * (1.0 - double(suffixed) / double(base)),
                        1) + "%"});
    }
    t.print();
}

void
ablationPeeling(const BenchConfig &cfg)
{
    std::printf("\n-- (2) Component splitting: balanced vs peel --\n");
    TablePrinter t({"Benchmark", "CC states", "k(bal)", "cut(bal)",
                    "k(peel)", "cut(peel)", "fill(bal)", "fill(peel)"});
    for (const char *name : {"Brill", "EntityResolution", "SPM"}) {
        const Benchmark &b = findBenchmark(name);
        Nfa nfa = b.build(cfg.scale, cfg.seed);
        optimizeForSpace(nfa);
        ComponentInfo cc = connectedComponents(nfa);
        // The largest component is the splitting stress case.
        size_t big = 0;
        for (size_t c = 0; c < cc.numComponents(); ++c)
            if (cc.members[c].size() > cc.members[big].size())
                big = c;
        const auto &members = cc.members[big];
        if (members.size() <= 256)
            continue;
        Graph g = Graph::fromNfaComponent(nfa, members);

        PartitionOptions bal;
        bal.partCapacity = 256;
        int32_t k = static_cast<int32_t>((members.size() + 255) / 256);
        PartitionResult rb = partitionGraph(g, k, bal);

        PartitionOptions peel = bal;
        peel.peelToCapacity = true;
        PartitionResult rp = partitionGraph(g, k, peel);

        auto fill = [&](const PartitionResult &r) {
            // Mean occupancy of all-but-the-last (remainder) part.
            double used = 0;
            int full_parts = 0;
            for (int64_t w : r.partWeights) {
                if (w > 0) {
                    used += static_cast<double>(w);
                    ++full_parts;
                }
            }
            return 100.0 * used / (256.0 * full_parts);
        };
        t.addRow({name, std::to_string(members.size()),
                  std::to_string(rb.k), std::to_string(rb.edgeCut),
                  std::to_string(rp.k), std::to_string(rp.edgeCut),
                  fixed(fill(rb), 1) + "%", fixed(fill(rp), 1) + "%"});
    }
    t.print();
    std::printf("(peel trades a modest cut increase for near-100%% "
                "partition fill)\n");
}

void
ablationPacking(const BenchConfig &cfg)
{
    std::printf("\n-- (3) Component packing: greedy bins vs 1 CC per "
                "partition --\n");
    TablePrinter t({"Benchmark", "CCs", "Greedy partitions",
                    "Naive partitions", "Cache saved"});
    for (const char *name : kSubset) {
        const Benchmark &b = findBenchmark(name);
        Nfa nfa = b.build(cfg.scale, cfg.seed);
        MappedAutomaton m = mapPerformance(nfa);
        ComponentInfo cc = connectedComponents(nfa);
        // Naive: every component (or 256-state chunk of one) gets its own
        // partition.
        size_t naive = 0;
        for (const auto &mem : cc.members)
            naive += (mem.size() + 255) / 256;
        double saved = 100.0 *
            (1.0 - double(m.numPartitions()) / double(naive));
        t.addRow({name, std::to_string(cc.numComponents()),
                  std::to_string(m.numPartitions()), std::to_string(naive),
                  fixed(saved, 1) + "%"});
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Ablation: mapping-compiler design choices", cfg);
    ablationOptimizationPipeline(cfg);
    ablationPeeling(cfg);
    ablationPacking(cfg);
    return 0;
}
