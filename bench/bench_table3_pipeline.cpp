/**
 * @file
 * Reproduces Table 3: pipeline stage delays and operating frequencies for
 * the performance- and space-optimized designs.
 */
#include <cstdio>

#include "arch/design.h"
#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Table 3: pipeline stage delays and operating frequency", cfg);

    TablePrinter t({"Design", "State-Match", "G-Switch", "L-Switch",
                    "Max Freq", "Operated"});
    for (const Design &d : {designCaP(), designCaS()}) {
        PipelineTiming timing = computeTiming(d);
        t.addRow({d.name, fixed(timing.stateMatchPs, 0) + " ps",
                  fixed(timing.gSwitchPs, 0) + " ps",
                  fixed(timing.lSwitchPs, 0) + " ps",
                  fixed(timing.maxFreqHz() / 1e9, 2) + " GHz",
                  fixed(d.operatingFreqHz / 1e9, 1) + " GHz"});
    }
    t.print();

    std::printf("\nPaper reference: CA_P 438/227/263 ps, 2.3 GHz max, "
                "2 GHz operated;\n"
                "CA_S 687/468/304 ps, 1.4 GHz max, 1.2 GHz operated.\n");
    return 0;
}
