/**
 * @file
 * Reproduces Table 1: benchmark characteristics (states, connected
 * components, largest component, average active states) for both the
 * performance-optimized and space-optimized automata, with the paper's
 * published values printed alongside.
 */
#include <cstdio>

#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Table 1: benchmark characteristics (measured vs paper)", cfg);

    auto runs = runSuite(cfg, /*simulate=*/true);

    std::printf("-- Performance optimized --\n");
    TablePrinter perf({"Benchmark", "States", "(paper)", "CCs", "(paper)",
                       "LargestCC", "(paper)", "AvgActive", "(paper)"});
    for (const auto &r : runs) {
        perf.addRow({r.spec->name, std::to_string(r.perf.states),
                     std::to_string(r.spec->paperPerf.states),
                     std::to_string(r.perf.connectedComponents),
                     std::to_string(r.spec->paperPerf.connectedComponents),
                     std::to_string(r.perf.largestComponent),
                     std::to_string(r.spec->paperPerf.largestComponent),
                     fixed(r.perf.avgActiveStates, 2),
                     fixed(r.spec->paperPerf.avgActiveStates, 2)});
    }
    perf.print();

    std::printf("\n-- Space optimized --\n");
    TablePrinter space({"Benchmark", "States", "(paper)", "CCs", "(paper)",
                        "LargestCC", "(paper)", "AvgActive", "(paper)"});
    for (const auto &r : runs) {
        space.addRow({r.spec->name, std::to_string(r.space.states),
                      std::to_string(r.spec->paperSpace.states),
                      std::to_string(r.space.connectedComponents),
                      std::to_string(
                          r.spec->paperSpace.connectedComponents),
                      std::to_string(r.space.largestComponent),
                      std::to_string(r.spec->paperSpace.largestComponent),
                      fixed(r.space.avgActiveStates, 2),
                      fixed(r.spec->paperSpace.avgActiveStates, 2)});
    }
    space.print();
    return 0;
}
