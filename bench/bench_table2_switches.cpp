/**
 * @file
 * Reproduces Table 2: crossbar switch parameters (size, delay, energy,
 * area, count) for the L-switch and G-switches of both designs.
 */
#include <cstdio>

#include "arch/design.h"
#include "arch/switch_model.h"
#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

namespace {

void
row(TablePrinter &t, const std::string &design, const SwitchSpec &s,
    int count)
{
    t.addRow({design, s.name,
              std::to_string(s.inputs) + "x" + std::to_string(s.outputs),
              fixed(s.delayPs, 1) + " ps",
              fixed(s.energyPjPerBit, 3) + " pJ/bit",
              fixed(s.areaMm2, 4) + " mm2", std::to_string(count)});
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Table 2: switch parameters", cfg);

    TablePrinter t({"Design", "Switch", "Size", "Delay", "Energy", "Area",
                    "Count/32K-STE"});
    Design cap = designCaP();
    row(t, "CA_P", cap.lSwitch, cap.lSwitchesPer32k);
    row(t, "CA_P", cap.gSwitch1, cap.g1SwitchesPer32k);
    Design cas = designCaS();
    row(t, "CA_S", cas.lSwitch, cas.lSwitchesPer32k);
    row(t, "CA_S", cas.gSwitch1, cas.g1SwitchesPer32k);
    row(t, "CA_S", *cas.gSwitch4, cas.g4SwitchesPer32k);
    t.print();

    std::printf("\nPaper reference: L 280x256 163.5ps/0.191pJ/0.033mm2; "
                "G1(CA_P) 128x128 128ps/0.16pJ/0.011mm2;\n"
                "G1(CA_S) 256x256 163ps/0.19pJ/0.032mm2; "
                "G4 512x512 327ps/0.381pJ/0.1293mm2.\n");
    return 0;
}
