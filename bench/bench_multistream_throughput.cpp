/**
 * @file
 * Multi-stream runtime throughput: worker count × session count sweep.
 *
 * The paper's §2.8-2.9 system integration exists so one Cache Automaton
 * can time-multiplex many concurrent input streams. This bench measures
 * the software runtime that implements that model (src/runtime): a fixed
 * total volume of synthetic network traffic is split evenly across N
 * sessions, pumped by N producer threads, and simulated by W workers
 * sharing one mapped automaton. Rows report wall-clock aggregate
 * simulation throughput (these are *simulator* rates — the modeled
 * hardware line rate is bench_fig7/bench_scaling_instances' job) plus
 * the scheduler's context-switch count.
 *
 * Environment knobs:
 *   CA_BENCH_BYTES — total traffic volume (default 4 MiB).
 *   CA_BENCH_SCALE — ruleset size factor (default 1.0 = 200 rules).
 */
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "nfa/glushkov.h"
#include "runtime/report_sink.h"
#include "runtime/stream_server.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

using namespace ca;
using namespace ca::bench;

namespace {

struct SweepResult
{
    double wallMs = 0.0;
    double aggregateGbps = 0.0;
    uint64_t reports = 0;
    uint64_t contextSwitches = 0;
    uint64_t slices = 0;
};

SweepResult
runSweep(const MappedAutomaton &mapped,
         const std::vector<std::vector<uint8_t>> &streams, size_t workers)
{
    runtime::StreamServerOptions opts;
    opts.workers = workers;
    opts.sessionQueueDepth = 8;
    opts.sliceSymbols = 32 << 10;
    runtime::CountingSink sink;

    uint64_t total_bytes = 0;
    for (const auto &s : streams)
        total_bytes += s.size();

    auto t0 = std::chrono::steady_clock::now();
    {
        runtime::StreamServer server(mapped, opts);
        std::vector<runtime::StreamSession *> sessions;
        for (size_t i = 0; i < streams.size(); ++i)
            sessions.push_back(&server.open(sink));
        std::vector<std::thread> producers;
        for (size_t i = 0; i < streams.size(); ++i) {
            producers.emplace_back([&, i] {
                const auto &in = streams[i];
                // pcap-ish framing: submit in MTU-sized chunks.
                constexpr size_t kMtu = 1500;
                for (size_t pos = 0; pos < in.size(); pos += kMtu)
                    sessions[i]->submit(in.data() + pos,
                                        std::min(kMtu, in.size() - pos));
                sessions[i]->close();
            });
        }
        for (auto &t : producers)
            t.join();

        auto t1 = std::chrono::steady_clock::now();
        SweepResult r;
        r.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        r.aggregateGbps = static_cast<double>(total_bytes) * 8.0 /
            (r.wallMs * 1e-3) / 1e9;
        runtime::ServerStats st = server.stats();
        r.reports = st.reports;
        r.contextSwitches = st.contextSwitches;
        r.slices = st.slices;
        return r;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    size_t total_bytes = cfg.streamBytes;
    if (total_bytes == (64u << 10)) // bench_common default: too small here
        total_bytes = 4u << 20;

    int rules_n = static_cast<int>(200 * cfg.scale);
    std::vector<std::string> rules = genSnortRules(rules_n, cfg.seed);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton mapped = mapPerformance(nfa);
    std::printf("Multi-stream runtime throughput — %d Snort-like rules, "
                "%zu states, %zu partitions, %.1f MiB total traffic\n\n",
                rules_n, mapped.nfa().numStates(), mapped.numPartitions(),
                static_cast<double>(total_bytes) / (1 << 20));

    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns.assign(
        rules.begin(), rules.begin() + std::min<size_t>(rules.size(), 32));
    spec.plantsPer4k = 2.0;

    TablePrinter t({"Workers", "Sessions", "Wall ms", "Agg Gb/s",
                    "Reports", "Slices", "Ctx switches"});
    double base_gbps = 0.0;
    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        for (size_t n_sessions : {size_t{1}, size_t{4}, size_t{16}}) {
            std::vector<std::vector<uint8_t>> streams;
            size_t per = total_bytes / n_sessions;
            for (size_t i = 0; i < n_sessions; ++i)
                streams.push_back(buildInput(spec, per, cfg.seed + i));
            std::fprintf(stderr, "[bench] %zu workers x %zu sessions\n",
                         workers, n_sessions);
            SweepResult r = runSweep(mapped, streams, workers);
            if (base_gbps == 0.0)
                base_gbps = r.aggregateGbps;
            t.addRow({std::to_string(workers),
                      std::to_string(n_sessions), fixed(r.wallMs, 1),
                      fixed(r.aggregateGbps, 3),
                      std::to_string(r.reports),
                      std::to_string(r.slices),
                      std::to_string(r.contextSwitches)});
        }
    }
    t.print();
    std::printf("\n(aggregate = total traffic bits / wall seconds across "
                "all sessions;\n 1-worker 1-session row is the "
                "single-threaded baseline)\n");
    return 0;
}
