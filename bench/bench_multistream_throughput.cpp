/**
 * @file
 * Multi-stream runtime throughput: worker count × session count sweep.
 *
 * The paper's §2.8-2.9 system integration exists so one Cache Automaton
 * can time-multiplex many concurrent input streams. This bench measures
 * the software runtime that implements that model (src/runtime): a fixed
 * total volume of synthetic network traffic is split evenly across N
 * sessions, pumped by N producer threads, and simulated by W workers
 * sharing one mapped automaton. Rows report wall-clock aggregate
 * simulation throughput (these are *simulator* rates — the modeled
 * hardware line rate is bench_fig7/bench_scaling_instances' job) plus
 * the scheduler's context-switch count.
 *
 * Usage:
 *   bench_multistream_throughput [--parallel] [--metrics-out F]
 *
 *   --parallel  also sweep chunk-parallel matching (docs/MATCH.md):
 *               rows with Par >= 2 give the server a shared
 *               ParallelMatcher of that degree, producers switch from
 *               MTU framing to 256 KiB reads (the file-scan shape the
 *               matcher exists for), and the table adds the speculation
 *               hit/replay split. The few-session rows are where it
 *               pays — parallelism from one stream instead of from
 *               session count.
 *
 * Environment knobs:
 *   CA_BENCH_BYTES — total traffic volume (default 4 MiB).
 *   CA_BENCH_SCALE — ruleset size factor (default 1.0 = 200 rules).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "nfa/glushkov.h"
#include "runtime/report_sink.h"
#include "runtime/stream_server.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

using namespace ca;
using namespace ca::bench;

namespace {

struct SweepResult
{
    double wallMs = 0.0;
    double aggregateGbps = 0.0;
    uint64_t reports = 0;
    uint64_t contextSwitches = 0;
    uint64_t slices = 0;
    uint64_t specHits = 0;
    uint64_t specReplays = 0;
};

SweepResult
runSweep(const MappedAutomaton &mapped,
         const std::vector<std::vector<uint8_t>> &streams, size_t workers,
         size_t parallel)
{
    runtime::StreamServerOptions opts;
    opts.workers = workers;
    opts.sessionQueueDepth = 8;
    opts.sliceSymbols = 32 << 10;
    opts.matchParallelism = parallel;
    opts.matchParallelMinBytes = 64 << 10;
    runtime::CountingSink sink;

    uint64_t total_bytes = 0;
    for (const auto &s : streams)
        total_bytes += s.size();

    auto t0 = std::chrono::steady_clock::now();
    {
        runtime::StreamServer server(mapped, opts);
        std::vector<runtime::StreamSession *> sessions;
        for (size_t i = 0; i < streams.size(); ++i)
            sessions.push_back(&server.open(sink));
        std::vector<std::thread> producers;
        for (size_t i = 0; i < streams.size(); ++i) {
            producers.emplace_back([&, i] {
                const auto &in = streams[i];
                // pcap-ish MTU framing normally; big file-scan reads
                // when the chunk-parallel matcher is in play (it only
                // engages once a slice gathers matchParallelMinBytes).
                const size_t chunk = parallel > 1 ? 256u << 10 : 1500;
                for (size_t pos = 0; pos < in.size(); pos += chunk)
                    sessions[i]->submit(in.data() + pos,
                                        std::min(chunk, in.size() - pos));
                sessions[i]->close();
            });
        }
        for (auto &t : producers)
            t.join();

        auto t1 = std::chrono::steady_clock::now();
        SweepResult r;
        r.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        r.aggregateGbps = static_cast<double>(total_bytes) * 8.0 /
            (r.wallMs * 1e-3) / 1e9;
        runtime::ServerInspect in = server.inspect();
        r.reports = in.totals.reports;
        r.contextSwitches = in.totals.contextSwitches;
        r.slices = in.totals.slices;
        r.specHits = in.match.speculationHits;
        r.specReplays = in.match.replays;
        return r;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    bool parallel_sweep = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--parallel") == 0)
            parallel_sweep = true;

    BenchConfig cfg = BenchConfig::fromEnv();
    size_t total_bytes = cfg.streamBytes;
    if (total_bytes == (64u << 10)) // bench_common default: too small here
        total_bytes = 4u << 20;

    int rules_n = static_cast<int>(200 * cfg.scale);
    std::vector<std::string> rules = genSnortRules(rules_n, cfg.seed);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton mapped = mapPerformance(nfa);
    std::printf("Multi-stream runtime throughput — %d Snort-like rules, "
                "%zu states, %zu partitions, %.1f MiB total traffic\n\n",
                rules_n, mapped.nfa().numStates(), mapped.numPartitions(),
                static_cast<double>(total_bytes) / (1 << 20));

    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns.assign(
        rules.begin(), rules.begin() + std::min<size_t>(rules.size(), 32));
    spec.plantsPer4k = 2.0;

    TablePrinter t({"Workers", "Par", "Sessions", "Wall ms", "Agg Gb/s",
                    "Reports", "Slices", "Ctx switches", "Spec h/r"});
    auto addRow = [&](size_t workers, size_t parallel, size_t n_sessions) {
        std::vector<std::vector<uint8_t>> streams;
        size_t per = total_bytes / n_sessions;
        for (size_t i = 0; i < n_sessions; ++i)
            streams.push_back(buildInput(spec, per, cfg.seed + i));
        std::fprintf(stderr, "[bench] %zu workers x %zu sessions%s\n",
                     workers, n_sessions,
                     parallel > 1 ? " (chunk-parallel)" : "");
        SweepResult r = runSweep(mapped, streams, workers, parallel);
        std::string spec_col = parallel > 1
            ? std::to_string(r.specHits) + "/" +
                std::to_string(r.specReplays)
            : "-";
        t.addRow({std::to_string(workers), std::to_string(parallel),
                  std::to_string(n_sessions), fixed(r.wallMs, 1),
                  fixed(r.aggregateGbps, 3), std::to_string(r.reports),
                  std::to_string(r.slices),
                  std::to_string(r.contextSwitches), spec_col});
    };

    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}})
        for (size_t n_sessions : {size_t{1}, size_t{4}, size_t{16}})
            addRow(workers, 0, n_sessions);
    if (parallel_sweep)
        // Chunk parallelism is the few-session story: one stream cannot
        // use more workers, but it can use more chunks.
        for (size_t degree : {size_t{2}, size_t{4}, size_t{8}})
            for (size_t n_sessions : {size_t{1}, size_t{4}})
                addRow(1, degree, n_sessions);
    t.print();
    std::printf("\n(aggregate = total traffic bits / wall seconds across "
                "all sessions;\n 1-worker 1-session row is the "
                "single-threaded baseline%s)\n",
                parallel_sweep
                    ? ";\n Par>=2 rows route big reads through the "
                      "shared ParallelMatcher —\n Spec h/r = "
                      "speculation hits / replays (docs/MATCH.md)"
                    : "");
    return 0;
}
