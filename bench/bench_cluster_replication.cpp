/**
 * @file
 * Cluster ruleset distribution: peer-pull vs cold-compile vs warm cache.
 *
 *   bench_cluster_replication [--smoke] [--metrics-out F]
 *
 * The cluster plane (docs/CLUSTER.md) gives a new node three ways to
 * obtain a serving automaton: compile the ruleset from scratch, load it
 * from a warm local artifact cache, or pull the artifact by fingerprint
 * from a peer that already holds it. This bench times all three on the
 * same rulesets over a loopback donor server:
 *
 *   cold ms — regex compile + map + config image (the path replication
 *             exists to avoid),
 *   pull ms — Replicator::fetch over TCP, chunked + CRC-covered +
 *             end-to-end CAAF/fingerprint validation, published into a
 *             cold fingerprint-addressed cache (ArtifactCache::getOrFetch
 *             remote-fill),
 *   warm ms — getOrFetch again, now a pure local cache hit.
 *
 * Rows also report the artifact size and effective pull bandwidth.
 * Results land in the telemetry registry as
 * ca.cluster.bench.<rules>.{cold_ms,pull_ms,warm_ms} gauges for
 * --metrics-out export. --smoke runs one small ruleset as a plumbing
 * check (used by scripts/ci.sh).
 *
 * Environment knobs:
 *   CA_BENCH_SCALE — ruleset size factor (default 1.0).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "bench_common.h"
#include "cluster/replication.h"
#include "core/string_utils.h"
#include "net/match_server.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"
#include "persist/cache.h"
#include "sim/engine.h"
#include "workload/rulegen.h"

using namespace ca;
using namespace ca::bench;

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    ca::telemetry::setEnabled(true);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Cluster replication: peer pull vs cold compile vs warm cache",
           cfg);

    std::vector<size_t> sizes = smoke
        ? std::vector<size_t>{32}
        : std::vector<size_t>{50, 200, 800};

    std::filesystem::path dir = std::filesystem::temp_directory_path() /
        ("ca_bench_cluster." + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);

    TablePrinter t({"Rules", "States", "Artifact KB", "Cold ms",
                    "Pull ms", "Warm ms", "Pull MB/s"});
    std::vector<double> pull_speedups;

    for (size_t rules : sizes) {
        std::fprintf(stderr, "[cluster] %zu rules...\n", rules);
        int num_rules = std::max(
            4, static_cast<int>(static_cast<double>(rules) * cfg.scale));

        // Cold: the full per-node pipeline a peer pull replaces.
        auto t0 = std::chrono::steady_clock::now();
        Nfa nfa = compileRuleset(genSnortRules(num_rules, cfg.seed));
        MappedAutomaton mapped = mapPerformance(nfa);
        ConfigImage image = buildConfigImage(mapped);
        double cold_ms = msSince(t0);

        // Donor: one server already holding the automaton; it packs and
        // serves the artifact over ARTIFACT_QUERY/FETCH.
        net::MatchServer donor(mapped);
        uint64_t fp = persist::artifactFingerprint(mapped);
        double kb =
            static_cast<double>(persist::packArtifact(mapped, image)
                                    .size()) /
            1024.0;

        // Pull: cold fingerprint-addressed cache remote-fills from the
        // donor — wire transfer + CAAF validation + atomic publication.
        cluster::Replicator repl({{"127.0.0.1", donor.port()}});
        persist::ArtifactCache cache(
            (dir / ("cache_" + std::to_string(rules))).string());
        cache.setRemoteFetcher(repl.cacheFetcher());
        auto t1 = std::chrono::steady_clock::now();
        persist::LoadedArtifact pulled = cache.getOrFetch(fp);
        double pull_ms = msSince(t1);

        // Warm: the same node restarting — a pure local cache hit.
        auto t2 = std::chrono::steady_clock::now();
        persist::LoadedArtifact warm = cache.getOrFetch(fp);
        double warm_ms = msSince(t2);

        // Guard against dead-code elimination and broken transfers: the
        // pulled automaton must actually drive a sim.
        CacheAutomatonSim sim(pulled.automaton);
        const uint8_t probe[] = {'x'};
        sim.feed(probe, sizeof(probe));
        (void)warm;

        double mbps = pull_ms > 0
            ? (kb / 1024.0) / (pull_ms * 1e-3)
            : 0.0;
        pull_speedups.push_back(pull_ms > 0 ? cold_ms / pull_ms : 0.0);
        t.addRow({std::to_string(num_rules),
                  std::to_string(mapped.nfa().numStates()), fixed(kb, 1),
                  fixed(cold_ms, 2), fixed(pull_ms, 2), fixed(warm_ms, 2),
                  fixed(mbps, 1)});

        auto &reg = ca::telemetry::MetricsRegistry::global();
        std::string prefix =
            "ca.cluster.bench." + std::to_string(num_rules);
        reg.gauge(prefix + ".cold_ms").set(cold_ms);
        reg.gauge(prefix + ".pull_ms").set(pull_ms);
        reg.gauge(prefix + ".warm_ms").set(warm_ms);
    }
    t.print();

    double gm = geomean(pull_speedups);
    ca::telemetry::MetricsRegistry::global()
        .gauge("ca.cluster.bench.pull_speedup_geomean")
        .set(gm);
    std::printf("\nGeomean peer-pull speedup over cold compile: %.1fx\n",
                gm);
    if (smoke)
        std::printf("(smoke run: plumbing check, not a measurement — "
                    "one small ruleset)\n");

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return 0;
}
