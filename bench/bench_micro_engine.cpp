/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths (not a
 * paper table; quality-of-implementation): regex compilation, Glushkov
 * lowering, the space pipeline, graph partitioning, mapping, the cycle
 * simulator, and the CPU baselines.
 */
#include <benchmark/benchmark.h>

#include "baseline/dfa_engine.h"
#include "telemetry/telemetry.h"
#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/dfa.h"
#include "nfa/glushkov.h"
#include "nfa/transform.h"
#include "partition/graph.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"
#include "workload/suite.h"

namespace {

using namespace ca;

void
BM_CompileRuleset(benchmark::State &state)
{
    auto rules = genSnortRules(static_cast<int>(state.range(0)), 7);
    for (auto _ : state) {
        Nfa nfa = compileRuleset(rules);
        benchmark::DoNotOptimize(nfa.numStates());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompileRuleset)->Arg(64)->Arg(256);

void
BM_SpacePipeline(benchmark::State &state)
{
    auto rules = genBrillRules(static_cast<int>(state.range(0)), 3);
    Nfa base = compileRuleset(rules);
    for (auto _ : state) {
        Nfa nfa = base;
        optimizeForSpace(nfa);
        benchmark::DoNotOptimize(nfa.numStates());
    }
    state.SetItemsProcessed(state.iterations() * base.numStates());
}
BENCHMARK(BM_SpacePipeline)->Arg(128)->Arg(512);

void
BM_PartitionGraph(benchmark::State &state)
{
    std::string rule(static_cast<size_t>(state.range(0)), 'a');
    Nfa nfa = compileRuleset({rule});
    std::vector<StateId> members(nfa.numStates());
    for (StateId s = 0; s < nfa.numStates(); ++s)
        members[s] = s;
    Graph g = Graph::fromNfaComponent(nfa, members);
    int32_t k = static_cast<int32_t>((state.range(0) + 255) / 256);
    for (auto _ : state) {
        PartitionOptions opts;
        opts.partCapacity = 256;
        PartitionResult res = partitionGraph(g, k, opts);
        benchmark::DoNotOptimize(res.edgeCut);
    }
}
BENCHMARK(BM_PartitionGraph)->Arg(1024)->Arg(4096);

void
BM_MapPerformance(benchmark::State &state)
{
    auto rules = genSnortRules(static_cast<int>(state.range(0)), 5);
    Nfa nfa = compileRuleset(rules);
    for (auto _ : state) {
        MappedAutomaton m = mapPerformance(nfa);
        benchmark::DoNotOptimize(m.numPartitions());
    }
    state.SetItemsProcessed(state.iterations() * nfa.numStates());
}
BENCHMARK(BM_MapPerformance)->Arg(128)->Arg(512);

void
BM_SimThroughput(benchmark::State &state)
{
    const Benchmark &b = findBenchmark("Snort");
    Nfa nfa = b.build(0.1, 1);
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    auto input = benchmarkInput(b, 64 << 10, 3, 0.1, 1);
    SimOptions opts;
    opts.collectReports = false;
    for (auto _ : state) {
        SimResult res = sim.run(input.data(), input.size(), opts);
        benchmark::DoNotOptimize(res.totalActiveStates);
    }
    state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_SimThroughput);

void
BM_CpuNfaEngine(benchmark::State &state)
{
    const Benchmark &b = findBenchmark("Snort");
    Nfa nfa = b.build(0.1, 1);
    NfaEngine eng(nfa);
    auto input = benchmarkInput(b, 64 << 10, 3, 0.1, 1);
    for (auto _ : state) {
        auto reports = eng.run(input);
        benchmark::DoNotOptimize(reports.size());
    }
    state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_CpuNfaEngine);

void
BM_CpuDfaEngine(benchmark::State &state)
{
    Nfa nfa = compileRuleset(genExactMatchRules(16, 20, 3));
    Dfa dfa = buildDfa(nfa, 1 << 16);
    InputSpec spec;
    spec.kind = StreamKind::Text;
    auto input = buildInput(spec, 64 << 10, 2);
    for (auto _ : state) {
        auto reports = runDfa(dfa, input);
        benchmark::DoNotOptimize(reports.size());
    }
    state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_CpuDfaEngine);

} // namespace

// BENCHMARK_MAIN() with a telemetry session in front: --metrics-out /
// --trace-out are consumed here (google-benchmark rejects unknown flags).
int
main(int argc, char **argv)
{
    ca::telemetry::CliSession session(argc, argv);
    argc = ca::telemetry::CliSession::stripArgs(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
