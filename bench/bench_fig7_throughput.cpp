/**
 * @file
 * Reproduces Figure 7: per-benchmark throughput (Gb/s) of CA_P and CA_S
 * against Micron's AP, plus the §5.1 headline speedups (15x / 9x over AP,
 * 3840x over an x86 CPU via the published 256x AP-over-CPU factor).
 *
 * Memory-centric automata engines are input-independent (1 symbol/cycle),
 * so every benchmark achieves the design's full rate — as in the paper,
 * where the figure's bars are flat across benchmarks. The mapping is still
 * validated per benchmark (a benchmark only earns its bar if it maps).
 */
#include <cstdio>

#include "arch/comparison.h"
#include "arch/design.h"
#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Figure 7: throughput in Gb/s (AP vs CA_P vs CA_S)", cfg);

    Design cap = designCaP();
    Design cas = designCaS();
    double ap = apThroughputGbps();

    // The figure itself is input-independent (no simulation needed), but
    // when telemetry artifacts were requested, simulate so the metrics
    // dump carries the sim activity counters (ca.sim.*) alongside the
    // mapping ones.
    auto runs = runSuite(cfg, /*simulate=*/telemetry.active());

    TablePrinter t({"Benchmark", "AP", "CA_P", "CA_S", "CA_P/AP",
                    "CA_S/AP"});
    std::vector<double> sp_p;
    std::vector<double> sp_s;
    for (const auto &r : runs) {
        // A benchmark earns full rate only when its mapping is feasible.
        bool ok_p = r.perf.budgetViolations == 0;
        bool ok_s = r.space.budgetViolations == 0;
        double tp = ok_p ? throughputGbps(cap.operatingFreqHz) : 0.0;
        double ts = ok_s ? throughputGbps(cas.operatingFreqHz) : 0.0;
        t.addRow({r.spec->name, fixed(ap, 2), fixed(tp, 2), fixed(ts, 2),
                  fixed(tp / ap, 1) + "x", fixed(ts / ap, 1) + "x"});
        if (ok_p)
            sp_p.push_back(tp / ap);
        if (ok_s)
            sp_s.push_back(ts / ap);
    }
    t.print();

    double gp = geomean(sp_p);
    double gs = geomean(sp_s);
    std::printf("\nGeomean speedup over AP: CA_P %.1fx (paper: 15x), "
                "CA_S %.1fx (paper: 9x)\n", gp, gs);
    std::printf("Composed speedup over x86 CPU (x%0.0f AP factor): "
                "CA_P %.0fx (paper: 3840x)\n",
                defaultTech().apOverCpuSpeedup,
                gp * defaultTech().apOverCpuSpeedup);
    return 0;
}
