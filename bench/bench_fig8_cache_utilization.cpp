/**
 * @file
 * Reproduces Figure 8: cache utilization (MB) of each benchmark under the
 * CA_P and CA_S designs, plus the suite averages the paper headlines
 * (1.2 MB and 0.72 MB).
 */
#include <cstdio>

#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Figure 8: cache utilization in MB (CA_P vs CA_S)", cfg);

    auto runs = runSuite(cfg, /*simulate=*/false);

    TablePrinter t({"Benchmark", "CA_P MB", "CA_S MB", "Savings MB"});
    double sum_p = 0.0;
    double sum_s = 0.0;
    for (const auto &r : runs) {
        t.addRow({r.spec->name, fixed(r.perf.utilizationMB, 3),
                  fixed(r.space.utilizationMB, 3),
                  fixed(r.perf.utilizationMB - r.space.utilizationMB, 3)});
        sum_p += r.perf.utilizationMB;
        sum_s += r.space.utilizationMB;
    }
    t.print();

    std::printf("\nAverage: CA_P %.2f MB (paper: 1.2), CA_S %.2f MB "
                "(paper: 0.72)\n",
                sum_p / runs.size(), sum_s / runs.size());
    return 0;
}
