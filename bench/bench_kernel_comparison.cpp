/**
 * @file
 * Sparse vs dense kernel comparison: simulator throughput of the two
 * per-symbol steppers (SimKernel) across the benchmark suite, plus the
 * Auto selector's behaviour, as a function of measured active density.
 *
 * The sparse kernel pays O(active states) per symbol, the dense
 * bit-parallel kernel O(partitions); which wins is governed by the
 * benchmark's active density (avg active states ÷ total states). This
 * bench sweeps the suite under both kernels (and Auto), prints the
 * per-benchmark speedup against density, and reports the observed
 * crossover density — the number EXPERIMENTS.md records and the
 * Auto default threshold is sanity-checked against.
 *
 * Report streams are cross-checked between kernels on every run; a
 * mismatch aborts (bit-identity is a correctness contract, not a goal).
 *
 * Usage:
 *   bench_kernel_comparison [--smoke] [--metrics-out F] [--trace-out F]
 *
 *   --smoke   tiny scale + stream for CI plumbing checks (seconds, not
 *             minutes); numbers are not meaningful at this size.
 *
 * Environment knobs: CA_BENCH_SCALE, CA_BENCH_BYTES, CA_FULL_INPUT
 * (see bench_common.h).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "nfa/glushkov.h"
#include "workload/suite.h"

using namespace ca;
using namespace ca::bench;

namespace {

struct KernelRun
{
    double wallMs = 0.0;
    double mbps = 0.0;
    SimResult result;
};

KernelRun
timeKernel(const MappedAutomaton &mapped,
           const std::vector<uint8_t> &input, SimKernel kernel)
{
    SimOptions opts;
    opts.kernel = kernel;
    CacheAutomatonSim sim(mapped, opts);
    // One untimed pass warms the lazily-built dense tables and the
    // cache, so the timed pass measures the steady-state stepper.
    sim.run(input.data(), std::min<size_t>(input.size(), 4096));

    auto t0 = std::chrono::steady_clock::now();
    KernelRun kr;
    kr.result = sim.run(input);
    auto t1 = std::chrono::steady_clock::now();
    kr.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    kr.mbps = kr.wallMs > 0.0
        ? (static_cast<double>(input.size()) / 1e6) / (kr.wallMs / 1e3)
        : 0.0;
    return kr;
}

bool
sameStream(const SimResult &a, const SimResult &b)
{
    return a.reports == b.reports && a.totalActiveStates == b.totalActiveStates
        && a.totalEnabledStates == b.totalEnabledStates
        && a.totalActivePartitionCycles == b.totalActivePartitionCycles
        && a.totalG1Crossings == b.totalG1Crossings
        && a.totalG4Crossings == b.totalG4Crossings
        && a.outputBufferInterrupts == b.outputBufferInterrupts;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    BenchConfig cfg = BenchConfig::fromEnv();
    if (smoke) {
        cfg.scale = std::min(cfg.scale, 0.05);
        cfg.streamBytes = std::min<size_t>(cfg.streamBytes, 16 << 10);
    }
    banner("Kernel comparison: sparse vs dense vs auto (DESIGN.md §7)",
           cfg);

    // "Frontier" = avg enabled states ÷ total states — the sparse
    // kernel's workload and the density the Auto selector thresholds.
    // "Active" = matched-state density (the Table 1 activity figure).
    TablePrinter t({"Benchmark", "States", "Active", "Frontier",
                    "Sparse MB/s", "Dense MB/s", "Dense/Sparse",
                    "Auto MB/s", "Auto dense%"});

    // Crossover bookkeeping, in frontier-density terms: the densest
    // frontier where sparse still wins vs the sparsest where dense wins.
    double sparse_wins_max_density = -1.0;
    double dense_wins_min_density = 2.0;
    std::string sparse_win_example;
    std::string dense_win_example;
    int mismatches = 0;

    auto evalRow = [&](const std::string &name, const Nfa &nfa,
                       const std::vector<uint8_t> &input) {
        std::fprintf(stderr, "  %s...\n", name.c_str());
        MappedAutomaton mapped = mapPerformance(nfa);

        KernelRun sp = timeKernel(mapped, input, SimKernel::Sparse);
        KernelRun de = timeKernel(mapped, input, SimKernel::Dense);
        KernelRun au = timeKernel(mapped, input, SimKernel::Auto);

        if (!sameStream(sp.result, de.result)
            || !sameStream(sp.result, au.result)) {
            std::fprintf(stderr,
                         "FATAL: kernel report streams diverge on %s\n",
                         name.c_str());
            ++mismatches;
            return;
        }

        size_t states = nfa.numStates();
        double per_symbol = states && sp.result.symbols
            ? 1.0 / (static_cast<double>(sp.result.symbols)
                     * static_cast<double>(states))
            : 0.0;
        double active =
            static_cast<double>(sp.result.totalActiveStates) * per_symbol;
        double frontier =
            static_cast<double>(sp.result.totalEnabledStates) * per_symbol;
        double ratio = sp.mbps > 0.0 ? de.mbps / sp.mbps : 0.0;
        double auto_dense_pct = au.result.symbols
            ? 100.0 * static_cast<double>(au.result.denseKernelSymbols)
                / static_cast<double>(au.result.symbols)
            : 0.0;

        if (ratio > 1.0 && frontier < dense_wins_min_density) {
            dense_wins_min_density = frontier;
            dense_win_example = name;
        }
        if (ratio <= 1.0 && frontier > sparse_wins_max_density) {
            sparse_wins_max_density = frontier;
            sparse_win_example = name;
        }

        t.addRow({name, std::to_string(states), fixed(active, 4),
                  fixed(frontier, 4), fixed(sp.mbps, 1), fixed(de.mbps, 1),
                  fixed(ratio, 2) + "x", fixed(au.mbps, 1),
                  fixed(auto_dense_pct, 0) + "%"});

        // Not CA_GAUGE_SET: the macro caches one static gauge per call
        // site, which would pin these dynamic names to the first row.
        if (ca::telemetry::enabled()) {
            auto &reg = ca::telemetry::MetricsRegistry::global();
            reg.gauge("ca.bench.kernel.sparse_mbps." + name).set(sp.mbps);
            reg.gauge("ca.bench.kernel.dense_mbps." + name).set(de.mbps);
            reg.gauge("ca.bench.kernel.frontier_density." + name)
                .set(frontier);
        }
    };

    for (const Benchmark &b : benchmarkSuite()) {
        Nfa nfa = b.build(cfg.scale, cfg.seed);
        std::vector<uint8_t> input =
            benchmarkInput(b, cfg.streamBytes, cfg.seed + 1, cfg.scale,
                           cfg.seed);
        evalRow(b.name, nfa, input);
    }

    // A sparse-regime control the ANMLZoo-style suite lacks: anchored
    // rules leave almost nothing enabled after offset 0 (no all-input
    // starts), so the frontier stays far below one state per partition
    // and the frontier walk beats the partition scan.
    {
        std::vector<std::string> rules;
        int n_rules = std::max(2, static_cast<int>(200 * cfg.scale));
        for (int r = 0; r < n_rules; ++r) {
            std::string pat = "^";
            for (int j = 0; j < 60; ++j)
                pat += static_cast<char>('a' + (r * 7 + j * 13) % 26);
            rules.push_back(pat);
        }
        Nfa nfa = compileRuleset(rules);
        InputSpec spec;
        spec.kind = StreamKind::Text;
        std::vector<uint8_t> input =
            buildInput(spec, cfg.streamBytes, cfg.seed + 2);
        evalRow("Anchored(ctl)", nfa, input);
    }
    t.print();

    if (!sparse_win_example.empty())
        std::printf("\nDensest frontier where sparse still won: %.4f "
                    "(%s)\n",
                    sparse_wins_max_density, sparse_win_example.c_str());
    else
        std::printf("\nSparse won nowhere at this scale\n");
    if (!dense_win_example.empty())
        std::printf("Sparsest frontier where dense won:       %.4f "
                    "(%s)\n",
                    dense_wins_min_density, dense_win_example.c_str());
    std::printf("Auto threshold default: %.4f "
                "(SimOptions::autoDensityThreshold)\n",
                SimOptions{}.autoDensityThreshold);
    if (smoke)
        std::printf("\n(smoke run: scale %.2f, %zu-byte streams — "
                    "plumbing check only)\n", cfg.scale, cfg.streamBytes);
    if (mismatches) {
        std::fprintf(stderr, "%d benchmark(s) diverged between kernels\n",
                     mismatches);
        return 1;
    }
    return 0;
}
