/**
 * @file
 * Observability overhead: what does the live stats plane cost?
 *
 *   bench_observability_overhead [--smoke] [--metrics-out F]
 *
 * The observability plane (docs/OBSERVABILITY.md) promises to be safe
 * to leave on in production: STATS polls and endpoint scrapes take
 * short locks and read relaxed atomics, never stopping the match
 * pipeline. This bench puts a number on that promise. It drives a
 * loopback MatchServer with a fixed traffic volume twice per rep under
 * identical conditions (telemetry runtime-enabled in both):
 *
 *   baseline — traffic only, nobody watching;
 *   observed — the same traffic while a second connection polls
 *              requestStats() every ~50 ms and renders the registry
 *              snapshot to Prometheus text each time (ca_top +
 *              scraper, condensed).
 *
 * Reps interleave (B O B O ...) so thermal/cache drift hits both arms
 * equally; each arm's throughput is the best rep (least-noise
 * estimator). The acceptance bar for the PR that introduced the plane:
 * observed throughput within 2% of baseline.
 *
 * Environment knobs:
 *   CA_BENCH_BYTES — per-rep traffic volume (default 4 MiB).
 *   CA_BENCH_SCALE — ruleset size factor (default 1.0 = 150 rules).
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "net/client.h"
#include "net/match_server.h"
#include "nfa/glushkov.h"
#include "telemetry/runtime.h"
#include "telemetry/snapshot.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

using namespace ca;
using namespace ca::bench;

namespace {

struct RepResult
{
    double wallMs = 0.0;
    double gbps = 0.0;
    uint64_t polls = 0; ///< STATS replies received (observed arm only).
};

/** Streams the traffic over 4 streams on one connection; times it. */
RepResult
runRep(net::MatchServer &server,
       const std::vector<std::vector<uint8_t>> &streams, bool observed,
       int pollIntervalMs)
{
    std::atomic<bool> stop_poller{false};
    std::atomic<uint64_t> polls{0};
    std::thread poller;
    if (observed) {
        poller = std::thread([&] {
            // A condensed ca_top + Prometheus scraper: in-band STATS
            // poll, then render the carried registry snapshot the way
            // the endpoint would for a real scrape.
            net::MatchClient watcher;
            watcher.connect("127.0.0.1", server.port());
            std::string rendered;
            while (!stop_poller.load(std::memory_order_relaxed)) {
                net::StatsReplyBody b = watcher.requestStats();
                polls.fetch_add(1, std::memory_order_relaxed);
                if (!b.metricsSnapshot.empty())
                    rendered = telemetry::MetricsSnapshot::deserialize(
                                   b.metricsSnapshot)
                                   .prometheusText();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(pollIntervalMs));
            }
            (void)rendered;
            watcher.close();
        });
    }

    uint64_t total_bytes = 0;
    for (const auto &s : streams)
        total_bytes += s.size();

    auto t0 = std::chrono::steady_clock::now();
    net::MatchClient client;
    client.connect("127.0.0.1", server.port());
    std::vector<uint32_t> ids(streams.size());
    for (size_t s = 0; s < streams.size(); ++s)
        ids[s] = client.openStream();
    constexpr size_t kMtu = 1500;
    std::vector<size_t> pos(streams.size(), 0);
    for (bool any = true; any;) {
        any = false;
        for (size_t s = 0; s < streams.size(); ++s) {
            if (pos[s] >= streams[s].size())
                continue;
            any = true;
            size_t n = std::min(kMtu, streams[s].size() - pos[s]);
            client.send(ids[s], streams[s].data() + pos[s], n);
            pos[s] += n;
        }
    }
    for (uint32_t id : ids)
        client.closeStream(id);
    auto t1 = std::chrono::steady_clock::now();
    client.close();

    if (observed) {
        stop_poller.store(true);
        poller.join();
    }

    RepResult r;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.gbps = static_cast<double>(total_bytes) * 8.0 / (r.wallMs * 1e-3) /
        1e9;
    r.polls = polls.load();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry_session(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    BenchConfig cfg = BenchConfig::fromEnv();
    size_t total_bytes = cfg.streamBytes;
    if (total_bytes == (64u << 10)) // bench_common default: too small here
        total_bytes = 4u << 20;
    int reps = 3;
    int poll_ms = 50;
    if (smoke) {
        cfg.scale = std::min(cfg.scale, 0.05);
        total_bytes = std::min<size_t>(total_bytes, 64u << 10);
        reps = 1;
        poll_ms = 10; // still get a few polls into a short rep
    }

    // Both arms run with telemetry on — the question is the *stats
    // plane*'s cost (polling + snapshots), not instrumentation's.
    telemetry::setEnabled(true);

    int rules_n = std::max(1, static_cast<int>(150 * cfg.scale));
    std::vector<std::string> rules = genSnortRules(rules_n, cfg.seed);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton mapped = mapPerformance(nfa);
    std::printf("Observability overhead — %d Snort-like rules, %zu "
                "states, %.1f MiB per rep, %d rep(s) per arm, %d ms "
                "poll interval\n\n",
                rules_n, mapped.nfa().numStates(),
                static_cast<double>(total_bytes) / (1 << 20), reps,
                poll_ms);

    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns.assign(
        rules.begin(), rules.begin() + std::min<size_t>(rules.size(), 32));
    spec.plantsPer4k = 2.0;
    constexpr size_t kStreams = 4;
    std::vector<std::vector<uint8_t>> streams;
    for (size_t i = 0; i < kStreams; ++i)
        streams.push_back(
            buildInput(spec, total_bytes / kStreams, cfg.seed + i));

    net::MatchServerOptions opts;
    opts.stream.workers = std::max<size_t>(
        2, std::thread::hardware_concurrency() / 2);
    net::MatchServer server(mapped, opts);

    // Warmup rep: page in code paths and let the workers settle.
    (void)runRep(server, streams, false, poll_ms);

    double best_base = 0.0, best_obs = 0.0;
    uint64_t total_polls = 0;
    TablePrinter t({"Rep", "Arm", "Wall ms", "Gb/s", "STATS polls"});
    for (int rep = 0; rep < reps; ++rep) {
        RepResult base = runRep(server, streams, false, poll_ms);
        RepResult obs = runRep(server, streams, true, poll_ms);
        best_base = std::max(best_base, base.gbps);
        best_obs = std::max(best_obs, obs.gbps);
        total_polls += obs.polls;
        t.addRow({std::to_string(rep), "baseline", fixed(base.wallMs, 1),
                  fixed(base.gbps, 3), "-"});
        t.addRow({std::to_string(rep), "observed", fixed(obs.wallMs, 1),
                  fixed(obs.gbps, 3), std::to_string(obs.polls)});
    }
    server.stop();
    t.print();

    double regression_pct = best_base > 0
        ? (1.0 - best_obs / best_base) * 100.0
        : 0.0;
    std::printf("\nbest baseline %.3f Gb/s, best observed %.3f Gb/s "
                "(%llu polls total)\n",
                best_base, best_obs,
                static_cast<unsigned long long>(total_polls));
    std::printf("stats-plane throughput cost: %.2f%% (target < 2%%)\n",
                regression_pct);
    CA_GAUGE_SET("ca.bench.observability_overhead_pct", regression_pct);
    if (smoke)
        std::printf("(smoke run: plumbing check, not a measurement — "
                    "polls > 0 proves the plane was live)\n");
    return 0;
}
