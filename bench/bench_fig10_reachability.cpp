/**
 * @file
 * Reproduces Figure 10: the frequency / reachability / area trade-off of
 * Cache Automaton design points against the DRAM Automata Processor.
 */
#include <cstdio>

#include "arch/design.h"
#include "arch/params.h"
#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Figure 10: performance vs reachability vs area", cfg);

    const TechnologyParams &tech = defaultTech();

    TablePrinter t({"Design point", "Freq", "Reachability", "Max fan-in",
                    "Area (32K STEs)"});
    for (const Design &d : {designCa4GHz(), designCaP(), designCaS()}) {
        t.addRow({d.name, fixed(d.operatingFreqHz / 1e9, 1) + " GHz",
                  fixed(designReachability(d), 0) + " states",
                  std::to_string(designMaxFanIn(d)),
                  fixed(designArea32k(d), 2) + " mm2"});
    }
    t.addRow({"AP (DRAM)", fixed(tech.apFreqHz / 1e6, 0) + " MHz",
              fixed(tech.apReachability, 1) + " states",
              std::to_string(tech.apMaxFanIn),
              fixed(tech.apAreaMm2, 1) + " mm2"});
    t.print();

    // Design-space sweep: the figure's full frequency/reachability curve,
    // produced by the same models at intermediate connectivity points.
    std::printf("\n-- Design-space sweep (modelled custom points) --\n");
    TablePrinter sweep({"Partition", "G1 wires", "G4 wires", "Freq",
                        "Reachability", "Area (32K STEs)"});
    struct Point { int p, g1, g4; };
    for (const Point &pt : {Point{64, 0, 0}, Point{128, 8, 0},
                            Point{256, 8, 0}, Point{256, 16, 0},
                            Point{256, 16, 4}, Point{256, 16, 8},
                            Point{512, 16, 8}}) {
        Design d = designCustom(pt.p, pt.g1, pt.g4);
        sweep.addRow({std::to_string(pt.p), std::to_string(pt.g1),
                      std::to_string(pt.g4),
                      fixed(d.operatingFreqHz / 1e9, 1) + " GHz",
                      fixed(designReachability(d), 0) + " states",
                      fixed(designArea32k(d), 2) + " mm2"});
    }
    sweep.print();

    std::printf("\nPaper reference: 4 GHz @ 64 states; CA_P 2 GHz @ 361 "
                "(1.5x AP's 230.5), 4.3 mm2;\nCA_S 1.2 GHz @ 936, 4.6 mm2; "
                "AP 133 MHz, 38 mm2, fan-in 16 (CA: 256).\n");
    return 0;
}
