/**
 * @file
 * Cold-compile vs warm-artifact-load latency across the benchmark suite —
 * the payoff of the persist layer's compile-once/load-many deployment
 * model (§2.9, §5): a server warm-starting from a cached artifact skips
 * rule parsing, CC analysis, prefix merging, and k-way partitioning.
 *
 * For every suite benchmark: time the full cold pipeline (ruleset
 * generation excluded; regex compile + map + config image), persist the
 * artifact, then time loadArtifact() on the same content. Alongside the
 * stdout table, each row's numbers land in the telemetry registry as
 * ca.persist.bench.<name>.{cold_ms,warm_ms,speedup} gauges, so
 * `--metrics-out bench.json` exports machine-readable results.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "core/string_utils.h"
#include "persist/artifact.h"
#include "sim/engine.h"

using namespace ca;
using namespace ca::bench;

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    ca::telemetry::setEnabled(true);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Artifact store: cold compile vs warm load (CA_P)", cfg);

    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ca_bench_artifacts";
    std::filesystem::create_directories(dir);

    TablePrinter t({"Benchmark", "States", "Artifact KB", "Cold ms",
                    "Warm ms", "Speedup"});
    std::vector<double> speedups;

    for (const Benchmark &b : benchmarkSuite()) {
        std::fprintf(stderr, "[artifact] %s...\n", b.name.c_str());

        // Cold: the full per-process pipeline an artifact replaces.
        auto t0 = std::chrono::steady_clock::now();
        Nfa nfa = b.build(cfg.scale, cfg.seed);
        MappedAutomaton mapped = mapPerformance(nfa);
        ConfigImage image = buildConfigImage(mapped);
        double cold_ms = msSince(t0);

        persist::ArtifactMeta meta;
        meta.label = b.name;
        persist::ArtifactWriter writer(meta);
        writer.setAutomaton(mapped);
        writer.setImage(image);
        std::string path = (dir / (b.name + ".caa")).string();
        writer.writeFile(path);
        double kb =
            static_cast<double>(std::filesystem::file_size(path)) / 1024.0;

        // Warm: checksum-verified load of the published artifact.
        auto t1 = std::chrono::steady_clock::now();
        persist::LoadedArtifact loaded = persist::loadArtifact(path);
        double warm_ms = msSince(t1);

        // Guard against the load being a no-op: the restored automaton
        // must drive a sim (one tiny feed keeps the optimizer honest).
        CacheAutomatonSim sim(loaded.automaton);
        const uint8_t probe[] = {'x'};
        sim.feed(probe, sizeof(probe));

        double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
        speedups.push_back(speedup);
        t.addRow({b.name, std::to_string(mapped.nfa().numStates()),
                  fixed(kb, 1), fixed(cold_ms, 2), fixed(warm_ms, 2),
                  fixed(speedup, 1) + "x"});

        // Dynamic metric names, so the CA_GAUGE_SET macro (which caches
        // one metric per call site) doesn't apply — use the registry.
        auto &reg = ca::telemetry::MetricsRegistry::global();
        std::string prefix = "ca.persist.bench." + b.name;
        reg.gauge(prefix + ".cold_ms").set(cold_ms);
        reg.gauge(prefix + ".warm_ms").set(warm_ms);
        reg.gauge(prefix + ".speedup").set(speedup);
    }
    t.print();

    double gm = geomean(speedups);
    ca::telemetry::MetricsRegistry::global()
        .gauge("ca.persist.bench.speedup_geomean")
        .set(gm);
    std::printf("\nGeomean warm-load speedup over cold compile: %.1fx\n",
                gm);
    return 0;
}
