/**
 * @file
 * Reproduces Table 5: comparison with the HARE and UAP ASIC accelerators
 * on the Dotstar0.9 workload (1000 regexes, ~38K states, 10 MB stream).
 *
 * HARE and UAP rows are the paper's published measurements (those systems
 * are not re-implemented); CA_P and CA_S rows are produced end-to-end by
 * this library: the workload is synthesized, compiled, mapped, simulated,
 * and the energy/power/area are computed from the architecture models.
 */
#include <cstdio>

#include "arch/comparison.h"
#include "arch/design.h"
#include "arch/energy.h"
#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "workload/rulegen.h"
#include "workload/suite.h"

using namespace ca;
using namespace ca::bench;

namespace {

void
row(TablePrinter &t, const AcceleratorPoint &p, bool published)
{
    t.addRow({p.name + (published ? " (published)" : " (this work)"),
              fixed(p.throughputGbps, 1), fixed(p.runtimeMsFor10MB, 2),
              fixed(p.powerW, 3), fixed(p.energyNjPerByte, 3),
              fixed(p.areaMm2, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Table 5: comparison with ASIC designs (Dotstar0.9, 10 MB)",
           cfg);

    // Dotstar0.9: 1000 rules at dot-star probability 0.9 (~38K states).
    std::fprintf(stderr, "[bench] building Dotstar0.9 (1000 rules)...\n");
    auto rules = genDotstarRules(
        static_cast<int>(1000 * cfg.scale), 0.9, 38, cfg.seed);
    Nfa nfa = compileRuleset(rules);
    std::fprintf(stderr, "[bench] %zu states; mapping...\n",
                 nfa.numStates());

    InputSpec spec;
    spec.kind = StreamKind::Payload;
    spec.plantPatterns.assign(rules.begin(),
                              rules.begin() + std::min<size_t>(64,
                                                  rules.size()));
    spec.plantsPer4k = 0.5;
    auto input = buildInput(spec, cfg.streamBytes, cfg.seed + 29);

    TablePrinter t({"Metric/System", "Thpt Gbps", "Runtime ms", "Power W",
                    "nJ/byte", "Area mm2"});
    row(t, harePublished(), true);
    row(t, uapPublished(), true);

    for (bool space : {false, true}) {
        MappedAutomaton m =
            space ? mapSpace(nfa) : mapPerformance(nfa);
        CacheAutomatonSim sim(m);
        SimOptions sopts;
        sopts.collectReports = false;
        std::fprintf(stderr, "[bench] simulating %s...\n",
                     m.design().name.c_str());
        SimResult res = sim.run(input.data(), input.size(), sopts);
        double nj = computeEnergyPerSymbol(m.design(), res.activity())
                        .totalPj() / 1e3;
        row(t, caTable5Row(m.design(), nj), false);
    }
    t.print();

    std::printf("\nPaper reference rows: CA_P 15.6 Gbps / 5.24 ms / "
                "7.72 W / 4.04 nJ/B / 4.3 mm2;\n"
                "CA_S 9.4 Gbps / 8.74 ms / 1.08 W / 0.94 nJ/B / 4.6 mm2.\n"
                "Expected shape: CA_P ~3.9x HARE and ~3x UAP throughput; "
                "CA_S ~2.3x/1.8x.\n");
    return 0;
}
