/**
 * @file
 * Reproduces Figure 9: (a) per-symbol energy of CA_P, CA_S, and an Ideal
 * Automata Processor running the CA_S mapping; (b) average power. The
 * energy model is driven by simulated per-cycle activity, exactly like the
 * paper's methodology (VASim statistics into derived circuit constants).
 */
#include <cstdio>

#include "arch/design.h"
#include "arch/energy.h"
#include "bench_common.h"
#include "core/string_utils.h"

using namespace ca;
using namespace ca::bench;

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    BenchConfig cfg = BenchConfig::fromEnv();
    banner("Figure 9: energy per symbol and average power", cfg);

    Design cap = designCaP();
    Design cas = designCaS();

    auto runs = runSuite(cfg, /*simulate=*/true);

    std::printf("-- (a) Energy per input symbol --\n");
    TablePrinter ta({"Benchmark", "CA_P nJ", "CA_S nJ",
                     "IdealAP(w/CA_S) nJ", "AP/CA_S"});
    double sum_p = 0.0;
    double sum_s = 0.0;
    double sum_ap = 0.0;
    for (const auto &r : runs) {
        double ep =
            computeEnergyPerSymbol(cap, r.perf.activity).totalPj() / 1e3;
        double es =
            computeEnergyPerSymbol(cas, r.space.activity).totalPj() / 1e3;
        double eap =
            idealApEnergyPerSymbolPj(r.space.activity, cas) / 1e3;
        ta.addRow({r.spec->name, fixed(ep, 2), fixed(es, 2), fixed(eap, 2),
                   es > 0 ? fixed(eap / es, 1) + "x" : "-"});
        sum_p += ep;
        sum_s += es;
        sum_ap += eap;
    }
    ta.print();
    std::printf("\nAverage: CA_P %.2f nJ, CA_S %.2f nJ (paper: 2.3 nJ), "
                "Ideal AP w/CA_S %.2f nJ (paper: ~3x CA)\n",
                sum_p / runs.size(), sum_s / runs.size(),
                sum_ap / runs.size());

    std::printf("\n-- (b) Average power --\n");
    TablePrinter tb({"Benchmark", "CA_P W", "CA_S W"});
    double psum_p = 0.0;
    double psum_s = 0.0;
    for (const auto &r : runs) {
        double pp = averagePowerW(
            computeEnergyPerSymbol(cap, r.perf.activity).totalPj(),
            cap.operatingFreqHz);
        double ps = averagePowerW(
            computeEnergyPerSymbol(cas, r.space.activity).totalPj(),
            cas.operatingFreqHz);
        tb.addRow({r.spec->name, fixed(pp, 2), fixed(ps, 2)});
        psum_p += pp;
        psum_s += ps;
    }
    tb.print();
    std::printf("\nAverage power: CA_P %.2f W, CA_S %.2f W "
                "(max: CA_P 71.3 W, CA_S 14.9 W per paper; both far below "
                "the 160 W TDP)\n",
                psum_p / runs.size(), psum_s / runs.size());
    return 0;
}
