#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "nfa/analysis.h"

namespace ca::bench {

BenchConfig
BenchConfig::fromEnv()
{
    BenchConfig cfg;
    if (const char *s = std::getenv("CA_BENCH_SCALE"))
        cfg.scale = std::atof(s);
    if (const char *b = std::getenv("CA_BENCH_BYTES"))
        cfg.streamBytes = static_cast<size_t>(std::atoll(b));
    if (const char *full = std::getenv("CA_FULL_INPUT"))
        if (full[0] == '1')
            cfg.streamBytes = 10u << 20;
    return cfg;
}

namespace {

DesignRun
measure(const MappedAutomaton &mapped, const Benchmark &spec,
        const BenchConfig &cfg, bool simulate)
{
    DesignRun run;
    run.states = mapped.nfa().numStates();
    ComponentInfo cc = connectedComponents(mapped.nfa());
    run.connectedComponents = cc.numComponents();
    run.largestComponent = cc.largestSize();
    run.partitions = mapped.numPartitions();
    run.utilizationMB = mapped.utilizationMB();
    run.budgetViolations = mapped.stats().budgetViolations;

    if (simulate) {
        auto input = benchmarkInput(spec, cfg.streamBytes, cfg.seed + 13,
                                    cfg.scale, cfg.seed);
        CacheAutomatonSim sim(mapped);
        SimOptions opts;
        opts.collectReports = false;
        SimResult res = sim.run(input.data(), input.size(), opts);
        run.avgActiveStates = res.avgActiveStates();
        run.activity = res.activity();
        run.reports = res.totalActiveStates ? res.outputBufferInterrupts
                                            : 0;
    }
    return run;
}

} // namespace

std::vector<BenchmarkRun>
runSuite(const BenchConfig &cfg, bool simulate)
{
    CA_TRACE_SCOPE("ca.bench.run_suite");
    std::vector<BenchmarkRun> out;
    for (const Benchmark &b : benchmarkSuite()) {
        std::fprintf(stderr, "[bench] %s: building...\n", b.name.c_str());
        CA_TRACE_SCOPE_CAT(std::string("ca.bench.") + b.name, "bench");
        Nfa nfa = b.build(cfg.scale, cfg.seed);

        BenchmarkRun run;
        run.spec = &b;
        MappedAutomaton perf = mapPerformance(nfa);
        run.perf = measure(perf, b, cfg, simulate);
        MappedAutomaton space = mapSpace(nfa);
        run.space = measure(space, b, cfg, simulate);
        out.push_back(std::move(run));
    }
    return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < width.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            // First column left-aligned, the rest right-aligned.
            if (c == 0)
                std::printf("%-*s", static_cast<int>(width[c]),
                            cell.c_str());
            else
                std::printf("  %*s", static_cast<int>(width[c]),
                            cell.c_str());
        }
        std::printf("\n");
    };
    printRow(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        printRow(row);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
banner(const std::string &title, const BenchConfig &cfg)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(suite scale %.2f, stream %zu KiB; set CA_BENCH_SCALE / "
                "CA_BENCH_BYTES / CA_FULL_INPUT to change)\n\n",
                cfg.scale, cfg.streamBytes >> 10);
}

} // namespace ca::bench
