/**
 * @file
 * Chunk-parallel single-stream matching: ParallelMatcher speedup over
 * the cycle-accurate simulator and the serial MatchEngine across the
 * benchmark suite (docs/MATCH.md).
 *
 * For each suite benchmark the input stream is matched four ways — the
 * PR 5 Auto-kernel CacheAutomatonSim (the baseline EXPERIMENTS.md
 * carries), a serial MatchEngine (what the functional split alone
 * buys), and the ParallelMatcher at the swept chunk degrees — and the
 * table prints MB/s, the parallel speedups against the sim baseline,
 * and the degree-8 speculation hit rate (hits ÷ speculative chunks;
 * misses replay, so a low rate is a performance statement, never a
 * correctness one).
 *
 * Report streams are cross-checked: every engine and every degree must
 * be bit-identical to the simulator on every benchmark, or the bench
 * exits nonzero (the tests/match_test.cpp contract, re-enforced here
 * at suite scale).
 *
 * Usage:
 *   bench_parallel_match [--smoke] [--metrics-out F] [--trace-out F]
 *
 *   --smoke   tiny scale + stream for CI plumbing checks; numbers are
 *             not meaningful at this size.
 *
 * Environment knobs: CA_BENCH_SCALE, CA_BENCH_BYTES (this bench floors
 * the stream at 2 MiB outside --smoke so the chunks amortize their
 * warm-up windows), CA_FULL_INPUT (see bench_common.h).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "compiler/mapping.h"
#include "core/string_utils.h"
#include "match/match_engine.h"
#include "match/parallel_matcher.h"
#include "nfa/glushkov.h"
#include "workload/suite.h"

using namespace ca;
using namespace ca::bench;

namespace {

constexpr size_t kDegrees[] = {2, 4, 8};

struct TimedRun
{
    double mbps = 0.0;
    std::vector<Report> reports;
};

double
mbps(size_t bytes, double wall_ms)
{
    return wall_ms > 0.0
        ? (static_cast<double>(bytes) / 1e6) / (wall_ms / 1e3)
        : 0.0;
}

/** PR 5 baseline: the cycle-accurate sim under the Auto kernel. */
TimedRun
timeSim(const MappedAutomaton &mapped, const std::vector<uint8_t> &input)
{
    CacheAutomatonSim sim(mapped);
    sim.run(input.data(), std::min<size_t>(input.size(), 4096)); // warm
    auto t0 = std::chrono::steady_clock::now();
    SimResult r = sim.run(input);
    auto t1 = std::chrono::steady_clock::now();
    TimedRun tr;
    tr.mbps = mbps(input.size(),
                   std::chrono::duration<double, std::milli>(t1 - t0)
                       .count());
    tr.reports = std::move(r.reports);
    return tr;
}

TimedRun
timeEngine(const std::shared_ptr<const match::MatchContext> &ctx,
           const std::vector<uint8_t> &input)
{
    match::MatchEngine warm(ctx, {});
    warm.feed(input.data(), std::min<size_t>(input.size(), 4096));
    match::MatchEngine eng(ctx, {});
    auto t0 = std::chrono::steady_clock::now();
    eng.feed(input.data(), input.size());
    auto t1 = std::chrono::steady_clock::now();
    TimedRun tr;
    tr.mbps = mbps(input.size(),
                   std::chrono::duration<double, std::milli>(t1 - t0)
                       .count());
    tr.reports = eng.takeReports();
    return tr;
}

TimedRun
timeParallel(const std::shared_ptr<const match::MatchContext> &ctx,
             const std::vector<uint8_t> &input, size_t degree,
             match::ParallelStats &stats_out)
{
    match::ParallelOptions popts;
    popts.degree = degree;
    // Let even the smoke-sized stream actually chunk; real runs are
    // well past this anyway.
    popts.minChunkBytes =
        std::min<size_t>(popts.minChunkBytes,
                         std::max<size_t>(input.size() / degree, 1));
    match::ParallelMatcher pm(ctx, popts);
    pm.match(input.data(),
             std::min<size_t>(input.size(), 4096)); // warm engines
    match::ParallelStats before = pm.stats();
    auto t0 = std::chrono::steady_clock::now();
    match::MatchResult r = pm.match(input.data(), input.size());
    auto t1 = std::chrono::steady_clock::now();
    match::ParallelStats after = pm.stats();
    stats_out.chunks = after.chunks - before.chunks;
    stats_out.speculationHits =
        after.speculationHits - before.speculationHits;
    stats_out.replays = after.replays - before.replays;
    stats_out.replayedBytes = after.replayedBytes - before.replayedBytes;
    stats_out.joinMicros = after.joinMicros - before.joinMicros;
    TimedRun tr;
    tr.mbps = mbps(input.size(),
                   std::chrono::duration<double, std::milli>(t1 - t0)
                       .count());
    tr.reports = std::move(r.reports);
    return tr;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetrySession telemetry(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    BenchConfig cfg = BenchConfig::fromEnv();
    if (smoke) {
        cfg.scale = std::min(cfg.scale, 0.05);
        cfg.streamBytes = std::min<size_t>(cfg.streamBytes, 64 << 10);
    } else {
        cfg.streamBytes = std::max<size_t>(cfg.streamBytes, 2 << 20);
    }
    banner("Chunk-parallel single-stream matching (docs/MATCH.md)", cfg);
    std::printf("host threads: %u\n\n",
                std::thread::hardware_concurrency());

    TablePrinter t({"Benchmark", "Sim MB/s", "Engine MB/s", "P2 MB/s",
                    "P4 MB/s", "P8 MB/s", "P8/Sim", "P8 hit%",
                    "P8 replay"});

    int mismatches = 0;
    std::vector<double> engine_speedups;
    std::vector<double> p8_speedups;
    uint64_t total_spec = 0;
    uint64_t total_hits = 0;

    for (const Benchmark &b : benchmarkSuite()) {
        std::fprintf(stderr, "  %s...\n", b.name.c_str());
        Nfa nfa = b.build(cfg.scale, cfg.seed);
        std::vector<uint8_t> input = benchmarkInput(
            b, cfg.streamBytes, cfg.seed + 1, cfg.scale, cfg.seed);
        MappedAutomaton mapped = mapPerformance(nfa);
        auto ctx = std::make_shared<match::MatchContext>(mapped);

        TimedRun sim = timeSim(mapped, input);
        TimedRun eng = timeEngine(ctx, input);
        if (eng.reports != sim.reports) {
            std::fprintf(stderr,
                         "FATAL: MatchEngine diverges from the sim on "
                         "%s\n",
                         b.name.c_str());
            ++mismatches;
            continue;
        }

        double par_mbps[std::size(kDegrees)] = {};
        match::ParallelStats par_stats[std::size(kDegrees)] = {};
        bool ok = true;
        for (size_t d = 0; d < std::size(kDegrees); ++d) {
            TimedRun pr =
                timeParallel(ctx, input, kDegrees[d], par_stats[d]);
            if (pr.reports != sim.reports) {
                std::fprintf(stderr,
                             "FATAL: ParallelMatcher(degree %zu) "
                             "diverges from the sim on %s\n",
                             kDegrees[d], b.name.c_str());
                ++mismatches;
                ok = false;
                break;
            }
            par_mbps[d] = pr.mbps;
        }
        if (!ok)
            continue;

        const match::ParallelStats &p8 =
            par_stats[std::size(kDegrees) - 1];
        uint64_t spec = p8.speculationHits + p8.replays;
        double hit_pct = spec == 0
            ? 100.0
            : 100.0 * static_cast<double>(p8.speculationHits)
                / static_cast<double>(spec);
        double p8_speedup =
            sim.mbps > 0.0 ? par_mbps[2] / sim.mbps : 0.0;
        t.addRow({b.name, fixed(sim.mbps, 1), fixed(eng.mbps, 1),
                  fixed(par_mbps[0], 1), fixed(par_mbps[1], 1),
                  fixed(par_mbps[2], 1), fixed(p8_speedup, 2) + "x",
                  fixed(hit_pct, 0) + "%",
                  std::to_string(p8.replays) + "/"
                      + std::to_string(spec)});

        if (sim.mbps > 0.0 && eng.mbps > 0.0)
            engine_speedups.push_back(eng.mbps / sim.mbps);
        if (p8_speedup > 0.0)
            p8_speedups.push_back(p8_speedup);
        total_spec += spec;
        total_hits += p8.speculationHits;

        // Dynamic names: one gauge per benchmark (see the CA_GAUGE_SET
        // caching caveat in bench_kernel_comparison.cpp).
        if (ca::telemetry::enabled()) {
            auto &reg = ca::telemetry::MetricsRegistry::global();
            reg.gauge("ca.bench.match.sim_mbps." + b.name).set(sim.mbps);
            reg.gauge("ca.bench.match.engine_mbps." + b.name)
                .set(eng.mbps);
            reg.gauge("ca.bench.match.par8_mbps." + b.name)
                .set(par_mbps[2]);
            reg.gauge("ca.bench.match.par8_hit_pct." + b.name)
                .set(hit_pct);
        }
    }
    t.print();

    if (!engine_speedups.empty())
        std::printf("\nGeomean serial MatchEngine vs sim: %.2fx\n",
                    geomean(engine_speedups));
    if (!p8_speedups.empty())
        std::printf("Geomean ParallelMatcher(8) vs sim: %.2fx\n",
                    geomean(p8_speedups));
    if (total_spec > 0)
        std::printf("Suite speculation hit rate at degree 8: %.0f%% "
                    "(%llu/%llu chunks)\n",
                    100.0 * static_cast<double>(total_hits)
                        / static_cast<double>(total_spec),
                    static_cast<unsigned long long>(total_hits),
                    static_cast<unsigned long long>(total_spec));
    if (smoke)
        std::printf("\n[smoke] plumbing check only — numbers are not "
                    "meaningful at this size\n");
    if (mismatches > 0) {
        std::fprintf(stderr, "%d report-stream mismatches\n", mismatches);
        return 1;
    }
    return 0;
}
