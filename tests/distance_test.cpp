/**
 * @file
 * Tests for the Hamming and Levenshtein automata against brute-force
 * distance computations.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline/nfa_engine.h"
#include "core/error.h"
#include "core/rng.h"
#include "workload/distance.h"

namespace ca {
namespace {

int
hammingDistance(const std::string &a, const std::string &b)
{
    EXPECT_EQ(a.size(), b.size());
    int d = 0;
    for (size_t i = 0; i < a.size(); ++i)
        d += a[i] != b[i];
    return d;
}

int
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::vector<int>> dp(a.size() + 1,
                                     std::vector<int>(b.size() + 1));
    for (size_t i = 0; i <= a.size(); ++i)
        dp[i][0] = static_cast<int>(i);
    for (size_t j = 0; j <= b.size(); ++j)
        dp[0][j] = static_cast<int>(j);
    for (size_t i = 1; i <= a.size(); ++i)
        for (size_t j = 1; j <= b.size(); ++j)
            dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                                 dp[i - 1][j - 1] +
                                     (a[i - 1] != b[j - 1] ? 1 : 0)});
    return dp[a.size()][b.size()];
}

/** Anchored whole-string acceptance: a report at the final offset. */
bool
acceptsWhole(const Nfa &nfa, const std::string &text)
{
    if (text.empty())
        return false;
    NfaEngine eng(nfa);
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    return std::any_of(reports.begin(), reports.end(), [&](const Report &r) {
        return r.offset == text.size() - 1;
    });
}

std::string
randomDna(Rng &rng, size_t len)
{
    static const char bases[] = "ACGT";
    std::string s;
    for (size_t i = 0; i < len; ++i)
        s.push_back(bases[rng.below(4)]);
    return s;
}

/** Applies exactly @p subs random substitutions. */
std::string
mutate(const std::string &s, int subs, Rng &rng)
{
    std::string out = s;
    std::vector<size_t> idx(s.size());
    for (size_t i = 0; i < s.size(); ++i)
        idx[i] = i;
    for (int k = 0; k < subs; ++k) {
        size_t pick = k + rng.below(idx.size() - k);
        std::swap(idx[k], idx[pick]);
        char old = out[idx[k]];
        char repl;
        do {
            repl = "ACGT"[rng.below(4)];
        } while (repl == old);
        out[idx[k]] = repl;
    }
    return out;
}

// ---------------------------------------------------------------- Hamming

TEST(Hamming, ExactMatchAccepted)
{
    Nfa nfa = hammingNfa("ACGT", 1);
    EXPECT_TRUE(acceptsWhole(nfa, "ACGT"));
}

TEST(Hamming, WithinDistanceAccepted)
{
    Nfa nfa = hammingNfa("ACGTACGT", 2);
    EXPECT_TRUE(acceptsWhole(nfa, "ACGTACGA"));  // d=1
    EXPECT_TRUE(acceptsWhole(nfa, "TCGTACGA"));  // d=2
    EXPECT_FALSE(acceptsWhole(nfa, "TCGAACGA")); // d=3
}

TEST(Hamming, ShorterStringRejected)
{
    Nfa nfa = hammingNfa("ACGT", 1);
    EXPECT_FALSE(acceptsWhole(nfa, "ACG"));
}

TEST(Hamming, ZeroDistanceIsExactMatch)
{
    Nfa nfa = hammingNfa("ACG", 0);
    EXPECT_TRUE(acceptsWhole(nfa, "ACG"));
    EXPECT_FALSE(acceptsWhole(nfa, "ACT"));
}

// k=0 degenerates to exact string match — the k-row lattice collapses to
// a single row with no mismatch states. Cross-check the whole automaton
// against the brute-force witness on random candidates so a regression
// in the degenerate construction (off-by-one in rows, spurious mismatch
// edges) cannot hide behind the k>=1 property tests.
TEST(Hamming, ZeroDistanceAgreesWithWitness)
{
    Rng rng(0xD0);
    for (int rep = 0; rep < 10; ++rep) {
        std::string pattern = randomDna(rng, 4 + rng.below(8));
        Nfa nfa = hammingNfa(pattern, 0);
        EXPECT_TRUE(acceptsWhole(nfa, pattern));
        for (int trial = 0; trial < 20; ++trial) {
            std::string candidate = rng.chance(0.5)
                ? mutate(pattern, 1 + static_cast<int>(rng.below(2)), rng)
                : randomDna(rng, pattern.size());
            bool want = hammingDistance(pattern, candidate) == 0;
            EXPECT_EQ(acceptsWhole(nfa, candidate), want)
                << "pattern " << pattern << " candidate " << candidate;
        }
    }
}

TEST(Hamming, InvalidParamsThrow)
{
    EXPECT_THROW(hammingNfa("", 0), CaError);
    EXPECT_THROW(hammingNfa("AC", 2), CaError);
    EXPECT_THROW(hammingNfa("AC", -1), CaError);
}

TEST(Hamming, StateCountGrid)
{
    // m=10, k=1: match states 10*2-1=19, mismatch states 10.
    Nfa nfa = hammingNfa("ACGTACGTAC", 1);
    EXPECT_EQ(nfa.numStates(), 29u);
}

TEST(Hamming, UnanchoredMatchesMidStream)
{
    Nfa nfa = hammingNfa("ACGT", 1, 0, /*anchored=*/false);
    NfaEngine eng(nfa);
    std::string text = "TTTTACGTTTT";
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    EXPECT_FALSE(reports.empty());
}

class HammingProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HammingProperty, AgreesWithBruteForce)
{
    Rng rng(GetParam() * 6151 + 2);
    int m = 6 + static_cast<int>(rng.below(10));
    int k = 1 + static_cast<int>(rng.below(2));
    std::string pattern = randomDna(rng, m);
    Nfa nfa = hammingNfa(pattern, k);
    for (int trial = 0; trial < 20; ++trial) {
        std::string candidate =
            rng.chance(0.5) ? mutate(pattern,
                                     static_cast<int>(rng.below(k + 2)),
                                     rng)
                            : randomDna(rng, m);
        bool want = hammingDistance(pattern, candidate) <= k;
        EXPECT_EQ(acceptsWhole(nfa, candidate), want)
            << "pattern " << pattern << " candidate " << candidate
            << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Random, HammingProperty, ::testing::Range(0, 15));

// ---------------------------------------------------------------- Levenshtein

TEST(Levenshtein, ExactMatchAccepted)
{
    Nfa nfa = levenshteinNfa("ACGT", 1);
    EXPECT_TRUE(acceptsWhole(nfa, "ACGT"));
}

TEST(Levenshtein, SubstitutionInsertionDeletion)
{
    Nfa nfa = levenshteinNfa("ACGT", 1);
    EXPECT_TRUE(acceptsWhole(nfa, "AGGT"));  // substitution
    EXPECT_TRUE(acceptsWhole(nfa, "AACGT")); // insertion
    EXPECT_TRUE(acceptsWhole(nfa, "ACT"));   // deletion
    EXPECT_FALSE(acceptsWhole(nfa, "AGGA")); // d=2
}

TEST(Levenshtein, ZeroDistanceIsExactMatch)
{
    Nfa nfa = levenshteinNfa("ACGT", 0);
    EXPECT_TRUE(acceptsWhole(nfa, "ACGT"));
    EXPECT_FALSE(acceptsWhole(nfa, "ACGA"));  // substitution
    EXPECT_FALSE(acceptsWhole(nfa, "ACG"));   // deletion
    EXPECT_FALSE(acceptsWhole(nfa, "AACGT")); // insertion
}

// k=0 collapses the Levenshtein lattice to one row with no epsilon
// (deletion) or self-loop (insertion) structure; hold the degenerate
// automaton to the DP witness exactly, over candidates whose lengths
// straddle |pattern| so every edit kind is probed.
TEST(Levenshtein, ZeroDistanceAgreesWithWitness)
{
    Rng rng(0x1E0);
    for (int rep = 0; rep < 10; ++rep) {
        std::string pattern = randomDna(rng, 4 + rng.below(6));
        Nfa nfa = levenshteinNfa(pattern, 0);
        EXPECT_TRUE(acceptsWhole(nfa, pattern));
        for (int trial = 0; trial < 20; ++trial) {
            int len = std::max(
                1, static_cast<int>(pattern.size()) +
                       static_cast<int>(rng.range(-1, 1)));
            std::string candidate = randomDna(rng, len);
            bool want = editDistance(pattern, candidate) == 0;
            EXPECT_EQ(acceptsWhole(nfa, candidate), want)
                << "pattern " << pattern << " candidate " << candidate;
        }
    }
}

TEST(Levenshtein, InvalidParamsThrow)
{
    EXPECT_THROW(levenshteinNfa("", 0), CaError);
    EXPECT_THROW(levenshteinNfa("AC", 2), CaError);
}

class LevenshteinProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LevenshteinProperty, AgreesWithEditDistance)
{
    Rng rng(GetParam() * 7723 + 9);
    int m = 5 + static_cast<int>(rng.below(6));
    int k = 1 + static_cast<int>(rng.below(2));
    std::string pattern = randomDna(rng, m);
    Nfa nfa = levenshteinNfa(pattern, k);
    for (int trial = 0; trial < 15; ++trial) {
        // Candidates near the pattern length exercise all three edits.
        int len = std::max(
            1, m + static_cast<int>(rng.range(-k - 1, k + 1)));
        std::string candidate = randomDna(rng, len);
        if (rng.chance(0.5)) {
            // Bias toward near-misses: start from the pattern and edit.
            candidate = pattern;
            int edits = static_cast<int>(rng.below(k + 2));
            for (int e = 0; e < edits && !candidate.empty(); ++e) {
                int kind = static_cast<int>(rng.below(3));
                size_t pos = rng.below(candidate.size());
                if (kind == 0)
                    candidate[pos] = "ACGT"[rng.below(4)];
                else if (kind == 1)
                    candidate.insert(candidate.begin() + pos,
                                     "ACGT"[rng.below(4)]);
                else
                    candidate.erase(candidate.begin() + pos);
            }
            if (candidate.empty())
                continue;
        }
        bool want = editDistance(pattern, candidate) <= k;
        EXPECT_EQ(acceptsWhole(nfa, candidate), want)
            << "pattern " << pattern << " candidate " << candidate
            << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Random, LevenshteinProperty,
                         ::testing::Range(0, 15));

} // namespace
} // namespace ca
