/**
 * @file
 * Tests for the telemetry subsystem: registry thread-safety, histogram
 * bucket boundaries, exporter well-formedness (the JSON is parsed back
 * with a minimal validating parser), and a pipeline smoke test asserting
 * the expected stage spans and counters appear after a compile→map→sim
 * run.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/mapping.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "telemetry/telemetry.h"
#include "workload/input_gen.h"

namespace ca {
namespace {

using telemetry::Counter;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::TraceCollector;

// ------------------------------------------------- minimal JSON parser
//
// Just enough JSON to round-trip the exporters: objects, arrays,
// strings, numbers, true/false/null. Throws std::runtime_error on any
// syntax violation, which is exactly what the well-formedness tests
// assert does not happen.

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const { return fields.count(key); }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Object;
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipSpace();
            JsonValue key = parseString();
            skipSpace();
            expect(':');
            v.fields[key.str] = parseValue();
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Array;
        expect('[');
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind = JsonValue::String;
        expect('"');
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': v.str += '"'; break;
                  case '\\': v.str += '\\'; break;
                  case '/': v.str += '/'; break;
                  case 'n': v.str += '\n'; break;
                  case 't': v.str += '\t'; break;
                  case 'r': v.str += '\r'; break;
                  case 'b': v.str += '\b'; break;
                  case 'f': v.str += '\f'; break;
                  case 'u':
                    if (pos_ + 4 > text_.size())
                        fail("bad \\u escape");
                    pos_ += 4;
                    v.str += '?';
                    break;
                  default: fail("unknown escape");
                }
            } else {
                v.str += c;
            }
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        JsonValue v;
        v.kind = JsonValue::Null;
        return v;
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        JsonValue v;
        v.kind = JsonValue::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

/** Enables telemetry for one test and restores the prior state after. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        was_enabled_ = telemetry::enabled();
        telemetry::setEnabled(true);
        MetricsRegistry::global().resetAll();
        TraceCollector::global().clear();
    }

    void TearDown() override { telemetry::setEnabled(was_enabled_); }

  private:
    bool was_enabled_ = false;
};

// ------------------------------------------------------------ registry

TEST_F(TelemetryTest, CounterGaugeBasics)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("ca.test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name returns the same handle.
    EXPECT_EQ(&reg.counter("ca.test.counter"), &c);

    reg.gauge("ca.test.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(reg.gauge("ca.test.gauge").value(), 2.5);
    EXPECT_EQ(reg.size(), 2u);

    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("ca.test.gauge").value(), 0.0);
}

TEST_F(TelemetryTest, KindMismatchThrows)
{
    MetricsRegistry reg;
    reg.counter("ca.test.metric");
    EXPECT_THROW(reg.gauge("ca.test.metric"), std::logic_error);
    EXPECT_THROW(reg.histogram("ca.test.metric"), std::logic_error);
}

TEST_F(TelemetryTest, RegistryConcurrentCounting)
{
    MetricsRegistry reg;
    constexpr int kIters = 100000;
    // Both threads resolve the handle through the registry *and* bump the
    // same counter, exercising the registration lock and the atomic adds.
    auto worker = [&reg] {
        Counter &c = reg.counter("ca.test.shared");
        for (int i = 0; i < kIters; ++i) {
            c.add();
            if (i % 1024 == 0)
                reg.counter("ca.test.shared").add(0); // re-lookup path
        }
    };
    std::thread a(worker);
    std::thread b(worker);
    a.join();
    b.join();
    EXPECT_EQ(reg.counter("ca.test.shared").value(),
              static_cast<uint64_t>(2 * kIters));
}

TEST_F(TelemetryTest, ConcurrentDistinctRegistrations)
{
    MetricsRegistry reg;
    constexpr int kNames = 200;
    auto worker = [&reg](int salt) {
        for (int i = 0; i < kNames; ++i)
            reg.counter("ca.test.n" + std::to_string(i)).add(1 + salt);
    };
    std::thread a(worker, 0);
    std::thread b(worker, 1);
    a.join();
    b.join();
    EXPECT_EQ(reg.size(), static_cast<size_t>(kNames));
    EXPECT_EQ(reg.counter("ca.test.n0").value(), 3u); // 1 + 2
}

// ----------------------------------------------------------- histogram

TEST_F(TelemetryTest, HistogramBucketBoundaries)
{
    // Bucket 0 = {0}; bucket i>=1 = [2^(i-1), 2^i - 1].
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(1), 1);
    EXPECT_EQ(Histogram::bucketIndex(2), 2);
    EXPECT_EQ(Histogram::bucketIndex(3), 2);
    EXPECT_EQ(Histogram::bucketIndex(4), 3);
    EXPECT_EQ(Histogram::bucketIndex(7), 3);
    EXPECT_EQ(Histogram::bucketIndex(8), 4);
    EXPECT_EQ(Histogram::bucketIndex(~uint64_t{0}), 64);

    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLow(i)), i)
            << "low edge of bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketHigh(i)), i)
            << "high edge of bucket " << i;
    }
    // Each bucket's high edge is adjacent to the next bucket's low edge.
    for (int i = 0; i + 1 < Histogram::kNumBuckets; ++i)
        EXPECT_EQ(Histogram::bucketHigh(i) + 1, Histogram::bucketLow(i + 1));
}

TEST_F(TelemetryTest, HistogramObserveAndAggregates)
{
    Histogram h;
    h.observe(0);
    h.observe(1);
    h.observe(2);
    h.observe(3);
    h.observe(1000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1006u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);             // {0}
    EXPECT_EQ(h.bucketCount(1), 1u);             // {1}
    EXPECT_EQ(h.bucketCount(2), 2u);             // {2, 3}
    EXPECT_EQ(h.bucketCount(Histogram::bucketIndex(1000)), 1u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

// ----------------------------------------------------------- exporters

TEST_F(TelemetryTest, MetricsJsonRoundTrips)
{
    MetricsRegistry reg;
    reg.counter("ca.test.counter").add(7);
    reg.gauge("ca.test.gauge").set(1.25);
    Histogram &h = reg.histogram("ca.test.hist");
    h.observe(0);
    h.observe(5);
    h.observe(512);

    std::ostringstream os;
    reg.writeJson(os);
    JsonValue root = JsonParser(os.str()).parse();

    EXPECT_EQ(root.at("schema").str, "ca.metrics.v1");
    const JsonValue &metrics = root.at("metrics");
    EXPECT_EQ(metrics.at("ca.test.counter").at("value").number, 7.0);
    EXPECT_EQ(metrics.at("ca.test.gauge").at("value").number, 1.25);
    const JsonValue &hist = metrics.at("ca.test.hist");
    EXPECT_EQ(hist.at("count").number, 3.0);
    EXPECT_EQ(hist.at("sum").number, 517.0);
    EXPECT_EQ(hist.at("max").number, 512.0);
    EXPECT_EQ(hist.at("buckets").items.size(), 3u); // 3 non-empty buckets
    for (const JsonValue &b : hist.at("buckets").items) {
        EXPECT_LE(b.at("lo").number, b.at("hi").number);
        EXPECT_GT(b.at("count").number, 0.0);
    }
}

TEST_F(TelemetryTest, MetricsCsvHasHeaderAndRows)
{
    MetricsRegistry reg;
    reg.counter("ca.test.a").add(1);
    reg.histogram("ca.test.b").observe(9);
    std::ostringstream os;
    reg.writeCsv(os);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "name,kind,value,count,sum,max,mean");
    int rows = 0;
    while (std::getline(is, line))
        ++rows;
    EXPECT_EQ(rows, 2);
}

TEST_F(TelemetryTest, TraceChromeJsonWellFormed)
{
    TraceCollector tc;
    tc.record("span \"quoted\"", "cat", 10, 5);
    tc.record("plain", "ca", 20, 1);

    std::ostringstream os;
    tc.writeChromeTrace(os);
    JsonValue root = JsonParser(os.str()).parse();

    const JsonValue &events = root.at("traceEvents");
    ASSERT_EQ(events.items.size(), 2u);
    for (const JsonValue &ev : events.items) {
        EXPECT_EQ(ev.at("ph").str, "X");
        EXPECT_TRUE(ev.has("name"));
        EXPECT_TRUE(ev.has("ts"));
        EXPECT_TRUE(ev.has("dur"));
        EXPECT_TRUE(ev.has("pid"));
        EXPECT_TRUE(ev.has("tid"));
    }
    EXPECT_EQ(events.items[0].at("name").str, "span \"quoted\"");
    EXPECT_EQ(root.at("otherData").at("schema").str, "ca.trace.v1");
}

TEST_F(TelemetryTest, TraceCapacityBoundsMemory)
{
    TraceCollector tc;
    tc.setCapacity(3);
    for (int i = 0; i < 10; ++i)
        tc.record("e", "ca", 0, 1);
    EXPECT_EQ(tc.size(), 3u);
    EXPECT_EQ(tc.dropped(), 7u);
    tc.clear();
    EXPECT_EQ(tc.size(), 0u);
    EXPECT_EQ(tc.dropped(), 0u);
}

TEST_F(TelemetryTest, ScopedTimerRespectsRuntimeToggle)
{
    TraceCollector &tc = TraceCollector::global();
    size_t before = tc.size();
    {
        CA_TRACE_SCOPE("ca.test.span");
    }
#if CA_TELEMETRY
    EXPECT_EQ(tc.size(), before + 1);
#endif
    telemetry::setEnabled(false);
    {
        CA_TRACE_SCOPE("ca.test.disabled_span");
    }
    telemetry::setEnabled(true);
#if CA_TELEMETRY
    EXPECT_EQ(tc.size(), before + 1); // disabled span not recorded
#else
    EXPECT_EQ(tc.size(), before);
#endif
}

// --------------------------------------------------- pipeline smoke test

TEST_F(TelemetryTest, PipelineEmitsExpectedSpansAndCounters)
{
    Nfa nfa = compileRuleset({"abc[0-9]+", "cart?", "GET /[a-z]+"});
    MappedAutomaton mapped = mapPerformance(nfa);

    InputSpec spec;
    spec.kind = StreamKind::Text;
    std::vector<uint8_t> input = buildInput(spec, 4096, 7);
    CacheAutomatonSim sim(mapped);
    SimResult res = sim.run(input);
    EXPECT_EQ(res.symbols, input.size());

#if CA_TELEMETRY
    std::set<std::string> names;
    for (const auto &ev : TraceCollector::global().events())
        names.insert(ev.name);
    for (const char *expected :
         {"ca.nfa.compile_ruleset", "ca.partition.cc_analysis",
          "ca.compiler.map", "ca.compiler.map_attempt", "ca.sim.run"}) {
        EXPECT_TRUE(names.count(expected))
            << "missing pipeline span " << expected;
    }

    auto &reg = MetricsRegistry::global();
    EXPECT_EQ(reg.counter("ca.sim.symbols").value(), input.size());
    EXPECT_EQ(reg.counter("ca.nfa.patterns_compiled").value(), 3u);
    EXPECT_GE(reg.counter("ca.compiler.partitions_mapped").value(), 1u);
    EXPECT_GT(reg.counter("ca.sim.active_states").value(), 0u);
    EXPECT_EQ(reg.histogram("ca.sim.feed_symbols").count(), 1u);
    EXPECT_EQ(reg.histogram("ca.sim.feed_symbols").sum(), input.size());

    // The full registry dump stays parseable JSON.
    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_NO_THROW(JsonParser(os.str()).parse());

    // And the real trace export too.
    std::ostringstream ts;
    TraceCollector::global().writeChromeTrace(ts);
    JsonValue troot = JsonParser(ts.str()).parse();
    EXPECT_GE(troot.at("traceEvents").items.size(), 5u);
#endif
}

} // namespace
} // namespace ca
