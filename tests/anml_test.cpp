/**
 * @file
 * Tests for the ANML reader/writer.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/nfa_engine.h"
#include "core/error.h"
#include "nfa/anml.h"
#include "nfa/glushkov.h"

namespace ca {
namespace {

const char *kSample = R"(<anml version="1.0">
<automata-network id="example">
  <state-transition-element id="s0" symbol-set="[ab]" start="all-input">
    <activate-on-match element="s1"/>
  </state-transition-element>
  <state-transition-element id="s1" symbol-set="[c]">
    <activate-on-match element="s2"/>
    <activate-on-match element="s1"/>
  </state-transition-element>
  <state-transition-element id="s2" symbol-set="*">
    <report-on-match reportcode="42"/>
  </state-transition-element>
</automata-network>
</anml>)";

TEST(Anml, ParsesStatesAndAttributes)
{
    Nfa nfa = parseAnml(kSample);
    ASSERT_EQ(nfa.numStates(), 3u);
    EXPECT_EQ(nfa.state(0).name, "s0");
    EXPECT_EQ(nfa.state(0).start, StartType::AllInput);
    EXPECT_TRUE(nfa.state(0).label.test('a'));
    EXPECT_TRUE(nfa.state(0).label.test('b'));
    EXPECT_FALSE(nfa.state(0).label.test('c'));
    EXPECT_EQ(nfa.state(1).start, StartType::None);
    EXPECT_TRUE(nfa.state(2).label.isAll());
    EXPECT_TRUE(nfa.state(2).report);
    EXPECT_EQ(nfa.state(2).reportId, 42u);
}

TEST(Anml, ParsesTransitionsIncludingSelfLoop)
{
    Nfa nfa = parseAnml(kSample);
    ASSERT_EQ(nfa.state(0).out.size(), 1u);
    ASSERT_EQ(nfa.state(1).out.size(), 2u);
    EXPECT_EQ(nfa.numTransitions(), 3u);
}

TEST(Anml, ParsedAutomatonExecutes)
{
    Nfa nfa = parseAnml(kSample);
    NfaEngine eng(nfa);
    std::string text = "xacy";
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].offset, 3u);
    EXPECT_EQ(reports[0].reportId, 42u);
}

TEST(Anml, ForwardReferencesResolve)
{
    const char *doc = R"(<anml><automata-network id="f">
      <state-transition-element id="a" symbol-set="[x]" start="all-input">
        <activate-on-match element="zzz"/>
      </state-transition-element>
      <state-transition-element id="zzz" symbol-set="[y]">
        <report-on-match reportcode="1"/>
      </state-transition-element>
    </automata-network></anml>)";
    Nfa nfa = parseAnml(doc);
    EXPECT_EQ(nfa.numTransitions(), 1u);
    EXPECT_EQ(nfa.state(0).out.at(0), 1u);
}

TEST(Anml, StartOfDataParsed)
{
    const char *doc = R"(<anml>
      <state-transition-element id="a" symbol-set="[x]"
          start="start-of-data">
        <report-on-match reportcode="0"/>
      </state-transition-element></anml>)";
    Nfa nfa = parseAnml(doc);
    EXPECT_EQ(nfa.state(0).start, StartType::StartOfData);
}

TEST(Anml, MalformedDocumentsThrow)
{
    EXPECT_THROW(parseAnml("<state-transition-element symbol-set=\"[a]\"/>"),
                 CaError);  // missing id
    EXPECT_THROW(parseAnml("<state-transition-element id=\"a\"/>"),
                 CaError);  // missing symbol-set
    EXPECT_THROW(
        parseAnml(R"(<state-transition-element id="a" symbol-set="[x]">
                       <activate-on-match element="nope"/>
                     </state-transition-element>)"),
        CaError);  // unknown reference
    EXPECT_THROW(
        parseAnml(R"(<state-transition-element id="a" symbol-set="[x]"/>
                     <state-transition-element id="a" symbol-set="[y]"/>)"),
        CaError);  // duplicate id
    EXPECT_THROW(parseAnml("<unterminated"), CaError);
}

TEST(Anml, BadStartTypeThrows)
{
    EXPECT_THROW(parseAnml(
        R"(<state-transition-element id="a" symbol-set="[x]"
            start="sometimes"/>)"), CaError);
}

TEST(Anml, CommentsSkipped)
{
    const char *doc = R"(<anml><!-- a <comment> with tags -->
      <state-transition-element id="a" symbol-set="[x]"
        start="all-input"/></anml>)";
    EXPECT_EQ(parseAnml(doc).numStates(), 1u);
}

TEST(Anml, EntitiesUnescaped)
{
    const char *doc = R"(<state-transition-element id="x&amp;y"
        symbol-set="[a]" start="all-input"/>)";
    Nfa nfa = parseAnml(doc);
    EXPECT_EQ(nfa.state(0).name, "x&y");
}

TEST(Anml, RoundTripPreservesStructure)
{
    Nfa orig = compileRuleset({"ab+c", "[x-z]{2}q"});
    std::string doc = writeAnml(orig, "rt");
    Nfa back = parseAnml(doc);
    ASSERT_EQ(back.numStates(), orig.numStates());
    ASSERT_EQ(back.numTransitions(), orig.numTransitions());
    for (StateId s = 0; s < orig.numStates(); ++s) {
        EXPECT_EQ(back.state(s).label, orig.state(s).label) << "state " << s;
        EXPECT_EQ(back.state(s).start, orig.state(s).start);
        EXPECT_EQ(back.state(s).report, orig.state(s).report);
        EXPECT_EQ(back.state(s).reportId, orig.state(s).reportId);
    }
}

TEST(Anml, RoundTripPreservesBehaviour)
{
    Nfa orig = compileRuleset({"he[l1]lo", "wor.d"});
    Nfa back = parseAnml(writeAnml(orig));
    std::string text = "xx hello world he1lo worxd";
    NfaEngine a(orig);
    NfaEngine b(back);
    EXPECT_EQ(a.run(reinterpret_cast<const uint8_t *>(text.data()),
                    text.size()),
              b.run(reinterpret_cast<const uint8_t *>(text.data()),
                    text.size()));
}

TEST(Anml, FileRoundTrip)
{
    Nfa orig = compileRuleset({"abc"});
    std::string path = ::testing::TempDir() + "/ca_anml_test.anml";
    saveAnmlFile(orig, path);
    Nfa back = loadAnmlFile(path);
    EXPECT_EQ(back.numStates(), orig.numStates());
    std::remove(path.c_str());
}

TEST(Anml, MissingFileThrows)
{
    EXPECT_THROW(loadAnmlFile("/nonexistent/path.anml"), CaError);
}

} // namespace
} // namespace ca
