/**
 * @file
 * Tests for the observability plane's telemetry core
 * (docs/OBSERVABILITY.md): histogram percentiles, registry snapshots
 * with interval deltas and rates, the Prometheus text exposition, the
 * CASN binary snapshot image (round-trip + hostile-input hardening),
 * and snapshot consistency under concurrent mutation (the TSan config
 * runs this suite via its `runtime` label).
 *
 * Everything here must behave in BOTH build configs: with
 * -DCA_TELEMETRY=OFF the macros compile out but the registry, snapshot,
 * and exposition machinery still work — sections guarded with
 * `#if CA_TELEMETRY` are the ones that depend on macro-recorded data.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "core/error.h"
#include "core/rng.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace ca::telemetry {
namespace {

// --- Histogram percentiles ---------------------------------------------

TEST(HistogramPercentile, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0.0);
    EXPECT_EQ(h.p99(), 0.0);
}

TEST(HistogramPercentile, SingleSampleQuantizesToItsBucket)
{
    // Log2 buckets: one sample of 1000 lands in [512, 1023]; every
    // quantile reports that bucket's low edge (frac 0 for n == 1),
    // never more than the exact tracked max.
    Histogram h;
    h.observe(1000);
    for (double q : {0.5, 0.99, 1.0}) {
        double est = h.percentile(q);
        EXPECT_GE(est, static_cast<double>(
                           Histogram::bucketLow(Histogram::bucketIndex(1000))));
        EXPECT_LE(est, 1000.0);
    }
}

TEST(HistogramPercentile, TopQuantileNeverExceedsMax)
{
    Histogram h;
    for (uint64_t v : {3u, 900u, 17u, 250000u, 42u})
        h.observe(v);
    // max is tracked exactly, so even in the sparse top bucket
    // ([131072, 262143] here) the estimate is capped at the true
    // maximum rather than the bucket's high edge.
    double top = h.percentile(1.0);
    EXPECT_GE(top, static_cast<double>(
                       Histogram::bucketLow(Histogram::bucketIndex(250000))));
    EXPECT_LE(top, 250000.0);
}

TEST(HistogramPercentile, UniformSamplesLandInRightBucket)
{
    Histogram h;
    for (uint64_t v = 1; v <= 1000; ++v)
        h.observe(v);
    // Log2 buckets: the estimate must land in the same power-of-two
    // bracket as the true order statistic.
    double p50 = h.p50();
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1023.0);
    double p99 = h.p99();
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1000.0);
    // Ordering between quantiles always holds.
    EXPECT_LE(h.p50(), h.p90());
    EXPECT_LE(h.p90(), h.p99());
}

TEST(HistogramPercentile, ZeroesStayZero)
{
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.observe(0);
    h.observe(1 << 20);
    EXPECT_EQ(h.p50(), 0.0);
    EXPECT_EQ(h.percentile(1.0), static_cast<double>(1 << 20));
}

TEST(HistogramPercentile, PercentileOfMatchesLiveHistogram)
{
    Histogram h;
    uint64_t buckets[Histogram::kNumBuckets] = {};
    Rng rng(42);
    for (int i = 0; i < 500; ++i) {
        uint64_t v = rng.next() % 100000;
        h.observe(v);
        ++buckets[Histogram::bucketIndex(v)];
    }
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(h.percentile(q),
                  Histogram::percentileOf(buckets, h.max(), q));
}

// --- Snapshot capture, delta, rates ------------------------------------

TEST(Snapshot, CapturesRegisteredMetrics)
{
    MetricsRegistry reg;
    reg.counter("obs.c").add(5);
    reg.gauge("obs.g").set(2.5);
    reg.histogram("obs.h").observe(100);
    reg.histogram("obs.h").observe(200);

    MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.size(), 3u);
    ASSERT_NE(s.find("obs.c"), nullptr);
    EXPECT_EQ(s.find("obs.c")->counter, 5u);
    ASSERT_NE(s.find("obs.g"), nullptr);
    EXPECT_DOUBLE_EQ(s.find("obs.g")->gauge, 2.5);
    const MetricValue *h = s.find("obs.h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->sum, 300u);
    EXPECT_EQ(h->max, 200u);
    EXPECT_EQ(h->buckets.size(),
              static_cast<size_t>(Histogram::kNumBuckets));
    EXPECT_GT(h->percentile(0.5), 0.0);
    EXPECT_EQ(s.find("obs.nope"), nullptr);
}

TEST(Snapshot, DeltaSubtractsCountersKeepsGauges)
{
    MetricsRegistry reg;
    reg.counter("d.c").add(10);
    reg.gauge("d.g").set(1.0);
    reg.histogram("d.h").observe(64);
    MetricsSnapshot before = reg.snapshot();

    reg.counter("d.c").add(7);
    reg.gauge("d.g").set(9.0);
    reg.histogram("d.h").observe(64);
    reg.histogram("d.h").observe(64);
    reg.counter("d.new").add(3); // appears between captures
    MetricsSnapshot after = reg.snapshot();

    MetricsSnapshot delta = after.deltaSince(before);
    EXPECT_EQ(delta.find("d.c")->counter, 7u);
    EXPECT_DOUBLE_EQ(delta.find("d.g")->gauge, 9.0); // newer value
    EXPECT_EQ(delta.find("d.h")->count, 2u);
    EXPECT_EQ(delta.find("d.h")->sum, 128u);
    ASSERT_NE(delta.find("d.new"), nullptr); // included whole
    EXPECT_EQ(delta.find("d.new")->counter, 3u);

    // A reset between captures clamps to the post-reset value instead
    // of underflowing.
    reg.resetAll();
    reg.counter("d.c").add(2);
    MetricsSnapshot post_reset = reg.snapshot();
    EXPECT_EQ(post_reset.deltaSince(after).find("d.c")->counter, 2u);
}

TEST(Snapshot, RatesDivideByElapsedMonotonicTime)
{
    MetricsRegistry reg;
    reg.counter("r.c").add(100);
    MetricsSnapshot a = reg.snapshot();
    reg.counter("r.c").add(50);
    reg.histogram("r.h").observe(1);
    reg.histogram("r.h").observe(1);
    MetricsSnapshot b = reg.snapshot();

    // Pin the interval so the expected rates are exact.
    a.monotonicMicros = 1'000'000;
    b.monotonicMicros = 3'000'000; // 2 s elapsed
    std::map<std::string, double> rates = b.ratesSince(a);
    EXPECT_DOUBLE_EQ(rates.at("r.c"), 25.0);
    EXPECT_DOUBLE_EQ(rates.at("r.h"), 1.0);

    // Zero or negative interval: no rates, not a division by zero.
    b.monotonicMicros = a.monotonicMicros;
    EXPECT_TRUE(b.ratesSince(a).empty());
}

// --- Prometheus exposition ---------------------------------------------

TEST(Prometheus, NameSanitization)
{
    EXPECT_EQ(prometheusName("ca.net.bytes_in"), "ca_net_bytes_in");
    EXPECT_EQ(prometheusName("weird metric/name"), "weird_metric_name");
    EXPECT_EQ(prometheusName("9starts_with_digit"),
              "_9starts_with_digit");
    EXPECT_EQ(prometheusName("ok:colons_kept"), "ok:colons_kept");
}

TEST(Prometheus, TextFormatCoversEveryKind)
{
    MetricsRegistry reg;
    reg.counter("p.count").add(42);
    reg.gauge("p.gauge").set(0.5);
    reg.histogram("p.hist").observe(3);
    reg.histogram("p.hist").observe(300);
    std::string text = reg.snapshot().prometheusText();

    EXPECT_NE(text.find("# TYPE p_count_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("p_count_total 42\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE p_gauge gauge\n"), std::string::npos);
    EXPECT_NE(text.find("p_gauge 0.5\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE p_hist histogram\n"), std::string::npos);
    EXPECT_NE(text.find("p_hist_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("p_hist_sum 303\n"), std::string::npos);
    EXPECT_NE(text.find("p_hist_count 2\n"), std::string::npos);

    // Every non-comment line is `name[{labels}] value` — parseable by
    // a scraper: two space-separated fields, finite numeric second.
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        std::string line = text.substr(start, end - start);
        start = (end == std::string::npos) ? text.size() : end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_NO_THROW({
            double v = std::stod(line.substr(sp + 1));
            EXPECT_TRUE(std::isfinite(v)) << line;
        }) << line;
    }
}

TEST(Prometheus, CumulativeBucketsAreMonotone)
{
    MetricsRegistry reg;
    Rng rng(7);
    for (int i = 0; i < 200; ++i)
        reg.histogram("m.h").observe(rng.next() % 4096);
    std::string text = reg.snapshot().prometheusText();
    uint64_t prev = 0;
    size_t pos = 0;
    int lines = 0;
    while ((pos = text.find("m_h_bucket{", pos)) != std::string::npos) {
        size_t sp = text.find(' ', pos);
        uint64_t cum = std::stoull(text.substr(sp + 1));
        EXPECT_GE(cum, prev);
        prev = cum;
        ++lines;
        pos = sp;
    }
    EXPECT_GT(lines, 1);
    EXPECT_EQ(prev, 200u); // +Inf bucket equals the sample count
}

// --- CASN binary image --------------------------------------------------

MetricsSnapshot
sampleSnapshot()
{
    MetricsRegistry reg;
    reg.counter("s.counter").add(123456789);
    reg.gauge("s.gauge").set(-2.75);
    reg.gauge("s.weird/name with spaces").set(1.0);
    Rng rng(99);
    for (int i = 0; i < 300; ++i)
        reg.histogram("s.hist").observe(rng.next() % (1u << 24));
    return reg.snapshot();
}

TEST(CasnImage, RoundTripPreservesEverything)
{
    MetricsSnapshot s = sampleSnapshot();
    std::vector<uint8_t> img = s.serialize();
    ASSERT_GE(img.size(), 4u);
    EXPECT_EQ(0, std::memcmp(img.data(), "CASN", 4)); // magic, LE

    MetricsSnapshot d = MetricsSnapshot::deserialize(img);
    EXPECT_EQ(d.monotonicMicros, s.monotonicMicros);
    ASSERT_EQ(d.size(), s.size());
    for (const auto &[name, v] : s.metrics) {
        const MetricValue *dv = d.find(name);
        ASSERT_NE(dv, nullptr) << name;
        EXPECT_EQ(dv->kind, v.kind);
        EXPECT_EQ(dv->counter, v.counter);
        EXPECT_DOUBLE_EQ(dv->gauge, v.gauge);
        EXPECT_EQ(dv->count, v.count);
        EXPECT_EQ(dv->sum, v.sum);
        EXPECT_EQ(dv->max, v.max);
        EXPECT_EQ(dv->buckets, v.buckets);
    }
    // Derived quantities survive the trip exactly.
    EXPECT_EQ(d.find("s.hist")->p99(), s.find("s.hist")->p99());
}

TEST(CasnImage, EmptySnapshotRoundTrips)
{
    MetricsRegistry reg;
    MetricsSnapshot s = reg.snapshot();
    MetricsSnapshot d = MetricsSnapshot::deserialize(s.serialize());
    EXPECT_TRUE(d.empty());
}

TEST(CasnImage, TruncationSweepThrowsNeverCrashes)
{
    std::vector<uint8_t> img = sampleSnapshot().serialize();
    for (size_t cut = 0; cut < img.size(); ++cut) {
        try {
            MetricsSnapshot::deserialize(img.data(), cut);
            FAIL() << "prefix of " << cut << " bytes decoded";
        } catch (const CaError &) {
            // expected: every strict prefix is ill-formed
        }
    }
}

TEST(CasnImage, MutationFuzzThrowsOrDecodes)
{
    std::vector<uint8_t> img = sampleSnapshot().serialize();
    Rng rng(0xCA51);
    for (int round = 0; round < 2000; ++round) {
        std::vector<uint8_t> bad = img;
        // 1-4 byte flips anywhere in the image.
        int flips = 1 + static_cast<int>(rng.next() % 4);
        for (int i = 0; i < flips; ++i)
            bad[rng.next() % bad.size()] ^=
                static_cast<uint8_t>(1 + rng.next() % 255);
        try {
            MetricsSnapshot d = MetricsSnapshot::deserialize(bad);
            (void)d.prometheusText(); // decoded images must render too
        } catch (const CaError &) {
            // rejection is fine; UB/UAF/alloc-bombs are what TSan/ASan
            // and the process surviving this loop rule out
        }
    }
}

TEST(CasnImage, HostileMetricCountDoesNotAllocate)
{
    // Header claiming 2^31 metrics with a 1-byte body must be rejected
    // by the pre-allocation guard, not by the OOM killer.
    MetricsRegistry reg;
    reg.counter("x").add(1);
    std::vector<uint8_t> img = reg.snapshot().serialize();
    // metricCount lives after magic(4) + version(2) + micros(8).
    img[14] = 0xff;
    img[15] = 0xff;
    img[16] = 0xff;
    img[17] = 0x7f;
    EXPECT_THROW(MetricsSnapshot::deserialize(img), CaError);
}

// --- Concurrency: snapshot while mutating (TSan-checked) ---------------

TEST(SnapshotConcurrency, SnapshotWhileMutatingIsConsistent)
{
    MetricsRegistry reg;
    std::atomic<bool> stop{false};
    std::thread writers[3];
    for (int t = 0; t < 3; ++t)
        writers[t] = std::thread([&reg, &stop, t] {
            std::string cname = "cc.c" + std::to_string(t);
            std::string hname = "cc.h" + std::to_string(t);
            Counter &c = reg.counter(cname);
            Histogram &h = reg.histogram(hname);
            uint64_t v = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                c.add(1);
                h.observe(v++ % 1024);
            }
        });

    for (int i = 0; i < 200; ++i) {
        MetricsSnapshot s = reg.snapshot();
        for (const auto &[name, v] : s.metrics) {
            if (v.kind != MetricKind::Histogram)
                continue;
            // Per-metric consistency: the copied buckets sum to the
            // copied count (count is derived from the same array).
            uint64_t bucket_total = 0;
            for (uint64_t b : v.buckets)
                bucket_total += b;
            EXPECT_EQ(bucket_total, v.count) << name;
        }
        // Serialization of a concurrent capture is always well-formed.
        MetricsSnapshot d = MetricsSnapshot::deserialize(s.serialize());
        EXPECT_EQ(d.size(), s.size());
    }
    stop.store(true);
    for (auto &w : writers)
        w.join();

    // Final capture equals the quiesced truth.
    MetricsSnapshot end = reg.snapshot();
    for (int t = 0; t < 3; ++t) {
        std::string cname = "cc.c" + std::to_string(t);
        std::string hname = "cc.h" + std::to_string(t);
        EXPECT_EQ(end.find(cname)->counter,
                  reg.counter(cname).value());
        EXPECT_EQ(end.find(hname)->count,
                  reg.histogram(hname).count());
    }
}

// --- Build-config behavior ---------------------------------------------

TEST(BuildConfig, GlobalRegistrySnapshotWorksInBothConfigs)
{
    // Whatever the config, capturing and serializing the global
    // registry must work; with telemetry compiled out it is empty
    // unless someone records into it directly (the macros do not).
    MetricsSnapshot s = MetricsRegistry::global().snapshot();
    std::vector<uint8_t> img = s.serialize();
    MetricsSnapshot d = MetricsSnapshot::deserialize(img);
    EXPECT_EQ(d.size(), s.size());
#if !CA_TELEMETRY
    // Compiled out: the CA_* macros above other tests never ran, and
    // nothing in this test recorded globally.
    SUCCEED();
#endif
}

} // namespace
} // namespace ca::telemetry
