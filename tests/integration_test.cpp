/**
 * @file
 * End-to-end integration tests: build → map → configure → simulate →
 * cross-check, on scaled-down versions of the paper's benchmarks, under
 * both design policies.
 */
#include <gtest/gtest.h>

#include <set>

#include "arch/comparison.h"
#include "arch/energy.h"
#include "baseline/dfa_engine.h"
#include "baseline/nfa_engine.h"
#include "compiler/config_image.h"
#include "compiler/mapping.h"
#include "nfa/analysis.h"
#include "nfa/dfa.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "workload/suite.h"

namespace ca {
namespace {

constexpr double kScale = 0.05;
constexpr uint64_t kSeed = 1;

std::set<std::pair<uint64_t, uint32_t>>
asSet(const std::vector<Report> &reports)
{
    std::set<std::pair<uint64_t, uint32_t>> out;
    for (const Report &r : reports)
        out.emplace(r.offset, r.reportId);
    return out;
}

/** Full pipeline on one benchmark at small scale under one policy. */
void
runPipeline(const Benchmark &b, bool space)
{
    Nfa nfa = b.build(kScale, kSeed);
    nfa.validate();

    MappedAutomaton m = space ? mapSpace(nfa) : mapPerformance(nfa);
    ASSERT_GT(m.numPartitions(), 0u);

    // Configuration image must materialize without wire exhaustion.
    ConfigImage img = buildConfigImage(m);
    EXPECT_EQ(img.partitions.size(), m.numPartitions());

    auto input = benchmarkInput(b, 32 << 10, 7, kScale, kSeed);
    CacheAutomatonSim sim(m);
    SimResult res = sim.run(input);

    NfaEngine oracle(m.nfa());
    EXPECT_EQ(res.reports, oracle.run(input)) << b.name;
}

class EndToEnd : public ::testing::TestWithParam<int>
{
};

TEST_P(EndToEnd, PerformancePolicy)
{
    runPipeline(benchmarkSuite()[GetParam()], /*space=*/false);
}

TEST_P(EndToEnd, SpacePolicy)
{
    runPipeline(benchmarkSuite()[GetParam()], /*space=*/true);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EndToEnd, ::testing::Range(0, 20),
                         [](const auto &info) {
                             return benchmarkSuite()[info.param].name;
                         });

TEST(EndToEnd, SpaceAndPerformanceAgreeOnReports)
{
    // The two policies run *different* automata (CA_S is optimized) but
    // must produce the same (offset, reportId) stream.
    const Benchmark &b = findBenchmark("EntityResolution");
    Nfa nfa = b.build(kScale, kSeed);
    MappedAutomaton mp = mapPerformance(nfa);
    MappedAutomaton ms = mapSpace(nfa);
    auto input = benchmarkInput(b, 32 << 10, 3, kScale, kSeed);
    CacheAutomatonSim simp(mp);
    CacheAutomatonSim sims(ms);
    auto rp = asSet(simp.run(input).reports);
    auto rs = asSet(sims.run(input).reports);
    EXPECT_EQ(rp, rs);
    EXPECT_FALSE(rp.empty());
}

TEST(EndToEnd, DfaBaselineAgreesOnSmallBenchmark)
{
    const Benchmark &b = findBenchmark("Bro217");
    Nfa nfa = b.build(kScale, kSeed);
    Dfa dfa = buildDfa(nfa, 1 << 16);
    auto input = benchmarkInput(b, 16 << 10, 9, kScale, kSeed);
    NfaEngine oracle(nfa);
    EXPECT_EQ(asSet(runDfa(dfa, input)), asSet(oracle.run(input)));
}

TEST(EndToEnd, SpaceUsesFewerOrEqualStatesEverywhere)
{
    for (const Benchmark &b : benchmarkSuite()) {
        Nfa nfa = b.build(kScale, kSeed);
        MappedAutomaton mp = mapPerformance(nfa);
        MappedAutomaton ms = mapSpace(nfa);
        EXPECT_LE(ms.nfa().numStates(), mp.nfa().numStates()) << b.name;
    }
}

TEST(EndToEnd, EnergyPipelineProducesSaneNumbers)
{
    const Benchmark &b = findBenchmark("Brill");
    Nfa nfa = b.build(kScale, kSeed);
    MappedAutomaton m = mapSpace(nfa);
    auto input = benchmarkInput(b, 32 << 10, 5, kScale, kSeed);
    CacheAutomatonSim sim(m);
    SimResult res = sim.run(input);

    EnergyBreakdown e =
        computeEnergyPerSymbol(m.design(), res.activity());
    EXPECT_GT(e.totalPj(), 0.0);
    // Ideal AP with the same mapping must cost more (§5.3: ~3x).
    double ap = idealApEnergyPerSymbolPj(res.activity(), m.design());
    EXPECT_GT(ap, e.totalPj());
    // Average power below the slice's share of TDP.
    EXPECT_LT(averagePowerW(e.totalPj(), m.design().operatingFreqHz),
              160.0);
}

TEST(EndToEnd, CaseStudyEntityResolutionSpansFewPartitions)
{
    // §3.3: CA_S EntityResolution packs densely; at 5% scale the space
    // mapping must use at most half the partitions of the performance
    // mapping (paper: 5672 vs 95136 states).
    const Benchmark &b = findBenchmark("EntityResolution");
    Nfa nfa = b.build(kScale, kSeed);
    MappedAutomaton mp = mapPerformance(nfa);
    MappedAutomaton ms = mapSpace(nfa);
    EXPECT_LT(ms.nfa().numStates(), mp.nfa().numStates() * 3 / 4);
    EXPECT_LE(ms.numPartitions(), mp.numPartitions());
}

TEST(EndToEnd, ThroughputIndependentOfBenchmark)
{
    // Deterministic 1 symbol/cycle: simulated cycle count depends only on
    // stream length, not on the automaton.
    auto input_len = 4096u;
    for (const char *name : {"Fermi", "ExactMatch"}) {
        const Benchmark &b = findBenchmark(name);
        Nfa nfa = b.build(kScale, kSeed);
        MappedAutomaton m = mapPerformance(nfa);
        CacheAutomatonSim sim(m);
        auto input = benchmarkInput(b, input_len, 2, kScale, kSeed);
        SimResult res = sim.run(input);
        EXPECT_EQ(res.cycles, input_len + 2) << name;
    }
}

} // namespace
} // namespace ca
