/**
 * @file
 * Tests for the architecture models: switch specs (Table 2), pipeline
 * timing (Tables 3 & 4), reachability/area (Figure 10), geometry, energy,
 * and the accelerator comparison constants (Table 5).
 */
#include <gtest/gtest.h>

#include "arch/comparison.h"
#include "arch/design.h"
#include "arch/energy.h"
#include "arch/geometry.h"
#include "arch/params.h"
#include "arch/sram_timing.h"
#include "arch/switch_model.h"
#include "core/error.h"

namespace ca {
namespace {

// ---------------------------------------------------------------- Table 2

TEST(SwitchModel, LSwitchMatchesTable2)
{
    SwitchSpec s = lSwitchSpec();
    EXPECT_EQ(s.inputs, 280);
    EXPECT_EQ(s.outputs, 256);
    EXPECT_DOUBLE_EQ(s.delayPs, 163.5);
    EXPECT_DOUBLE_EQ(s.energyPjPerBit, 0.191);
    EXPECT_DOUBLE_EQ(s.areaMm2, 0.033);
    EXPECT_EQ(s.configBits(), 280LL * 256);
}

TEST(SwitchModel, GSwitchesMatchTable2)
{
    SwitchSpec g1p = gSwitch1WayPerf();
    EXPECT_DOUBLE_EQ(g1p.delayPs, 128.0);
    EXPECT_DOUBLE_EQ(g1p.energyPjPerBit, 0.16);
    EXPECT_DOUBLE_EQ(g1p.areaMm2, 0.011);

    SwitchSpec g1s = gSwitch1WaySpace();
    EXPECT_DOUBLE_EQ(g1s.delayPs, 163.0);
    EXPECT_DOUBLE_EQ(g1s.areaMm2, 0.032);

    SwitchSpec g4 = gSwitch4WaySpace();
    EXPECT_DOUBLE_EQ(g4.delayPs, 327.0);
    EXPECT_DOUBLE_EQ(g4.energyPjPerBit, 0.381);
    EXPECT_DOUBLE_EQ(g4.areaMm2, 0.1293);
}

TEST(SwitchModel, InterpolationMonotone)
{
    double d64 = modelSwitch("x", 64, 64).delayPs;
    double d128 = modelSwitch("x", 128, 128).delayPs;
    double d256 = modelSwitch("x", 256, 256).delayPs;
    double d1024 = modelSwitch("x", 1024, 1024).delayPs;
    EXPECT_LT(d64, d128);
    EXPECT_LT(d128, d256);
    EXPECT_LT(d256, d1024);
}

TEST(SwitchModel, AnchorsReproducedByInterpolator)
{
    EXPECT_NEAR(modelSwitch("x", 128, 128).delayPs, 128.0, 1e-9);
    EXPECT_NEAR(modelSwitch("x", 256, 256).delayPs, 163.5, 1e-9);
    EXPECT_NEAR(modelSwitch("x", 512, 512).delayPs, 327.0, 1e-9);
}

TEST(SwitchModel, RectangularAreaScalesByCrossPoints)
{
    double square = modelSwitch("x", 256, 256).areaMm2;
    double half = modelSwitch("x", 256, 128).areaMm2;
    EXPECT_NEAR(half, square / 2, 1e-12);
}

TEST(SwitchModel, InvalidRadixThrows)
{
    EXPECT_THROW(modelSwitch("x", 0, 4), CaError);
    EXPECT_THROW(modelSwitch("x", 4, -1), CaError);
}

// ---------------------------------------------------------------- Table 3

TEST(Timing, CaPStageDelaysMatchTable3)
{
    PipelineTiming t = computeTiming(designCaP());
    EXPECT_NEAR(t.stateMatchPs, 438.0, 1.0);
    EXPECT_NEAR(t.gSwitchPs, 227.0, 1.0);
    EXPECT_NEAR(t.lSwitchPs, 263.0, 1.0);
    // Max frequency ~2.3 GHz; operated at 2 GHz.
    EXPECT_NEAR(t.maxFreqHz() / 1e9, 2.28, 0.05);
    EXPECT_DOUBLE_EQ(designCaP().operatingFreqHz, 2.0e9);
}

TEST(Timing, CaSStageDelaysMatchTable3)
{
    PipelineTiming t = computeTiming(designCaS());
    EXPECT_NEAR(t.stateMatchPs, 687.0, 2.0);
    EXPECT_NEAR(t.gSwitchPs, 468.0, 2.0);
    EXPECT_NEAR(t.lSwitchPs, 304.0, 2.0);
    EXPECT_NEAR(t.maxFreqHz() / 1e9, 1.4, 0.06);
    EXPECT_DOUBLE_EQ(designCaS().operatingFreqHz, 1.2e9);
}

TEST(Timing, ClockPeriodIsSlowestStage)
{
    PipelineTiming t = computeTiming(designCaP());
    EXPECT_DOUBLE_EQ(t.clockPeriodPs(), t.stateMatchPs);
}

// ---------------------------------------------------------------- Table 4

TEST(Timing, WithoutSenseAmpCyclingMatchesTable4)
{
    TimingOptions opts;
    opts.senseAmpCycling = false;
    // CA_P: 4 full array cycles = 1024 ps -> ~1 GHz.
    PipelineTiming tp = computeTiming(designCaP(), opts);
    EXPECT_NEAR(tp.stateMatchPs, 1024.0, 1.0);
    EXPECT_NEAR(tp.maxFreqHz() / 1e9, 1.0, 0.05);
    // CA_S: 8 cycles = 2048 ps -> ~500 MHz.
    PipelineTiming ts = computeTiming(designCaS(), opts);
    EXPECT_NEAR(ts.stateMatchPs, 2048.0, 1.0);
    EXPECT_NEAR(ts.maxFreqHz() / 1e9, 0.5, 0.03);
}

TEST(Timing, HBusWiresMatchTable4)
{
    TimingOptions opts;
    opts.useHBusWires = true;
    // CA_P with 300 ps/mm H-Bus: G stage 128 + 450 = 578 ps -> ~1.7 GHz
    // max (operated 1.5 GHz in the paper).
    PipelineTiming tp = computeTiming(designCaP(), opts);
    EXPECT_NEAR(tp.gSwitchPs, 578.0, 2.0);
    EXPECT_GT(tp.maxFreqHz() / 1e9, 1.5);
    // CA_S: 327 + 2.14*300 = 969 ps -> ~1 GHz.
    PipelineTiming ts = computeTiming(designCaS(), opts);
    EXPECT_NEAR(ts.gSwitchPs, 969.0, 3.0);
    EXPECT_NEAR(ts.maxFreqHz() / 1e9, 1.0, 0.05);
}

// ---------------------------------------------------------------- Figure 10

TEST(Design, ReachabilityTradeoff)
{
    double r4g = designReachability(designCa4GHz());
    double rp = designReachability(designCaP());
    double rs = designReachability(designCaS());
    EXPECT_DOUBLE_EQ(r4g, 64.0);
    // Paper: 361 for CA_P, 936 for CA_S; our analytic formula lands within
    // a few percent (368 / ~880).
    EXPECT_NEAR(rp, 361.0, 15.0);
    EXPECT_NEAR(rs, 936.0, 80.0);
    // Monotone trade-off: more reachability, lower frequency.
    EXPECT_LT(r4g, rp);
    EXPECT_LT(rp, rs);
}

TEST(Design, ReachabilityBeatsApAt2GHz)
{
    EXPECT_GT(designReachability(designCaP()), defaultTech().apReachability);
}

TEST(Design, FanInIs256)
{
    EXPECT_EQ(designMaxFanIn(designCaP()), 256);
    EXPECT_EQ(designMaxFanIn(designCaS()), 256);
    EXPECT_GT(designMaxFanIn(designCaP()), defaultTech().apMaxFanIn);
}

TEST(Design, Area32kMatchesFigure10)
{
    // Paper: 4.3 mm^2 (CA_P) and 4.6 mm^2 (CA_S), far below AP's 38 mm^2.
    EXPECT_NEAR(designArea32k(designCaP()), 4.3, 0.15);
    EXPECT_NEAR(designArea32k(designCaS()), 4.6, 0.1);
    EXPECT_LT(designArea32k(designCaS()), defaultTech().apAreaMm2 / 5);
}


// ---------------------------------------------------------------- SRAM read

TEST(SramTiming, CyclingMatchesPipelineModel)
{
    // The structural schedule and the pipeline model's state-match stage
    // must agree: 256 STEs = 4 groups of 64 -> 438 ps; 512 -> 687 ps.
    ReadSequence r4 = planArrayRead(4, true);
    EXPECT_NEAR(r4.totalPs, computeTiming(designCaP()).stateMatchPs, 0.5);
    ReadSequence r8 = planArrayRead(8, true);
    EXPECT_NEAR(r8.totalPs, computeTiming(designCaS()).stateMatchPs, 0.5);
}

TEST(SramTiming, BaselineMatchesPipelineModel)
{
    TimingOptions no_sa;
    no_sa.senseAmpCycling = false;
    ReadSequence r4 = planArrayRead(4, false);
    EXPECT_NEAR(r4.totalPs,
                computeTiming(designCaP(), no_sa).stateMatchPs, 0.5);
}

TEST(SramTiming, CyclingPulsesAreBackToBack)
{
    ReadSequence seq = planArrayRead(4, true);
    // Exactly one DEC/PCH/RWL phase, then 4 SAE and 4 SEL pulses.
    int sae = 0;
    double prev_end = -1.0;
    for (const SignalPulse &p : seq.pulses) {
        if (p.signal == "SAE") {
            if (sae > 0) {
                EXPECT_NEAR(p.startPs, prev_end, 1e-9);
            }
            prev_end = p.endPs();
            ++sae;
        }
    }
    EXPECT_EQ(sae, 4);
    EXPECT_DOUBLE_EQ(seq.pulses.back().endPs(), seq.totalPs);
}

TEST(SramTiming, SelTracksGroupOrder)
{
    ReadSequence seq = planArrayRead(3, true);
    int expected = 0;
    for (const SignalPulse &p : seq.pulses) {
        if (p.signal == "SEL") {
            EXPECT_EQ(p.group, expected++);
        }
    }
    EXPECT_EQ(expected, 3);
}

TEST(SramTiming, InvalidGroupsThrow)
{
    EXPECT_THROW(planArrayRead(0, true), CaError);
}

TEST(SramTiming, FormatterMentionsMode)
{
    std::string txt = formatReadSequence(planArrayRead(2, true));
    EXPECT_NE(txt.find("sense-amp cycling"), std::string::npos);
    EXPECT_NE(txt.find("SAE[1]"), std::string::npos);
}

// ---------------------------------------------------------------- geometry

TEST(Geometry, PartitionsPerWay)
{
    CacheGeometry perf(defaultTech(), 256);
    EXPECT_EQ(perf.partitionsPerSubArray(), 1);
    EXPECT_EQ(perf.partitionsPerWay(), 8);
    CacheGeometry space(defaultTech(), 512);
    EXPECT_EQ(space.partitionsPerSubArray(), 2);
    EXPECT_EQ(space.partitionsPerWay(), 16);
}

TEST(Geometry, MegabytesPerPartition)
{
    CacheGeometry g(defaultTech(), 256);
    EXPECT_DOUBLE_EQ(g.megabytes(128), 1.0); // 128 x 8 KB = 1 MB
}

TEST(Geometry, CapacityMatchesPaperPrototype)
{
    // §5.3: 8 ways of a slice store 128K STEs (CA_S density over 8 slices).
    CacheGeometry g(defaultTech(), 512);
    EXPECT_EQ(g.capacityStes(8, 8), 8LL * 16 * 8 * 256);
}

TEST(Geometry, FootprintRollsUp)
{
    CacheGeometry g(defaultTech(), 256);
    CacheFootprint fp = g.footprint(20, 8);
    EXPECT_EQ(fp.subArrays, 20);
    EXPECT_EQ(fp.ways, 3);
    EXPECT_EQ(fp.slices, 1);
}

TEST(Geometry, InvalidSubArrayCapacityThrows)
{
    EXPECT_THROW(CacheGeometry(defaultTech(), 300), CaError);
    EXPECT_THROW(CacheGeometry(defaultTech(), 1024), CaError);
}

// ---------------------------------------------------------------- energy

TEST(Energy, ZeroActivityZeroEnergy)
{
    EnergyBreakdown e = computeEnergyPerSymbol(designCaP(), ActivityStats{});
    EXPECT_DOUBLE_EQ(e.totalPj(), 0.0);
}

TEST(Energy, ScalesWithActivePartitions)
{
    ActivityStats one;
    one.avgActivePartitions = 1.0;
    ActivityStats ten;
    ten.avgActivePartitions = 10.0;
    double e1 = computeEnergyPerSymbol(designCaP(), one).totalPj();
    double e10 = computeEnergyPerSymbol(designCaP(), ten).totalPj();
    EXPECT_NEAR(e10, 10 * e1, 1e-9);
}

TEST(Energy, PerPartitionCostDominatedByArrayAndLSwitch)
{
    ActivityStats a;
    a.avgActivePartitions = 1.0;
    EnergyBreakdown e = computeEnergyPerSymbol(designCaP(), a);
    EXPECT_DOUBLE_EQ(e.arrayPj, 22.0);
    EXPECT_NEAR(e.lSwitchPj, 256 * 0.191, 1e-9);
    EXPECT_EQ(e.gSwitchPj, 0.0);
}

TEST(Energy, IdealApIs3xCa)
{
    // §5.3: CA consumes ~3x less than Ideal AP under the same mapping.
    ActivityStats a;
    a.avgActivePartitions = 30.0;
    double ca = computeEnergyPerSymbol(designCaS(), a).totalPj();
    double ap = idealApEnergyPerSymbolPj(a, designCaS());
    EXPECT_NEAR(ap / ca, 3.0, 0.8);
}

TEST(Energy, AveragePower)
{
    // 1 nJ/symbol at 1 GHz = 1 W.
    EXPECT_DOUBLE_EQ(averagePowerW(1000.0, 1e9), 1.0);
}

TEST(Energy, PeakPowerBelowTdp)
{
    // §5.3: the 8-way prototype peaks well below the 160 W Xeon TDP.
    CacheGeometry g(defaultTech(), 512);
    int parts = g.partitionsPerSlice(8) * 8; // 8 slices
    EXPECT_LT(peakPowerW(designCaS(), parts), 160.0);
}

// ---------------------------------------------------------------- Table 5 / Fig 7

TEST(Comparison, ThroughputFromFrequency)
{
    EXPECT_DOUBLE_EQ(throughputGbps(2.0e9), 16.0);
    EXPECT_NEAR(apThroughputGbps(), 1.064, 0.001);
}

TEST(Comparison, HeadlineSpeedups)
{
    // §5.1: 15x (CA_P) and 9x (CA_S) over AP; 3840x over CPU.
    EXPECT_NEAR(speedupOverAp(designCaP()), 15.0, 0.1);
    EXPECT_NEAR(speedupOverAp(designCaS()), 9.0, 0.1);
    EXPECT_NEAR(speedupOverCpu(designCaP()), 3840.0, 30.0);
}

TEST(Comparison, PublishedTable5Rows)
{
    AcceleratorPoint hare = harePublished();
    EXPECT_DOUBLE_EQ(hare.throughputGbps, 3.9);
    EXPECT_DOUBLE_EQ(hare.areaMm2, 80.0);
    AcceleratorPoint uap = uapPublished();
    EXPECT_DOUBLE_EQ(uap.powerW, 0.507);
}


TEST(Design, CustomPointReproducesCaPCorner)
{
    // The 256/16/0 custom point should look like CA_P (same partition,
    // same G1 budget): ~2.2 GHz derated max, reachability 368.
    Design d = designCustom(256, 16, 0);
    EXPECT_NEAR(d.operatingFreqHz / 1e9, 2.2, 0.11);
    EXPECT_NEAR(designReachability(d), designReachability(designCaP()),
                1e-9);
}

TEST(Design, CustomSweepIsMonotone)
{
    // More connectivity -> more reachability, lower (or equal) frequency,
    // more area.
    Design a = designCustom(64, 0, 0);
    Design b = designCustom(256, 16, 0);
    Design c = designCustom(256, 16, 8);
    EXPECT_LT(designReachability(a), designReachability(b));
    EXPECT_LT(designReachability(b), designReachability(c));
    EXPECT_GE(a.operatingFreqHz, b.operatingFreqHz);
    EXPECT_GE(b.operatingFreqHz, c.operatingFreqHz);
    EXPECT_LT(designArea32k(a), designArea32k(b));
    EXPECT_LT(designArea32k(b), designArea32k(c));
}

TEST(Design, CustomInvalidPartitionThrows)
{
    EXPECT_THROW(designCustom(0, 8, 0), CaError);
    EXPECT_THROW(designCustom(1024, 8, 0), CaError);
}

TEST(Design, CustomNoGSwitchHasNoGStage)
{
    Design d = designCustom(64, 0, 0);
    PipelineTiming t = computeTiming(d);
    EXPECT_DOUBLE_EQ(t.gSwitchPs, 0.0);
    EXPECT_NEAR(t.maxFreqHz() / 1e9, 4.0, 0.1);
}

TEST(Comparison, CaRowDerivedFromModels)
{
    AcceleratorPoint p = caTable5Row(designCaP(), 4.0);
    EXPECT_DOUBLE_EQ(p.throughputGbps, 16.0);
    EXPECT_NEAR(p.runtimeMsFor10MB, 5.24, 0.1);
    EXPECT_NEAR(p.powerW, 8.0, 0.1); // 4 nJ x 2 GHz
    EXPECT_NEAR(p.areaMm2, 4.3, 0.15);
    // Shape vs ASICs: CA_P beats both HARE and UAP throughput (3.9x/3x).
    EXPECT_GT(p.throughputGbps / harePublished().throughputGbps, 3.5);
    EXPECT_GT(p.throughputGbps / uapPublished().throughputGbps, 2.5);
}

} // namespace
} // namespace ca
