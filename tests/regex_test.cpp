/**
 * @file
 * Unit tests for the regex front end: parser, AST, and the Glushkov
 * construction checked against a reference matcher.
 */
#include <gtest/gtest.h>

#include "baseline/nfa_engine.h"
#include "core/error.h"
#include "nfa/glushkov.h"
#include "nfa/regex_parser.h"
#include "workload/witness.h"

namespace ca {
namespace {

/** Compiles one unanchored pattern with reportId 7. */
Nfa
compile(const std::string &pattern)
{
    GlushkovOptions opts;
    opts.reportId = 7;
    return buildGlushkov(parseRegex(pattern), opts);
}

/** True when @p text (as a whole stream) produces >= 1 report. */
bool
matchesSomewhere(const Nfa &nfa, const std::string &text)
{
    NfaEngine eng(nfa);
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    return !reports.empty();
}

// ---------------------------------------------------------------- parser

TEST(RegexParser, LiteralConcat)
{
    RegexPattern p = parseRegex("abc");
    EXPECT_EQ(p.root->op, RegexOp::Concat);
    EXPECT_EQ(p.root->countPositions(), 3u);
    EXPECT_FALSE(p.anchoredStart);
    EXPECT_FALSE(p.anchoredEnd);
}

TEST(RegexParser, Anchors)
{
    RegexPattern p = parseRegex("^abc$");
    EXPECT_TRUE(p.anchoredStart);
    EXPECT_TRUE(p.anchoredEnd);
}

TEST(RegexParser, Alternation)
{
    RegexPattern p = parseRegex("ab|cd|ef");
    EXPECT_EQ(p.root->op, RegexOp::Alt);
    EXPECT_EQ(p.root->children.size(), 3u);
}

TEST(RegexParser, Quantifiers)
{
    EXPECT_EQ(parseRegex("a*").root->op, RegexOp::Star);
    EXPECT_EQ(parseRegex("a+").root->op, RegexOp::Plus);
    EXPECT_EQ(parseRegex("a?").root->op, RegexOp::Opt);
}

TEST(RegexParser, BoundedRepetition)
{
    RegexPattern p = parseRegex("a{2,5}");
    EXPECT_EQ(p.root->op, RegexOp::Repeat);
    EXPECT_EQ(p.root->repeatMin, 2);
    EXPECT_EQ(p.root->repeatMax, 5);

    RegexPattern q = parseRegex("a{3}");
    EXPECT_EQ(q.root->repeatMin, 3);
    EXPECT_EQ(q.root->repeatMax, 3);

    RegexPattern r = parseRegex("a{4,}");
    EXPECT_EQ(r.root->repeatMax, RegexNode::kUnbounded);
}

TEST(RegexParser, NonCapturingGroup)
{
    EXPECT_NO_THROW(parseRegex("(?:abc)+"));
}

TEST(RegexParser, ClassWithLeadingBracket)
{
    // POSIX: leading ']' is literal.
    RegexPattern p = parseRegex("[]a]");
    EXPECT_TRUE(p.root->cls.test(']'));
    EXPECT_TRUE(p.root->cls.test('a'));
}

TEST(RegexParser, NegatedClassWithBracket)
{
    RegexPattern p = parseRegex("[^]]");
    EXPECT_FALSE(p.root->cls.test(']'));
    EXPECT_TRUE(p.root->cls.test('a'));
}

TEST(RegexParser, SyntaxErrors)
{
    EXPECT_THROW(parseRegex("("), CaError);
    EXPECT_THROW(parseRegex("a)"), CaError);
    EXPECT_THROW(parseRegex("["), CaError);
    EXPECT_THROW(parseRegex("*a"), CaError);
    EXPECT_THROW(parseRegex("a{"), CaError);
    EXPECT_THROW(parseRegex("a{2"), CaError);
    EXPECT_THROW(parseRegex("a{5,2}"), CaError);
    EXPECT_THROW(parseRegex("a\\"), CaError);
}

TEST(RegexAst, CloneIsDeep)
{
    RegexPattern p = parseRegex("(ab|c)*d");
    RegexNodePtr copy = p.root->clone();
    EXPECT_EQ(copy->toString(), p.root->toString());
    EXPECT_NE(copy.get(), p.root.get());
}

TEST(RegexAst, CountPositionsWithRepeats)
{
    EXPECT_EQ(parseRegex("a{10}").root->countPositions(), 10u);
    EXPECT_EQ(parseRegex("(ab){3,5}").root->countPositions(), 10u);
}

// ---------------------------------------------------------------- Glushkov

TEST(Glushkov, LiteralMatches)
{
    Nfa nfa = compile("cat");
    EXPECT_EQ(nfa.numStates(), 3u);
    EXPECT_TRUE(matchesSomewhere(nfa, "cat"));
    EXPECT_TRUE(matchesSomewhere(nfa, "xxcatxx"));
    EXPECT_FALSE(matchesSomewhere(nfa, "cta"));
    EXPECT_FALSE(matchesSomewhere(nfa, "ca"));
}

TEST(Glushkov, ReportOffsetIsLastSymbol)
{
    Nfa nfa = compile("cat");
    NfaEngine eng(nfa);
    std::string text = "xcaty";
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].offset, 3u); // 't' position
    EXPECT_EQ(reports[0].reportId, 7u);
}

TEST(Glushkov, AnchoredOnlyAtStart)
{
    GlushkovOptions opts;
    Nfa nfa = buildGlushkov(parseRegex("^ab"), opts);
    EXPECT_TRUE(matchesSomewhere(nfa, "abxx"));
    EXPECT_FALSE(matchesSomewhere(nfa, "xab"));
}

TEST(Glushkov, UnanchoredMatchesEveryOffset)
{
    Nfa nfa = compile("aa");
    NfaEngine eng(nfa);
    std::string text = "aaaa";
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    EXPECT_EQ(reports.size(), 3u); // offsets 1, 2, 3
}

TEST(Glushkov, Alternation)
{
    Nfa nfa = compile("cat|dog");
    EXPECT_TRUE(matchesSomewhere(nfa, "hotdog"));
    EXPECT_TRUE(matchesSomewhere(nfa, "scatter"));
    EXPECT_FALSE(matchesSomewhere(nfa, "cow"));
}

TEST(Glushkov, StarAndPlus)
{
    Nfa nfa = compile("ab*c");
    EXPECT_TRUE(matchesSomewhere(nfa, "ac"));
    EXPECT_TRUE(matchesSomewhere(nfa, "abbbc"));
    EXPECT_FALSE(matchesSomewhere(nfa, "a c"));

    Nfa plus = compile("ab+c");
    EXPECT_FALSE(matchesSomewhere(plus, "ac"));
    EXPECT_TRUE(matchesSomewhere(plus, "abc"));
}

TEST(Glushkov, DotStar)
{
    Nfa nfa = compile("a.*b");
    EXPECT_TRUE(matchesSomewhere(nfa, "ab"));
    EXPECT_TRUE(matchesSomewhere(nfa, "a xxx b"));
    EXPECT_FALSE(matchesSomewhere(nfa, "b a"));
}

TEST(Glushkov, BoundedRepetition)
{
    Nfa nfa = compile("^a{2,3}b");
    EXPECT_FALSE(matchesSomewhere(nfa, "ab"));
    EXPECT_TRUE(matchesSomewhere(nfa, "aab"));
    EXPECT_TRUE(matchesSomewhere(nfa, "aaab"));
    // ^aaaab: the anchor forces the count to start at 0, so no match.
    EXPECT_FALSE(matchesSomewhere(nfa, "aaaab"));
}

TEST(Glushkov, CharClasses)
{
    Nfa nfa = compile("[a-c]x[0-9]");
    EXPECT_TRUE(matchesSomewhere(nfa, "bx7"));
    EXPECT_FALSE(matchesSomewhere(nfa, "dx7"));
    EXPECT_FALSE(matchesSomewhere(nfa, "bxa"));
}

TEST(Glushkov, EmptyMatchingPatternThrows)
{
    GlushkovOptions opts;
    EXPECT_THROW(buildGlushkov(parseRegex("a*"), opts), CaError);
    EXPECT_THROW(buildGlushkov(parseRegex("a?"), opts), CaError);
    EXPECT_THROW(buildGlushkov(parseRegex(""), opts), CaError);
}

TEST(Glushkov, EndAnchorUnsupported)
{
    GlushkovOptions opts;
    EXPECT_THROW(buildGlushkov(parseRegex("ab$"), opts), CaError);
}

TEST(Glushkov, PositionLimitEnforced)
{
    GlushkovOptions opts;
    opts.maxPositions = 10;
    EXPECT_THROW(buildGlushkov(parseRegex("a{100}"), opts), CaError);
}

TEST(Glushkov, HomogeneousInvariant)
{
    // Every state of a Glushkov automaton corresponds to one position:
    // all in-edges implicitly share the state's own label (trivially true
    // in our IR); check validity and that start states are exactly first().
    Nfa nfa = compile("(ab|cd)e*f");
    EXPECT_NO_THROW(nfa.validate());
    auto starts = nfa.startStates();
    EXPECT_EQ(starts.size(), 2u); // positions 'a' and 'c'
}

TEST(Glushkov, RulesetAssignsSequentialReportIds)
{
    Nfa nfa = compileRuleset({"aa", "bb"});
    NfaEngine eng(nfa);
    std::string text = "aa bb";
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].reportId, 0u);
    EXPECT_EQ(reports[1].reportId, 1u);
}

// Property: a sampled witness of a random pattern always matches.
class WitnessProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(WitnessProperty, SampledWitnessAlwaysMatches)
{
    Rng rng(GetParam() * 7919 + 5);
    // Build a random pattern from safe building blocks.
    static const char *kBlocks[] = {
        "abc", "x+", "(de|fg)", "[a-f]{2,4}", "h.*i", "[0-9]", "jk?",
        "lm{1,3}", "(n|o)+",
    };
    std::string pat;
    int blocks = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < blocks; ++i)
        pat += kBlocks[rng.below(std::size(kBlocks))];

    GlushkovOptions opts;
    Nfa nfa = buildGlushkov(parseRegex(pat), opts);
    for (int trial = 0; trial < 8; ++trial) {
        std::string w = sampleWitness(pat, rng);
        EXPECT_TRUE(matchesSomewhere(nfa, w))
            << "witness '" << w << "' failed for /" << pat << "/";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPatterns, WitnessProperty,
                         ::testing::Range(0, 25));

} // namespace
} // namespace ca
