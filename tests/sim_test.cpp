/**
 * @file
 * Tests for the cycle-level Cache Automaton simulator: functional
 * equivalence with the CPU oracle, activity accounting, pipeline and
 * system-integration counters.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

namespace ca {
namespace {

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

TEST(Sim, ReportsMatchOracleOnLiteral)
{
    Nfa nfa = compileRuleset({"cat"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    auto input = bytesOf("the cat scattered");
    SimResult res = sim.run(input);
    NfaEngine oracle(m.nfa());
    EXPECT_EQ(res.reports, oracle.run(input));
    EXPECT_EQ(res.reports.size(), 2u); // "cat" and "cat" in scattered
}

TEST(Sim, PipelineCyclesIncludeFill)
{
    Nfa nfa = compileRuleset({"ab"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    auto input = bytesOf("abcd");
    SimResult res = sim.run(input);
    EXPECT_EQ(res.symbols, 4u);
    EXPECT_EQ(res.cycles, 6u); // 3-stage pipeline: n + 2
}

TEST(Sim, EmptyInput)
{
    Nfa nfa = compileRuleset({"ab"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    SimResult res = sim.run(nullptr, 0);
    EXPECT_EQ(res.symbols, 0u);
    EXPECT_EQ(res.cycles, 0u);
    EXPECT_TRUE(res.reports.empty());
}

// Regression: the activity averages divide by `symbols`; a zero-symbol
// result must yield zeros (not NaN/inf) so the energy model and bench
// tables stay finite on empty streams.
TEST(Sim, ZeroSymbolActivityIsFinite)
{
    Nfa nfa = compileRuleset({"ab"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    SimResult res = sim.run(nullptr, 0);

    EXPECT_EQ(res.avgActiveStates(), 0.0);
    ActivityStats a = res.activity();
    EXPECT_EQ(a.avgActivePartitions, 0.0);
    EXPECT_EQ(a.avgActiveStates, 0.0);
    EXPECT_EQ(a.avgG1Crossings, 0.0);
    EXPECT_EQ(a.avgG4Crossings, 0.0);
    EXPECT_TRUE(std::isfinite(res.seconds(1e9)));

    // A default-constructed result (never simulated) behaves the same.
    SimResult blank;
    EXPECT_EQ(blank.avgActiveStates(), 0.0);
    EXPECT_EQ(blank.activity().avgActiveStates, 0.0);
}

TEST(Sim, ActivePartitionCountsEnabledPartitions)
{
    // A single always-enabled start state keeps its partition active every
    // cycle.
    Nfa nfa = compileRuleset({"xy"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    auto input = bytesOf("aaaa");
    SimResult res = sim.run(input);
    // The all-input start 'x' is enabled (though not matching) each cycle.
    EXPECT_EQ(res.totalActivePartitionCycles, 4u);
    EXPECT_EQ(res.totalActiveStates, 0u); // nothing ever matched
}

TEST(Sim, ActiveStatesCountMatches)
{
    Nfa nfa = compileRuleset({"ab"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    auto input = bytesOf("abab");
    SimResult res = sim.run(input);
    // Cycle 0: 'a' active. 1: 'b' (report) + nothing else... 'a' start
    // re-enabled each cycle: cycle1 'b' active; cycle2 'a'; cycle3 'b'.
    EXPECT_EQ(res.totalActiveStates, 4u);
    EXPECT_EQ(res.reports.size(), 2u);
    EXPECT_DOUBLE_EQ(res.avgActiveStates(), 1.0);
}

TEST(Sim, G1CrossingsCountedForSplitComponents)
{
    std::string rule(600, 'a');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    ASSERT_GT(m.crossEdges().size(), 0u);
    CacheAutomatonSim sim(m);
    // Feed 600 'a's: the chain advances across partition boundaries.
    std::vector<uint8_t> input(600, 'a');
    SimResult res = sim.run(input);
    EXPECT_GT(res.totalG1Crossings, 0u);
    EXPECT_EQ(res.totalG4Crossings, 0u);
    EXPECT_EQ(res.reports.size(), 1u);
}

TEST(Sim, TraceRecordsPerCycle)
{
    Nfa nfa = compileRuleset({"ab"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    SimOptions opts;
    opts.recordTrace = true;
    auto input = bytesOf("ab");
    SimResult res = sim.run(input.data(), input.size(), opts);
    ASSERT_EQ(res.trace.size(), 2u);
    EXPECT_EQ(res.trace[0].activeStates, 1u);
    EXPECT_EQ(res.trace[1].reportsFired, 1u);
    // Totals equal the trace sums.
    uint64_t sum = 0;
    for (const auto &t : res.trace)
        sum += t.activeStates;
    EXPECT_EQ(sum, res.totalActiveStates);
}

TEST(Sim, FifoRefillAccounting)
{
    Nfa nfa = compileRuleset({"zz"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    std::vector<uint8_t> input(1000, 'a');
    SimOptions opts;
    opts.fifoRefillSymbols = 64;
    SimResult res = sim.run(input.data(), input.size(), opts);
    EXPECT_EQ(res.fifoRefills, (1000 + 63) / 64);
}

TEST(Sim, OutputBufferInterrupts)
{
    Nfa nfa = compileRuleset({"a"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    std::vector<uint8_t> input(256, 'a'); // a report every symbol
    SimOptions opts;
    opts.outputBufferDepth = 64;
    SimResult res = sim.run(input.data(), input.size(), opts);
    EXPECT_EQ(res.reports.size(), 256u);
    EXPECT_EQ(res.outputBufferInterrupts, 4u);
}

TEST(Sim, CollectReportsOffStillCounts)
{
    Nfa nfa = compileRuleset({"a"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    std::vector<uint8_t> input(100, 'a');
    SimOptions opts;
    opts.collectReports = false;
    SimResult res = sim.run(input.data(), input.size(), opts);
    EXPECT_TRUE(res.reports.empty());
    EXPECT_EQ(res.totalActiveStates, 100u);
}

TEST(Sim, ActivityFeedsEnergyModel)
{
    Nfa nfa = compileRuleset({"ab", "cd"});
    MappedAutomaton m = mapPerformance(nfa);
    CacheAutomatonSim sim(m);
    auto input = bytesOf("abcdabcd");
    SimResult res = sim.run(input);
    ActivityStats a = res.activity();
    EXPECT_GT(a.avgActivePartitions, 0.0);
    EXPECT_LE(a.avgActivePartitions,
              static_cast<double>(m.numPartitions()));
    EXPECT_GT(a.avgActiveStates, 0.0);
}

TEST(Sim, SecondsFromFrequency)
{
    SimResult res;
    res.symbols = 1000;
    res.cycles = 1002;
    EXPECT_DOUBLE_EQ(res.seconds(1e9), 1002e-9);
}

// Property: the simulator and the CPU oracle agree on randomized rulesets
// and inputs, under both mapping policies.
class SimOracleProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SimOracleProperty, SimMatchesOracle)
{
    int param = GetParam();
    bool space = param % 2 == 1;
    Rng rng(param * 48611 + 3);

    static const char *kBlocks[] = {
        "ab", "c+", "(d|ef)", "[g-i]{1,2}", "j.*k", "[lm]", "n?o",
    };
    std::vector<std::string> rules;
    int n_rules = 2 + static_cast<int>(rng.below(8));
    for (int r = 0; r < n_rules; ++r) {
        std::string pat;
        int blocks = 1 + static_cast<int>(rng.below(4));
        for (int b = 0; b < blocks; ++b)
            pat += kBlocks[rng.below(std::size(kBlocks))];
        rules.push_back(pat);
    }

    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = space ? mapSpace(nfa) : mapPerformance(nfa);
    CacheAutomatonSim sim(m);

    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 32.0;
    auto input = buildInput(spec, 8 << 10, param);

    NfaEngine oracle(m.nfa());
    SimResult res = sim.run(input);
    EXPECT_EQ(res.reports, oracle.run(input));
    EXPECT_FALSE(res.reports.empty());
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, SimOracleProperty,
                         ::testing::Range(0, 30));

} // namespace
} // namespace ca
