/**
 * @file
 * Tests for the network service layer (src/net): wire-protocol golden
 * bytes and hardening, and end-to-end loopback service semantics.
 *
 * The load-bearing properties:
 *  - Determinism: the report stream a client collects over TCP is
 *    byte-identical to a single-threaded CacheAutomatonSim::run() over
 *    the same input, for any connections × streams × chunk-size split.
 *  - Robustness: malformed frames, abrupt client death, over-cap
 *    connects, and idle peers tear down only their own connection; the
 *    server keeps serving everyone else. Hostile bytes can throw CaError
 *    but never crash (the fuzz_test.cpp contract).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "core/error.h"
#include "core/rng.h"
#include "net/client.h"
#include "net/match_server.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"
#include "sim/engine.h"
#include "telemetry/snapshot.h"
#include "workload/input_gen.h"

namespace fs = std::filesystem;

namespace ca {
namespace {

using net::ClientOptions;
using net::ErrorCode;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::MatchClient;
using net::MatchServer;
using net::MatchServerOptions;

/** Unique scratch directory, removed (recursively) on scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        static std::atomic<uint64_t> seq{0};
        path_ = fs::temp_directory_path() /
                ("ca_net_test." + std::to_string(::getpid()) + "." +
                 std::to_string(seq.fetch_add(1)));
        fs::create_directories(path_);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    std::string str(const std::string &leaf) const
    {
        return (path_ / leaf).string();
    }

  private:
    fs::path path_;
};

MappedAutomaton &
sampleMapped()
{
    static MappedAutomaton m =
        mapPerformance(compileRuleset({"cat", "do+g", "[hx]at", "m.*n"}));
    return m;
}

std::vector<uint8_t>
sampleInput(size_t bytes, uint64_t seed)
{
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"cat", "dog", "hat", "mn"};
    spec.plantsPer4k = 32.0;
    return buildInput(spec, bytes, seed);
}

std::vector<Report>
oracleReports(const MappedAutomaton &m, const std::vector<uint8_t> &input)
{
    CacheAutomatonSim sim(m);
    return sim.run(input).reports;
}

/**
 * sampleMapped()'s ruleset with deterministic nonzero transition/start
 * weights, for the scored (v4) wire paths. oracleReports() stays the
 * right oracle: the sim's reports carry exact scores.
 */
MappedAutomaton &
sampleScoredMapped()
{
    static MappedAutomaton m = [] {
        Nfa nfa = compileRuleset({"cat", "do+g", "[hx]at", "m.*n"});
        Rng rng(0x5C0ED);
        for (StateId s = 0; s < nfa.numStates(); ++s) {
            NfaState &st = nfa.state(s);
            if (st.start != StartType::None)
                st.startWeight = static_cast<Weight>(rng.range(-2, 2));
            if (st.out.empty())
                continue;
            st.outWeight.assign(st.out.size(), 0);
            for (Weight &w : st.outWeight)
                w = static_cast<Weight>(rng.range(-3, 3));
        }
        return mapPerformance(nfa);
    }();
    return m;
}

// --- Protocol: golden bytes --------------------------------------------

TEST(Protocol, HelloGoldenBytes)
{
    std::vector<uint8_t> out;
    net::appendHello(out, 0x1122334455667788ull);
    // u32 len=14 | u8 type=1 | u32 magic | u16 version | u64 fingerprint
    const uint8_t expect[] = {
        0x0e, 0x00, 0x00, 0x00,                         // payload size 14
        0x01,                                           // HELLO
        0x43, 0x41, 0x4e, 0x50,                         // "CANP"
        0x04, 0x00,                                     // version 4
        0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // fingerprint
    };
    ASSERT_EQ(out.size(), sizeof(expect));
    EXPECT_EQ(0, std::memcmp(out.data(), expect, sizeof(expect)));
}

TEST(Protocol, DataGoldenBytes)
{
    std::vector<uint8_t> out;
    const uint8_t body[] = {0xde, 0xad, 0xbe, 0xef};
    net::appendData(out, 7, body, sizeof(body));
    const uint8_t expect[] = {
        0x08, 0x00, 0x00, 0x00,       // payload size 8
        0x03,                         // DATA
        0x07, 0x00, 0x00, 0x00,       // streamId 7
        0xde, 0xad, 0xbe, 0xef,       // bytes
    };
    ASSERT_EQ(out.size(), sizeof(expect));
    EXPECT_EQ(0, std::memcmp(out.data(), expect, sizeof(expect)));
}

TEST(Protocol, ReportsGoldenBytes)
{
    std::vector<uint8_t> out;
    Report r;
    r.offset = 0x0102030405060708ull;
    r.reportId = 0x11121314u;
    r.state = 0x21222324u;
    net::appendReports(out, 3, &r, 1);
    const uint8_t expect[] = {
        0x18, 0x00, 0x00, 0x00,                         // payload size 24
        0x06,                                           // REPORTS
        0x03, 0x00, 0x00, 0x00,                         // streamId 3
        0x01, 0x00, 0x00, 0x00,                         // count 1
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // offset
        0x14, 0x13, 0x12, 0x11,                         // reportId
        0x24, 0x23, 0x22, 0x21,                         // state
    };
    ASSERT_EQ(out.size(), sizeof(expect));
    EXPECT_EQ(0, std::memcmp(out.data(), expect, sizeof(expect)));
}

TEST(Protocol, ScoredReportsGoldenBytes)
{
    std::vector<uint8_t> out;
    Report r;
    r.offset = 0x0102030405060708ull;
    r.reportId = 0x11121314u;
    r.state = 0x21222324u;
    r.score = -2; // 0xfffffffffffffffe little-endian on the wire
    net::appendScoredReports(out, 3, &r, 1);
    const uint8_t expect[] = {
        0x20, 0x00, 0x00, 0x00,                         // payload size 32
        0x11,                                           // SCORED_REPORTS
        0x03, 0x00, 0x00, 0x00,                         // streamId 3
        0x01, 0x00, 0x00, 0x00,                         // count 1
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // offset
        0x14, 0x13, 0x12, 0x11,                         // reportId
        0x24, 0x23, 0x22, 0x21,                         // state
        0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // score -2
    };
    ASSERT_EQ(out.size(), sizeof(expect));
    EXPECT_EQ(0, std::memcmp(out.data(), expect, sizeof(expect)));
}

TEST(Protocol, ScoredReportsRoundTripKeepsScores)
{
    std::vector<Report> reports(3);
    for (size_t i = 0; i < reports.size(); ++i) {
        reports[i].offset = 1000 + i;
        reports[i].reportId = static_cast<uint32_t>(i);
        reports[i].state = static_cast<uint32_t>(7 * i);
        reports[i].score = static_cast<int64_t>(i) * 1'000'000'007 - 5;
    }
    std::vector<uint8_t> out;
    net::appendScoredReports(out, 12, reports.data(), reports.size());
    FrameDecoder dec;
    dec.append(out.data(), out.size());
    std::optional<Frame> f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::ScoredReports);
    EXPECT_EQ(f->streamId, 12u);
    // Report::operator== covers score, so this is an exact-score check.
    EXPECT_EQ(f->reportBatch, reports);
}

TEST(Protocol, GoodbyeGoldenBytes)
{
    std::vector<uint8_t> out;
    net::appendGoodbye(out);
    const uint8_t expect[] = {0x00, 0x00, 0x00, 0x00, 0x08};
    ASSERT_EQ(out.size(), sizeof(expect));
    EXPECT_EQ(0, std::memcmp(out.data(), expect, sizeof(expect)));
}

TEST(Protocol, StatsGoldenBytes)
{
    std::vector<uint8_t> out;
    net::appendStats(out, 0x0102030405060708ull, net::kStatsAllSections);
    const uint8_t expect[] = {
        0x0c, 0x00, 0x00, 0x00,                         // payload size 12
        0x09,                                           // STATS
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // token
        0x0f, 0x00, 0x00, 0x00,                         // all sections
    };
    ASSERT_EQ(out.size(), sizeof(expect));
    EXPECT_EQ(0, std::memcmp(out.data(), expect, sizeof(expect)));
}

/** A STATS_REPLY body with every section populated distinctively. */
net::StatsReplyBody
sampleStatsBody()
{
    net::StatsReplyBody b;
    b.token = 77;
    b.telemetryCompiled = 1;
    b.telemetryEnabled = 1;
    b.sections = net::kStatsAllSections;
    b.totals.uptimeMicros = 5'000'000;
    b.totals.workers = 3;
    b.totals.activeConnections = 2;
    b.totals.framesIn = 101;
    b.totals.bytesIn = 54321;
    b.totals.streamSymbols = 99999;
    b.totals.contextSwitches = 17;
    b.totals.automatonWeighted = 1;
    b.totals.scoredReportsSent = 55;
    runtime::SessionLiveStats s;
    s.id = 4;
    s.stats.symbols = 1234;
    s.stats.bytesSubmitted = 2345;
    s.stats.suspensions = 2;
    s.queuedBytes = 512;
    s.queuedChunks = 3;
    s.suspended = true;
    s.symbolsPerSec = 1.5e6;
    b.sessions.push_back(s);
    s.id = 5;
    s.suspended = false;
    s.closed = true;
    b.sessions.push_back(s);
    b.metricsSnapshot = {0xaa, 0xbb, 0xcc}; // opaque blob on the wire
    KernelDecisionStats k;
    k.sparseBlocks = 10;
    k.denseBlocks = 20;
    k.kernelFlips = 4;
    k.densityEwma = 0.375;
    k.lastKernel = 1;
    b.kernels.push_back(k);
    return b;
}

TEST(Protocol, StatsReplyRoundTripsEveryField)
{
    net::StatsReplyBody b = sampleStatsBody();
    std::vector<uint8_t> out;
    net::appendStatsReply(out, b);

    FrameDecoder dec;
    dec.append(out.data(), out.size());
    std::optional<Frame> f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::StatsReply);
    const net::StatsReplyBody &d = f->stats;
    EXPECT_EQ(d.statsVersion, net::kStatsVersion);
    EXPECT_EQ(d.token, 77u);
    EXPECT_EQ(d.telemetryCompiled, 1);
    EXPECT_EQ(d.telemetryEnabled, 1);
    EXPECT_EQ(d.sections, net::kStatsAllSections);
    EXPECT_EQ(d.totals.uptimeMicros, 5'000'000u);
    EXPECT_EQ(d.totals.workers, 3u);
    EXPECT_EQ(d.totals.activeConnections, 2u);
    EXPECT_EQ(d.totals.framesIn, 101u);
    EXPECT_EQ(d.totals.bytesIn, 54321u);
    EXPECT_EQ(d.totals.streamSymbols, 99999u);
    EXPECT_EQ(d.totals.contextSwitches, 17u);
    EXPECT_EQ(d.totals.automatonWeighted, 1u);
    EXPECT_EQ(d.totals.scoredReportsSent, 55u);
    ASSERT_EQ(d.sessions.size(), 2u);
    EXPECT_EQ(d.sessions[0].id, 4u);
    EXPECT_EQ(d.sessions[0].stats.symbols, 1234u);
    EXPECT_EQ(d.sessions[0].stats.bytesSubmitted, 2345u);
    EXPECT_EQ(d.sessions[0].stats.suspensions, 2u);
    EXPECT_EQ(d.sessions[0].queuedBytes, 512u);
    EXPECT_EQ(d.sessions[0].queuedChunks, 3u);
    EXPECT_TRUE(d.sessions[0].suspended);
    EXPECT_FALSE(d.sessions[0].closed);
    EXPECT_DOUBLE_EQ(d.sessions[0].symbolsPerSec, 1.5e6);
    EXPECT_TRUE(d.sessions[1].closed);
    EXPECT_EQ(d.metricsSnapshot,
              (std::vector<uint8_t>{0xaa, 0xbb, 0xcc}));
    ASSERT_EQ(d.kernels.size(), 1u);
    EXPECT_EQ(d.kernels[0].sparseBlocks, 10u);
    EXPECT_EQ(d.kernels[0].denseBlocks, 20u);
    EXPECT_EQ(d.kernels[0].kernelFlips, 4u);
    EXPECT_DOUBLE_EQ(d.kernels[0].densityEwma, 0.375);
    EXPECT_EQ(d.kernels[0].lastKernel, 1);
}

TEST(Protocol, StatsReplySectionFilterRoundTrips)
{
    net::StatsReplyBody b = sampleStatsBody();
    b.sections = net::statsSectionBit(net::StatsSection::Totals) |
        net::statsSectionBit(net::StatsSection::Kernels);
    std::vector<uint8_t> out;
    net::appendStatsReply(out, b);
    FrameDecoder dec;
    dec.append(out.data(), out.size());
    Frame f = *dec.next();
    EXPECT_EQ(f.stats.sections, b.sections);
    EXPECT_EQ(f.stats.totals.workers, 3u);
    EXPECT_TRUE(f.stats.sessions.empty());
    EXPECT_TRUE(f.stats.metricsSnapshot.empty());
    EXPECT_EQ(f.stats.kernels.size(), 1u);
}

TEST(Protocol, StatsReplySessionCountMismatchThrows)
{
    net::StatsReplyBody b = sampleStatsBody();
    b.sections = net::statsSectionBit(net::StatsSection::Sessions);
    std::vector<uint8_t> out;
    net::appendStatsReply(out, b);
    // The session count lives right after the section envelope header
    // (u16 ver | u64 token | u8 | u8 | u32 mask | u8 id | u32 len).
    size_t count_at = net::kFrameHeaderBytes + 2 + 8 + 1 + 1 + 4 + 1 + 4;
    ASSERT_LT(count_at, out.size());
    out[count_at] = 9; // claims 9 sessions, carries 2
    FrameDecoder dec;
    dec.append(out.data(), out.size());
    EXPECT_THROW(dec.next(), CaError);
}

TEST(Protocol, StatsReplyUnknownSectionIsSkipped)
{
    // Future servers may append sections this decoder has never heard
    // of; they must decode around it, not on top of it.
    net::StatsReplyBody b;
    b.token = 9;
    b.sections = net::statsSectionBit(net::StatsSection::Totals);
    std::vector<uint8_t> out;
    net::appendStatsReply(out, b);
    // Splice an unknown section (id 250, 4 bytes) before endFrame's
    // view of the payload: rebuild by hand from the encoded frame.
    std::vector<uint8_t> extra = {250, 0x04, 0x00, 0x00, 0x00,
                                  0xde, 0xad, 0xbe, 0xef};
    out.insert(out.end(), extra.begin(), extra.end());
    uint32_t payload = static_cast<uint32_t>(out.size()) -
        static_cast<uint32_t>(net::kFrameHeaderBytes);
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(payload >> (8 * i));
    FrameDecoder dec;
    dec.append(out.data(), out.size());
    std::optional<Frame> f;
    ASSERT_NO_THROW(f = dec.next());
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->stats.sections,
              net::statsSectionBit(net::StatsSection::Totals));
}

/** One encoded frame of every type, back to back. */
std::vector<uint8_t>
allFramesBytes()
{
    std::vector<uint8_t> out;
    net::appendHello(out, 0xfeedfacecafebeefull);
    net::appendOpenStream(out, 1);
    const uint8_t body[] = {'c', 'a', 't'};
    net::appendData(out, 1, body, sizeof(body));
    net::appendFlush(out, 1, 42);
    std::vector<Report> reports(3);
    for (size_t i = 0; i < reports.size(); ++i) {
        reports[i].offset = 100 + i;
        reports[i].reportId = static_cast<uint32_t>(i);
        reports[i].state = static_cast<uint32_t>(10 * i);
    }
    net::appendReports(out, 1, reports.data(), reports.size());
    net::appendCloseStream(out, 1, 3, 3);
    net::appendError(out, ErrorCode::Busy, net::kConnectionStream,
                     "too many connections");
    net::appendGoodbye(out);
    net::appendStats(out, 7, net::kStatsAllSections);
    net::appendStatsReply(out, sampleStatsBody());
    net::appendArtifactQuery(out, 0xabcdefull);
    net::appendArtifactOffer(out, 0xabcdefull, true, 1000, 256, 4);
    net::appendArtifactFetch(out, 0xabcdefull, 2);
    const uint8_t chunk[] = {0xde, 0xad, 0xbe, 0xef};
    net::appendArtifactChunk(out, 0xabcdefull, 2, 4, chunk, sizeof(chunk));
    net::appendSwap(out, 9, 0x1111ull, "/tmp/next.caa");
    net::appendSwapReply(out, 9, net::SwapStatus::Swapped, 0x2222ull,
                         0x1111ull, 5, "");
    Report scored;
    scored.offset = 321;
    scored.reportId = 2;
    scored.state = 40;
    scored.score = -17;
    net::appendScoredReports(out, 1, &scored, 1);
    return out;
}

TEST(Protocol, EncodeDecodeRoundTripsEveryType)
{
    std::vector<uint8_t> bytes = allFramesBytes();
    FrameDecoder dec;
    dec.append(bytes.data(), bytes.size());

    std::vector<Frame> frames;
    std::optional<Frame> f;
    while ((f = dec.next()))
        frames.push_back(std::move(*f));
    ASSERT_EQ(frames.size(), 17u);
    EXPECT_EQ(dec.buffered(), 0u);

    EXPECT_EQ(frames[0].type, FrameType::Hello);
    EXPECT_EQ(frames[0].magic, net::kHelloMagic);
    EXPECT_EQ(frames[0].version, net::kProtocolVersion);
    EXPECT_EQ(frames[0].fingerprint, 0xfeedfacecafebeefull);

    EXPECT_EQ(frames[1].type, FrameType::OpenStream);
    EXPECT_EQ(frames[1].streamId, 1u);

    EXPECT_EQ(frames[2].type, FrameType::Data);
    EXPECT_EQ(frames[2].data, (std::vector<uint8_t>{'c', 'a', 't'}));

    EXPECT_EQ(frames[3].type, FrameType::Flush);
    EXPECT_EQ(frames[3].flushToken, 42u);

    EXPECT_EQ(frames[4].type, FrameType::Reports);
    ASSERT_EQ(frames[4].reportBatch.size(), 3u);
    EXPECT_EQ(frames[4].reportBatch[2].offset, 102u);
    EXPECT_EQ(frames[4].reportBatch[2].state, 20u);

    EXPECT_EQ(frames[5].type, FrameType::CloseStream);
    EXPECT_EQ(frames[5].symbols, 3u);
    EXPECT_EQ(frames[5].reports, 3u);

    EXPECT_EQ(frames[6].type, FrameType::Error);
    EXPECT_EQ(frames[6].errorCode, ErrorCode::Busy);
    EXPECT_EQ(frames[6].streamId, net::kConnectionStream);
    EXPECT_EQ(frames[6].message, "too many connections");

    EXPECT_EQ(frames[7].type, FrameType::Goodbye);

    EXPECT_EQ(frames[8].type, FrameType::Stats);
    EXPECT_EQ(frames[8].stats.token, 7u);
    EXPECT_EQ(frames[8].stats.sections, net::kStatsAllSections);

    EXPECT_EQ(frames[9].type, FrameType::StatsReply);
    EXPECT_EQ(frames[9].stats.token, 77u);
    EXPECT_EQ(frames[9].stats.sessions.size(), 2u);

    EXPECT_EQ(frames[10].type, FrameType::ArtifactQuery);
    EXPECT_EQ(frames[10].fingerprint, 0xabcdefull);

    EXPECT_EQ(frames[11].type, FrameType::ArtifactOffer);
    EXPECT_EQ(frames[11].fingerprint, 0xabcdefull);
    EXPECT_EQ(frames[11].artifactAvailable, 1u);
    EXPECT_EQ(frames[11].artifactBytes, 1000u);
    EXPECT_EQ(frames[11].chunkBytes, 256u);
    EXPECT_EQ(frames[11].chunkCount, 4u);

    EXPECT_EQ(frames[12].type, FrameType::ArtifactFetch);
    EXPECT_EQ(frames[12].fingerprint, 0xabcdefull);
    EXPECT_EQ(frames[12].chunkIndex, 2u);

    EXPECT_EQ(frames[13].type, FrameType::ArtifactChunk);
    EXPECT_EQ(frames[13].fingerprint, 0xabcdefull);
    EXPECT_EQ(frames[13].chunkIndex, 2u);
    EXPECT_EQ(frames[13].chunkCount, 4u);
    EXPECT_EQ(frames[13].data,
              (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef}));

    EXPECT_EQ(frames[14].type, FrameType::Swap);
    EXPECT_EQ(frames[14].flushToken, 9u);
    EXPECT_EQ(frames[14].fingerprint, 0x1111ull);
    EXPECT_EQ(frames[14].message, "/tmp/next.caa");

    EXPECT_EQ(frames[15].type, FrameType::SwapReply);
    EXPECT_EQ(frames[15].flushToken, 9u);
    EXPECT_EQ(frames[15].swapStatus, net::SwapStatus::Swapped);
    EXPECT_EQ(frames[15].oldFingerprint, 0x2222ull);
    EXPECT_EQ(frames[15].newFingerprint, 0x1111ull);
    EXPECT_EQ(frames[15].epoch, 5u);

    EXPECT_EQ(frames[16].type, FrameType::ScoredReports);
    ASSERT_EQ(frames[16].reportBatch.size(), 1u);
    EXPECT_EQ(frames[16].reportBatch[0].offset, 321u);
    EXPECT_EQ(frames[16].reportBatch[0].score, -17);
}

TEST(Protocol, ByteAtATimeFeedingDecodesIdentically)
{
    std::vector<uint8_t> bytes = allFramesBytes();
    FrameDecoder dec;
    size_t decoded = 0;
    for (uint8_t b : bytes) {
        dec.append(&b, 1);
        while (dec.next())
            ++decoded;
    }
    EXPECT_EQ(decoded, 17u);
    EXPECT_EQ(dec.buffered(), 0u);
}

// --- Protocol: hardening -----------------------------------------------

/**
 * Truncation is not malformation: every strict prefix of a valid stream
 * decodes some whole frames and then waits for more bytes — no throw.
 */
TEST(Protocol, TruncationSweepNeverThrows)
{
    std::vector<uint8_t> bytes = allFramesBytes();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        FrameDecoder dec;
        dec.append(bytes.data(), cut);
        size_t decoded = 0;
        ASSERT_NO_THROW({
            while (dec.next())
                ++decoded;
        }) << "prefix of " << cut << " bytes";
        EXPECT_LT(decoded, 17u);
    }
}

TEST(Protocol, OversizedLengthPrefixThrows)
{
    // Length prefix beyond the decoder's configured bound.
    FrameDecoder dec(1u << 10);
    std::vector<uint8_t> hdr = {0x00, 0x05, 0x00, 0x00, 0x03};
    dec.append(hdr.data(), hdr.size());
    EXPECT_THROW(dec.next(), CaError);

    // And beyond the absolute ceiling, on a default decoder.
    FrameDecoder dec2;
    std::vector<uint8_t> hdr2 = {0xff, 0xff, 0xff, 0xff, 0x03};
    dec2.append(hdr2.data(), hdr2.size());
    EXPECT_THROW(dec2.next(), CaError);
}

TEST(Protocol, UnknownFrameTypeThrows)
{
    FrameDecoder dec;
    std::vector<uint8_t> frame = {0x00, 0x00, 0x00, 0x00, 0x99};
    dec.append(frame.data(), frame.size());
    EXPECT_THROW(dec.next(), CaError);
}

TEST(Protocol, TrailingPayloadBytesThrow)
{
    // A FLUSH payload with one extra byte must not silently pass.
    std::vector<uint8_t> good;
    net::appendFlush(good, 1, 7);
    std::vector<uint8_t> bad = good;
    bad.push_back(0x00);
    bad[0] = static_cast<uint8_t>(bad[0] + 1); // patch payload length
    FrameDecoder dec;
    dec.append(bad.data(), bad.size());
    EXPECT_THROW(dec.next(), CaError);
}

TEST(Protocol, ReportsCountMismatchThrows)
{
    // count says 2 but only one report body follows.
    std::vector<uint8_t> out;
    Report r;
    net::appendReports(out, 1, &r, 1);
    out[net::kFrameHeaderBytes + 4] = 2; // count lives after streamId
    FrameDecoder dec;
    dec.append(out.data(), out.size());
    EXPECT_THROW(dec.next(), CaError);
}

TEST(Protocol, HelloBadMagicThrows)
{
    std::vector<uint8_t> out;
    net::appendHello(out, 0);
    out[net::kFrameHeaderBytes] ^= 0xff; // corrupt magic
    FrameDecoder dec;
    dec.append(out.data(), out.size());
    EXPECT_THROW(dec.next(), CaError);
}

TEST(Protocol, FingerprintIsStableAcrossCompileAndArtifactLoad)
{
    TempDir dir;
    MappedAutomaton &m = sampleMapped();
    uint64_t direct = net::automatonFingerprint(m);
    EXPECT_NE(direct, 0u);

    persist::ArtifactMeta meta;
    meta.label = "net-fingerprint-test";
    persist::saveArtifact(dir.str("a.caa"), m, meta);
    persist::LoadedArtifact loaded =
        persist::loadArtifact(dir.str("a.caa"));
    EXPECT_EQ(net::automatonFingerprint(*loaded.automaton), direct);

    // A different automaton must not collide (sanity, not cryptography).
    MappedAutomaton other =
        mapPerformance(compileRuleset({"zebra", "yak+"}));
    EXPECT_NE(net::automatonFingerprint(other), direct);
}

// --- End-to-end: determinism -------------------------------------------

/**
 * The tentpole property: for every connections × streams × chunk-size
 * combination, every stream's reports collected over TCP equal the
 * single-threaded oracle on that stream's bytes.
 */
TEST(NetE2E, DeterminismAcrossConnectionsStreamsAndChunks)
{
    MappedAutomaton &m = sampleMapped();
    MatchServerOptions opts;
    opts.stream.workers = 3;
    opts.stream.sliceSymbols = 509; // force context switches
    MatchServer server(m, opts);

    struct Combo
    {
        int connections;
        int streams;
        size_t chunk;
    };
    const Combo combos[] = {
        {1, 1, 4096},
        {1, 3, 257},
        {3, 2, 1024},
        {2, 2, 31},
    };

    for (const Combo &combo : combos) {
        std::vector<std::thread> threads;
        std::atomic<int> failures{0};
        for (int cn = 0; cn < combo.connections; ++cn) {
            threads.emplace_back([&, cn] {
                try {
                    MatchClient client;
                    client.connect("127.0.0.1", server.port());
                    std::vector<uint32_t> ids;
                    std::vector<std::vector<uint8_t>> inputs;
                    for (int st = 0; st < combo.streams; ++st) {
                        ids.push_back(client.openStream());
                        inputs.push_back(sampleInput(
                            12 << 10,
                            0xE2E + 100 * cn + st));
                    }
                    // Interleave chunk submission across the streams.
                    for (size_t pos = 0;; pos += combo.chunk) {
                        bool any = false;
                        for (int st = 0; st < combo.streams; ++st) {
                            const auto &in = inputs[st];
                            if (pos >= in.size())
                                continue;
                            any = true;
                            size_t n = std::min(combo.chunk,
                                                in.size() - pos);
                            client.send(ids[st], in.data() + pos, n);
                        }
                        if (!any)
                            break;
                    }
                    for (int st = 0; st < combo.streams; ++st) {
                        net::StreamSummary sum =
                            client.closeStream(ids[st]);
                        auto expect = oracleReports(m, inputs[st]);
                        auto got = client.takeReports(ids[st]);
                        if (got != expect ||
                            sum.reports != expect.size() ||
                            sum.symbols != inputs[st].size())
                            ++failures;
                    }
                    client.close();
                } catch (const CaError &) {
                    ++failures;
                }
            });
        }
        for (auto &t : threads)
            t.join();
        EXPECT_EQ(failures.load(), 0)
            << combo.connections << " conns x " << combo.streams
            << " streams x " << combo.chunk << "B chunks";
    }
    server.stop();
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(NetE2E, FlushIsARoundTripBarrier)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);

    auto input = sampleInput(8 << 10, 0xF1);
    size_t cut = input.size() / 2;

    MatchClient client;
    client.connect("127.0.0.1", server.port());
    uint32_t id = client.openStream();
    client.send(id, input.data(), cut);
    client.flush(id);

    // After flush returns, the head's reports are already collected.
    CacheAutomatonSim head(m);
    head.reset();
    head.feed(input.data(), cut);
    EXPECT_EQ(client.reports(id), head.result().reports);

    client.send(id, input.data() + cut, input.size() - cut);
    client.closeStream(id);
    EXPECT_EQ(client.takeReports(id), oracleReports(m, input));
    client.close();
    server.stop();
}

TEST(NetE2E, EmptyStreamYieldsNoReports)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);
    MatchClient client;
    client.connect("127.0.0.1", server.port());
    uint32_t id = client.openStream();
    client.flush(id);
    net::StreamSummary sum = client.closeStream(id);
    EXPECT_EQ(sum.symbols, 0u);
    EXPECT_EQ(sum.reports, 0u);
    EXPECT_TRUE(client.takeReports(id).empty());
    client.close();
}

// --- End-to-end: scored reports (protocol v4) --------------------------

TEST(NetE2E, ScoredReportsReachV4Clients)
{
    MappedAutomaton &m = sampleScoredMapped();
    ASSERT_TRUE(m.nfa().hasWeights());
    MatchServer server(m);
    MatchClient client;
    client.connect("127.0.0.1", server.port());
    uint32_t id = client.openStream();
    auto input = sampleInput(16 << 10, 0x5C0E);
    client.send(id, input);
    client.closeStream(id);
    auto got = client.takeReports(id);
    client.close();

    auto expect = oracleReports(m, input);
    ASSERT_FALSE(expect.empty());
    EXPECT_TRUE(std::any_of(expect.begin(), expect.end(),
                            [](const Report &r) { return r.score != 0; }));
    // Report::operator== covers score: exact scores over the wire.
    EXPECT_EQ(got, expect);

    server.stop();
    EXPECT_EQ(server.stats().scoredReportsSent, expect.size());
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(NetE2E, V3ClientGetsPlainReportsFromScoredServer)
{
    MappedAutomaton &m = sampleScoredMapped();
    MatchServer server(m);

    // A raw v3 peer: HELLO pinned to version 3, one full stream.
    auto input = sampleInput(4 << 10, 0xA53);
    net::SocketFd fd = net::connectTcp("127.0.0.1", server.port(), 2000);
    std::vector<uint8_t> bytes;
    net::appendHello(bytes, 0, /*version=*/3);
    net::appendOpenStream(bytes, 1);
    net::appendData(bytes, 1, input.data(), input.size());
    net::appendCloseStream(bytes, 1);
    ASSERT_TRUE(net::sendAll(fd.get(), bytes.data(), bytes.size(), 2000));

    FrameDecoder dec;
    uint8_t buf[4096];
    std::vector<Report> got;
    bool saw_hello = false, closed = false;
    for (int i = 0; i < 100 && !closed; ++i) {
        long n = net::recvSome(fd.get(), buf, sizeof(buf), 200);
        if (n == 0 || n == -2)
            break;
        if (n < 0)
            continue;
        dec.append(buf, static_cast<size_t>(n));
        std::optional<Frame> f;
        while ((f = dec.next())) {
            // A downgraded session must never see v4-only frames.
            EXPECT_NE(f->type, FrameType::ScoredReports);
            if (f->type == FrameType::Hello) {
                saw_hello = true;
                EXPECT_EQ(f->version, 3u); // server echoes the downgrade
            } else if (f->type == FrameType::Reports) {
                got.insert(got.end(), f->reportBatch.begin(),
                           f->reportBatch.end());
            } else if (f->type == FrameType::CloseStream) {
                closed = true;
            }
        }
    }
    fd.close();
    EXPECT_TRUE(saw_hello);
    EXPECT_TRUE(closed);

    // Plain REPORTS rows drop the score but nothing else: equal to the
    // scored oracle's report set with scores zeroed.
    std::vector<Report> expect = oracleReports(m, input);
    for (Report &r : expect)
        r.score = 0;
    EXPECT_EQ(got, expect);
    server.stop();
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(NetE2E, TinySessionQueueBackpressureStaysDeterministic)
{
    MappedAutomaton &m = sampleMapped();
    MatchServerOptions opts;
    opts.stream.workers = 1;           // one worker serves all streams
    opts.stream.sessionQueueDepth = 1; // submit blocks almost always
    opts.stream.sliceSymbols = 128;
    MatchServer server(m, opts);

    auto input = sampleInput(24 << 10, 0xBACC);
    auto expect = oracleReports(m, input);

    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int cn = 0; cn < 3; ++cn) {
        threads.emplace_back([&] {
            try {
                MatchClient client;
                client.connect("127.0.0.1", server.port());
                uint32_t id = client.openStream();
                for (size_t pos = 0; pos < input.size(); pos += 512)
                    client.send(id, input.data() + pos,
                                std::min<size_t>(512,
                                                 input.size() - pos));
                client.closeStream(id);
                if (client.takeReports(id) != expect)
                    ++failures;
                client.close();
            } catch (const CaError &) {
                ++failures;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    server.stop();
}

// --- End-to-end: observability (docs/OBSERVABILITY.md) -----------------

/**
 * In-band STATS polling mid-load: counters are monotone across polls,
 * the session table sees every open stream (including another
 * connection's), the kernel section covers every worker, and after a
 * flush the totals agree exactly with what was sent.
 */
TEST(NetE2E, StatsPollMidLoadSeesMonotoneCounters)
{
    MappedAutomaton &m = sampleMapped();
    MatchServerOptions opts;
    opts.stream.workers = 2;
    opts.stream.sliceSymbols = 509;
    MatchServer server(m, opts);

    auto input = sampleInput(32 << 10, 0x0b5);

    MatchClient watcher; // second connection: observe, no traffic
    watcher.connect("127.0.0.1", server.port());

    MatchClient client;
    client.connect("127.0.0.1", server.port());
    uint32_t id = client.openStream();

    uint64_t prev_symbols = 0, prev_bytes_in = 0, prev_frames_in = 0;
    constexpr size_t kChunk = 2048;
    for (size_t pos = 0; pos < input.size(); pos += kChunk) {
        client.send(id, input.data() + pos,
                    std::min(kChunk, input.size() - pos));
        if ((pos / kChunk) % 4 != 3)
            continue;
        net::StatsReplyBody b = watcher.requestStats();
        EXPECT_EQ(b.sections, net::kStatsAllSections);
        EXPECT_EQ(b.telemetryCompiled, CA_TELEMETRY ? 1 : 0);
        // Monotone while the stream is mid-flight.
        EXPECT_GE(b.totals.streamSymbols, prev_symbols);
        EXPECT_GE(b.totals.bytesIn, prev_bytes_in);
        EXPECT_GE(b.totals.framesIn, prev_frames_in);
        prev_symbols = b.totals.streamSymbols;
        prev_bytes_in = b.totals.bytesIn;
        prev_frames_in = b.totals.framesIn;
        EXPECT_EQ(b.totals.activeConnections, 2u);
        EXPECT_EQ(b.totals.workers, 2u);
        EXPECT_EQ(b.kernels.size(), 2u);
        ASSERT_EQ(b.sessions.size(), 1u); // the one open stream
        EXPECT_FALSE(b.sessions[0].closed);
    }

    // Barrier, then poll again: the totals must now be exact.
    client.flush(id);
    net::StatsReplyBody b = watcher.requestStats();
    EXPECT_EQ(b.totals.streamSymbols, input.size());
    ASSERT_EQ(b.sessions.size(), 1u);
    EXPECT_EQ(b.sessions[0].stats.symbols, input.size());
    EXPECT_EQ(b.sessions[0].stats.bytesSubmitted, input.size());
    EXPECT_EQ(b.sessions[0].queuedBytes, 0u);
    uint64_t kernel_blocks = 0;
    for (const KernelDecisionStats &k : b.kernels)
        kernel_blocks += k.sparseBlocks + k.denseBlocks;
    EXPECT_GT(kernel_blocks, 0u);

    // The metrics blob is a valid snapshot image in both build configs
    // (empty registry serializes and deserializes fine).
    ASSERT_FALSE(b.metricsSnapshot.empty());
    telemetry::MetricsSnapshot snap;
    ASSERT_NO_THROW(
        snap = telemetry::MetricsSnapshot::deserialize(b.metricsSnapshot));
#if CA_TELEMETRY
    if (b.telemetryEnabled)
        EXPECT_GT(snap.size(), 0u);
#endif

    // Same-connection (truly in-band) polling works too.
    net::StatsReplyBody inband = client.requestStats(
        net::statsSectionBit(net::StatsSection::Totals));
    EXPECT_EQ(inband.sections,
              net::statsSectionBit(net::StatsSection::Totals));
    EXPECT_EQ(inband.totals.streamSymbols, input.size());
    EXPECT_TRUE(inband.sessions.empty());

    client.closeStream(id);
    client.close();

    // After the stream closes, its row flips to closed but survives.
    net::StatsReplyBody post = watcher.requestStats();
    ASSERT_EQ(post.sessions.size(), 1u);
    EXPECT_TRUE(post.sessions[0].closed);
    EXPECT_EQ(post.totals.sessionsClosed, 1u);

    watcher.close();
    server.stop();
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

/** A client that sends a server-only STATS_REPLY is a protocol error. */
TEST(NetRobustness, ClientSentStatsReplyFailsThatConnection)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);

    net::SocketFd fd =
        net::connectTcp("127.0.0.1", server.port(), 2000);
    std::vector<uint8_t> bytes;
    net::appendHello(bytes, 0);
    net::appendStatsReply(bytes, net::StatsReplyBody{});
    ASSERT_TRUE(net::sendAll(fd.get(), bytes.data(), bytes.size(), 2000));

    // The server answers HELLO, then ERROR(protocol_error) + teardown.
    FrameDecoder dec;
    uint8_t buf[4096];
    bool saw_error = false;
    for (int spins = 0; spins < 100 && !saw_error; ++spins) {
        long n = net::recvSome(fd.get(), buf, sizeof buf, 100);
        if (n == 0)
            break;
        if (n < 0)
            continue;
        dec.append(buf, static_cast<size_t>(n));
        std::optional<Frame> f;
        while ((f = dec.next()))
            if (f->type == FrameType::Error &&
                f->errorCode == ErrorCode::ProtocolError)
                saw_error = true;
    }
    EXPECT_TRUE(saw_error);

    // Only that connection died; the server keeps serving new ones.
    MatchClient ok;
    ASSERT_NO_THROW(ok.connect("127.0.0.1", server.port()));
    ok.close();
    server.stop();
}

// --- End-to-end: artifact warm start -----------------------------------

TEST(NetE2E, ArtifactServedServerMatchesInProcessRun)
{
    TempDir dir;
    MappedAutomaton &m = sampleMapped();
    persist::ArtifactMeta meta;
    meta.label = "net-e2e";
    persist::saveArtifact(dir.str("served.caa"), m, meta);

    auto server = MatchServer::fromArtifact(dir.str("served.caa"));
    EXPECT_EQ(server->fingerprint(), net::automatonFingerprint(m));

    auto input = sampleInput(16 << 10, 0xA27);
    ClientOptions copts;
    copts.expectedFingerprint = net::automatonFingerprint(m); // pin
    MatchClient client;
    client.connect("127.0.0.1", server->port(), copts);
    uint32_t id = client.openStream();
    for (size_t pos = 0; pos < input.size(); pos += 2048)
        client.send(id, input.data() + pos,
                    std::min<size_t>(2048, input.size() - pos));
    net::StreamSummary sum = client.closeStream(id);
    auto expect = oracleReports(m, input);
    EXPECT_EQ(client.takeReports(id), expect);
    EXPECT_EQ(sum.reports, expect.size());
    client.close();
    server->stop();
}

TEST(NetE2E, FingerprintPinMismatchRefusesService)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);
    ClientOptions copts;
    copts.expectedFingerprint = 0xdeadbeefdeadbeefull;
    MatchClient client;
    EXPECT_THROW(client.connect("127.0.0.1", server.port(), copts),
                 CaError);
    server.stop();
}

// --- Robustness --------------------------------------------------------

TEST(NetRobustness, OverCapConnectionGetsBusyOthersKeepWorking)
{
    MappedAutomaton &m = sampleMapped();
    MatchServerOptions opts;
    opts.maxConnections = 1;
    MatchServer server(m, opts);

    MatchClient first;
    first.connect("127.0.0.1", server.port());
    uint32_t id = first.openStream();

    // Second connect is refused with a busy error...
    MatchClient second;
    try {
        second.connect("127.0.0.1", server.port());
        FAIL() << "over-cap connect should have been rejected";
    } catch (const CaError &e) {
        EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos)
            << e.what();
    }

    // ...and the first connection is entirely unaffected.
    auto input = sampleInput(4 << 10, 0xB05);
    first.send(id, input);
    first.closeStream(id);
    EXPECT_EQ(first.takeReports(id), oracleReports(m, input));
    first.close();

    server.stop();
    EXPECT_EQ(server.stats().connectionsRejected, 1u);
}

TEST(NetRobustness, VersionMismatchIsRejected)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);

    net::SocketFd fd = net::connectTcp("127.0.0.1", server.port(), 2000);
    std::vector<uint8_t> hello;
    net::appendHello(hello, 0, /*version=*/99);
    ASSERT_TRUE(net::sendAll(fd.get(), hello.data(), hello.size(), 2000));

    // The server answers ERROR(version_mismatch) and closes.
    FrameDecoder dec;
    uint8_t buf[512];
    bool saw_error = false;
    for (int i = 0; i < 50 && !saw_error; ++i) {
        long n = net::recvSome(fd.get(), buf, sizeof(buf), 200);
        if (n == 0 || n == -2)
            break;
        if (n < 0)
            continue;
        dec.append(buf, static_cast<size_t>(n));
        std::optional<Frame> f;
        while ((f = dec.next())) {
            if (f->type == FrameType::Error) {
                EXPECT_EQ(f->errorCode, ErrorCode::VersionMismatch);
                saw_error = true;
            }
        }
    }
    EXPECT_TRUE(saw_error);
    server.stop();
}

TEST(NetRobustness, ClientKilledMidStreamServerKeepsServing)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);

    {
        // A client that opens a stream, pushes bytes, and vanishes
        // without FLUSH/CLOSE/GOODBYE (socket torn down abruptly).
        MatchClient doomed;
        doomed.connect("127.0.0.1", server.port());
        uint32_t id = doomed.openStream();
        auto junk = sampleInput(8 << 10, 0xDEAD);
        doomed.send(id, junk);
        // Destructor path is close(); simulate a kill with shutdown
        // by raw-connecting instead for the hard variant below.
    }

    {
        // Hard variant: raw socket, half a DATA frame, then gone.
        net::SocketFd fd =
            net::connectTcp("127.0.0.1", server.port(), 2000);
        std::vector<uint8_t> bytes;
        net::appendHello(bytes, 0);
        net::appendOpenStream(bytes, 1);
        const uint8_t body[] = {'c', 'a'};
        net::appendData(bytes, 1, body, sizeof(body));
        bytes.resize(bytes.size() - 1); // truncate mid-frame
        ASSERT_TRUE(
            net::sendAll(fd.get(), bytes.data(), bytes.size(), 2000));
        fd.close(); // vanish
    }

    // A well-behaved client is still served correctly afterwards.
    for (int i = 0; i < 50 && server.activeConnections() > 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    MatchClient good;
    good.connect("127.0.0.1", server.port());
    uint32_t id = good.openStream();
    auto input = sampleInput(4 << 10, 0x600D);
    good.send(id, input);
    good.closeStream(id);
    EXPECT_EQ(good.takeReports(id), oracleReports(m, input));
    good.close();
    server.stop();
}

TEST(NetRobustness, MalformedFramesGetErrorAndOthersSurvive)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);

    // A healthy connection that must survive everything below.
    MatchClient good;
    good.connect("127.0.0.1", server.port());
    uint32_t good_id = good.openStream();

    Rng rng(0xF022);
    for (int trial = 0; trial < 12; ++trial) {
        net::SocketFd fd =
            net::connectTcp("127.0.0.1", server.port(), 2000);
        std::vector<uint8_t> bytes;
        if (trial % 3 == 0) {
            // Pure garbage.
            size_t len = 16 + rng.below(200);
            for (size_t i = 0; i < len; ++i)
                bytes.push_back(static_cast<uint8_t>(rng.below(256)));
        } else if (trial % 3 == 1) {
            // Valid HELLO, then a mutated valid frame.
            net::appendHello(bytes, 0);
            std::vector<uint8_t> frame;
            net::appendFlush(frame, 1, 7);
            size_t pos = rng.below(frame.size());
            frame[pos] ^= static_cast<uint8_t>(1 + rng.below(255));
            bytes.insert(bytes.end(), frame.begin(), frame.end());
        } else {
            // Protocol-state violation: DATA before HELLO.
            const uint8_t body[] = {'x'};
            net::appendData(bytes, 1, body, sizeof(body));
        }
        (void)net::sendAll(fd.get(), bytes.data(), bytes.size(), 2000);
        // The server may answer ERROR or just drop; it must not hang.
        uint8_t buf[256];
        (void)net::recvSome(fd.get(), buf, sizeof(buf), 200);
    }

    // The healthy connection still produces oracle-exact reports.
    auto input = sampleInput(8 << 10, 0x5AFE);
    good.send(good_id, input);
    good.closeStream(good_id);
    EXPECT_EQ(good.takeReports(good_id), oracleReports(m, input));
    good.close();

    server.stop();
    EXPECT_GT(server.stats().protocolErrors, 0u);
}

TEST(NetRobustness, IdleConnectionIsTornDown)
{
    MappedAutomaton &m = sampleMapped();
    MatchServerOptions opts;
    opts.idleTimeoutMs = 200;
    MatchServer server(m, opts);

    net::SocketFd fd = net::connectTcp("127.0.0.1", server.port(), 2000);
    std::vector<uint8_t> hello;
    net::appendHello(hello, 0);
    ASSERT_TRUE(net::sendAll(fd.get(), hello.data(), hello.size(), 2000));

    // Say nothing and wait: the server must disconnect us.
    FrameDecoder dec;
    uint8_t buf[512];
    bool closed = false;
    bool saw_idle_error = false;
    for (int i = 0; i < 100 && !closed; ++i) {
        long n = net::recvSome(fd.get(), buf, sizeof(buf), 100);
        if (n == 0 || n == -2) {
            closed = true;
            break;
        }
        if (n < 0)
            continue;
        dec.append(buf, static_cast<size_t>(n));
        std::optional<Frame> f;
        while ((f = dec.next()))
            if (f->type == FrameType::Error &&
                f->errorCode == ErrorCode::IdleTimeout)
                saw_idle_error = true;
    }
    EXPECT_TRUE(closed);
    EXPECT_TRUE(saw_idle_error);
    server.stop();
    EXPECT_GE(server.stats().idleTimeouts, 1u);
}

TEST(NetRobustness, GracefulStopDrainsOpenSessions)
{
    MappedAutomaton &m = sampleMapped();
    MatchServer server(m);

    MatchClient client;
    client.connect("127.0.0.1", server.port());
    uint32_t id = client.openStream();
    auto input = sampleInput(8 << 10, 0xD7A1);
    client.send(id, input);
    client.flush(id); // everything delivered before we stop the server

    std::thread stopper([&] { server.stop(); });
    // The flushed reports were collected before stop; the stream's
    // oracle equality must hold even though the server is going away.
    EXPECT_EQ(client.reports(id), oracleReports(m, input));
    stopper.join();
    client.close();
}

} // namespace
} // namespace ca
