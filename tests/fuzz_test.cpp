/**
 * @file
 * Failure-injection / fuzz-robustness tests: hostile or corrupted inputs
 * to every parser must produce a clean CaError (never a crash, hang, or
 * silent acceptance of malformed data).
 */
#include <gtest/gtest.h>

#include <string>

#include "compiler/mapping.h"
#include "core/error.h"
#include "core/rng.h"
#include "net/protocol.h"
#include "nfa/anml.h"
#include "nfa/regex_parser.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"

namespace ca {
namespace {

/** Runs @p fn and requires it to either succeed or throw CaError. */
template <typename Fn>
void
mustNotCrash(Fn &&fn, const std::string &context)
{
    try {
        fn();
    } catch (const CaError &) {
        // Expected failure mode.
    } catch (const CaInternalError &e) {
        FAIL() << "internal invariant tripped on hostile input ("
               << context << "): " << e.what();
    } catch (const std::exception &e) {
        FAIL() << "unexpected exception type on " << context << ": "
               << e.what();
    }
}

std::string
randomBytes(Rng &rng, size_t len)
{
    std::string s;
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<char>(rng.below(256)));
    return s;
}

/** Random string over regex-relevant characters (denser in metachars). */
std::string
randomRegexSoup(Rng &rng, size_t len)
{
    static const char pool[] = "ab01(){}[]|*+?.^$-\\,x";
    std::string s;
    for (size_t i = 0; i < len; ++i)
        s.push_back(pool[rng.below(sizeof(pool) - 1)]);
    return s;
}

class RegexFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RegexFuzz, ParserNeverCrashes)
{
    Rng rng(GetParam() * 77023 + 3);
    for (int trial = 0; trial < 200; ++trial) {
        std::string pat = randomRegexSoup(rng, 1 + rng.below(40));
        mustNotCrash(
            [&] {
                GlushkovOptions opts;
                opts.maxPositions = 4096;
                buildGlushkov(parseRegex(pat), opts);
            },
            "regex soup /" + pat + "/");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexFuzz, ::testing::Range(0, 5));

class AnmlFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(AnmlFuzz, ParserNeverCrashesOnGarbage)
{
    Rng rng(GetParam() * 50021 + 7);
    for (int trial = 0; trial < 100; ++trial) {
        std::string doc = randomBytes(rng, 1 + rng.below(200));
        mustNotCrash([&] { parseAnml(doc); }, "random bytes as ANML");
    }
}

TEST_P(AnmlFuzz, ParserNeverCrashesOnMutatedDocuments)
{
    Rng rng(GetParam() * 4409 + 13);
    const std::string base = writeAnml(compileRuleset({"ab+c", "[x-z]q"}));
    for (int trial = 0; trial < 100; ++trial) {
        std::string doc = base;
        // Corrupt a few positions: delete, flip, or insert.
        int edits = 1 + static_cast<int>(rng.below(6));
        for (int e = 0; e < edits && !doc.empty(); ++e) {
            size_t pos = rng.below(doc.size());
            switch (rng.below(3)) {
              case 0:
                doc.erase(doc.begin() + pos);
                break;
              case 1:
                doc[pos] = static_cast<char>(rng.below(256));
                break;
              default:
                doc.insert(doc.begin() + pos,
                           static_cast<char>(rng.below(128)));
            }
        }
        mustNotCrash([&] { parseAnml(doc); }, "mutated ANML");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnmlFuzz, ::testing::Range(0, 5));

/** One small packed artifact, shared across the mutation trials. */
const std::vector<uint8_t> &
baseArtifact()
{
    static const std::vector<uint8_t> bytes = [] {
        Nfa nfa = compileRuleset({"ab+c", "[x-z]q"});
        // Weight one state's edges so the corpus carries a WGHT section
        // and weight-payload corruption gets fuzzed too (weightless
        // artifacts are already covered by persist_test).
        for (StateId s = 0; s < nfa.numStates(); ++s) {
            NfaState &st = nfa.state(s);
            if (st.out.empty())
                continue;
            st.outWeight.assign(st.out.size(), 0);
            st.outWeight[0] = 2;
            break;
        }
        MappedAutomaton mapped = mapPerformance(nfa);
        return persist::packArtifact(mapped, buildConfigImage(mapped));
    }();
    return bytes;
}

class ArtifactFuzz : public ::testing::TestWithParam<int>
{
};

/**
 * The persist layer's core safety contract: an arbitrarily mutated
 * artifact either loads cleanly (mutation confined to bytes the decoder
 * ignores) or throws CaError — never UB, never an internal invariant
 * trip, never an unchecked OOB from checksum-colliding corruption.
 */
TEST_P(ArtifactFuzz, MutatedArtifactsLoadOrThrow)
{
    Rng rng(GetParam() * 86243 + 19);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<uint8_t> bytes = baseArtifact();
        int edits = 1 + static_cast<int>(rng.below(8));
        for (int e = 0; e < edits && !bytes.empty(); ++e) {
            size_t pos = rng.below(bytes.size());
            switch (rng.below(4)) {
              case 0: // delete
                bytes.erase(bytes.begin() + static_cast<long>(pos));
                break;
              case 1: // overwrite
                bytes[pos] = static_cast<uint8_t>(rng.below(256));
                break;
              case 2: // bit flip
                bytes[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
                break;
              default: // insert
                bytes.insert(bytes.begin() + static_cast<long>(pos),
                             static_cast<uint8_t>(rng.below(256)));
            }
        }
        mustNotCrash(
            [&] { (void)persist::loadArtifactBytes(std::move(bytes)); },
            "mutated artifact (trial " + std::to_string(trial) + ")");
    }
}

TEST_P(ArtifactFuzz, RandomBytesNeverCrashReader)
{
    Rng rng(GetParam() * 31013 + 29);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<uint8_t> bytes;
        size_t len = rng.below(512);
        bytes.reserve(len);
        for (size_t i = 0; i < len; ++i)
            bytes.push_back(static_cast<uint8_t>(rng.below(256)));
        mustNotCrash(
            [&] { (void)persist::loadArtifactBytes(std::move(bytes)); },
            "random bytes as artifact");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArtifactFuzz, ::testing::Range(0, 5));

/** One encoded frame of every wire-protocol type, back to back. */
std::vector<uint8_t>
baseFrameStream()
{
    std::vector<uint8_t> out;
    net::appendHello(out, 0x1234abcd5678ef01ull);
    net::appendOpenStream(out, 1);
    const uint8_t body[] = {'c', 'a', 't', 'd', 'o', 'g'};
    net::appendData(out, 1, body, sizeof(body));
    net::appendFlush(out, 1, 9);
    Report r;
    r.offset = 17;
    r.reportId = 2;
    r.state = 5;
    net::appendReports(out, 1, &r, 1);
    net::appendCloseStream(out, 1, 6, 1);
    net::appendError(out, net::ErrorCode::Busy, net::kConnectionStream,
                     "busy");
    net::appendStats(out, 0xfeedull, net::kStatsAllSections);
    net::StatsReplyBody stats;
    stats.token = 0xfeedull;
    stats.telemetryCompiled = 1;
    stats.telemetryEnabled = 1;
    stats.sections = net::kStatsAllSections;
    stats.totals.workers = 2;
    stats.totals.streamSymbols = 12345;
    runtime::SessionLiveStats session;
    session.id = 1;
    session.stats.symbols = 99;
    session.queuedBytes = 512;
    stats.sessions.push_back(session);
    stats.metricsSnapshot = {0x43, 0x41, 0x53, 0x4e}; // bare CASN magic
    KernelDecisionStats kernel;
    kernel.sparseBlocks = 7;
    kernel.denseBlocks = 3;
    stats.kernels.push_back(kernel);
    net::appendStatsReply(out, stats);
    net::appendArtifactQuery(out, 0x1234abcd5678ef01ull);
    net::appendArtifactOffer(out, 0x1234abcd5678ef01ull, true, 4096, 1024,
                             4);
    net::appendArtifactFetch(out, 0x1234abcd5678ef01ull, 3);
    const uint8_t chunkBody[] = {0xca, 0xfe, 0xba, 0xbe, 0x00, 0x01};
    net::appendArtifactChunk(out, 0x1234abcd5678ef01ull, 3, 4, chunkBody,
                             sizeof(chunkBody));
    net::appendSwap(out, 0xbeefull, 0x1234abcd5678ef01ull,
                    "peers/next.caa");
    net::appendSwapReply(out, 0xbeefull, net::SwapStatus::Failed, 0x11ull,
                         0x22ull, 2, "no such artifact");
    Report scored;
    scored.offset = 23;
    scored.reportId = 1;
    scored.state = 4;
    scored.score = -9;
    net::appendScoredReports(out, 1, &scored, 1);
    net::appendGoodbye(out);
    return out;
}

/** Feeds @p bytes to a FrameDecoder, draining frames as they complete. */
void
decodeAll(const std::vector<uint8_t> &bytes, size_t chunk)
{
    net::FrameDecoder dec;
    for (size_t pos = 0; pos < bytes.size(); pos += chunk) {
        size_t n = std::min(chunk, bytes.size() - pos);
        dec.append(bytes.data() + pos, n);
        while (dec.next()) {
        }
    }
}

class NetFrameFuzz : public ::testing::TestWithParam<int>
{
};

/**
 * The wire decoder's core safety contract (mirrors the artifact
 * reader's): arbitrary bytes off the socket either decode as frames or
 * throw CaError — never UB, never an internal invariant trip, no matter
 * how the stream is chunked.
 */
TEST_P(NetFrameFuzz, RandomBytesNeverCrashDecoder)
{
    Rng rng(GetParam() * 60913 + 11);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<uint8_t> bytes;
        size_t len = rng.below(600);
        bytes.reserve(len);
        for (size_t i = 0; i < len; ++i)
            bytes.push_back(static_cast<uint8_t>(rng.below(256)));
        size_t chunk = 1 + rng.below(64);
        mustNotCrash([&] { decodeAll(bytes, chunk); },
                     "random bytes as frame stream");
    }
}

TEST_P(NetFrameFuzz, MutatedFrameStreamsNeverCrashDecoder)
{
    Rng rng(GetParam() * 24593 + 41);
    const std::vector<uint8_t> base = baseFrameStream();
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<uint8_t> bytes = base;
        int edits = 1 + static_cast<int>(rng.below(6));
        for (int e = 0; e < edits && !bytes.empty(); ++e) {
            size_t pos = rng.below(bytes.size());
            switch (rng.below(4)) {
              case 0: // delete
                bytes.erase(bytes.begin() + static_cast<long>(pos));
                break;
              case 1: // overwrite
                bytes[pos] = static_cast<uint8_t>(rng.below(256));
                break;
              case 2: // bit flip
                bytes[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
                break;
              default: // insert
                bytes.insert(bytes.begin() + static_cast<long>(pos),
                             static_cast<uint8_t>(rng.below(256)));
            }
        }
        size_t chunk = 1 + rng.below(64);
        mustNotCrash([&] { decodeAll(bytes, chunk); },
                     "mutated frame stream (trial " +
                         std::to_string(trial) + ")");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFrameFuzz, ::testing::Range(0, 5));

TEST(SymbolSetFuzz, ClassParserNeverCrashes)
{
    Rng rng(99);
    static const char pool[] = "abz09^-]\\x[";
    for (int trial = 0; trial < 500; ++trial) {
        std::string body;
        size_t len = 1 + rng.below(12);
        for (size_t i = 0; i < len; ++i)
            body.push_back(pool[rng.below(sizeof(pool) - 1)]);
        mustNotCrash([&] { SymbolSet::parseClass(body); },
                     "class body '" + body + "'");
    }
}

} // namespace
} // namespace ca
