/**
 * @file
 * Unit tests for the core module: SymbolSet, BitVector, Rng, string utils.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/bitvector.h"
#include "core/error.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/string_utils.h"
#include "core/symbol_set.h"

namespace ca {
namespace {

// ---------------------------------------------------------------- SymbolSet

TEST(SymbolSet, DefaultIsEmpty)
{
    SymbolSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0);
    EXPECT_EQ(s.first(), -1);
    EXPECT_FALSE(s.isAll());
}

TEST(SymbolSet, AllContainsEverySymbol)
{
    SymbolSet s = SymbolSet::all();
    EXPECT_TRUE(s.isAll());
    EXPECT_EQ(s.count(), 256);
    for (int c = 0; c < 256; ++c)
        EXPECT_TRUE(s.test(static_cast<uint8_t>(c)));
}

TEST(SymbolSet, OfSingleton)
{
    SymbolSet s = SymbolSet::of('x');
    EXPECT_EQ(s.count(), 1);
    EXPECT_TRUE(s.test('x'));
    EXPECT_FALSE(s.test('y'));
    EXPECT_EQ(s.first(), 'x');
}

TEST(SymbolSet, RangeInclusive)
{
    SymbolSet s = SymbolSet::range('a', 'f');
    EXPECT_EQ(s.count(), 6);
    EXPECT_TRUE(s.test('a'));
    EXPECT_TRUE(s.test('f'));
    EXPECT_FALSE(s.test('g'));
}

TEST(SymbolSet, RangeAcrossWordBoundary)
{
    // 63/64 and 127/128 are word boundaries of the backing u64s.
    SymbolSet s = SymbolSet::range(60, 130);
    EXPECT_EQ(s.count(), 71);
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(127));
    EXPECT_TRUE(s.test(128));
    EXPECT_FALSE(s.test(131));
}

TEST(SymbolSet, ReversedRangeThrows)
{
    EXPECT_THROW(SymbolSet::range('z', 'a'), CaError);
}

TEST(SymbolSet, UnionIntersectionComplement)
{
    SymbolSet a = SymbolSet::range('a', 'm');
    SymbolSet b = SymbolSet::range('g', 'z');
    SymbolSet u = a | b;
    SymbolSet i = a & b;
    EXPECT_EQ(u.count(), 26);
    EXPECT_EQ(i.count(), 'm' - 'g' + 1);
    EXPECT_TRUE((~a).test('z'));
    EXPECT_FALSE((~a).test('a'));
    EXPECT_EQ((~~a), a);
}

TEST(SymbolSet, IntersectsDetectsOverlap)
{
    SymbolSet a = SymbolSet::range('a', 'c');
    SymbolSet b = SymbolSet::range('c', 'e');
    SymbolSet c = SymbolSet::range('x', 'z');
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(c));
}

TEST(SymbolSet, NextIteratesMembers)
{
    SymbolSet s;
    s.set(3);
    s.set(64);
    s.set(255);
    EXPECT_EQ(s.first(), 3);
    EXPECT_EQ(s.next(3), 64);
    EXPECT_EQ(s.next(64), 255);
    EXPECT_EQ(s.next(255), -1);
}

TEST(SymbolSetParse, SimpleMembers)
{
    SymbolSet s = SymbolSet::parseClass("abc");
    EXPECT_EQ(s.count(), 3);
    EXPECT_TRUE(s.test('a'));
    EXPECT_TRUE(s.test('c'));
}

TEST(SymbolSetParse, Ranges)
{
    SymbolSet s = SymbolSet::parseClass("a-z0-9");
    EXPECT_EQ(s.count(), 36);
}

TEST(SymbolSetParse, Negation)
{
    SymbolSet s = SymbolSet::parseClass("^a");
    EXPECT_EQ(s.count(), 255);
    EXPECT_FALSE(s.test('a'));
}

TEST(SymbolSetParse, HexEscapes)
{
    SymbolSet s = SymbolSet::parseClass("\\x00-\\x1f");
    EXPECT_EQ(s.count(), 32);
    EXPECT_TRUE(s.test(0));
    EXPECT_TRUE(s.test(31));
    EXPECT_FALSE(s.test(32));
}

TEST(SymbolSetParse, ClassEscapes)
{
    EXPECT_EQ(SymbolSet::parseClass("\\d").count(), 10);
    EXPECT_EQ(SymbolSet::parseClass("\\w").count(), 63);
    EXPECT_EQ(SymbolSet::parseClass("\\s").count(), 6);
    EXPECT_EQ(SymbolSet::parseClass("\\D").count(), 246);
}

TEST(SymbolSetParse, EscapedMetacharacters)
{
    SymbolSet s = SymbolSet::parseClass("\\-\\]\\\\");
    EXPECT_TRUE(s.test('-'));
    EXPECT_TRUE(s.test(']'));
    EXPECT_TRUE(s.test('\\'));
    EXPECT_EQ(s.count(), 3);
}

TEST(SymbolSetParse, LiteralDashAtEdges)
{
    // Trailing '-' has no upper endpoint and is literal.
    SymbolSet s = SymbolSet::parseClass("a-");
    EXPECT_TRUE(s.test('a'));
    EXPECT_TRUE(s.test('-'));
}

TEST(SymbolSetParse, MalformedThrows)
{
    EXPECT_THROW(SymbolSet::parseClass("z-a"), CaError);
    EXPECT_THROW(SymbolSet::parseClass("abc\\"), CaError);
    EXPECT_THROW(SymbolSet::parseClass("\\xZZ"), CaError);
    EXPECT_THROW(SymbolSet::parseClass("\\x1"), CaError);
}

TEST(SymbolSetParse, RoundTripThroughToString)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        SymbolSet s;
        int members = 1 + static_cast<int>(rng.below(40));
        for (int i = 0; i < members; ++i)
            s.set(rng.byte());
        std::string str = s.toString();
        ASSERT_GE(str.size(), 2u);
        SymbolSet back =
            SymbolSet::parseClass(str.substr(1, str.size() - 2));
        EXPECT_EQ(back, s) << "round trip failed for " << str;
    }
}

TEST(SymbolSetParse, AllRoundTrip)
{
    EXPECT_EQ(SymbolSet::all().toString(), "[*]");
}

TEST(SymbolSet, HashDiffersForDifferentSets)
{
    // Not a guarantee, but collisions across these simple sets would
    // indicate a broken mix.
    std::set<size_t> hashes;
    for (int c = 0; c < 256; ++c)
        hashes.insert(SymbolSet::of(static_cast<uint8_t>(c)).hash());
    EXPECT_EQ(hashes.size(), 256u);
}

// ---------------------------------------------------------------- BitVector

TEST(BitVector, SetResetTest)
{
    BitVector v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_TRUE(v.none());
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    EXPECT_EQ(v.count(), 4u);
    v.reset(63);
    EXPECT_EQ(v.count(), 3u);
    EXPECT_FALSE(v.test(63));
    EXPECT_TRUE(v.test(64));
}

TEST(BitVector, OutOfRangeThrows)
{
    BitVector v(10);
    EXPECT_THROW(v.set(10), CaInternalError);
    EXPECT_THROW(v.test(11), CaInternalError);
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector v(70);
    v.setAll();
    EXPECT_EQ(v.count(), 70u);
    v.clearAll();
    EXPECT_TRUE(v.none());
}

TEST(BitVector, FirstNextIteration)
{
    BitVector v(200);
    v.set(5);
    v.set(64);
    v.set(199);
    EXPECT_EQ(v.first(), 5);
    EXPECT_EQ(v.next(5), 64);
    EXPECT_EQ(v.next(64), 199);
    EXPECT_EQ(v.next(199), -1);
}

TEST(BitVector, ForEachSetVisitsAscending)
{
    BitVector v(300);
    std::vector<size_t> want = {0, 1, 63, 64, 128, 299};
    for (size_t i : want)
        v.set(i);
    std::vector<size_t> got;
    v.forEachSet([&](size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

TEST(BitVector, BulkOps)
{
    BitVector a(128);
    BitVector b(128);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);

    BitVector o = a;
    o |= b;
    EXPECT_EQ(o.count(), 3u);

    BitVector i = a;
    i &= b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(2));

    BitVector x = a;
    x ^= b;
    EXPECT_EQ(x.count(), 2u);
    EXPECT_TRUE(x.test(1));
    EXPECT_TRUE(x.test(3));

    BitVector an = a;
    an.andNot(b);
    EXPECT_EQ(an.count(), 1u);
    EXPECT_TRUE(an.test(1));
}

TEST(BitVector, IntersectsWithoutMaterializing)
{
    BitVector a(64);
    BitVector b(64);
    a.set(10);
    b.set(11);
    EXPECT_FALSE(a.intersects(b));
    b.set(10);
    EXPECT_TRUE(a.intersects(b));
}

TEST(BitVector, SizeMismatchThrows)
{
    BitVector a(64);
    BitVector b(65);
    EXPECT_THROW(a |= b, CaInternalError);
}

TEST(BitVector, WordGranularOps)
{
    BitVector v(200); // 4 words, last one partial
    EXPECT_EQ(v.wordCount(), 4u);
    v.orWord(1, uint64_t{1} << 5 | uint64_t{1} << 40);
    EXPECT_TRUE(v.test(64 + 5));
    EXPECT_TRUE(v.test(64 + 40));
    EXPECT_EQ(v.word(1), (uint64_t{1} << 5) | (uint64_t{1} << 40));
    EXPECT_EQ(v.count(), 2u);
    v.andWord(1, uint64_t{1} << 5);
    EXPECT_TRUE(v.test(64 + 5));
    EXPECT_FALSE(v.test(64 + 40));
    EXPECT_EQ(v.count(), 1u);
}

TEST(BitVector, MutableRawMatchesBitView)
{
    BitVector v(130);
    v.raw()[0] = 0x5;
    v.raw()[2] = 0x3; // bits 128, 129 — within size
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(2));
    EXPECT_TRUE(v.test(128));
    EXPECT_TRUE(v.test(129));
    EXPECT_EQ(v.count(), 4u);
    std::ptrdiff_t last = v.next(v.next(v.first()));
    EXPECT_EQ(last, 128);
    // The const and mutable views alias the same storage.
    const BitVector &cv = v;
    EXPECT_EQ(cv.raw().data(), v.raw().data());
}

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ---------------------------------------------------------------- strings

TEST(StringUtils, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StringUtils, SplitNoSeparator)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtils, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(endsWith("foobar", "bar"));
    EXPECT_FALSE(endsWith("ar", "bar"));
}

TEST(StringUtils, XmlEscape)
{
    EXPECT_EQ(xmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(StringUtils, FormatSi)
{
    EXPECT_EQ(formatSi(2.0e9, "Hz"), "2.00 GHz");
    EXPECT_EQ(formatSi(1.5e-12, "J"), "1.50 pJ");
    EXPECT_EQ(formatSi(0.0, "b"), "0 b");
}

// ---------------------------------------------------------------- errors

TEST(Error, ThrowMacroCarriesMessage)
{
    try {
        CA_THROW("value is " << 42);
        FAIL() << "should have thrown";
    } catch (const CaError &e) {
        EXPECT_NE(std::string(e.what()).find("value is 42"),
                  std::string::npos);
    }
}

TEST(Error, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(CA_FATAL_IF(false, "never"));
    EXPECT_THROW(CA_FATAL_IF(true, "always"), CaError);
}

TEST(Error, AssertDistinguishesInternal)
{
    EXPECT_THROW(CA_ASSERT(1 == 2), CaInternalError);
    EXPECT_NO_THROW(CA_ASSERT(1 == 1));
}

// ---------------------------------------------------------------- Logging

TEST(Logging, LevelOrdering)
{
    // Error sits between Quiet and Warn so `error` silences warnings but
    // keeps hard failures visible.
    EXPECT_LT(static_cast<int>(LogLevel::Quiet),
              static_cast<int>(LogLevel::Error));
    EXPECT_LT(static_cast<int>(LogLevel::Error),
              static_cast<int>(LogLevel::Warn));
    EXPECT_LT(static_cast<int>(LogLevel::Warn),
              static_cast<int>(LogLevel::Info));
    EXPECT_LT(static_cast<int>(LogLevel::Info),
              static_cast<int>(LogLevel::Debug));
}

TEST(Logging, ErrorMacroRespectsLevel)
{
    LogLevel saved = logLevel();

    setLogLevel(LogLevel::Quiet);
    testing::internal::CaptureStderr();
    CA_ERROR("suppressed");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Error);
    testing::internal::CaptureStderr();
    CA_ERROR("boom " << 42);
    CA_WARN("also suppressed");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "error: boom 42\n");

    setLogLevel(saved);
}

} // namespace
} // namespace ca
