/**
 * @file
 * Tests for the NFA transformations (prefix/suffix merging, pruning).
 *
 * The key property: transformations must preserve the (offset, reportId)
 * report stream on any input — checked both on constructed cases and
 * randomized rulesets via the oracle engine.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/nfa_engine.h"
#include "nfa/glushkov.h"
#include "nfa/regex_parser.h"
#include "nfa/transform.h"
#include "workload/input_gen.h"
#include "workload/witness.h"

namespace ca {
namespace {

/** Report stream reduced to (offset, reportId) pairs (state ids may
 *  legitimately change under merging). */
std::set<std::pair<uint64_t, uint32_t>>
reportSet(const Nfa &nfa, const std::vector<uint8_t> &input)
{
    NfaEngine eng(nfa);
    std::set<std::pair<uint64_t, uint32_t>> out;
    for (const Report &r : eng.run(input))
        out.emplace(r.offset, r.reportId);
    return out;
}

TEST(MergePrefixes, CollapsesSharedLiteralPrefix)
{
    // "artist" and "artifact" share "arti"; their merged automaton should
    // shrink by at least those 4 duplicated states.
    Nfa nfa = compileRuleset({"artist", "artifact"});
    size_t before = nfa.numStates();
    TransformStats st = mergePrefixes(nfa);
    EXPECT_EQ(st.statesBefore, before);
    EXPECT_LE(nfa.numStates(), before - 4);
    EXPECT_NO_THROW(nfa.validate());
}

TEST(MergePrefixes, PreservesReportStream)
{
    std::vector<std::string> rules = {"artist", "artifact", "art", "cart"};
    Nfa orig = compileRuleset(rules);
    Nfa merged = orig;
    mergePrefixes(merged);

    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 16.0;
    auto input = buildInput(spec, 16 << 10, 3);
    EXPECT_EQ(reportSet(orig, input), reportSet(merged, input));
    EXPECT_FALSE(reportSet(merged, input).empty());
}

TEST(MergePrefixes, MergesCyclicGapStates)
{
    // Two rules sharing a prefix through a self-looping [^;]* gap: exact
    // predecessor-set equality cannot merge the gap states, bisimulation
    // can. a[^;]*b and a[^;]*c share 'a' and the gap state.
    Nfa nfa = compileRuleset({"a[^;]*b", "a[^;]*c"});
    size_t before = nfa.numStates(); // 6 states
    mergePrefixes(nfa);
    EXPECT_LE(nfa.numStates(), before - 2) << "gap states did not merge";
    EXPECT_NO_THROW(nfa.validate());
}

TEST(MergePrefixes, DoesNotMergeDifferentReportIds)
{
    // Identical rule text but distinct report ids: accepting states must
    // stay separate; the prefix states may merge.
    Nfa nfa = compileRuleset({"abc", "abc"});
    mergePrefixes(nfa);
    EXPECT_EQ(nfa.reportStates().size(), 2u);
}

TEST(MergePrefixes, MergesFusedStartStates)
{
    // Rules with the same first symbol fuse at the start, joining their
    // connected components (the Table 1 CA_S effect).
    Nfa nfa = compileRuleset({"xaa", "xbb", "xcc"});
    EXPECT_EQ(nfa.numStates(), 9u);
    mergePrefixes(nfa);
    EXPECT_EQ(nfa.numStates(), 7u); // single 'x' start remains
}

TEST(MergeSuffixes, CollapsesSharedSuffix)
{
    // Two patterns with the same report id sharing the "zzz" suffix: the
    // whole suffix chain merges (labels differ only in the prefix).
    GlushkovOptions opts;
    opts.reportId = 1;
    Nfa nfa = buildGlushkov(parseRegex("abczzz"), opts);
    nfa.merge(buildGlushkov(parseRegex("defzzz"), opts));
    size_t before = nfa.numStates(); // 12
    TransformStats st = mergeSuffixes(nfa);
    EXPECT_LE(st.statesAfter, before - 3);
    EXPECT_NO_THROW(nfa.validate());
}

TEST(MergeSuffixes, PreservesReportOffsets)
{
    std::vector<std::string> rules = {"(aa|bb)cc"};
    Nfa orig = compileRuleset(rules);
    Nfa merged = orig;
    mergeSuffixes(merged);
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 16.0;
    auto input = buildInput(spec, 8 << 10, 4);
    EXPECT_EQ(reportSet(orig, input), reportSet(merged, input));
}

TEST(RemoveUnreachable, DropsOrphans)
{
    Nfa nfa = compileRuleset({"ab"});
    // Orphan state with no path from a start.
    nfa.addState(SymbolSet::of('z'));
    TransformStats st = removeUnreachable(nfa);
    EXPECT_EQ(st.removed(), 1u);
    EXPECT_NO_THROW(nfa.validate());
}

TEST(RemoveDead, DropsStatesThatCannotReport)
{
    Nfa nfa = compileRuleset({"ab"});
    // Reachable dead end: a state reachable from the start that leads
    // nowhere and never reports.
    StateId dead = nfa.addState(SymbolSet::of('z'));
    nfa.addTransition(0, dead);
    nfa.dedupeEdges();
    TransformStats st = removeDead(nfa);
    EXPECT_EQ(st.removed(), 1u);
}

TEST(RemoveDead, NoopWithoutReports)
{
    Nfa nfa;
    nfa.addState(SymbolSet::of('a'), StartType::AllInput);
    TransformStats st = removeDead(nfa);
    EXPECT_EQ(st.removed(), 0u);
}

TEST(OptimizeForSpace, PipelineShrinksRealRuleset)
{
    // Rules drawn from a small lexicon share lots of structure.
    std::vector<std::string> rules;
    for (int i = 0; i < 40; ++i)
        rules.push_back(std::string("prefix") +
                        static_cast<char>('a' + i % 5) + "suffix");
    Nfa nfa = compileRuleset(rules);
    size_t before = nfa.numStates();
    TransformStats st = optimizeForSpace(nfa);
    EXPECT_LT(nfa.numStates(), before / 2);
    EXPECT_EQ(st.statesBefore, before);
    EXPECT_EQ(st.statesAfter, nfa.numStates());
    EXPECT_NO_THROW(nfa.validate());
}

// Property test: the space pipeline preserves report streams on random
// rulesets and random inputs.
class SpacePipelineProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SpacePipelineProperty, ReportStreamPreserved)
{
    Rng rng(GetParam() * 104729 + 17);
    static const char *kBlocks[] = {
        "ab", "c+", "(de|fg)", "[a-d]{1,3}", "h.*i", "[xy]", "z?w",
    };
    std::vector<std::string> rules;
    int n_rules = 2 + static_cast<int>(rng.below(6));
    for (int r = 0; r < n_rules; ++r) {
        std::string pat;
        int blocks = 1 + static_cast<int>(rng.below(4));
        for (int b = 0; b < blocks; ++b)
            pat += kBlocks[rng.below(std::size(kBlocks))];
        rules.push_back(pat);
    }

    Nfa orig = compileRuleset(rules);
    Nfa opt = orig;
    optimizeForSpace(opt);
    EXPECT_LE(opt.numStates(), orig.numStates());

    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 32.0;
    auto input = buildInput(spec, 8 << 10, GetParam());
    EXPECT_EQ(reportSet(orig, input), reportSet(opt, input))
        << "rules: " << rules[0] << " ...";
}

INSTANTIATE_TEST_SUITE_P(RandomRulesets, SpacePipelineProperty,
                         ::testing::Range(0, 30));

} // namespace
} // namespace ca
