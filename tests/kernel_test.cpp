/**
 * @file
 * Tests for the simulator's execution kernels (SimKernel): the dense
 * bit-parallel stepper and the Auto density selector must produce
 * report streams and activity counters bit-identical to the sparse
 * kernel and the CPU oracle, on randomized automata, under both
 * mapping policies, across checkpoints, and through the incremental
 * streaming API. Also home to the sim-semantics regression tests:
 * run()-with-one-off-options restoring the bound options, and exact
 * §2.8 output-buffer interrupt accounting.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

namespace ca {
namespace {

SimOptions
kernelOpts(SimKernel k)
{
    SimOptions opts;
    opts.kernel = k;
    return opts;
}

/** Everything two kernels must agree on, bit for bit. */
void
expectSameResult(const SimResult &a, const SimResult &b,
                 const std::string &label)
{
    EXPECT_EQ(a.reports, b.reports) << label;
    EXPECT_EQ(a.symbols, b.symbols) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalActivePartitionCycles,
              b.totalActivePartitionCycles)
        << label;
    EXPECT_EQ(a.totalActiveStates, b.totalActiveStates) << label;
    EXPECT_EQ(a.totalEnabledStates, b.totalEnabledStates) << label;
    EXPECT_EQ(a.totalG1Crossings, b.totalG1Crossings) << label;
    EXPECT_EQ(a.totalG4Crossings, b.totalG4Crossings) << label;
    EXPECT_EQ(a.fifoRefills, b.fifoRefills) << label;
    EXPECT_EQ(a.outputBufferInterrupts, b.outputBufferInterrupts)
        << label;
}

/** True when $CA_SIM_KERNEL pins every sim to one kernel (CI sweeps). */
bool
kernelPinnedByEnv()
{
    const char *env = std::getenv("CA_SIM_KERNEL");
    return env && *env;
}

// Property: on randomized rulesets and inputs, under both mapping
// policies, the three kernels and the CPU oracle agree on the report
// stream and every activity counter.
class KernelEquality : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelEquality, DenseAndAutoMatchSparseAndOracle)
{
    int param = GetParam();
    bool space = param % 2 == 1;
    Rng rng(param * 74093 + 11);

    static const char *kBlocks[] = {
        "ab", "c+", "(d|ef)", "[g-i]{1,2}", "j.*k", "[lm]", "n?o",
        ".",
    };
    std::vector<std::string> rules;
    int n_rules = 2 + static_cast<int>(rng.below(8));
    for (int r = 0; r < n_rules; ++r) {
        std::string pat;
        int blocks = 1 + static_cast<int>(rng.below(4));
        for (int b = 0; b < blocks; ++b)
            pat += kBlocks[rng.below(std::size(kBlocks))];
        rules.push_back(pat);
    }

    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = space ? mapSpace(nfa) : mapPerformance(nfa);

    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 32.0;
    auto input = buildInput(spec, 8 << 10, param);

    CacheAutomatonSim sparse(m, kernelOpts(SimKernel::Sparse));
    CacheAutomatonSim dense(m, kernelOpts(SimKernel::Dense));
    SimOptions auto_opts = kernelOpts(SimKernel::Auto);
    auto_opts.autoBlockSymbols = 256; // force several re-evaluations
    CacheAutomatonSim auto_sim(m, auto_opts);

    SimResult sp = sparse.run(input);
    SimResult de = dense.run(input);
    SimResult au = auto_sim.run(input);
    expectSameResult(de, sp, "dense vs sparse");
    expectSameResult(au, sp, "auto vs sparse");

    NfaEngine oracle(m.nfa());
    std::vector<Report> expect = oracle.run(input);
    EXPECT_EQ(sp.reports, expect);
    EXPECT_EQ(de.reports, expect);
    EXPECT_FALSE(expect.empty());
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, KernelEquality,
                         ::testing::Range(0, 24));

TEST(Kernel, DenseHandlesCrossPartitionEdges)
{
    // A 600-state chain splits across partitions, so the dense kernel
    // must route its G-switch CSR, not just the L-switch masks.
    std::string rule(600, 'a');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    ASSERT_GT(m.crossEdges().size(), 0u);

    std::vector<uint8_t> input(1200, 'a');
    CacheAutomatonSim sparse(m, kernelOpts(SimKernel::Sparse));
    CacheAutomatonSim dense(m, kernelOpts(SimKernel::Dense));
    SimResult sp = sparse.run(input.data(), input.size());
    SimResult de = dense.run(input.data(), input.size());
    expectSameResult(de, sp, "chain across partitions");
    EXPECT_GT(de.totalG1Crossings, 0u);
    if (!kernelPinnedByEnv()) {
        EXPECT_EQ(de.denseKernelSymbols, de.symbols);
        EXPECT_EQ(sp.sparseKernelSymbols, sp.symbols);
    }
}

TEST(Kernel, DenseTraceMatchesSparse)
{
    Nfa nfa = compileRuleset({"cat", "do+g", "[hx]at"});
    MappedAutomaton m = mapPerformance(nfa);
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"cat", "dog", "hat"};
    spec.plantsPer4k = 32.0;
    auto input = buildInput(spec, 4 << 10, 17);

    SimOptions sparse_opts = kernelOpts(SimKernel::Sparse);
    sparse_opts.recordTrace = true;
    SimOptions dense_opts = kernelOpts(SimKernel::Dense);
    dense_opts.recordTrace = true;
    CacheAutomatonSim sparse(m, sparse_opts);
    CacheAutomatonSim dense(m, dense_opts);
    SimResult sp = sparse.run(input);
    SimResult de = dense.run(input);
    ASSERT_EQ(de.trace.size(), sp.trace.size());
    EXPECT_EQ(de.trace, sp.trace);
}

TEST(Kernel, DenseCollectReportsOffStillCounts)
{
    Nfa nfa = compileRuleset({"a"});
    MappedAutomaton m = mapPerformance(nfa);
    SimOptions opts = kernelOpts(SimKernel::Dense);
    opts.collectReports = false;
    opts.outputBufferDepth = 16;
    CacheAutomatonSim sim(m, opts);
    std::vector<uint8_t> input(100, 'a');
    SimResult res = sim.run(input.data(), input.size());
    EXPECT_TRUE(res.reports.empty());
    EXPECT_EQ(res.totalActiveStates, 100u);
    EXPECT_EQ(res.outputBufferInterrupts, 100u / 16);
}

TEST(Kernel, DenseIncrementalFeedAndTakeReports)
{
    Nfa nfa = compileRuleset({"cat", "do+g"});
    MappedAutomaton m = mapPerformance(nfa);
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"cat", "dog"};
    spec.plantsPer4k = 32.0;
    auto input = buildInput(spec, 8 << 10, 23);

    CacheAutomatonSim whole(m, kernelOpts(SimKernel::Sparse));
    SimResult expect = whole.run(input);

    CacheAutomatonSim sim(m, kernelOpts(SimKernel::Dense));
    sim.reset();
    std::vector<Report> drained;
    size_t pos = 0;
    for (size_t chunk : {size_t{1000}, size_t{1}, size_t{0},
                         size_t{4096}, size_t{37}}) {
        size_t n = std::min(chunk, input.size() - pos);
        sim.feed(input.data() + pos, n);
        pos += n;
        auto got = sim.takeReports();
        drained.insert(drained.end(), got.begin(), got.end());
    }
    sim.feed(input.data() + pos, input.size() - pos);
    auto tail = sim.takeReports();
    drained.insert(drained.end(), tail.begin(), tail.end());
    EXPECT_EQ(drained, expect.reports);
    EXPECT_EQ(sim.result().symbols, expect.symbols);
}

TEST(Kernel, AutoSwitchesKernelsMidStream)
{
    if (kernelPinnedByEnv())
        GTEST_SKIP() << "CA_SIM_KERNEL pins the kernel";

    // One chain of 200 'z'-labelled states: a text stream keeps ~0
    // states active (sparse regime); a 'z'-flood keeps ~200 of the 201
    // states active (dense regime).
    Nfa nfa = compileRuleset({"z{1,200}"});
    MappedAutomaton m = mapPerformance(nfa);

    std::vector<uint8_t> input(8 << 10, 'a');
    std::fill(input.begin() + input.size() / 2, input.end(), 'z');

    SimOptions opts = kernelOpts(SimKernel::Auto);
    opts.autoBlockSymbols = 512;
    opts.autoEwmaAlpha = 1.0; // instant: block density decides directly
    opts.autoDensityThreshold = 0.05;
    CacheAutomatonSim sim(m, opts);
    SimResult res = sim.run(input.data(), input.size());

    EXPECT_GT(res.sparseKernelSymbols, 0u);
    EXPECT_GT(res.denseKernelSymbols, 0u);
    EXPECT_GE(res.kernelSwitches, 1u);
    EXPECT_EQ(res.sparseKernelSymbols + res.denseKernelSymbols,
              res.symbols);

    // And the mixed-kernel stream is still bit-identical to sparse.
    CacheAutomatonSim sparse(m, kernelOpts(SimKernel::Sparse));
    expectSameResult(res, sparse.run(input.data(), input.size()),
                     "auto (switching) vs sparse");
}

TEST(Kernel, AutoThresholdExtremesPinTheKernel)
{
    if (kernelPinnedByEnv())
        GTEST_SKIP() << "CA_SIM_KERNEL pins the kernel";

    Nfa nfa = compileRuleset({"ab", "cd"});
    MappedAutomaton m = mapPerformance(nfa);
    auto input = std::vector<uint8_t>(4 << 10, 'a');

    SimOptions always_dense = kernelOpts(SimKernel::Auto);
    always_dense.autoDensityThreshold = 0.0; // any frontier clears it
    CacheAutomatonSim dense_sim(m, always_dense);
    SimResult de = dense_sim.run(input.data(), input.size());
    EXPECT_EQ(de.denseKernelSymbols, de.symbols);

    SimOptions never_dense = kernelOpts(SimKernel::Auto);
    never_dense.autoDensityThreshold = 2.0; // density cannot exceed 1
    CacheAutomatonSim sparse_sim(m, never_dense);
    SimResult sp = sparse_sim.run(input.data(), input.size());
    EXPECT_EQ(sp.sparseKernelSymbols, sp.symbols);
}

TEST(Kernel, CheckpointRoundTripsAcrossKernels)
{
    Nfa nfa = compileRuleset({"ab+c", "x[yz]{1,3}w", "m.*n"});
    MappedAutomaton m = mapSpace(nfa);
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"abc", "xyw", "mn"};
    spec.plantsPer4k = 24.0;
    auto input = buildInput(spec, 8 << 10, 31);

    CacheAutomatonSim whole(m, kernelOpts(SimKernel::Sparse));
    SimResult expect = whole.run(input);

    // Suspend from a dense-kernel sim, resume into a sparse one (and
    // vice versa): the §2.9 checkpoint is representation-independent.
    for (bool head_dense : {false, true}) {
        size_t cut = input.size() / 3 + 7;
        CacheAutomatonSim head(
            m, kernelOpts(head_dense ? SimKernel::Dense
                                     : SimKernel::Sparse));
        head.reset();
        head.feed(input.data(), cut);
        SimCheckpoint ckpt = head.checkpoint();
        EXPECT_EQ(ckpt.symbolOffset, cut);

        CacheAutomatonSim tail(
            m, kernelOpts(head_dense ? SimKernel::Sparse
                                     : SimKernel::Dense));
        tail.restore(ckpt);
        tail.feed(input.data() + cut, input.size() - cut);

        std::vector<Report> stitched = head.result().reports;
        auto t = tail.result().reports;
        stitched.insert(stitched.end(), t.begin(), t.end());
        EXPECT_EQ(stitched, expect.reports)
            << "head_dense=" << head_dense;
    }
}

// ---------------------------------------------------------------------
// Regression: run(data, size, opts) takes *one-off* options — the bound
// options must be restored afterwards. Before the fix it permanently
// overwrote opts_, so a later feed()/run() silently used the one-off
// options (here: a collectReports=false run would disable report
// collection for the rest of the sim's life).
TEST(Kernel, RunWithOneOffOptionsRestoresBoundOptions)
{
    Nfa nfa = compileRuleset({"a"});
    MappedAutomaton m = mapPerformance(nfa);
    SimOptions bound; // collectReports=true, fifoRefillSymbols=64
    bound.fifoRefillSymbols = 64;
    CacheAutomatonSim sim(m, bound);
    std::vector<uint8_t> input(128, 'a');

    SimOptions oneoff = bound;
    oneoff.collectReports = false;
    oneoff.fifoRefillSymbols = 16;
    SimResult oneoff_res = sim.run(input.data(), input.size(), oneoff);
    EXPECT_TRUE(oneoff_res.reports.empty());
    EXPECT_EQ(oneoff_res.fifoRefills, 128u / 16);

    // The two-arg run() must see the originally-bound options again.
    SimResult later = sim.run(input.data(), input.size());
    EXPECT_EQ(later.reports.size(), 128u);
    EXPECT_EQ(later.fifoRefills, 128u / 64);

    // And an incremental reset()+feed() too.
    sim.reset();
    sim.feed(input.data(), input.size());
    EXPECT_EQ(sim.result().reports.size(), 128u);
}

// ---------------------------------------------------------------------
// Regression: §2.8 output-buffer interrupts must be exact when several
// states report on the same symbol near the threshold. The buffer model
// drains outputBufferDepth entries per interrupt and *carries the
// overshoot*; resetting the pending count to zero (the old behaviour)
// would discard the extra reports of a threshold-crossing cycle when
// they arrive batched (as the dense kernel delivers them).
TEST(Kernel, OutputBufferOvershootCarriesAcrossInterrupt)
{
    // "a" and "[ab]" both report on every 'a': 2 reports per symbol.
    Nfa nfa = compileRuleset({"a", "[ab]"});
    MappedAutomaton m = mapPerformance(nfa);
    std::vector<uint8_t> input(100, 'a');

    for (SimKernel k : {SimKernel::Sparse, SimKernel::Dense}) {
        SimOptions opts = kernelOpts(k);
        opts.outputBufferDepth = 3; // 2 reports/cycle straddle it
        CacheAutomatonSim sim(m, opts);
        SimResult res = sim.run(input.data(), input.size());
        ASSERT_EQ(res.reports.size(), 200u);
        // Exact: 200 reports through a depth-3 buffer = 66 interrupts
        // with 2 entries left pending. Discarded overshoot would lose
        // one report every third cycle and undercount interrupts.
        EXPECT_EQ(res.outputBufferInterrupts, 200u / 3)
            << "kernel " << static_cast<int>(k);
    }
}

} // namespace
} // namespace ca
