/**
 * @file
 * Tests for the multi-stream runtime (src/runtime).
 *
 * The load-bearing property is determinism: for any worker count, slice
 * quantum, chunk split, and scheduling interleaving, each session's
 * delivered report stream must be byte-identical to a single-threaded
 * CacheAutomatonSim::run() over the same input. The stress tests below
 * randomize all of those dimensions; the suite is also the target of the
 * ThreadSanitizer CI configuration (scripts/ci.sh).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baseline/nfa_engine.h"
#include "core/error.h"
#include "core/rng.h"
#include "compiler/mapping.h"
#include "nfa/glushkov.h"
#include "runtime/report_sink.h"
#include "runtime/stream_server.h"
#include "sim/engine.h"
#include "workload/input_gen.h"

namespace ca {
namespace {

using runtime::CallbackSink;
using runtime::CollectingSink;
using runtime::CountingSink;
using runtime::SessionSummary;
using runtime::StreamServer;
using runtime::StreamServerOptions;
using runtime::StreamSession;

MappedAutomaton
sampleMapped()
{
    Nfa nfa = compileRuleset({"cat", "do+g", "[hx]at", "m.*n"});
    return mapPerformance(nfa);
}

std::vector<uint8_t>
sampleInput(size_t bytes, uint64_t seed)
{
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"cat", "dog", "hat", "mn"};
    spec.plantsPer4k = 32.0;
    return buildInput(spec, bytes, seed);
}

/** The single-threaded reference for one stream. */
std::vector<Report>
oracleReports(const MappedAutomaton &m, const std::vector<uint8_t> &input)
{
    CacheAutomatonSim sim(m);
    return sim.run(input).reports;
}

TEST(StreamServer, SingleSessionMatchesSingleThreadedRun)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(16 << 10, 3);
    auto expect = oracleReports(m, input);

    CollectingSink sink;
    StreamServer server(m);
    StreamSession &s = server.open(sink);
    s.submit(input);
    s.close();

    EXPECT_EQ(sink.reports(s.id()), expect);
    SessionSummary sum = sink.summary(s.id());
    EXPECT_EQ(sum.symbols, input.size());
    EXPECT_EQ(sum.reports, expect.size());
    EXPECT_TRUE(s.closed());
}

TEST(StreamServer, TinySliceForcesContextSwitchesSameReports)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(16 << 10, 5);
    auto expect = oracleReports(m, input);

    StreamServerOptions opts;
    opts.workers = 2;
    opts.sliceSymbols = 257; // quantum << chunk size: suspends mid-chunk
    CollectingSink sink;
    StreamServer server(m, opts);
    StreamSession &s = server.open(sink);
    s.submit(input); // one big chunk
    s.close();

    EXPECT_EQ(sink.reports(s.id()), expect);
    auto st = s.stats();
    EXPECT_GT(st.slices, 1u);
    EXPECT_GT(st.contextSwitches, 0u);
    EXPECT_EQ(st.symbols, input.size());
}

TEST(StreamServer, FlushDeliversEverythingSubmittedSoFar)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(8 << 10, 7);
    size_t cut = input.size() / 2;

    CollectingSink sink;
    StreamServer server(m);
    StreamSession &s = server.open(sink);
    s.submit(input.data(), cut);
    s.flush();

    CacheAutomatonSim head(m);
    head.reset();
    head.feed(input.data(), cut);
    EXPECT_EQ(sink.reports(s.id()), head.result().reports);

    s.submit(input.data() + cut, input.size() - cut);
    s.close();
    EXPECT_EQ(sink.reports(s.id()), oracleReports(m, input));
}

TEST(StreamServer, SubmitAfterCloseRejected)
{
    MappedAutomaton m = sampleMapped();
    CountingSink sink;
    StreamServer server(m);
    StreamSession &s = server.open(sink);
    s.close();
    uint8_t byte = 'x';
    EXPECT_THROW(s.submit(&byte, 1), CaError);
    EXPECT_THROW(s.trySubmit(&byte, 1), CaError);
}

TEST(StreamServer, CloseWithoutInputStillClosesSink)
{
    MappedAutomaton m = sampleMapped();
    CollectingSink sink;
    StreamServer server(m);
    StreamSession &s = server.open(sink);
    s.close();
    EXPECT_EQ(sink.sessionsClosed(), 1u);
    EXPECT_EQ(sink.summary(s.id()).symbols, 0u);
}

TEST(StreamServer, TrySubmitRefusesWhenQueueFull)
{
    MappedAutomaton m = sampleMapped();
    StreamServerOptions opts;
    opts.workers = 1;
    opts.sessionQueueDepth = 2;
    CountingSink sink;
    StreamServer server(m, opts);
    StreamSession &s = server.open(sink);

    // Suspended sessions retain queued input, so the queue must fill.
    (void)s.suspend();
    std::vector<uint8_t> chunk(64, 'a');
    EXPECT_TRUE(s.trySubmit(chunk.data(), chunk.size()));
    EXPECT_TRUE(s.trySubmit(chunk.data(), chunk.size()));
    EXPECT_FALSE(s.trySubmit(chunk.data(), chunk.size()));
    s.resume();
    s.close();
    EXPECT_EQ(sink.totalSymbols(), 2 * chunk.size());
}

TEST(StreamServer, BlockingSubmitAppliesBackpressure)
{
    MappedAutomaton m = sampleMapped();
    StreamServerOptions opts;
    opts.workers = 2;
    opts.sessionQueueDepth = 2;
    CountingSink sink;
    StreamServer server(m, opts);
    StreamSession &s = server.open(sink);

    // Suspend so the queue cannot drain, fill it, then block a producer.
    (void)s.suspend();
    std::vector<uint8_t> chunk(64, 'a');
    ASSERT_TRUE(s.trySubmit(chunk.data(), chunk.size()));
    ASSERT_TRUE(s.trySubmit(chunk.data(), chunk.size()));
    std::thread producer([&] { s.submit(chunk.data(), chunk.size()); });
    // The producer registers its stall before waiting, so this loop
    // terminates exactly when it is parked on the full queue.
    while (s.stats().queueFullStalls == 0)
        std::this_thread::yield();
    s.resume(); // drain unblocks the producer
    producer.join();
    s.close();
    EXPECT_EQ(sink.totalSymbols(), 3 * chunk.size());
    EXPECT_GE(s.stats().queueFullStalls, 1u);
}

TEST(StreamServer, CallbackSinkSeesOrderedBatches)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(8 << 10, 11);
    auto expect = oracleReports(m, input);

    std::vector<Report> got;
    std::atomic<int> closes{0};
    CallbackSink sink(
        [&](uint32_t, const Report *r, size_t n) {
            got.insert(got.end(), r, r + n);
        },
        [&](uint32_t, const SessionSummary &) { ++closes; });

    StreamServerOptions opts;
    opts.workers = 1; // single worker: `got` needs no locking
    opts.sliceSymbols = 300;
    StreamServer server(m, opts);
    StreamSession &s = server.open(sink);
    for (size_t pos = 0; pos < input.size(); pos += 777)
        s.submit(input.data() + pos, std::min<size_t>(777, input.size() - pos));
    s.close();

    EXPECT_EQ(got, expect);
    EXPECT_EQ(closes.load(), 1);
}

TEST(StreamServer, SuspendResumeMidStream)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(8 << 10, 13);
    auto expect = oracleReports(m, input);

    StreamServerOptions opts;
    opts.workers = 2;
    opts.sliceSymbols = 200;
    CollectingSink sink;
    StreamServer server(m, opts);
    StreamSession &s = server.open(sink);
    s.submit(input.data(), input.size() / 2);
    SimCheckpoint ckpt = s.suspend();
    // The checkpoint is a consistent §2.9 snapshot: offset in [0, half].
    EXPECT_LE(ckpt.symbolOffset, input.size() / 2);
    s.resume();
    s.submit(input.data() + input.size() / 2,
             input.size() - input.size() / 2);
    s.close();
    EXPECT_EQ(sink.reports(s.id()), expect);
}

/**
 * §2.9 migration: suspend a session, seed a *new* session (fresh server,
 * same mapped automaton) from its checkpoint, feed the remainder there.
 * Report offsets keep the original stream's absolute numbering.
 */
TEST(StreamServer, CheckpointMigratesAcrossServers)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(8 << 10, 15);
    auto expect = oracleReports(m, input);

    CollectingSink sink_a;
    StreamServer server_a(m);
    StreamSession &sa = server_a.open(sink_a);
    sa.submit(input.data(), input.size() / 3);
    sa.flush(); // drain so the checkpoint covers everything submitted
    SimCheckpoint ckpt = sa.suspend();
    EXPECT_EQ(ckpt.symbolOffset, input.size() / 3);
    sa.resume();
    sa.close();

    CollectingSink sink_b;
    StreamServer server_b(m);
    StreamSession &sb = server_b.open(sink_b, ckpt);
    sb.submit(input.data() + input.size() / 3,
              input.size() - input.size() / 3);
    sb.close();

    std::vector<Report> stitched = sink_a.reports(sa.id());
    auto tail = sink_b.reports(sb.id());
    stitched.insert(stitched.end(), tail.begin(), tail.end());
    EXPECT_EQ(stitched, expect);
}

TEST(StreamServer, SuspendBeforeFirstSliceYieldsStartFrontier)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(4 << 10, 19);

    CollectingSink sink;
    StreamServer server(m);
    StreamSession &s = server.open(sink);
    // Never scheduled: the checkpoint must still be a live automaton
    // (offset 0, start frontier), not an empty dead one.
    SimCheckpoint ckpt = s.suspend();
    EXPECT_EQ(ckpt.symbolOffset, 0u);
    EXPECT_FALSE(ckpt.enabledStates.empty());

    StreamSession &fresh = server.open(sink, ckpt);
    fresh.submit(input);
    fresh.close();
    EXPECT_EQ(sink.reports(fresh.id()), oracleReports(m, input));
    s.resume();
    s.close();
}

TEST(StreamServer, ResumeCheckpointValidated)
{
    MappedAutomaton m = sampleMapped();
    CountingSink sink;
    StreamServer server(m);
    SimCheckpoint bogus;
    bogus.enabledStates = {static_cast<StateId>(1u << 30)};
    EXPECT_THROW(server.open(sink, bogus), CaError);
}

/**
 * Satellite regression: a SimCheckpoint taken mid-chunk on one thread
 * and restored on a different thread continues the stream exactly (the
 * runtime does this on every context switch; this pins the engine-level
 * contract without scheduler nondeterminism).
 */
TEST(StreamServer, CheckpointRoundTripAcrossThreads)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(8 << 10, 17);
    NfaEngine oracle(m.nfa());
    auto expect = oracle.run(input);

    size_t cut = input.size() / 2 + 13; // mid-chunk, odd offset
    SimCheckpoint ckpt;
    std::vector<Report> head;
    std::thread a([&] {
        CacheAutomatonSim sim(m);
        sim.reset();
        sim.feed(input.data(), cut);
        head = sim.takeReports();
        ckpt = sim.checkpoint();
    });
    a.join();

    std::vector<Report> tail;
    std::thread b([&] {
        CacheAutomatonSim sim(m);
        sim.restore(ckpt);
        sim.feed(input.data() + cut, input.size() - cut);
        tail = sim.takeReports();
    });
    b.join();

    head.insert(head.end(), tail.begin(), tail.end());
    EXPECT_EQ(head, expect);
}

/**
 * Acceptance stress: 10 sessions on 4 workers, independent randomized
 * streams submitted from concurrent producer threads in randomized chunk
 * splits, tiny quantum + shallow queues so sessions outnumber workers
 * and get context-switched constantly. Every session's report stream
 * must equal its single-threaded oracle, byte for byte.
 */
TEST(StreamServerStress, ManySessionsManyWorkersDeterministic)
{
    MappedAutomaton m = sampleMapped();
    constexpr size_t kSessions = 10;
    constexpr size_t kWorkers = 4;

    std::vector<std::vector<uint8_t>> inputs;
    std::vector<std::vector<Report>> expects;
    for (size_t i = 0; i < kSessions; ++i) {
        inputs.push_back(sampleInput((8 << 10) + 917 * i, 100 + i));
        expects.push_back(oracleReports(m, inputs.back()));
    }

    StreamServerOptions opts;
    opts.workers = kWorkers;
    opts.sessionQueueDepth = 3;
    opts.sliceSymbols = 409; // prime, < chunk sizes: mid-chunk switches
    CollectingSink sink;
    StreamServer server(m, opts);

    std::vector<StreamSession *> sessions;
    for (size_t i = 0; i < kSessions; ++i)
        sessions.push_back(&server.open(sink));

    std::vector<std::thread> producers;
    for (size_t i = 0; i < kSessions; ++i) {
        producers.emplace_back([&, i] {
            Rng rng(31 * i + 7);
            const auto &in = inputs[i];
            size_t pos = 0;
            while (pos < in.size()) {
                size_t n = std::min<size_t>(1 + rng.below(2048),
                                            in.size() - pos);
                sessions[i]->submit(in.data() + pos, n);
                pos += n;
            }
            sessions[i]->close();
        });
    }
    for (auto &t : producers)
        t.join();

    uint64_t total_symbols = 0;
    uint64_t total_reports = 0;
    for (size_t i = 0; i < kSessions; ++i) {
        EXPECT_EQ(sink.reports(sessions[i]->id()), expects[i])
            << "session " << i;
        total_symbols += inputs[i].size();
        total_reports += expects[i].size();
    }
    EXPECT_EQ(sink.sessionsClosed(), kSessions);

    auto st = server.stats();
    EXPECT_EQ(st.sessionsOpened, kSessions);
    EXPECT_EQ(st.sessionsClosed, kSessions);
    EXPECT_EQ(st.symbols, total_symbols);
    EXPECT_EQ(st.reports, total_reports);
    EXPECT_GT(st.contextSwitches, 0u);
}

/** Same stress through the destructor path: ~StreamServer drains. */
TEST(StreamServerStress, DestructorClosesOpenSessions)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(8 << 10, 21);
    auto expect = oracleReports(m, input);

    CollectingSink sink;
    uint32_t id = 0;
    {
        StreamServerOptions opts;
        opts.workers = 3;
        opts.sliceSymbols = 333;
        StreamServer server(m, opts);
        StreamSession &s = server.open(sink);
        id = s.id();
        s.submit(input);
        // No close(): the server destructor must drain and finalize.
    }
    EXPECT_EQ(sink.reports(id), expect);
    EXPECT_EQ(sink.sessionsClosed(), 1u);
}

/** Randomized option sweep: every combination stays deterministic. */
class RuntimeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RuntimeProperty, RandomConfigMatchesOracle)
{
    Rng rng(GetParam() * 7919 + 3);
    Nfa nfa = compileRuleset({"ab+c", "x[yz]{1,3}w", "m.*n"});
    MappedAutomaton m = mapSpace(nfa);

    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"abc", "xyw", "mn"};
    spec.plantsPer4k = 24.0;

    StreamServerOptions opts;
    opts.workers = 1 + rng.below(4);
    opts.sessionQueueDepth = 1 + rng.below(4);
    opts.sliceSymbols = 1 + rng.below(2000);
    CollectingSink sink;
    StreamServer server(m, opts);

    const size_t n_sessions = 2 + rng.below(4);
    std::vector<StreamSession *> sessions;
    std::vector<std::vector<uint8_t>> inputs;
    for (size_t i = 0; i < n_sessions; ++i) {
        sessions.push_back(&server.open(sink));
        inputs.push_back(
            buildInput(spec, (2 << 10) + rng.below(4 << 10),
                       GetParam() * 131 + i));
    }
    // Interleaved round-robin submission with random chunk sizes.
    std::vector<size_t> pos(n_sessions, 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t i = 0; i < n_sessions; ++i) {
            if (pos[i] >= inputs[i].size())
                continue;
            size_t n = std::min<size_t>(1 + rng.below(1500),
                                        inputs[i].size() - pos[i]);
            sessions[i]->submit(inputs[i].data() + pos[i], n);
            pos[i] += n;
            progress = true;
        }
    }
    for (auto *s : sessions)
        s->close();
    for (size_t i = 0; i < n_sessions; ++i)
        EXPECT_EQ(sink.reports(sessions[i]->id()),
                  oracleReports(m, inputs[i]))
            << "session " << i;
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, RuntimeProperty,
                         ::testing::Range(0, 8));

} // namespace
} // namespace ca
