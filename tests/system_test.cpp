/**
 * @file
 * Tests for the system-integration models (§2.9-§2.10, §5.2):
 * configuration cost, CAT way sharing, scheduler power hints, and
 * multi-instance throughput scaling.
 */
#include <gtest/gtest.h>

#include "arch/system.h"
#include "compiler/mapping.h"
#include "core/error.h"
#include "workload/suite.h"

namespace ca {
namespace {

TEST(ConfigCost, ZeroPartitionsIsFree)
{
    ConfigCost c = estimateConfigCost(designCaP(), 0);
    EXPECT_EQ(c.steImageBytes, 0u);
    EXPECT_EQ(c.switchConfigBits, 0u);
    EXPECT_DOUBLE_EQ(c.seconds, 0.0);
}

TEST(ConfigCost, SteImageIs8KBPerPartition)
{
    // 256 rows x 256 bits = 8 KB per partition, matching the physical
    // two-4KB-array layout.
    ConfigCost c = estimateConfigCost(designCaP(), 1);
    EXPECT_EQ(c.steImageBytes, 8u << 10);
}

TEST(ConfigCost, ScalesLinearly)
{
    ConfigCost c1 = estimateConfigCost(designCaP(), 10);
    ConfigCost c2 = estimateConfigCost(designCaP(), 20);
    EXPECT_NEAR(c2.seconds, 2 * c1.seconds, 1e-9);
}

TEST(ConfigCost, LargestBenchmarkNearPaperEstimate)
{
    // §2.10: ~0.2 ms for the largest benchmark (hundreds of partitions),
    // far below the AP's tens of milliseconds.
    ConfigCost c = estimateConfigCost(designCaP(), 420);
    EXPECT_GT(c.seconds, 0.02e-3);
    EXPECT_LT(c.seconds, 2e-3);
}

TEST(ConfigCost, NegativePartitionsThrow)
{
    EXPECT_THROW(estimateConfigCost(designCaP(), -1), CaError);
}

TEST(CatPlan, SplitsWays)
{
    // 20 partitions under CA_P (8 per way) need 3 ways of the 20.
    CatPlan plan = planCacheAllocation(designCaP(), 20);
    EXPECT_EQ(plan.nfaWays, 3);
    EXPECT_EQ(plan.cacheWays, 17);
    EXPECT_DOUBLE_EQ(plan.nfaCapacityStes, 3 * 8 * 256.0);
    EXPECT_NEAR(plan.remainingCacheMB, 2.5 * 17 / 20, 1e-9);
}

TEST(CatPlan, SpaceDesignPacksDenser)
{
    // CA_S fits 16 partitions per way.
    CatPlan plan = planCacheAllocation(designCaS(), 20);
    EXPECT_EQ(plan.nfaWays, 2);
}

TEST(CatPlan, OverflowThrows)
{
    // CA_P allows 8 ways -> 64 partitions per slice.
    EXPECT_THROW(planCacheAllocation(designCaP(), 65), CaError);
    EXPECT_NO_THROW(planCacheAllocation(designCaP(), 64));
}

TEST(PowerHint, WithinTdpForPrototype)
{
    // The 8-way prototype (§5.3) stays under the 160 W TDP.
    PowerHint hint = schedulerPowerHint(designCaS(), 128);
    EXPECT_TRUE(hint.withinTdp);
    EXPECT_GT(hint.headroomW, 0.0);
    EXPECT_NEAR(hint.peakW + hint.headroomW, hint.tdpW, 1e-9);
}

TEST(PowerHint, GrowsWithPartitions)
{
    double p1 = schedulerPowerHint(designCaP(), 16).peakW;
    double p2 = schedulerPowerHint(designCaP(), 64).peakW;
    EXPECT_GT(p2, p1);
}

TEST(InstanceScaling, SingleInstanceBaseline)
{
    // An automaton filling the whole budget runs exactly once.
    InstanceScaling s = scaleInstances(designCaP(), 64, 1);
    EXPECT_EQ(s.instances, 1);
    EXPECT_DOUBLE_EQ(s.aggregateGbps, 16.0);
}

TEST(InstanceScaling, SpaceSavingsBecomeThroughput)
{
    // §5.2: a smaller footprint lets more instances share the cache. A
    // 16-partition automaton in 8 slices of CA_S (128 partitions each).
    InstanceScaling s = scaleInstances(designCaS(), 16, 8);
    EXPECT_EQ(s.instances, 64);
    EXPECT_DOUBLE_EQ(s.aggregateGbps, 64 * 9.6);
    EXPECT_DOUBLE_EQ(s.perInstanceMB, 16 * 8.0 / 1024);
}

TEST(InstanceScaling, SmallerAutomataScaleFurther)
{
    InstanceScaling big = scaleInstances(designCaS(), 64, 1);
    InstanceScaling small = scaleInstances(designCaS(), 16, 1);
    EXPECT_GT(small.instances, big.instances);
}

TEST(InstanceScaling, EndToEndWithMappedBenchmark)
{
    const Benchmark &b = findBenchmark("Bro217");
    Nfa nfa = b.build(0.05, 1);
    MappedAutomaton m = mapSpace(nfa);
    InstanceScaling s = scaleInstances(
        m.design(), static_cast<int>(m.numPartitions()), 8);
    EXPECT_GE(s.instances, 1);
    EXPECT_GT(s.aggregateGbps, 9.0);
}

} // namespace
} // namespace ca
