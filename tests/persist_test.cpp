/**
 * @file
 * Tests for the persist subsystem (src/persist): artifact round-trips,
 * fault injection, the content-addressed cache, and artifact-backed
 * server restarts.
 *
 * The load-bearing properties:
 *  - A sim restored from an artifact emits byte-identical reports to one
 *    built from a fresh compile (round-trip fidelity).
 *  - Packing is deterministic: equal content ⇒ equal bytes, so repacking
 *    a loaded artifact reproduces the original file exactly.
 *  - Corrupt input — bit flips, truncation, wrong magic/version, trailing
 *    garbage — fails with a clean CaError, never UB (the fuzz suite in
 *    tests/fuzz_test.cpp extends this with random mutations).
 *  - A cache directory shared by concurrent users stays consistent with
 *    no locking (atomic temp-file + rename publication); this suite is
 *    part of the ThreadSanitizer CI configuration via the runtime label.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "core/error.h"
#include "core/rng.h"
#include "core/serde.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"
#include "persist/cache.h"
#include "runtime/report_sink.h"
#include "runtime/stream_server.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/suite.h"

namespace ca {
namespace {

namespace fs = std::filesystem;

using persist::ArtifactCache;
using persist::ArtifactMeta;
using persist::ArtifactReader;
using persist::ArtifactWriter;
using persist::LoadedArtifact;
using runtime::CollectingSink;
using runtime::StreamServer;
using runtime::StreamSession;

/** Unique scratch directory, removed (recursively) on scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        static std::atomic<uint64_t> seq{0};
        path_ = fs::temp_directory_path() /
                ("ca_persist_test." + std::to_string(::getpid()) + "." +
                 std::to_string(seq.fetch_add(1)));
        fs::create_directories(path_);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const fs::path &path() const { return path_; }
    std::string str(const std::string &leaf) const
    {
        return (path_ / leaf).string();
    }

  private:
    fs::path path_;
};

MappedAutomaton
sampleMapped()
{
    Nfa nfa = compileRuleset({"cat", "do+g", "[hx]at", "m.*n"});
    return mapPerformance(nfa);
}

std::vector<uint8_t>
sampleInput(size_t bytes, uint64_t seed)
{
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"cat", "dog", "hat", "mn"};
    spec.plantsPer4k = 32.0;
    return buildInput(spec, bytes, seed);
}

std::vector<Report>
oracleReports(const MappedAutomaton &m, const std::vector<uint8_t> &input)
{
    CacheAutomatonSim sim(m);
    return sim.run(input).reports;
}

std::vector<uint8_t>
packSample(const MappedAutomaton &mapped, const std::string &label = "t")
{
    ArtifactMeta meta;
    meta.label = label;
    return persist::packArtifact(mapped, buildConfigImage(mapped), meta);
}

// --- serde primitives ---------------------------------------------------

TEST(Serde, LittleEndianGoldenBytes)
{
    std::vector<uint8_t> out;
    serde::putU16(out, 0x1122);
    serde::putU32(out, 0x33445566u);
    serde::putU64(out, 0x0102030405060708ull);
    serde::putString(out, "ab");
    std::vector<uint8_t> expect = {
        0x22, 0x11,                                     // u16
        0x66, 0x55, 0x44, 0x33,                         // u32
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // u64
        0x02, 0x00, 0x00, 0x00, 'a',  'b',              // string
    };
    EXPECT_EQ(out, expect);
}

TEST(Serde, ReaderRoundTripsEveryType)
{
    std::vector<uint8_t> out;
    serde::putU8(out, 0xAB);
    serde::putU16(out, 0xBEEF);
    serde::putU32(out, 0xDEADBEEFu);
    serde::putU64(out, 0x123456789ABCDEF0ull);
    serde::putI32(out, -42);
    serde::putF64(out, 3.25);
    serde::putString(out, "hello");
    BitVector bv(77);
    bv.set(0);
    bv.set(13);
    bv.set(76);
    serde::putBits(out, bv);

    serde::ByteReader r(out);
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x123456789ABCDEF0ull);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_EQ(r.str(), "hello");
    BitVector back = r.bits();
    EXPECT_EQ(back.size(), 77u);
    EXPECT_TRUE(back.test(0));
    EXPECT_TRUE(back.test(13));
    EXPECT_TRUE(back.test(76));
    EXPECT_EQ(back.count(), 3u);
    EXPECT_TRUE(r.done());
}

TEST(Serde, ReaderThrowsPastEnd)
{
    std::vector<uint8_t> two = {0x01, 0x02};
    serde::ByteReader r(two);
    EXPECT_THROW(r.u32(), CaError);
    // A failed read must not advance the cursor.
    EXPECT_EQ(r.u16(), 0x0201);
    EXPECT_THROW(r.u8(), CaError);
}

TEST(Serde, ReaderRejectsOversizedString)
{
    // Length prefix claims 100 bytes; only 2 follow.
    std::vector<uint8_t> out;
    serde::putU32(out, 100);
    out.push_back('x');
    out.push_back('y');
    serde::ByteReader r(out);
    EXPECT_THROW(r.str(), CaError);
}

TEST(Serde, Crc32KnownVector)
{
    // The canonical CRC-32 (IEEE) check value.
    const char *s = "123456789";
    EXPECT_EQ(serde::crc32(reinterpret_cast<const uint8_t *>(s), 9),
              0xCBF43926u);
    EXPECT_EQ(serde::crc32(nullptr, 0), 0u);
}

TEST(Serde, Fnv1a64KnownVectors)
{
    EXPECT_EQ(serde::fnv1a64(std::string{}), serde::kFnv1a64Seed);
    EXPECT_EQ(serde::fnv1a64(std::string{"a"}), 0xaf63dc4c8601ec8cull);
    // Chaining equals one-shot.
    uint64_t chained =
        serde::fnv1a64(std::string{"bar"}, serde::fnv1a64(std::string{"foo"}));
    EXPECT_EQ(chained, serde::fnv1a64(std::string{"foobar"}));
}

// --- Round-trip fidelity ------------------------------------------------

TEST(Artifact, RoundTripReportsByteIdentical)
{
    MappedAutomaton mapped = sampleMapped();
    auto input = sampleInput(16 << 10, 7);
    auto expect = oracleReports(mapped, input);

    LoadedArtifact loaded = persist::loadArtifactBytes(packSample(mapped));
    CacheAutomatonSim sim(loaded.automaton);
    EXPECT_EQ(sim.run(input).reports, expect);

    // The restored sim also matches the classical NFA oracle.
    NfaEngine oracle(loaded.automaton->nfa());
    EXPECT_EQ(oracle.run(input), expect);

    // The stored image equals one rebuilt from the restored automaton.
    EXPECT_TRUE(persist::configImagesEqual(
        loaded.image, buildConfigImage(*loaded.automaton)));
}

TEST(Artifact, RoundTripSpaceOptimizedMapping)
{
    Nfa nfa = compileRuleset({"ab+c", "abd", "x[0-9]{2}y", "m.n"});
    MappedAutomaton mapped = mapSpace(nfa);
    auto input = sampleInput(8 << 10, 11);
    auto expect = oracleReports(mapped, input);

    LoadedArtifact loaded = persist::loadArtifactBytes(packSample(mapped));
    CacheAutomatonSim sim(loaded.automaton);
    EXPECT_EQ(sim.run(input).reports, expect);
    EXPECT_TRUE(persist::configImagesEqual(
        loaded.image, buildConfigImage(*loaded.automaton)));
}

TEST(Artifact, RoundTripEveryBenchmarkAutomaton)
{
    // Every Table 1 benchmark at reduced scale: the restored sim must
    // emit byte-identical reports to a freshly compiled one. (The
    // full-scale sweep lives in bench_artifact_load / `ca_artifact
    // verify`.)
    for (const Benchmark &b : benchmarkSuite()) {
        SCOPED_TRACE(b.name);
        Nfa nfa = b.build(0.01, kDefaultRuleSeed);
        MappedAutomaton mapped = mapPerformance(nfa);
        auto input = benchmarkInput(b, 2 << 10, 5, 0.01, kDefaultRuleSeed);
        auto expect = oracleReports(mapped, input);

        LoadedArtifact loaded =
            persist::loadArtifactBytes(packSample(mapped, b.name));
        EXPECT_EQ(loaded.meta.label, b.name);
        CacheAutomatonSim sim(loaded.automaton);
        EXPECT_EQ(sim.run(input).reports, expect);
    }
}

TEST(Artifact, PackIsDeterministicAndRepackIdentical)
{
    MappedAutomaton mapped = sampleMapped();
    std::vector<uint8_t> first = packSample(mapped);
    std::vector<uint8_t> second = packSample(mapped);
    EXPECT_EQ(first, second);

    // load → repack reproduces the original file byte-for-byte, which is
    // what makes artifacts content-addressable.
    LoadedArtifact loaded = persist::loadArtifactBytes(first);
    ArtifactMeta meta = loaded.meta;
    std::vector<uint8_t> repacked =
        persist::packArtifact(*loaded.automaton, loaded.image, meta);
    EXPECT_EQ(repacked, first);
}

TEST(Artifact, FileRoundTripPreservesMeta)
{
    TempDir dir;
    MappedAutomaton mapped = sampleMapped();
    ArtifactMeta meta;
    meta.label = "file round trip";
    meta.contentKey = 0x0123456789abcdefull;
    std::string path = dir.str("a.caa");
    persist::saveArtifact(path, mapped, meta);

    LoadedArtifact loaded = persist::loadArtifact(path);
    EXPECT_EQ(loaded.meta.tool, "ca-persist/1");
    EXPECT_EQ(loaded.meta.label, "file round trip");
    EXPECT_EQ(loaded.meta.contentKey, 0x0123456789abcdefull);

    // Atomic publication leaves no temp files behind.
    size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir.path())) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST(Artifact, ReaderExposesSectionTable)
{
    MappedAutomaton mapped = sampleMapped();
    ArtifactReader reader(packSample(mapped));
    EXPECT_EQ(reader.version(), persist::kFormatVersion);
    EXPECT_EQ(reader.sections().size(), 6u);
    for (uint32_t id : {persist::kSecMeta, persist::kSecDesign,
                        persist::kSecNfa, persist::kSecPlace,
                        persist::kSecImage, persist::kSecRoutes})
        EXPECT_TRUE(reader.hasSection(id)) << persist::sectionName(id);
    EXPECT_FALSE(reader.hasSection(0x58585858u));
    EXPECT_THROW(reader.section(0x58585858u), CaError);
}

// --- Fault injection ----------------------------------------------------

TEST(Artifact, WriterRejectsDuplicateSection)
{
    ArtifactWriter w;
    w.addSection(0x31435553u, {1, 2, 3});
    EXPECT_THROW(w.addSection(0x31435553u, {4, 5}), CaError);
}

TEST(Artifact, RejectsWrongMagic)
{
    std::vector<uint8_t> bytes = packSample(sampleMapped());
    bytes[0] ^= 0xFF;
    EXPECT_THROW(ArtifactReader{bytes}, CaError);
}

TEST(Artifact, RejectsWrongVersion)
{
    std::vector<uint8_t> bytes = packSample(sampleMapped());
    // Bump the version *and* re-seal the header CRC, so the rejection we
    // observe is the version check itself, not checksum collateral.
    bytes[4] = static_cast<uint8_t>(persist::kFormatVersion + 1);
    uint32_t crc = serde::crc32(bytes.data(), 12);
    for (int i = 0; i < 4; ++i)
        bytes[12 + i] = static_cast<uint8_t>(crc >> (8 * i));
    try {
        ArtifactReader reader(bytes);
        FAIL() << "version skew accepted";
    } catch (const CaError &e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST(Artifact, RejectsHeaderCorruption)
{
    std::vector<uint8_t> bytes = packSample(sampleMapped());
    bytes[8] ^= 0x01; // section count, covered by the header CRC
    EXPECT_THROW(ArtifactReader{bytes}, CaError);
}

TEST(Artifact, RejectsEveryTruncationLength)
{
    std::vector<uint8_t> bytes = packSample(sampleMapped());
    ASSERT_GT(bytes.size(), 64u);

    // Exhaustive over the header region, sampled beyond it.
    std::vector<size_t> lengths;
    for (size_t n = 0; n < 64; ++n)
        lengths.push_back(n);
    Rng rng(0xBADF11E5);
    for (int i = 0; i < 64; ++i)
        lengths.push_back(64 + rng.below(bytes.size() - 64));
    lengths.push_back(bytes.size() - 1);

    for (size_t n : lengths) {
        SCOPED_TRACE("truncated to " + std::to_string(n));
        std::vector<uint8_t> cut(bytes.begin(),
                                 bytes.begin() + static_cast<long>(n));
        EXPECT_THROW(persist::loadArtifactBytes(cut), CaError);
    }
}

TEST(Artifact, RejectsTrailingGarbage)
{
    std::vector<uint8_t> bytes = packSample(sampleMapped());
    bytes.push_back(0x00);
    EXPECT_THROW(persist::loadArtifactBytes(bytes), CaError);
}

TEST(Artifact, BitFlipsLoadCleanlyOrThrow)
{
    std::vector<uint8_t> bytes = packSample(sampleMapped());
    Rng rng(0xF11BF11B);
    int rejected = 0;
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<uint8_t> mutant = bytes;
        int flips = 1 + static_cast<int>(rng.below(3));
        for (int f = 0; f < flips; ++f) {
            size_t pos = rng.below(mutant.size());
            mutant[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
        }
        try {
            LoadedArtifact loaded =
                persist::loadArtifactBytes(std::move(mutant));
            // Survivors (flips confined to slack the decoder ignores)
            // must still be fully usable.
            CacheAutomatonSim sim(loaded.automaton);
            const uint8_t probe[] = {'c', 'a', 't'};
            sim.feed(probe, sizeof(probe));
        } catch (const CaError &) {
            ++rejected; // clean rejection is the expected path
        }
    }
    // CRC32 catches essentially all small mutations.
    EXPECT_GT(rejected, 150);
}

TEST(Artifact, LoadMissingFileThrows)
{
    TempDir dir;
    EXPECT_THROW(persist::loadArtifact(dir.str("absent.caa")), CaError);
}

// --- Cache key ----------------------------------------------------------

TEST(CacheKey, SensitiveToEveryInput)
{
    std::vector<std::string> rules = {"abc", "de+f"};
    Design d = designCaP();
    MapperOptions o;
    uint64_t base = persist::computeCacheKey(rules, d, o);
    EXPECT_EQ(persist::computeCacheKey(rules, d, o), base);

    EXPECT_NE(persist::computeCacheKey({"abc", "de+g"}, d, o), base);
    EXPECT_NE(persist::computeCacheKey({"abc"}, d, o), base);

    Design d2 = designCaS();
    EXPECT_NE(persist::computeCacheKey(rules, d2, o), base);

    MapperOptions o2;
    o2.optimizeSpace = true;
    EXPECT_NE(persist::computeCacheKey(rules, d, o2), base);
    MapperOptions o3;
    o3.seed = o.seed + 1;
    EXPECT_NE(persist::computeCacheKey(rules, d, o3), base);
}

// --- ArtifactCache ------------------------------------------------------

TEST(Cache, MissCompilesThenHitLoads)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    std::vector<std::string> rules = {"cat", "do+g"};
    Design d = designCaP();

    int builds = 0;
    uint64_t key = persist::computeCacheKey(rules, d, {});
    auto build = [&] {
        ++builds;
        return mapNfa(compileRuleset(rules), d);
    };

    LoadedArtifact first = cache.getOrBuild(key, build, "lbl");
    EXPECT_EQ(builds, 1);
    LoadedArtifact second = cache.getOrBuild(key, build, "lbl");
    EXPECT_EQ(builds, 1) << "hit must not re-compile";
    EXPECT_EQ(second.meta.contentKey, key);

    auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.corruptEvicted, 0u);

    // Cold-compiled and cache-loaded automata agree on reports.
    auto input = sampleInput(8 << 10, 23);
    CacheAutomatonSim a(first.automaton), b(second.automaton);
    EXPECT_EQ(a.run(input).reports, b.run(input).reports);
}

TEST(Cache, GetOrCompileHitsAcrossInstances)
{
    TempDir dir;
    std::vector<std::string> rules = {"foo", "ba+r"};
    Design d = designCaP();

    ArtifactCache warm(dir.str("cache"));
    (void)warm.getOrCompile(rules, d, {}, "first");
    EXPECT_EQ(warm.stats().misses, 1u);

    // A different instance on the same directory (≈ another process)
    // hits the published entry.
    ArtifactCache other(dir.str("cache"));
    LoadedArtifact got = other.getOrCompile(rules, d, {}, "second");
    EXPECT_EQ(other.stats().hits, 1u);
    EXPECT_EQ(other.stats().misses, 0u);
    EXPECT_EQ(got.meta.label, "first") << "hit returns the stored artifact";
}

TEST(Cache, CorruptEntryEvictedAndRebuilt)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    std::vector<std::string> rules = {"xy+z"};
    Design d = designCaP();
    uint64_t key = persist::computeCacheKey(rules, d, {});
    (void)cache.getOrCompile(rules, d);

    // Vandalize the published entry.
    std::string path = cache.pathForKey(key);
    ASSERT_TRUE(fs::exists(path));
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "not an artifact";
    }

    EXPECT_FALSE(cache.tryLoad(key).has_value());
    EXPECT_EQ(cache.stats().corruptEvicted, 1u);
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be evicted";

    // The next getOrCompile self-heals: miss, rebuild, republish.
    LoadedArtifact healed = cache.getOrCompile(rules, d);
    EXPECT_EQ(healed.meta.contentKey, key);
    ASSERT_TRUE(fs::exists(path));
    EXPECT_TRUE(cache.tryLoad(key).has_value());
}

/**
 * The "two processes, one cache directory" contract, exercised with
 * in-process concurrency so ThreadSanitizer can see it: each thread has
 * its own ArtifactCache instance (no shared in-memory state) bound to
 * one shared directory, and races getOrCompile over a small key set.
 * Atomic publication means every load must return a complete artifact.
 */
TEST(Cache, ConcurrentInstancesShareOneDirectory)
{
    TempDir dir;
    Design d = designCaP();
    const std::vector<std::vector<std::string>> rulesets = {
        {"cat", "dog"}, {"ab+c"}, {"x[0-9]y", "qr?s"}};

    auto input = sampleInput(4 << 10, 31);
    std::vector<std::vector<Report>> expect;
    for (const auto &rules : rulesets)
        expect.push_back(
            oracleReports(mapNfa(compileRuleset(rules), d), input));

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            ArtifactCache cache(dir.str("shared"));
            Rng rng(0xC0FFEE + static_cast<uint64_t>(t));
            for (int iter = 0; iter < 6; ++iter) {
                size_t which = rng.below(rulesets.size());
                LoadedArtifact got =
                    cache.getOrCompile(rulesets[which], d);
                CacheAutomatonSim sim(got.automaton);
                if (sim.run(input).reports != expect[which])
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);

    // Exactly one published file per distinct key survives the race.
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir.str("shared")))
        files += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, rulesets.size());
}

// --- Server integration -------------------------------------------------

TEST(ServerArtifact, FromArtifactMatchesOracle)
{
    TempDir dir;
    MappedAutomaton mapped = sampleMapped();
    std::string path = dir.str("server.caa");
    persist::saveArtifact(path, mapped);

    auto input = sampleInput(16 << 10, 37);
    auto expect = oracleReports(mapped, input);

    auto server = StreamServer::fromArtifact(path);
    CollectingSink sink;
    StreamSession &s = server->open(sink);
    s.submit(input);
    s.close();
    EXPECT_EQ(sink.reports(s.id()), expect);
}

/**
 * The §2.9 deployment story end to end: a session is suspended, its
 * server is torn down entirely, a new server warm-starts from the
 * on-disk artifact, and the session resumes from the checkpoint — the
 * stitched report stream must match a single-threaded run of the whole
 * input on the original automaton.
 */
TEST(ServerArtifact, CheckpointResumesAcrossServerRestart)
{
    TempDir dir;
    MappedAutomaton mapped = sampleMapped();
    std::string path = dir.str("restart.caa");
    persist::saveArtifact(path, mapped);

    auto input = sampleInput(12 << 10, 41);
    auto expect = oracleReports(mapped, input);
    size_t split = input.size() / 3;

    CollectingSink sink_a;
    SimCheckpoint ckpt;
    uint32_t sid_a = 0;
    {
        StreamServer server_a(mapped);
        StreamSession &sa = server_a.open(sink_a);
        sa.submit(input.data(), split);
        sa.flush(); // drain so the checkpoint covers everything submitted
        ckpt = sa.suspend();
        sid_a = sa.id();
        sa.resume();
        sa.close();
    } // server_a destroyed: nothing survives but the artifact + checkpoint
    EXPECT_EQ(ckpt.symbolOffset, split);

    auto server_b = StreamServer::fromArtifact(path);
    CollectingSink sink_b;
    StreamSession &sb = server_b->open(sink_b, ckpt);
    sb.submit(input.data() + split, input.size() - split);
    sb.close();

    std::vector<Report> stitched = sink_a.reports(sid_a);
    auto tail = sink_b.reports(sb.id());
    stitched.insert(stitched.end(), tail.begin(), tail.end());
    EXPECT_EQ(stitched, expect);
}

} // namespace
} // namespace ca
