/**
 * @file
 * Tests for the mapping compiler and configuration-image emission.
 */
#include <gtest/gtest.h>

#include <set>

#include "compiler/config_image.h"
#include "compiler/mapping.h"
#include "core/error.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "nfa/regex_parser.h"
#include "workload/rulegen.h"

namespace ca {
namespace {

/** Every state is placed exactly once and slots are consistent. */
void
checkPlacementConsistent(const MappedAutomaton &m)
{
    const Nfa &nfa = m.nfa();
    std::set<std::pair<uint32_t, uint16_t>> seen;
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const SteLocation &loc = m.location(s);
        ASSERT_LT(loc.partition, m.numPartitions());
        const PartitionInfo &p = m.partitions()[loc.partition];
        ASSERT_LT(loc.slot, p.states.size());
        EXPECT_EQ(p.states[loc.slot], s);
        EXPECT_TRUE(seen.emplace(loc.partition, loc.slot).second)
            << "slot double-booked";
    }
    size_t placed = 0;
    for (const PartitionInfo &p : m.partitions()) {
        EXPECT_LE(p.states.size(),
                  static_cast<size_t>(m.design().partitionStes));
        placed += p.states.size();
    }
    EXPECT_EQ(placed, nfa.numStates());
}

TEST(Mapper, SmallRulesetSinglePartition)
{
    Nfa nfa = compileRuleset({"abc", "de+f", "[x-z]{3}"});
    MappedAutomaton m = mapPerformance(nfa);
    EXPECT_EQ(m.numPartitions(), 1u);
    EXPECT_EQ(m.crossEdges().size(), 0u);
    checkPlacementConsistent(m);
    EXPECT_DOUBLE_EQ(m.utilizationMB(), 8.0 / 1024);
}

TEST(Mapper, ComponentsNeverSplitWhenTheyFit)
{
    // Several 40-state CCs: each stays whole inside some partition.
    auto rules = genExactMatchRules(20, 40, 11);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    ComponentInfo cc = connectedComponents(nfa);
    for (uint32_t c = 0; c < cc.numComponents(); ++c) {
        std::set<uint32_t> parts;
        for (StateId s : cc.members[c])
            parts.insert(m.location(s).partition);
        EXPECT_EQ(parts.size(), 1u) << "CC " << c << " was split";
    }
    checkPlacementConsistent(m);
}

TEST(Mapper, LargeComponentSplitsWithFewCutEdges)
{
    // One long literal (a 600-state chain) must span >= 3 partitions with
    // exactly one cut edge per adjacent chunk pair.
    std::string rule(600, 'a');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    EXPECT_GE(m.numPartitions(), 3u);
    EXPECT_LE(m.crossEdges().size(), 4u);
    EXPECT_EQ(m.stats().budgetViolations, 0u);
    checkPlacementConsistent(m);
}

TEST(Mapper, UtilizationTracksPartitionCount)
{
    auto rules = genExactMatchRules(40, 40, 5);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    EXPECT_DOUBLE_EQ(m.utilizationMB(),
                     m.numPartitions() * 8.0 / 1024.0);
}

TEST(Mapper, SpacePolicyNeverUsesMoreStates)
{
    auto rules = genBrillRules(100, 3);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton p = mapPerformance(nfa);
    MappedAutomaton s = mapSpace(nfa);
    EXPECT_LE(s.nfa().numStates(), p.nfa().numStates());
    checkPlacementConsistent(s);
}

TEST(Mapper, StatsPopulated)
{
    auto rules = genExactMatchRules(30, 30, 5);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    const MappingStats &st = m.stats();
    EXPECT_EQ(st.states, nfa.numStates());
    EXPECT_EQ(st.connectedComponents, 30u);
    EXPECT_EQ(st.partitions, m.numPartitions());
    EXPECT_GT(st.intraPartitionEdges, 0u);
}

TEST(Mapper, WireUsageWithinBudgetCounted)
{
    std::string rule(600, 'a');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    for (const PartitionInfo &p : m.partitions()) {
        EXPECT_LE(p.g1OutWires, m.design().g1WiresPerPartition);
        EXPECT_LE(p.g1InWires, m.design().g1WiresPerPartition);
    }
}

TEST(Mapper, CrossEdgeClassification)
{
    // CA_P: all cross edges must be intra-way (G1).
    std::string rule(600, 'b');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    for (const CrossEdge &e : m.crossEdges())
        EXPECT_FALSE(e.viaG4);
}

TEST(Mapper, DeterministicForFixedSeed)
{
    auto rules = genSnortRules(60, 9);
    Nfa nfa = compileRuleset(rules);
    MapperOptions opts;
    opts.seed = 5;
    MappedAutomaton a = mapPerformance(nfa, opts);
    MappedAutomaton b = mapPerformance(nfa, opts);
    ASSERT_EQ(a.numPartitions(), b.numPartitions());
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        EXPECT_EQ(a.location(s).partition, b.location(s).partition);
        EXPECT_EQ(a.location(s).slot, b.location(s).slot);
    }
}

// ---------------------------------------------------------------- config

TEST(ConfigImage, SteRowsEncodeLabels)
{
    Nfa nfa = compileRuleset({"ab"});
    MappedAutomaton m = mapPerformance(nfa);
    ConfigImage img = buildConfigImage(m);
    ASSERT_EQ(img.partitions.size(), 1u);
    const PartitionConfig &cfg = img.partitions[0];

    // State 0 has label 'a' -> row 'a' bit at its slot set.
    const SteLocation &loc = m.location(0);
    EXPECT_TRUE(cfg.steRows['a'].test(loc.slot));
    EXPECT_FALSE(cfg.steRows['b'].test(loc.slot));
    // One-hot column: exactly one row bit set for a singleton label.
    int rows_set = 0;
    for (int r = 0; r < 256; ++r)
        rows_set += cfg.steRows[r].test(loc.slot);
    EXPECT_EQ(rows_set, 1);
}

TEST(ConfigImage, LSwitchEncodesIntraPartitionEdges)
{
    Nfa nfa = compileRuleset({"abc"});
    MappedAutomaton m = mapPerformance(nfa);
    ConfigImage img = buildConfigImage(m);
    const PartitionConfig &cfg = img.partitions[0];
    // Edges 0->1, 1->2 in slot space.
    auto slot = [&](StateId s) { return m.location(s).slot; };
    EXPECT_TRUE(cfg.lSwitch.isSet(slot(0), slot(1)));
    EXPECT_TRUE(cfg.lSwitch.isSet(slot(1), slot(2)));
    EXPECT_EQ(cfg.lSwitch.enabledCount(), 2u);
}

TEST(ConfigImage, MasksReflectStartAndReport)
{
    GlushkovOptions opts;
    opts.reportId = 3;
    Nfa nfa = buildGlushkov(parseRegex("^ab"), opts);
    nfa.merge(buildGlushkov(parseRegex("cd"), opts));
    MappedAutomaton m = mapPerformance(nfa);
    ConfigImage img = buildConfigImage(m);
    const PartitionConfig &cfg = img.partitions[0];
    EXPECT_EQ(cfg.startOfDataMask.count(), 1u); // ^ab head
    EXPECT_EQ(cfg.allInputMask.count(), 1u);    // cd head
    EXPECT_EQ(cfg.reportMask.count(), 2u);      // b and d
}

TEST(ConfigImage, CrossEdgesAllocateGWires)
{
    std::string rule(600, 'c');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    ConfigImage img = buildConfigImage(m);
    ASSERT_FALSE(img.routes.empty());
    for (const auto &r : img.routes) {
        const PartitionConfig &src = img.partitions[r.srcPartition];
        const PartitionConfig &dst = img.partitions[r.dstPartition];
        EXPECT_GE(src.g1Sources.at(r.srcWire), 0);
        EXPECT_FALSE(dst.g1Targets.at(r.dstWire).empty());
        // Destination L-switch row programmed for this wire.
        int row = m.design().partitionStes + r.dstWire;
        EXPECT_GT(dst.lSwitch.rowBits[row].count(), 0u);
    }
}

TEST(ConfigImage, CrossEdgesCoveredBySwitchConfig)
{
    // Every cross edge must appear as (source wire) + (dest row bit).
    std::string rule(520, 'd');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    ConfigImage img = buildConfigImage(m);
    for (const CrossEdge &e : m.crossEdges()) {
        const SteLocation &src = m.location(e.from);
        const SteLocation &dst = m.location(e.to);
        const PartitionConfig &scfg = img.partitions[src.partition];
        bool found_src = false;
        for (int w = 0; w < static_cast<int>(scfg.g1Sources.size()); ++w)
            if (scfg.g1Sources[w] == src.slot)
                found_src = true;
        EXPECT_TRUE(found_src);
        const PartitionConfig &dcfg = img.partitions[dst.partition];
        bool found_dst = false;
        for (const auto &targets : dcfg.g1Targets)
            for (int t : targets)
                if (t == dst.slot)
                    found_dst = true;
        EXPECT_TRUE(found_dst);
    }
}

/**
 * Golden bytes for the serialize() layout. This pins the on-disk format:
 * [u32 partition count, little-endian], then per partition the STE rows,
 * L-switch rows, and start-of-data / all-input / report masks, each
 * packed LSB-first into ceil(bits/8) bytes with no per-row prefix. If
 * this test fails, the layout changed — bump the persist artifact format
 * version (src/persist/artifact.h) rather than editing the expectation.
 */
TEST(ConfigImage, SerializeGoldenBytes)
{
    ConfigImage img;
    PartitionConfig p;
    // Two 9-bit STE rows: bits {0,8} and {3}.
    p.steRows.assign(2, BitVector(9));
    p.steRows[0].set(0);
    p.steRows[0].set(8);
    p.steRows[1].set(3);
    // Three 9-bit L-switch rows: {1}, {}, {7,8}.
    p.lSwitch.inputs = 3;
    p.lSwitch.outputs = 9;
    p.lSwitch.rowBits.assign(3, BitVector(9));
    p.lSwitch.rowBits[0].set(1);
    p.lSwitch.rowBits[2].set(7);
    p.lSwitch.rowBits[2].set(8);
    p.startOfDataMask = BitVector(9);
    p.startOfDataMask.set(0);
    p.allInputMask = BitVector(9);
    p.reportMask = BitVector(9);
    p.reportMask.set(8);
    img.partitions.push_back(std::move(p));

    std::vector<uint8_t> expect = {
        0x01, 0x00, 0x00, 0x00, // partition count, little-endian
        0x01, 0x01,             // STE row 0: bits {0,8}
        0x08, 0x00,             // STE row 1: bits {3}
        0x02, 0x00,             // L-switch row 0: bits {1}
        0x00, 0x00,             // L-switch row 1: empty
        0x80, 0x01,             // L-switch row 2: bits {7,8}
        0x01, 0x00,             // start-of-data mask: bits {0}
        0x00, 0x00,             // all-input mask: empty
        0x00, 0x01,             // report mask: bits {8}
    };
    EXPECT_EQ(img.serialize(), expect);
}

TEST(ConfigImage, SerializeStableAndNonEmpty)
{
    Nfa nfa = compileRuleset({"ab", "cd"});
    MappedAutomaton m = mapPerformance(nfa);
    ConfigImage img = buildConfigImage(m);
    auto bytes1 = img.serialize();
    auto bytes2 = img.serialize();
    EXPECT_EQ(bytes1, bytes2);
    EXPECT_GT(bytes1.size(), 256u * 256 / 8);
    EXPECT_GT(img.totalBits(), 0u);
}

} // namespace
} // namespace ca
