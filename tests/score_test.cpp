/**
 * @file
 * Tests for scored automata (docs/SCORING.md): the exact-score contract.
 *
 * Every scored execution engine — both CacheAutomatonSim kernels, the
 * Auto selector, the functional MatchEngine, and the ParallelMatcher's
 * serial fallback — must reproduce the ScoredOracle's report stream
 * *including scores* exactly, under both mapping policies and both
 * semirings. Also covers the zero-weight bit-identity guarantee (weights
 * never gate transitions; all-zero weights are indistinguishable from no
 * weights), scored checkpoint/suspend-resume, the CAAF WGHT section
 * (round trip, absence for unweighted automata, corruption rejection),
 * and the bioinformatics workload's independent DP witness.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "baseline/nfa_engine.h"
#include "compiler/config_image.h"
#include "compiler/mapping.h"
#include "core/error.h"
#include "core/rng.h"
#include "match/match_engine.h"
#include "match/parallel_matcher.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"
#include "score/bioseq.h"
#include "score/oracle.h"
#include "score/semiring.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

namespace ca {
namespace {

using match::MatchContext;
using match::MatchEngine;
using match::MatchOptions;
using match::MatchResult;
using match::ParallelMatcher;
using match::ParallelOptions;

/**
 * Annotates every edge (and start state) of @p nfa with a deterministic
 * pseudo-random weight, guaranteeing at least one nonzero so the scored
 * kernels actually engage.
 */
Nfa
randomlyWeighted(Nfa nfa, uint64_t seed)
{
    Rng rng(seed);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        NfaState &st = nfa.state(s);
        st.outWeight.resize(st.out.size());
        for (Weight &w : st.outWeight)
            w = static_cast<Weight>(rng.range(-5, 7));
        if (st.start != StartType::None)
            st.startWeight = static_cast<Weight>(rng.range(-3, 3));
    }
    if (!nfa.hasWeights()) {
        for (StateId s = 0; s < nfa.numStates(); ++s) {
            if (!nfa.state(s).out.empty()) {
                nfa.state(s).outWeight[0] = 1;
                break;
            }
        }
    }
    return nfa;
}

/** A small scored ruleset with overlapping alternatives. */
Nfa
sampleScoredNfa(uint64_t seed = 0x5C0)
{
    Nfa nfa = compileRuleset(
        {"ab+c", "a.*d", "[bc]{2,3}e", "cat|dog", "x?yz"});
    return randomlyWeighted(std::move(nfa), seed);
}

std::vector<uint8_t>
sampleInput(size_t size, uint64_t seed)
{
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"abbc", "axxd", "bbce", "cat", "dog", "yz"};
    spec.plantsPer4k = 48.0;
    return buildInput(spec, size, seed);
}

SimOptions
simOpts(SimKernel k, ScoreSemiring sr = ScoreSemiring::MaxPlus)
{
    SimOptions opts;
    opts.kernel = k;
    opts.semiring = sr;
    return opts;
}

MatchOptions
engineOpts(SimKernel k, ScoreSemiring sr = ScoreSemiring::MaxPlus)
{
    MatchOptions opts;
    opts.kernel = k;
    opts.semiring = sr;
    return opts;
}

// ------------------------------------------------------------ sim kernels

// Property: every sim kernel reproduces the scored oracle exactly —
// same reports, same order, same scores — under both mapping policies
// and both semirings.
class ScoredKernelEquality : public ::testing::TestWithParam<int>
{
};

TEST_P(ScoredKernelEquality, KernelsMatchOracleExactly)
{
    int param = GetParam();
    bool space = param % 2 == 1;
    ScoreSemiring sr = (param / 2) % 2 == 0 ? ScoreSemiring::MaxPlus
                                            : ScoreSemiring::MinPlus;
    Nfa nfa = sampleScoredNfa(0x5C0 + static_cast<uint64_t>(param));
    ASSERT_TRUE(nfa.hasWeights());
    MappedAutomaton m = space ? mapSpace(nfa) : mapPerformance(nfa);
    auto input = sampleInput(8 << 10, 0xABC + param);

    ScoredOracle oracle(nfa, sr);
    std::vector<Report> expect = oracle.run(input);
    ASSERT_FALSE(expect.empty()) << "vacuous scored input";

    for (SimKernel k :
         {SimKernel::Sparse, SimKernel::Dense, SimKernel::Auto}) {
        CacheAutomatonSim sim(m, simOpts(k, sr));
        SimResult res = sim.run(input);
        EXPECT_EQ(res.reports, expect)
            << "kernel " << static_cast<int>(k) << " policy "
            << (space ? "space" : "perf") << " semiring "
            << semiringName(sr);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, ScoredKernelEquality,
                         ::testing::Range(0, 8));

// Weights never gate transitions: stripping all weights must leave the
// report *set* (offsets, ids, states) unchanged — only scores differ.
TEST(ScoredSim, WeightsNeverGateTransitions)
{
    Nfa scored = sampleScoredNfa();
    Nfa plain = scored;
    for (StateId s = 0; s < plain.numStates(); ++s) {
        plain.state(s).outWeight.clear();
        plain.state(s).startWeight = 0;
    }
    ASSERT_FALSE(plain.hasWeights());

    auto input = sampleInput(8 << 10, 0xBEEF);
    MappedAutomaton ms = mapPerformance(scored);
    MappedAutomaton mp = mapPerformance(plain);
    CacheAutomatonSim ssim(ms);
    CacheAutomatonSim psim(mp);
    std::vector<Report> got = ssim.run(input).reports;
    std::vector<Report> want = psim.run(input).reports;
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].offset, want[i].offset);
        EXPECT_EQ(got[i].reportId, want[i].reportId);
        EXPECT_EQ(got[i].state, want[i].state);
    }
}

// All-zero weights are indistinguishable from no weights: hasWeights()
// stays false (the scored kernels never engage) and the reports are
// bit-identical to the never-weighted automaton's, scores included.
TEST(ScoredSim, AllZeroWeightsBitIdentity)
{
    Nfa plain = compileRuleset({"ab+c", "cat|dog"});
    Nfa zeroed = plain;
    for (StateId s = 0; s < zeroed.numStates(); ++s)
        zeroed.state(s).outWeight.assign(zeroed.state(s).out.size(), 0);
    EXPECT_FALSE(zeroed.hasWeights());

    auto input = sampleInput(4 << 10, 0x2E20);
    MappedAutomaton ma = mapPerformance(plain);
    MappedAutomaton mb = mapPerformance(zeroed);
    CacheAutomatonSim a(ma);
    CacheAutomatonSim b(mb);
    EXPECT_FALSE(a.scored());
    EXPECT_FALSE(b.scored());
    std::vector<Report> ra = a.run(input).reports;
    std::vector<Report> rb = b.run(input).reports;
    EXPECT_EQ(ra, rb);
    for (const Report &r : ra)
        EXPECT_EQ(r.score, 0);
}

// §2.9 suspend/resume with scores: a checkpoint taken mid-stream must
// carry the frontier's accumulated scores, and resuming from it in a
// different engine instance must reproduce the uninterrupted run.
TEST(ScoredSim, CheckpointCarriesScoresAcrossRestore)
{
    Nfa nfa = sampleScoredNfa(0xC4EC);
    MappedAutomaton m = mapPerformance(nfa);
    auto input = sampleInput(8 << 10, 0xC4EC);
    const size_t half = input.size() / 2;

    CacheAutomatonSim whole(m);
    std::vector<Report> expect = whole.run(input).reports;

    CacheAutomatonSim head(m);
    head.reset();
    head.feed(input.data(), half);
    std::vector<Report> got = head.takeReports();
    SimCheckpoint ckpt = head.checkpoint();
    ASSERT_EQ(ckpt.enabledScores.size(), ckpt.enabledStates.size());
    EXPECT_TRUE(std::any_of(ckpt.enabledScores.begin(),
                            ckpt.enabledScores.end(),
                            [](Score s) { return s != 0; }))
        << "scored checkpoint lost its accumulated scores";

    CacheAutomatonSim tail(m);
    tail.restore(ckpt);
    tail.feed(input.data() + half, input.size() - half);
    std::vector<Report> rest = tail.takeReports();
    got.insert(got.end(), rest.begin(), rest.end());
    EXPECT_EQ(got, expect);
}

// ------------------------------------------------------------ MatchEngine

TEST(ScoredMatch, EngineMatchesOracleAcrossKernels)
{
    Nfa nfa = sampleScoredNfa(0x3A7C);
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = std::make_shared<MatchContext>(m);
    ASSERT_TRUE(ctx->scored());
    auto input = sampleInput(8 << 10, 0x3A7C);

    ScoredOracle oracle(nfa);
    std::vector<Report> expect = oracle.run(input);
    ASSERT_FALSE(expect.empty());

    for (SimKernel k :
         {SimKernel::Sparse, SimKernel::Dense, SimKernel::Auto}) {
        if (k == SimKernel::Dense && !ctx->denseAvailable())
            continue;
        MatchEngine eng(ctx, engineOpts(k));
        eng.reset();
        eng.feed(input.data(), input.size());
        EXPECT_EQ(eng.takeReports(), expect)
            << "kernel " << static_cast<int>(k);

        // The final frontier's scores must equal the oracle's.
        std::vector<StateId> fr = eng.frontier();
        std::vector<Score> fs = eng.frontierScores();
        ASSERT_EQ(fr.size(), fs.size());
        EXPECT_EQ(fr, oracle.frontier());
        for (size_t i = 0; i < fr.size(); ++i)
            EXPECT_EQ(fs[i], oracle.stateScore(fr[i]))
                << "state " << fr[i];
    }
}

// setState with scores is the scored suspend/resume primitive: a run
// split at an arbitrary offset and resumed in a different engine must
// be indistinguishable from the uninterrupted run.
TEST(ScoredMatch, SetStateWithScoresResumesExactly)
{
    Nfa nfa = sampleScoredNfa(0x5E5);
    auto ctx = std::make_shared<MatchContext>(
        std::make_shared<const MappedAutomaton>(mapPerformance(nfa)));
    auto input = sampleInput(8 << 10, 0x5E5);
    const size_t cut = input.size() / 3;

    MatchEngine whole(ctx, engineOpts(SimKernel::Sparse));
    whole.reset();
    whole.feed(input.data(), input.size());
    std::vector<Report> expect = whole.takeReports();

    MatchEngine head(ctx, engineOpts(SimKernel::Sparse));
    head.reset();
    head.feed(input.data(), cut);
    std::vector<Report> got = head.takeReports();

    MatchEngine tail(ctx, engineOpts(SimKernel::Sparse));
    tail.setState(head.frontier(), head.frontierScores(), cut);
    tail.feed(input.data() + cut, input.size() - cut);
    std::vector<Report> rest = tail.takeReports();
    got.insert(got.end(), rest.begin(), rest.end());
    EXPECT_EQ(got, expect);
}

// Speculative chunk-parallel joins certify frontier-set equality only,
// which says nothing about scores — a scored matcher must fall back to
// serial execution and still reproduce the oracle exactly.
TEST(ScoredMatch, ParallelMatcherFallsBackToSerial)
{
    Nfa nfa = sampleScoredNfa(0x9A12);
    auto ctx = std::make_shared<MatchContext>(
        std::make_shared<const MappedAutomaton>(mapPerformance(nfa)));
    auto input = sampleInput(512 << 10, 0x9A12);

    ScoredOracle oracle(nfa);
    std::vector<Report> expect = oracle.run(input);

    ParallelOptions popts;
    popts.degree = 4;
    popts.minChunkBytes = 4 << 10; // would chunk, were it unscored
    ParallelMatcher matcher(ctx, popts);
    MatchResult res = matcher.match(input.data(), input.size());
    EXPECT_EQ(res.reports, expect);
    EXPECT_EQ(matcher.stats().serialCalls, matcher.stats().calls)
        << "scored automaton must never speculate";

    // Frontier scores ride along in the result.
    ASSERT_EQ(res.frontierScores.size(), res.frontier.size());
    EXPECT_EQ(res.frontier, oracle.frontier());
    for (size_t i = 0; i < res.frontier.size(); ++i)
        EXPECT_EQ(res.frontierScores[i],
                  oracle.stateScore(res.frontier[i]));
}

// ------------------------------------------------------------ CAAF WGHT

std::vector<uint8_t>
pack(const MappedAutomaton &m)
{
    persist::ArtifactMeta meta;
    meta.label = "score-test";
    return persist::packArtifact(m, buildConfigImage(m), meta);
}

TEST(ScoredArtifact, WeightSectionRoundTrips)
{
    Nfa nfa = sampleScoredNfa(0xCAAF);
    MappedAutomaton m = mapPerformance(nfa);
    std::vector<uint8_t> bytes = pack(m);

    persist::ArtifactReader reader(bytes);
    ASSERT_TRUE(reader.hasSection(persist::kSecWeights));
    Nfa back = reader.nfa();
    ASSERT_EQ(back.numStates(), nfa.numStates());
    EXPECT_TRUE(back.hasWeights());
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const NfaState &a = nfa.state(s);
        const NfaState &b = back.state(s);
        EXPECT_EQ(a.startWeight, b.startWeight) << "state " << s;
        ASSERT_EQ(a.out.size(), b.out.size()) << "state " << s;
        for (size_t k = 0; k < a.out.size(); ++k)
            EXPECT_EQ(nfa.edgeWeight(s, k), back.edgeWeight(s, k))
                << "state " << s << " edge " << k;
    }

    // A sim restored from the artifact honors the exact-score contract.
    persist::LoadedArtifact loaded = persist::loadArtifactBytes(bytes);
    auto input = sampleInput(4 << 10, 0xCAAF);
    CacheAutomatonSim sim(loaded.automaton);
    ScoredOracle oracle(nfa);
    EXPECT_EQ(sim.run(input).reports, oracle.run(input));
}

// Unweighted automata must not grow a WGHT section — pre-scoring
// artifacts and fingerprints stay byte-identical.
TEST(ScoredArtifact, UnweightedArtifactHasNoWeightSection)
{
    Nfa nfa = compileRuleset({"ab+c", "cat|dog"});
    std::vector<uint8_t> bytes =
        pack(mapPerformance(nfa));
    persist::ArtifactReader reader(bytes);
    EXPECT_FALSE(reader.hasSection(persist::kSecWeights));
    EXPECT_FALSE(reader.nfa().hasWeights());
}

TEST(ScoredArtifact, CorruptWeightSectionRejected)
{
    Nfa nfa = sampleScoredNfa(0xBAD);
    std::vector<uint8_t> bytes =
        pack(mapPerformance(nfa));

    // Locate the WGHT section header by its fourcc and flip one payload
    // byte past the 16-byte (id|size|crc) header: the section CRC must
    // catch it.
    const uint8_t tag[] = {'W', 'G', 'H', 'T'};
    auto it = std::search(bytes.begin(), bytes.end(), std::begin(tag),
                          std::end(tag));
    ASSERT_NE(it, bytes.end());
    size_t payload = static_cast<size_t>(it - bytes.begin()) + 16;
    ASSERT_LT(payload, bytes.size());
    std::vector<uint8_t> mutant = bytes;
    mutant[payload + 2] ^= 0x40;
    EXPECT_THROW(persist::loadArtifactBytes(std::move(mutant)), CaError);

    // Truncation inside the WGHT payload must also reject cleanly.
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() +
                                 static_cast<long>(payload + 4));
    EXPECT_THROW(persist::loadArtifactBytes(std::move(cut)), CaError);
}

// Random bit flips anywhere in a weighted artifact either reject
// cleanly or load into a usable simulator (never UB, never a crash).
TEST(ScoredArtifact, BitFlipsLoadCleanlyOrThrow)
{
    Nfa nfa = sampleScoredNfa(0xF11);
    std::vector<uint8_t> bytes =
        pack(mapPerformance(nfa));
    Rng rng(0xF11B0);
    for (int iter = 0; iter < 100; ++iter) {
        std::vector<uint8_t> mutant = bytes;
        size_t pos = rng.below(mutant.size());
        mutant[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
        try {
            persist::LoadedArtifact loaded =
                persist::loadArtifactBytes(std::move(mutant));
            CacheAutomatonSim sim(loaded.automaton);
            const uint8_t probe[] = {'a', 'b', 'c'};
            sim.feed(probe, sizeof(probe));
        } catch (const CaError &) {
            // clean rejection is the expected path
        }
    }
}

// ------------------------------------------------------------ bio witness

/** Per-offset semiring-best over one pattern's reports. */
std::vector<BioWitnessHit>
aggregateHits(const std::vector<Report> &reports, uint32_t id,
              ScoreSemiring sr)
{
    std::map<uint64_t, Score> best;
    for (const Report &r : reports) {
        if (r.reportId != id)
            continue;
        auto [it, fresh] = best.emplace(r.offset, r.score);
        if (!fresh)
            it->second = scoreCombine(sr, it->second, r.score);
    }
    std::vector<BioWitnessHit> out;
    out.reserve(best.size());
    for (const auto &[off, sc] : best)
        out.push_back(BioWitnessHit{off, sc});
    return out;
}

// The scored Levenshtein automaton must agree with the independent
// Gotoh-style DP witness on every hit offset and every best score.
class BioWitnessEquality : public ::testing::TestWithParam<int>
{
};

TEST_P(BioWitnessEquality, AutomatonAgreesWithAlignmentWitness)
{
    int param = GetParam();
    BioPatternOptions opt;
    opt.maxEdits = 1 + param % 2;
    opt.anchored = false;
    if (param % 3 == 0)
        opt.score = BioScoreParams::linear(2, -1, -2);
    const std::string &alphabet =
        param % 2 == 0 ? kDnaAlphabet : kProteinAlphabet;

    BioWorkload w = makeBioWorkload(
        /*num_patterns=*/2, /*pattern_len=*/5 + param % 4, opt, alphabet,
        0xB10 + static_cast<uint64_t>(param));
    ASSERT_TRUE(w.nfa.hasWeights());
    std::vector<uint8_t> input =
        bioSampleInput(w, 4 << 10, 0.02, 0xFEED + param);

    // Engine under test: the mapped sim, which the other suites hold to
    // the oracle; the witness recomputes truth from the alignment
    // definition alone.
    MappedAutomaton m = mapPerformance(w.nfa);
    CacheAutomatonSim sim(m, simOpts(SimKernel::Auto, opt.semiring));
    std::vector<Report> reports = sim.run(input).reports;

    bool any = false;
    for (uint32_t id = 0; id < w.patterns.size(); ++id) {
        std::vector<BioWitnessHit> want = bioAlignWitness(
            w.patterns[id], input.data(), input.size(), opt);
        std::vector<BioWitnessHit> got =
            aggregateHits(reports, id, opt.semiring);
        EXPECT_EQ(got, want) << "pattern " << w.patterns[id];
        any = any || !want.empty();
    }
    EXPECT_TRUE(any) << "vacuous bio input: no witness hits at all";
}

INSTANTIATE_TEST_SUITE_P(Random, BioWitnessEquality,
                         ::testing::Range(0, 6));

TEST(Bio, AnchoredRestrictsToPrefixAlignments)
{
    BioPatternOptions opt;
    opt.maxEdits = 1;
    opt.anchored = true;
    Nfa nfa = bioLevenshteinNfa("ACGT", opt);
    std::string text = "ACGTTTACGT";
    ScoredOracle oracle(nfa, opt.semiring);
    std::vector<Report> reports = oracle.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    std::vector<BioWitnessHit> want = bioAlignWitness(
        "ACGT", reinterpret_cast<const uint8_t *>(text.data()),
        text.size(), opt);
    EXPECT_EQ(aggregateHits(reports, 0, opt.semiring), want);
    // Anchored: alignments start at offset 0 only, so no hit can end
    // past |P| + maxEdits symbols.
    for (const Report &r : reports)
        EXPECT_LT(r.offset, 4u + 1u + 1u);
}

TEST(Bio, InvalidParamsThrow)
{
    BioPatternOptions opt;
    opt.maxEdits = 4;
    EXPECT_THROW(bioLevenshteinNfa("ACG", opt), CaError);
    EXPECT_THROW(bioLevenshteinNfa("", BioPatternOptions{}), CaError);
}

} // namespace
} // namespace ca
