/**
 * @file
 * Additional regex/Glushkov edge-case tests: escapes, nested quantifier
 * structures, multi-byte classes, and language-level properties checked
 * against the DFA (which is built by an independent algorithm).
 */
#include <gtest/gtest.h>

#include "baseline/dfa_engine.h"
#include "baseline/nfa_engine.h"
#include "baseline/report_utils.h"
#include "core/rng.h"
#include "nfa/dfa.h"
#include "nfa/glushkov.h"
#include "nfa/regex_parser.h"
#include "workload/witness.h"

namespace ca {
namespace {

bool
matches(const Nfa &nfa, const std::string &text)
{
    NfaEngine eng(nfa);
    return !eng.run(reinterpret_cast<const uint8_t *>(text.data()),
                    text.size())
                .empty();
}

Nfa
one(const std::string &pattern)
{
    GlushkovOptions opts;
    return buildGlushkov(parseRegex(pattern), opts);
}

TEST(GlushkovEdge, EscapedMetacharactersLiteral)
{
    Nfa nfa = one("a\\.b\\*c");
    EXPECT_TRUE(matches(nfa, "a.b*c"));
    EXPECT_FALSE(matches(nfa, "axb*c"));
}

TEST(GlushkovEdge, HexEscapesInPattern)
{
    Nfa nfa = one("\\x00\\xff"); // NUL followed by 0xFF
    std::string text;
    text.push_back('\0');
    text.push_back(static_cast<char>(0xff));
    EXPECT_TRUE(matches(nfa, text));
}

TEST(GlushkovEdge, NestedGroups)
{
    Nfa nfa = one("((a|b)(c|d))+e");
    EXPECT_TRUE(matches(nfa, "ace"));
    EXPECT_TRUE(matches(nfa, "bdace"));
    EXPECT_FALSE(matches(nfa, "abe"));
}

TEST(GlushkovEdge, QuantifiedGroups)
{
    Nfa nfa = one("^(ab){2}c");
    EXPECT_TRUE(matches(nfa, "ababc"));
    EXPECT_FALSE(matches(nfa, "abc"));
    EXPECT_FALSE(matches(nfa, "abababc")); // anchored, count must be 2
}

TEST(GlushkovEdge, OptionalChain)
{
    Nfa nfa = one("^a?b?c?d");
    EXPECT_TRUE(matches(nfa, "d"));
    EXPECT_TRUE(matches(nfa, "abcd"));
    EXPECT_TRUE(matches(nfa, "acd"));
    EXPECT_TRUE(matches(nfa, "ad"));
    EXPECT_FALSE(matches(nfa, "ba")); // wrong order, no 'd'
}

TEST(GlushkovEdge, AlternationOfDifferentLengths)
{
    Nfa nfa = one("^(a|bc|def)x");
    EXPECT_TRUE(matches(nfa, "ax"));
    EXPECT_TRUE(matches(nfa, "bcx"));
    EXPECT_TRUE(matches(nfa, "defx"));
    EXPECT_FALSE(matches(nfa, "bx"));
}

TEST(GlushkovEdge, StarOfAlternation)
{
    Nfa nfa = one("^x(ab|cd)*y");
    EXPECT_TRUE(matches(nfa, "xy"));
    EXPECT_TRUE(matches(nfa, "xabcdaby"));
    EXPECT_FALSE(matches(nfa, "xacy"));
    EXPECT_FALSE(matches(nfa, "xay"));
}

TEST(GlushkovEdge, CountedClassRepeat)
{
    Nfa nfa = one("^[0-9]{3,5}z");
    EXPECT_FALSE(matches(nfa, "12z"));
    EXPECT_TRUE(matches(nfa, "123z"));
    EXPECT_TRUE(matches(nfa, "12345z"));
    // 6 digits anchored: the first 5 digits + 'z' never align.
    EXPECT_FALSE(matches(nfa, "123456z"));
}

TEST(GlushkovEdge, HighBytesInClasses)
{
    Nfa nfa = one("[\\x80-\\xff]{2}");
    std::string hit;
    hit.push_back(static_cast<char>(0x90));
    hit.push_back(static_cast<char>(0xfe));
    EXPECT_TRUE(matches(nfa, hit));
    EXPECT_FALSE(matches(nfa, "ab"));
}

// Language-level property: the Glushkov NFA and the subset-constructed
// DFA accept exactly the same witness strings and reject the same
// mutations, across random patterns.
class GlushkovDfaAgreement : public ::testing::TestWithParam<int>
{
};

TEST_P(GlushkovDfaAgreement, WitnessesAndMutationsAgree)
{
    Rng rng(GetParam() * 33391 + 41);
    static const char *kBlocks[] = {
        "ab", "[cd]{1,2}", "(e|fg)", "h+", "i?j",
    };
    std::string pat;
    int blocks = 1 + static_cast<int>(rng.below(4));
    for (int b = 0; b < blocks; ++b)
        pat += kBlocks[rng.below(std::size(kBlocks))];

    Nfa nfa = compileRuleset({pat});
    Dfa dfa = buildDfa(nfa, 1 << 14);

    for (int trial = 0; trial < 12; ++trial) {
        std::string s = sampleWitness(pat, rng);
        // Randomly mutate half the trials.
        if (trial % 2 == 1 && !s.empty())
            s[rng.below(s.size())] =
                static_cast<char>('a' + rng.below(26));
        NfaEngine eng(nfa);
        auto nr = eng.run(reinterpret_cast<const uint8_t *>(s.data()),
                          s.size());
        auto dr = runDfa(dfa, reinterpret_cast<const uint8_t *>(s.data()),
                         s.size());
        EXPECT_TRUE(sameReportEvents(nr, dr))
            << "disagreement on '" << s << "' for /" << pat << "/";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPatterns, GlushkovDfaAgreement,
                         ::testing::Range(0, 20));

} // namespace
} // namespace ca
