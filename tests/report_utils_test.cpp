/**
 * @file
 * Tests for report post-processing, DOT export, and case-insensitive
 * compilation.
 */
#include <gtest/gtest.h>

#include "baseline/nfa_engine.h"
#include "baseline/report_utils.h"
#include "compiler/mapping.h"
#include "compiler/visualize.h"
#include "nfa/dot.h"
#include "nfa/glushkov.h"
#include "nfa/regex_parser.h"

namespace ca {
namespace {

Report
mk(uint64_t off, uint32_t id, StateId state = 0)
{
    return Report{off, id, state};
}

// ---------------------------------------------------------------- reports

TEST(ReportUtils, DedupeDropsStateIds)
{
    // Two states reporting the same rule at the same offset collapse.
    std::vector<Report> raw = {mk(5, 1, 10), mk(5, 1, 11), mk(3, 2, 4)};
    auto out = dedupeReports(raw);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], mk(3, 2));
    EXPECT_EQ(out[1], mk(5, 1));
}

TEST(ReportUtils, SameEventsIgnoresOrderAndStates)
{
    std::vector<Report> a = {mk(1, 0, 7), mk(2, 1, 8)};
    std::vector<Report> b = {mk(2, 1, 99), mk(1, 0, 42), mk(1, 0, 43)};
    EXPECT_TRUE(sameReportEvents(a, b));
    b.push_back(mk(9, 9));
    EXPECT_FALSE(sameReportEvents(a, b));
}

TEST(ReportUtils, CountByRule)
{
    std::vector<Report> r = {mk(1, 0), mk(2, 0), mk(3, 1)};
    auto counts = countByRule(r);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
}

TEST(ReportUtils, OffsetsOfRule)
{
    std::vector<Report> r = {mk(9, 1), mk(3, 1), mk(3, 1), mk(5, 0)};
    auto offs = offsetsOfRule(r, 1);
    EXPECT_EQ(offs, (std::vector<uint64_t>{3, 9}));
}

TEST(ReportUtils, CollapseBursts)
{
    // Rule 0 fires at 10,11,12,40: gap 5 keeps 10 and 40.
    std::vector<Report> r = {mk(10, 0), mk(11, 0), mk(12, 0), mk(40, 0),
                             mk(11, 1)};
    auto out = collapseBursts(r, 5);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].offset, 10u);
    EXPECT_EQ(out[1].offset, 11u); // rule 1 untouched
    EXPECT_EQ(out[2].offset, 40u);
}

TEST(ReportUtils, CollapseBurstsEmptyAndSingle)
{
    EXPECT_TRUE(collapseBursts({}, 10).empty());
    auto one = collapseBursts({mk(7, 3)}, 10);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].offset, 7u);
}

// ---------------------------------------------------------------- nocase

TEST(CaseInsensitive, MatchesBothCases)
{
    Nfa nfa = compileRuleset({"Attack"}, 1u << 20,
                             /*caseInsensitive=*/true);
    NfaEngine eng(nfa);
    for (const char *text : {"xATTACKx", "xattackx", "xAtTaCkx"}) {
        std::string s = text;
        EXPECT_EQ(eng.run(reinterpret_cast<const uint8_t *>(s.data()),
                          s.size())
                      .size(),
                  1u)
            << text;
    }
}

TEST(CaseInsensitive, OffByDefault)
{
    Nfa nfa = compileRuleset({"Attack"});
    NfaEngine eng(nfa);
    std::string s = "attack";
    EXPECT_TRUE(eng.run(reinterpret_cast<const uint8_t *>(s.data()),
                        s.size())
                    .empty());
}

TEST(CaseInsensitive, ClassesFoldToo)
{
    Nfa nfa = compileRuleset({"[a-c]x"}, 1u << 20, true);
    NfaEngine eng(nfa);
    std::string s = "Bx";
    EXPECT_EQ(eng.run(reinterpret_cast<const uint8_t *>(s.data()),
                      s.size())
                  .size(),
              1u);
}

// ---------------------------------------------------------------- DOT

TEST(Dot, NfaExportContainsStatesAndEdges)
{
    Nfa nfa = compileRuleset({"ab"});
    std::string dot = toDot(nfa);
    EXPECT_NE(dot.find("digraph nfa"), std::string::npos);
    EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos); // report state
    EXPECT_NE(dot.find("lightblue"), std::string::npos);    // all-input
}

TEST(Dot, AnchoredStartColoredDifferently)
{
    GlushkovOptions opts;
    Nfa nfa = buildGlushkov(parseRegex("^ab"), opts);
    EXPECT_NE(toDot(nfa).find("lightgreen"), std::string::npos);
}

TEST(Dot, TruncationNote)
{
    Nfa nfa = compileRuleset({std::string(100, 'a')});
    DotOptions opts;
    opts.maxStates = 10;
    std::string dot = toDot(nfa, opts);
    EXPECT_NE(dot.find("90 more states truncated"), std::string::npos);
}

TEST(Dot, MappedExportShowsClustersAndGEdges)
{
    std::string rule(600, 'q');
    Nfa nfa = compileRuleset({rule});
    MappedAutomaton m = mapPerformance(nfa);
    std::string dot = toDot(m);
    EXPECT_NE(dot.find("cluster_p0"), std::string::npos);
    EXPECT_NE(dot.find("cluster_p1"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed color=blue"), std::string::npos);
}

TEST(Dot, QuotesEscapedInLabels)
{
    Nfa nfa;
    nfa.addState(SymbolSet::of('"'), StartType::AllInput, true);
    std::string dot = toDot(nfa);
    // The quote must appear escaped inside the label string.
    EXPECT_NE(dot.find("\\\""), std::string::npos);
}

} // namespace
} // namespace ca
