/**
 * @file
 * Tests for the functional match subsystem (docs/MATCH.md): the
 * MatchEngine must be report-identical to the cycle-accurate
 * CacheAutomatonSim and the CPU oracle under every kernel, and the
 * ParallelMatcher's speculative chunk joins must reproduce the serial
 * report stream bit for bit — across chunk boundaries, all-input and
 * anchored rulesets, empty/1-byte/unaligned buffers, forced replays,
 * and randomized N-chunk vs 1-chunk fuzz. Also covers the runtime
 * integration (StreamServer with matchParallelism) and the
 * CA_MATCH_PARALLEL / kernel-name validation helpers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "match/match_engine.h"
#include "match/parallel_matcher.h"
#include "nfa/glushkov.h"
#include "runtime/report_sink.h"
#include "runtime/stream_server.h"
#include "sim/engine.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"

namespace ca {
namespace {

using match::MatchContext;
using match::MatchEngine;
using match::MatchOptions;
using match::MatchResult;
using match::ParallelMatcher;
using match::ParallelOptions;
using match::ParallelStats;

MatchOptions
engineOpts(SimKernel k)
{
    MatchOptions opts;
    opts.kernel = k;
    return opts;
}

std::shared_ptr<const MatchContext>
makeContext(const MappedAutomaton &m)
{
    return std::make_shared<MatchContext>(m);
}

/** Serial reference: one MatchEngine over the whole buffer. */
std::vector<Report>
serialReports(const std::shared_ptr<const MatchContext> &ctx,
              const std::vector<uint8_t> &input,
              SimKernel k = SimKernel::Auto)
{
    MatchEngine eng(ctx, engineOpts(k));
    eng.feed(input.data(), input.size());
    return eng.takeReports();
}

std::vector<uint8_t>
randomWorkloadInput(const std::vector<std::string> &rules, size_t bytes,
                    uint64_t seed)
{
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 32.0;
    return buildInput(spec, bytes, seed);
}

std::vector<std::string>
randomRules(Rng &rng)
{
    static const char *kBlocks[] = {
        "ab", "c+", "(d|ef)", "[g-i]{1,2}", "j.*k", "[lm]", "n?o",
        ".",
    };
    std::vector<std::string> rules;
    int n_rules = 2 + static_cast<int>(rng.below(8));
    for (int r = 0; r < n_rules; ++r) {
        std::string pat;
        int blocks = 1 + static_cast<int>(rng.below(4));
        for (int b = 0; b < blocks; ++b)
            pat += kBlocks[rng.below(std::size(kBlocks))];
        rules.push_back(pat);
    }
    return rules;
}

// ---------------------------------------------------------------------
// MatchEngine vs the cycle-accurate sim and the CPU oracle: the
// tests/kernel_test.cpp oracle contract, applied to the functional
// engine under every kernel.

class MatchEquality : public ::testing::TestWithParam<int>
{
};

TEST_P(MatchEquality, EngineMatchesSimAndOracleUnderEveryKernel)
{
    int param = GetParam();
    bool space = param % 2 == 1;
    Rng rng(param * 52379 + 5);
    std::vector<std::string> rules = randomRules(rng);

    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = space ? mapSpace(nfa) : mapPerformance(nfa);
    auto input = randomWorkloadInput(rules, 8 << 10, param + 100);

    SimOptions sim_opts;
    sim_opts.kernel = SimKernel::Sparse;
    CacheAutomatonSim sim(m, sim_opts);
    SimResult expect = sim.run(input);

    NfaEngine oracle(m.nfa());
    ASSERT_EQ(expect.reports, oracle.run(input));

    auto ctx = makeContext(m);
    for (SimKernel k :
         {SimKernel::Sparse, SimKernel::Dense, SimKernel::Auto}) {
        MatchOptions opts = engineOpts(k);
        opts.autoBlockSymbols = 256; // force several re-evaluations
        MatchEngine eng(ctx, opts);
        eng.feed(input.data(), input.size());
        EXPECT_EQ(eng.takeReports(), expect.reports)
            << "kernel " << static_cast<int>(k);
        EXPECT_EQ(eng.streamOffset(), input.size());
        // The end frontier agrees with the sim's §2.9 checkpoint.
        EXPECT_EQ(eng.frontier(), sim.checkpoint().enabledStates)
            << "kernel " << static_cast<int>(k);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, MatchEquality,
                         ::testing::Range(0, 16));

TEST(MatchEngine, IncrementalFeedMatchesWholeBuffer)
{
    std::vector<std::string> rules = {"cat", "do+g", "[hx]at"};
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto input = randomWorkloadInput(rules, 8 << 10, 7);
    auto ctx = makeContext(m);

    std::vector<Report> expect = serialReports(ctx, input);
    ASSERT_FALSE(expect.empty());

    MatchEngine eng(ctx, engineOpts(SimKernel::Dense));
    std::vector<Report> drained;
    size_t pos = 0;
    for (size_t chunk : {size_t{1000}, size_t{1}, size_t{0},
                         size_t{4096}, size_t{37}}) {
        size_t n = std::min(chunk, input.size() - pos);
        eng.feed(input.data() + pos, n);
        pos += n;
        auto got = eng.takeReports();
        drained.insert(drained.end(), got.begin(), got.end());
    }
    eng.feed(input.data() + pos, input.size() - pos);
    auto tail = eng.takeReports();
    drained.insert(drained.end(), tail.begin(), tail.end());
    EXPECT_EQ(drained, expect);
}

TEST(MatchEngine, SetStateResumesMidStream)
{
    std::vector<std::string> rules = {"ab+c", "x[yz]{1,3}w", "m.*n"};
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapSpace(nfa);
    auto input = randomWorkloadInput(rules, 8 << 10, 31);
    auto ctx = makeContext(m);

    std::vector<Report> expect = serialReports(ctx, input);

    // Suspend from a dense engine, resume into a sparse one: the
    // frontier is representation-independent (mirrors the sim's §2.9
    // checkpoint contract).
    size_t cut = input.size() / 3 + 7;
    MatchEngine head(ctx, engineOpts(SimKernel::Dense));
    head.feed(input.data(), cut);
    std::vector<Report> stitched = head.takeReports();
    std::vector<StateId> frontier = head.frontier();
    EXPECT_EQ(head.streamOffset(), cut);

    MatchEngine tail(ctx, engineOpts(SimKernel::Sparse));
    tail.setState(frontier, cut);
    tail.feed(input.data() + cut, input.size() - cut);
    auto t = tail.takeReports();
    stitched.insert(stitched.end(), t.begin(), t.end());
    EXPECT_EQ(stitched, expect);
}

TEST(MatchEngine, CollectReportsOffAdvancesTheFrontierIdentically)
{
    std::vector<std::string> rules = {"cat", "d.*g"};
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto input = randomWorkloadInput(rules, 4 << 10, 3);
    auto ctx = makeContext(m);

    MatchEngine on(ctx, engineOpts(SimKernel::Auto));
    on.feed(input.data(), input.size());
    ASSERT_FALSE(on.takeReports().empty());

    MatchEngine off(ctx, engineOpts(SimKernel::Auto));
    off.setCollectReports(false);
    off.feed(input.data(), input.size());
    EXPECT_TRUE(off.takeReports().empty());
    EXPECT_EQ(off.frontier(), on.frontier());
}

TEST(MatchContext, ReachableFrontierContainsEveryLiveFrontier)
{
    Rng rng(99);
    std::vector<std::string> rules = randomRules(rng);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto input = randomWorkloadInput(rules, 4 << 10, 17);
    auto ctx = makeContext(m);
    const std::vector<StateId> &reach = ctx->reachableFrontier();

    MatchEngine eng(ctx, engineOpts(SimKernel::Sparse));
    size_t pos = 0;
    for (size_t step : {size_t{1}, size_t{63}, size_t{256}, size_t{801},
                        size_t{2048}}) {
        size_t n = std::min(step, input.size() - pos);
        eng.feed(input.data() + pos, n);
        pos += n;
        // Every enabled state at offset >= 1 is in the precomputed
        // overapproximation — the invariant speculation relies on.
        for (StateId s : eng.frontier())
            EXPECT_TRUE(std::binary_search(reach.begin(), reach.end(), s))
                << "state " << s << " at offset " << pos;
    }
}

// ---------------------------------------------------------------------
// ParallelMatcher: speculative chunk joins must reproduce the serial
// report stream bit for bit.

/** Runs the matcher and checks the full result against one engine. */
void
expectParallelIdentical(const std::shared_ptr<const MatchContext> &ctx,
                        ParallelMatcher &pm,
                        const std::vector<uint8_t> &input,
                        const std::string &label)
{
    MatchEngine ref(ctx, engineOpts(SimKernel::Auto));
    ref.feed(input.data(), input.size());

    MatchResult got = pm.match(input.data(), input.size());
    EXPECT_EQ(got.reports, ref.takeReports()) << label;
    EXPECT_EQ(got.frontier, ref.frontier()) << label;
    EXPECT_EQ(got.endOffset, input.size()) << label;
}

TEST(ParallelMatcher, ReportIdenticalAcrossDegrees)
{
    Rng rng(4242);
    std::vector<std::string> rules = randomRules(rng);
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto input = randomWorkloadInput(rules, 64 << 10, 5);
    auto ctx = makeContext(m);

    for (size_t degree : {size_t{2}, size_t{4}, size_t{8}}) {
        ParallelOptions popts;
        popts.degree = degree;
        popts.minChunkBytes = 2 << 10; // force real chunking at 64 KiB
        popts.overlapBytes = 512;
        ParallelMatcher pm(ctx, popts);
        expectParallelIdentical(ctx, pm, input,
                                "degree " + std::to_string(degree));
        ParallelStats st = pm.stats();
        EXPECT_EQ(st.calls, 1u);
        EXPECT_EQ(st.serialCalls, 0u);
        EXPECT_EQ(st.chunks, degree);
        // Every speculative chunk either hit or was replayed.
        EXPECT_EQ(st.speculationHits + st.replays, degree - 1);
        EXPECT_EQ(st.bytes, input.size());
    }
}

TEST(ParallelMatcher, ReportsStraddlingChunkJoins)
{
    // Pattern instances planted exactly across every chunk boundary:
    // each "wxyz" starts 2 bytes before a join, so its report fires 2
    // bytes after — only correct if the speculative frontier carried
    // the partial match over the boundary (or the replay did).
    Nfa nfa = compileRuleset({"wxyz"});
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);

    const size_t chunk = 1024;
    const size_t n_chunks = 4;
    std::vector<uint8_t> input(chunk * n_chunks, '.');
    std::vector<Report> expect;
    for (size_t b = 1; b < n_chunks; ++b) {
        size_t start = b * chunk - 2;
        input[start] = 'w';
        input[start + 1] = 'x';
        input[start + 2] = 'y';
        input[start + 3] = 'z';
    }

    ParallelOptions popts;
    popts.degree = n_chunks;
    popts.minChunkBytes = chunk;
    popts.overlapBytes = 64;
    ParallelMatcher pm(ctx, popts);
    MatchResult got = pm.match(input.data(), input.size());

    MatchEngine ref(ctx, engineOpts(SimKernel::Sparse));
    ref.feed(input.data(), input.size());
    std::vector<Report> want = ref.takeReports();
    ASSERT_EQ(want.size(), n_chunks - 1); // one per straddled boundary
    EXPECT_EQ(got.reports, want);
    for (size_t b = 1; b < n_chunks; ++b)
        EXPECT_EQ(want[b - 1].offset, b * chunk + 1);
}

TEST(ParallelMatcher, AllInputStartRuleset)
{
    // "." reports on every byte from an always-enabled all-input start:
    // maximal report volume and a frontier dominated by the start set.
    Nfa nfa = compileRuleset({".", "aa"});
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);
    std::vector<uint8_t> input(16 << 10, 'a');

    ParallelOptions popts;
    popts.degree = 4;
    popts.minChunkBytes = 1 << 10;
    popts.overlapBytes = 128;
    ParallelMatcher pm(ctx, popts);
    expectParallelIdentical(ctx, pm, input, "all-input ruleset");
    // The all-input frontier converges instantly: every speculative
    // chunk must have joined for free.
    ParallelStats st = pm.stats();
    EXPECT_EQ(st.speculationHits, st.chunks - 1);
    EXPECT_EQ(st.replays, 0u);
}

TEST(ParallelMatcher, AnchoredRulesetDiesOutAndStillJoins)
{
    // '^'-anchored rules only match at offset 0; past the first bytes
    // the true frontier is empty, and the speculative warm-up must
    // converge to exactly that empty frontier.
    Nfa nfa = compileRuleset({"^abc", "^x+y"});
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);

    std::vector<uint8_t> input(8 << 10, '.');
    input[0] = 'a';
    input[1] = 'b';
    input[2] = 'c';

    ParallelOptions popts;
    popts.degree = 4;
    popts.minChunkBytes = 1 << 10;
    popts.overlapBytes = 256;
    ParallelMatcher pm(ctx, popts);
    MatchResult got = pm.match(input.data(), input.size());
    ASSERT_EQ(got.reports.size(), 1u);
    EXPECT_EQ(got.reports[0].offset, 2u);
    EXPECT_TRUE(got.frontier.empty());
    ParallelStats st = pm.stats();
    EXPECT_EQ(st.speculationHits, st.chunks - 1);
}

TEST(ParallelMatcher, EmptyOneByteAndSubMinimumBuffersRunSerially)
{
    Nfa nfa = compileRuleset({"a"});
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);
    ParallelOptions popts;
    popts.degree = 4;
    popts.minChunkBytes = 1 << 10;
    ParallelMatcher pm(ctx, popts);

    MatchResult empty = pm.match(nullptr, 0);
    EXPECT_TRUE(empty.reports.empty());
    EXPECT_EQ(empty.endOffset, 0u);

    uint8_t one = 'a';
    MatchResult single = pm.match(&one, 1);
    ASSERT_EQ(single.reports.size(), 1u);
    EXPECT_EQ(single.reports[0].offset, 0u);
    EXPECT_EQ(single.endOffset, 1u);

    std::vector<uint8_t> small(popts.minChunkBytes * 2 - 1, 'a');
    MatchResult sub = pm.match(small.data(), small.size());
    EXPECT_EQ(sub.reports.size(), small.size());

    ParallelStats st = pm.stats();
    EXPECT_EQ(st.calls, 3u);
    EXPECT_EQ(st.serialCalls, 3u); // none of the three chunked
}

TEST(ParallelMatcher, UnalignedChunksAndContinuationOffsets)
{
    std::vector<std::string> rules = {"abc", "x.y"};
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);
    // A prime-sized buffer over degree 3: chunk lengths differ and no
    // boundary is aligned to anything.
    auto input = randomWorkloadInput(rules, 24593, 13);

    ParallelOptions popts;
    popts.degree = 3;
    popts.minChunkBytes = 1 << 10;
    popts.overlapBytes = 200;
    ParallelMatcher pm(ctx, popts);

    // Continue from a mid-stream frontier at a non-zero offset, as the
    // StreamServer does with a session checkpoint.
    const size_t cut = 5000;
    MatchEngine head(ctx, engineOpts(SimKernel::Auto));
    head.feed(input.data(), cut);
    std::vector<Report> expect = head.takeReports();
    std::vector<StateId> frontier = head.frontier();
    head.feed(input.data() + cut, input.size() - cut);
    auto t = head.takeReports();
    expect.insert(expect.end(), t.begin(), t.end());

    MatchResult got =
        pm.match(frontier, cut, input.data() + cut, input.size() - cut);
    std::vector<Report> head_part(expect.begin(),
                                  expect.begin() +
                                      static_cast<long>(
                                          expect.size() -
                                          got.reports.size()));
    // got.reports must be exactly the tail of the serial stream.
    std::vector<Report> tail_part(
        expect.end() - static_cast<long>(got.reports.size()),
        expect.end());
    EXPECT_EQ(got.reports, tail_part);
    EXPECT_EQ(got.endOffset, input.size());
    EXPECT_EQ(got.frontier, head.frontier());
    (void)head_part;
}

TEST(ParallelMatcher, ZeroOverlapForcesReplaysAndStaysCorrect)
{
    // With no warm-up window the speculative start frontier is the raw
    // reachable overapproximation, which on this ruleset differs from
    // the true frontier — every speculative chunk must replay, and the
    // result must still be exact.
    std::vector<std::string> rules = {"ab", "j.*k"};
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);
    std::vector<uint8_t> input(8 << 10, '.'); // no 'j': dot-state stays off

    ParallelOptions popts;
    popts.degree = 4;
    popts.minChunkBytes = 1 << 10;
    popts.overlapBytes = 0;
    ParallelMatcher pm(ctx, popts);
    expectParallelIdentical(ctx, pm, input, "zero overlap");
    ParallelStats st = pm.stats();
    EXPECT_EQ(st.replays, st.chunks - 1);
    EXPECT_EQ(st.speculationHits, 0u);
    EXPECT_GT(st.replayedBytes, 0u);
}

TEST(ParallelMatcher, FuzzNChunkVsOneChunkReportIdentity)
{
    // Randomized identity fuzz: random rulesets, sizes, degrees,
    // overlaps, and continuation offsets — N-chunk == 1-chunk, always.
    for (int iter = 0; iter < 12; ++iter) {
        Rng rng(iter * 7919 + 1);
        std::vector<std::string> rules = randomRules(rng);
        Nfa nfa = compileRuleset(rules);
        MappedAutomaton m =
            iter % 2 ? mapSpace(nfa) : mapPerformance(nfa);
        auto ctx = makeContext(m);

        size_t bytes = 4096 + rng.below(60000);
        auto input = randomWorkloadInput(rules, bytes, iter + 500);

        ParallelOptions popts;
        popts.degree = 2 + rng.below(7);
        popts.minChunkBytes = 512 + rng.below(4096);
        popts.overlapBytes = rng.below(1024);
        ParallelMatcher pm(ctx, popts);
        expectParallelIdentical(ctx, pm, input,
                                "fuzz iter " + std::to_string(iter));
    }
}

TEST(ParallelMatcher, StatsAccumulateAcrossCalls)
{
    Nfa nfa = compileRuleset({"ab"});
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);
    ParallelOptions popts;
    popts.degree = 2;
    popts.minChunkBytes = 256;
    ParallelMatcher pm(ctx, popts);

    std::vector<uint8_t> input(4 << 10, 'a');
    pm.match(input.data(), input.size());
    pm.match(input.data(), input.size());
    uint8_t tiny = 'a';
    pm.match(&tiny, 1);

    ParallelStats st = pm.stats();
    EXPECT_EQ(st.calls, 3u);
    EXPECT_EQ(st.serialCalls, 1u);
    EXPECT_EQ(st.chunks, 2u * 2u + 1u);
    EXPECT_EQ(st.bytes, 2u * input.size() + 1);
    EXPECT_EQ(st.speculationHits + st.replays, 2u);
}

// ---------------------------------------------------------------------
// Validation helpers (the CA_SIM_KERNEL / CA_MATCH_PARALLEL satellite).

TEST(MatchParallelParse, AcceptsOffAutoAndCounts)
{
    EXPECT_EQ(match::parseMatchParallel("off"), size_t{0});
    EXPECT_EQ(match::parseMatchParallel("0"), size_t{0});
    EXPECT_EQ(match::parseMatchParallel("1"), size_t{0});
    EXPECT_EQ(match::parseMatchParallel("none"), size_t{0});
    auto autod = match::parseMatchParallel("auto");
    ASSERT_TRUE(autod.has_value());
    EXPECT_GE(*autod, 1u);
    EXPECT_EQ(match::parseMatchParallel("2"), size_t{2});
    EXPECT_EQ(match::parseMatchParallel("16"), size_t{16});
    EXPECT_FALSE(match::parseMatchParallel("").has_value());
    EXPECT_FALSE(match::parseMatchParallel("fast").has_value());
    EXPECT_FALSE(match::parseMatchParallel("-3").has_value());
    EXPECT_FALSE(match::parseMatchParallel("2x").has_value());
    EXPECT_FALSE(match::parseMatchParallel("1.5").has_value());
}

TEST(KernelNameParse, AcceptsKnownNamesRejectsUnknown)
{
    EXPECT_EQ(parseKernelName("sparse"), SimKernel::Sparse);
    EXPECT_EQ(parseKernelName("dense"), SimKernel::Dense);
    EXPECT_EQ(parseKernelName("auto"), SimKernel::Auto);
    EXPECT_FALSE(parseKernelName("").has_value());
    EXPECT_FALSE(parseKernelName("Sparse").has_value());
    EXPECT_FALSE(parseKernelName("both").has_value());
    EXPECT_STREQ(kernelName(SimKernel::Sparse), "sparse");
    EXPECT_STREQ(kernelName(SimKernel::Dense), "dense");
    EXPECT_STREQ(kernelName(SimKernel::Auto), "auto");
}

// ---------------------------------------------------------------------
// Runtime integration: a StreamServer with matchParallelism routes big
// slices through the ParallelMatcher and stays report-identical.

TEST(StreamServerParallel, SingleStreamMatchesSerialRun)
{
    std::vector<std::string> rules = {"cat", "do+g", "j.*k"};
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto input = randomWorkloadInput(rules, 512 << 10, 77);

    CacheAutomatonSim ref(m);
    SimResult expect = ref.run(input);

    runtime::StreamServerOptions sopts;
    sopts.workers = 2;
    sopts.matchParallelism = 4;
    sopts.matchParallelMinBytes = 16 << 10;
    runtime::StreamServer server(m, sopts);
    runtime::CollectingSink sink;
    runtime::StreamSession &session = server.open(sink);
    uint32_t id = session.id();

    // Big submissions so slices gather enough for the parallel path.
    const size_t mtu = 128 << 10;
    for (size_t pos = 0; pos < input.size(); pos += mtu) {
        size_t n = std::min(mtu, input.size() - pos);
        session.submit(input.data() + pos, n);
    }
    session.close();

    EXPECT_EQ(sink.reports(id), expect.reports);
    // $CA_MATCH_PARALLEL overrides the configured degree (and "auto"
    // may resolve to 1 = disabled on a small host), so the matcher
    // internals are only pinned down when the env leaves them alone.
    if (std::getenv("CA_MATCH_PARALLEL") == nullptr) {
        runtime::ServerInspect in = server.inspect();
        ASSERT_NE(server.parallelMatcher(), nullptr);
        EXPECT_EQ(in.matchParallelism, 4u);
        EXPECT_EQ(server.parallelMatcher()->degree(), 4u);
        // The parallel path really ran (not every slice need qualify).
        EXPECT_GT(in.match.calls, 0u);
        EXPECT_GT(in.match.bytes, 0u);
    }
}

TEST(StreamServerParallel, ManySessionsStayDeterministic)
{
    // Concurrent sessions contend for the one matcher; tryMatch's
    // fallback keeps every stream's report order deterministic.
    std::vector<std::string> rules = {"ab", "x[yz]w"};
    Nfa nfa = compileRuleset(rules);
    MappedAutomaton m = mapPerformance(nfa);
    auto ctx = makeContext(m);
    auto input = randomWorkloadInput(rules, 96 << 10, 9);
    std::vector<Report> expect = serialReports(ctx, input);

    runtime::StreamServerOptions sopts;
    sopts.workers = 4;
    sopts.matchParallelism = 2;
    sopts.matchParallelMinBytes = 8 << 10;
    runtime::StreamServer server(m, sopts);
    runtime::CollectingSink sink;

    std::vector<runtime::StreamSession *> sessions;
    for (int i = 0; i < 6; ++i)
        sessions.push_back(&server.open(sink));
    for (runtime::StreamSession *s : sessions)
        s->submit(input.data(), input.size());
    for (runtime::StreamSession *s : sessions)
        s->close();
    for (runtime::StreamSession *s : sessions)
        EXPECT_EQ(sink.reports(s->id()), expect);
}

TEST(StreamServerParallel, DisabledByDefault)
{
    Nfa nfa = compileRuleset({"a"});
    MappedAutomaton m = mapPerformance(nfa);
    runtime::StreamServer server(m);
    if (std::getenv("CA_MATCH_PARALLEL") == nullptr) {
        EXPECT_EQ(server.parallelMatcher(), nullptr);
        EXPECT_EQ(server.inspect().matchParallelism, 0u);
    }
}

} // namespace
} // namespace ca
