/**
 * @file
 * Tests for the benchmark suite generators and input streams.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "nfa/analysis.h"
#include "nfa/regex_parser.h"
#include "workload/input_gen.h"
#include "workload/rulegen.h"
#include "workload/suite.h"
#include "workload/witness.h"

namespace ca {
namespace {

TEST(Suite, HasAll20Benchmarks)
{
    EXPECT_EQ(benchmarkSuite().size(), 20u);
    std::set<std::string> names;
    for (const Benchmark &b : benchmarkSuite())
        names.insert(b.name);
    EXPECT_EQ(names.size(), 20u);
    EXPECT_TRUE(names.count("Snort"));
    EXPECT_TRUE(names.count("Levenshtein"));
    EXPECT_TRUE(names.count("SPM"));
}

TEST(Suite, FindByName)
{
    EXPECT_EQ(findBenchmark("Brill").name, "Brill");
    EXPECT_THROW(findBenchmark("NoSuch"), CaError);
}

TEST(Suite, PaperRowsPopulated)
{
    for (const Benchmark &b : benchmarkSuite()) {
        EXPECT_GT(b.paperPerf.states, 0u) << b.name;
        EXPECT_GT(b.paperPerf.connectedComponents, 0u) << b.name;
        EXPECT_GT(b.paperSpace.states, 0u) << b.name;
        EXPECT_GE(b.paperPerf.states, b.paperSpace.states) << b.name;
    }
}

TEST(Suite, GeneratorsDeterministic)
{
    for (const Benchmark &b : benchmarkSuite()) {
        Nfa a = b.build(0.02, 5);
        Nfa c = b.build(0.02, 5);
        EXPECT_EQ(a.numStates(), c.numStates()) << b.name;
        EXPECT_EQ(a.numTransitions(), c.numTransitions()) << b.name;
    }
}

/**
 * Byte-level rulegen determinism: the persist layer's cache keys hash
 * the ruleset *text* (persist::computeCacheKey), so two processes
 * generating the same benchmark at the same seed must produce identical
 * rule strings — not merely isomorphic automata — or the compile-once/
 * load-many cache silently stops sharing.
 */
TEST(Suite, RulesetBytesDeterministicPerSeed)
{
    for (const Benchmark &b : benchmarkSuite()) {
        std::vector<std::string> r1 = b.rules(0.02, kDefaultRuleSeed);
        std::vector<std::string> r2 = b.rules(0.02, kDefaultRuleSeed);
        EXPECT_EQ(r1, r2) << b.name;
        ASSERT_FALSE(r1.empty()) << b.name;

        // A different seed must actually change the generated text
        // (otherwise the seed parameter is dead and collisions hide).
        std::vector<std::string> other = b.rules(0.02, kDefaultRuleSeed + 1);
        EXPECT_NE(r1, other) << b.name;
    }
}

TEST(Suite, GeneratedAutomataValidate)
{
    for (const Benchmark &b : benchmarkSuite()) {
        Nfa nfa = b.build(0.02, 3);
        EXPECT_NO_THROW(nfa.validate()) << b.name;
        EXPECT_GT(nfa.reportStates().size(), 0u) << b.name;
    }
}

TEST(Suite, ScaleControlsSize)
{
    const Benchmark &b = findBenchmark("Snort");
    Nfa small = b.build(0.02, 1);
    Nfa larger = b.build(0.08, 1);
    EXPECT_GT(larger.numStates(), 2 * small.numStates());
}

/**
 * At full scale, the synthesized structure must land near Table 1:
 * states within 40%, CC count within 25%, largest CC within 4x.
 * (Exact equality is impossible without the original ANML files; what
 * matters for the evaluation's shape is the magnitude.)
 */
class SuiteShape : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteShape, FullScaleNearTable1)
{
    const Benchmark &b = benchmarkSuite()[GetParam()];
    Nfa nfa = b.build(1.0, kDefaultRuleSeed);
    ComponentInfo cc = connectedComponents(nfa);

    double state_ratio = static_cast<double>(nfa.numStates()) /
        static_cast<double>(b.paperPerf.states);
    EXPECT_GT(state_ratio, 0.6) << b.name << ": " << nfa.numStates()
                                << " vs " << b.paperPerf.states;
    EXPECT_LT(state_ratio, 1.4) << b.name << ": " << nfa.numStates()
                                << " vs " << b.paperPerf.states;

    double cc_ratio = static_cast<double>(cc.numComponents()) /
        static_cast<double>(b.paperPerf.connectedComponents);
    EXPECT_GT(cc_ratio, 0.75) << b.name;
    EXPECT_LT(cc_ratio, 1.25) << b.name;

    double big_ratio = static_cast<double>(cc.largestSize()) /
        static_cast<double>(b.paperPerf.largestComponent);
    EXPECT_GT(big_ratio, 0.25) << b.name << " largest " << cc.largestSize();
    EXPECT_LT(big_ratio, 4.0) << b.name << " largest " << cc.largestSize();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteShape, ::testing::Range(0, 20),
                         [](const auto &info) {
                             return benchmarkSuite()[info.param].name;
                         });

// ---------------------------------------------------------------- rulegen

TEST(RuleGen, AllFamiliesParse)
{
    auto check = [](const std::vector<std::string> &rules) {
        for (const auto &r : rules)
            EXPECT_NO_THROW(parseRegex(r)) << r;
    };
    check(genDotstarRules(20, 0.5, 30, 1));
    check(genRangesRules(20, 0.5, 30, 2));
    check(genExactMatchRules(20, 30, 3));
    check(genBroRules(20, 4));
    check(genTcpRules(120, 5));
    check(genSnortRules(40, 6));
    check(genClamAvRules(10, 7));
    check(genPowerEnRules(20, 8));
    check(genBrillRules(20, 9));
    check(genEntityResolutionRules(20, 10));
    check(genFermiRules(20, 11));
    check(genSpmRules(20, 12));
    check(genRandomForestRules(20, 20, 13));
    check(genProtomataRules(20, 14));
}

TEST(RuleGen, DotstarProbabilityShowsInRules)
{
    auto none = genDotstarRules(50, 0.0, 30, 1);
    auto all = genDotstarRules(50, 1.0, 30, 1);
    int dots_none = 0;
    int dots_all = 0;
    for (const auto &r : none)
        dots_none += r.find(".*") != std::string::npos;
    for (const auto &r : all)
        dots_all += r.find(".*") != std::string::npos;
    EXPECT_EQ(dots_none, 0);
    EXPECT_EQ(dots_all, 50);
}

TEST(RuleGen, RandomForestChainsHaveExactLength)
{
    auto rules = genRandomForestRules(10, 20, 5);
    for (const auto &r : rules)
        EXPECT_EQ(r.size(), 20u);
}

TEST(RuleGen, LexiconStable)
{
    EXPECT_EQ(wordLexicon().size(), 500u);
    EXPECT_EQ(wordLexicon()[0], "the");
    EXPECT_EQ(aminoAlphabet().size(), 20u);
}

// ---------------------------------------------------------------- inputs

TEST(InputGen, ExactSizeAndDeterminism)
{
    InputSpec spec;
    spec.kind = StreamKind::Payload;
    auto a = buildInput(spec, 10000, 5);
    auto b = buildInput(spec, 10000, 5);
    EXPECT_EQ(a.size(), 10000u);
    EXPECT_EQ(a, b);
    auto c = buildInput(spec, 10000, 6);
    EXPECT_NE(a, c);
}

TEST(InputGen, StreamKindsUseTheirAlphabets)
{
    InputSpec spec;
    spec.kind = StreamKind::Digits;
    for (uint8_t c : buildInput(spec, 2000, 1))
        EXPECT_TRUE(c >= '0' && c <= '9');

    spec.kind = StreamKind::Dna;
    for (uint8_t c : buildInput(spec, 2000, 1))
        EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');

    spec.kind = StreamKind::Amino;
    for (uint8_t c : buildInput(spec, 2000, 1))
        EXPECT_NE(aminoAlphabet().find(static_cast<char>(c)),
                  std::string::npos);
}

TEST(InputGen, PlantedWitnessesAppear)
{
    InputSpec spec;
    spec.kind = StreamKind::Digits; // witness "zzz" can't arise from noise
    spec.plantPatterns = {"zzz"};
    spec.plantsPer4k = 4.0;
    auto input = buildInput(spec, 64 << 10, 3);
    std::string s(input.begin(), input.end());
    size_t count = 0;
    for (size_t pos = s.find("zzz"); pos != std::string::npos;
         pos = s.find("zzz", pos + 1))
        ++count;
    EXPECT_GT(count, 30u); // ~64 expected
}

TEST(InputGen, DefaultStreamBytesHonoursEnv)
{
    // Without CA_FULL_INPUT this is 1 MB (tests run without it).
    unsetenv("CA_FULL_INPUT");
    EXPECT_EQ(defaultStreamBytes(), 1u << 20);
    setenv("CA_FULL_INPUT", "1", 1);
    EXPECT_EQ(defaultStreamBytes(), 10u << 20);
    unsetenv("CA_FULL_INPUT");
}

TEST(Witness, RepeatBoundsRespected)
{
    Rng rng(4);
    for (int i = 0; i < 20; ++i) {
        std::string w = sampleWitness("a{2,4}", rng);
        EXPECT_GE(w.size(), 2u);
        EXPECT_LE(w.size(), 4u);
        for (char c : w)
            EXPECT_EQ(c, 'a');
    }
}

TEST(Witness, AlternationPicksBothBranches)
{
    Rng rng(5);
    std::set<std::string> seen;
    for (int i = 0; i < 50; ++i)
        seen.insert(sampleWitness("(aa|bb)", rng));
    EXPECT_EQ(seen.size(), 2u);
}

} // namespace
} // namespace ca
