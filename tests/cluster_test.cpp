/**
 * @file
 * Tests for the cluster control plane (src/cluster + the epoch/swap and
 * artifact-replication machinery in src/net): peer artifact pulls,
 * cache remote-fill semantics, and zero-downtime ruleset hot-swap.
 *
 * The load-bearing properties:
 *  - Replication integrity: bytes pulled from a peer always validate as
 *    a complete CAAF artifact hashing to the requested fingerprint;
 *    corrupted/truncated transfers are rejected before publication and
 *    the next peer (or next call) retries cleanly.
 *  - Single-flight: concurrent cache misses on one fingerprint collapse
 *    to exactly one remote fetch (run under TSan in CI).
 *  - Swap semantics: a stream opened before a swap drains on the
 *    automaton it started with — its report stream equals the
 *    single-threaded oracle for the OLD ruleset over the whole input,
 *    never a mix — while streams opened after the swap match the new
 *    one. SWAP is honored only on the admin plane.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include "cluster/replication.h"
#include "compiler/mapping.h"
#include "core/error.h"
#include "net/client.h"
#include "net/match_server.h"
#include "net/protocol.h"
#include "nfa/glushkov.h"
#include "persist/artifact.h"
#include "persist/cache.h"
#include "sim/engine.h"
#include "workload/input_gen.h"

namespace fs = std::filesystem;

namespace ca {
namespace {

using cluster::PeerAddress;
using cluster::Replicator;
using net::ClientOptions;
using net::MatchClient;
using net::MatchServer;
using net::MatchServerOptions;
using net::SwapStatus;
using persist::ArtifactCache;

/** Unique scratch directory, removed (recursively) on scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        static std::atomic<uint64_t> seq{0};
        path_ = fs::temp_directory_path() /
                ("ca_cluster_test." + std::to_string(::getpid()) + "." +
                 std::to_string(seq.fetch_add(1)));
        fs::create_directories(path_);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    std::string str(const std::string &leaf) const
    {
        return (path_ / leaf).string();
    }

  private:
    fs::path path_;
};

MappedAutomaton &
mappedA()
{
    static MappedAutomaton m =
        mapPerformance(compileRuleset({"cat", "do+g", "[hx]at"}));
    return m;
}

MappedAutomaton &
mappedB()
{
    static MappedAutomaton m =
        mapPerformance(compileRuleset({"fish", "bir+d", "ow[l7]"}));
    return m;
}

std::vector<uint8_t>
packedBytes(const MappedAutomaton &m)
{
    return persist::packArtifact(m, buildConfigImage(m));
}

std::vector<uint8_t>
sampleInput(size_t bytes, uint64_t seed)
{
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"cat", "dog", "hat", "fish", "bird", "owl"};
    spec.plantsPer4k = 32.0;
    return buildInput(spec, bytes, seed);
}

std::vector<Report>
oracleReports(const MappedAutomaton &m, const std::vector<uint8_t> &input)
{
    CacheAutomatonSim sim(m);
    return sim.run(input).reports;
}

/** Streams @p input on a fresh connection and returns the reports. */
std::vector<Report>
matchOver(uint16_t port, const std::vector<uint8_t> &input)
{
    MatchClient client;
    client.connect("127.0.0.1", port);
    uint32_t stream = client.openStream();
    client.send(stream, input);
    client.flush(stream);
    client.closeStream(stream);
    std::vector<Report> out = client.takeReports(stream);
    client.close();
    return out;
}

// --- Peer parsing -------------------------------------------------------

TEST(ClusterPeer, ParsesHostPort)
{
    PeerAddress p = cluster::parsePeer("10.1.2.3:7001");
    EXPECT_EQ(p.host, "10.1.2.3");
    EXPECT_EQ(p.port, 7001);

    EXPECT_THROW(cluster::parsePeer("nohost"), CaError);
    EXPECT_THROW(cluster::parsePeer(":123"), CaError);
    EXPECT_THROW(cluster::parsePeer("host:"), CaError);
    EXPECT_THROW(cluster::parsePeer("host:0"), CaError);
    EXPECT_THROW(cluster::parsePeer("host:worm"), CaError);
    EXPECT_THROW(cluster::parsePeer("host:123x"), CaError);
    EXPECT_THROW(cluster::parsePeer("host:99999"), CaError);
}

// --- Fingerprint-addressed cache ----------------------------------------

TEST(ClusterCache, StoreBytesByFingerprintRoundTrips)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    uint64_t fp = persist::artifactFingerprint(mappedA());

    persist::LoadedArtifact stored =
        cache.storeBytesByFingerprint(fp, packedBytes(mappedA()));
    EXPECT_EQ(persist::artifactFingerprint(*stored.automaton), fp);
    ASSERT_TRUE(fs::exists(cache.pathForFingerprint(fp)));

    std::optional<persist::LoadedArtifact> hit =
        cache.tryLoadByFingerprint(fp);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(persist::artifactFingerprint(*hit->automaton), fp);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ClusterCache, StoreRejectsWrongFingerprint)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    // Claiming mappedB's bytes are mappedA's fingerprint must not
    // publish anything.
    uint64_t fp = persist::artifactFingerprint(mappedA());
    EXPECT_THROW(cache.storeBytesByFingerprint(fp, packedBytes(mappedB())),
                 CaError);
    EXPECT_FALSE(fs::exists(cache.pathForFingerprint(fp)));
}

TEST(ClusterCache, StoreRejectsCorruptBytes)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    uint64_t fp = persist::artifactFingerprint(mappedA());
    std::vector<uint8_t> bytes = packedBytes(mappedA());
    bytes[bytes.size() / 2] ^= 0x40;
    EXPECT_THROW(cache.storeBytesByFingerprint(fp, std::move(bytes)),
                 CaError);
    EXPECT_FALSE(fs::exists(cache.pathForFingerprint(fp)));
}

TEST(ClusterCache, MislabeledEntryIsEvicted)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    uint64_t fpA = persist::artifactFingerprint(mappedA());
    // Hand-copy B's (valid!) artifact under A's name: CRCs pass, the
    // fingerprint check must still evict it.
    persist::writeBytesAtomic(cache.pathForFingerprint(fpA),
                              packedBytes(mappedB()));
    EXPECT_FALSE(cache.tryLoadByFingerprint(fpA).has_value());
    EXPECT_FALSE(fs::exists(cache.pathForFingerprint(fpA)));
    EXPECT_EQ(cache.stats().corruptEvicted, 1u);
}

TEST(ClusterCache, GetOrFetchSingleFlightUnderConcurrency)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    uint64_t fp = persist::artifactFingerprint(mappedA());

    std::atomic<int> fetches{0};
    cache.setRemoteFetcher([&](uint64_t wanted) {
        EXPECT_EQ(wanted, fp);
        fetches.fetch_add(1);
        // Hold the flight open long enough for every other thread to
        // pile up behind it.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return packedBytes(mappedA());
    });

    constexpr int kThreads = 4;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&] {
            persist::LoadedArtifact got = cache.getOrFetch(fp);
            if (persist::artifactFingerprint(*got.automaton) == fp)
                ok.fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(fetches.load(), 1) << "misses must collapse to one fetch";
    EXPECT_EQ(ok.load(), kThreads);
    EXPECT_EQ(cache.stats().remoteFills, 1u);
    // Subsequent calls are pure local hits.
    (void)cache.getOrFetch(fp);
    EXPECT_EQ(fetches.load(), 1);
}

TEST(ClusterCache, FailedFetchThrowsAndNextCallRetries)
{
    TempDir dir;
    ArtifactCache cache(dir.str("cache"));
    uint64_t fp = persist::artifactFingerprint(mappedA());

    int calls = 0;
    cache.setRemoteFetcher([&](uint64_t) -> std::vector<uint8_t> {
        if (++calls == 1)
            CA_THROW("peer down");
        return packedBytes(mappedA());
    });

    EXPECT_THROW(cache.getOrFetch(fp), CaError);
    EXPECT_EQ(cache.stats().remoteFillFailures, 1u);
    // The failure must not wedge the single-flight state.
    persist::LoadedArtifact got = cache.getOrFetch(fp);
    EXPECT_EQ(persist::artifactFingerprint(*got.automaton), fp);
    EXPECT_EQ(calls, 2);
}

// --- Replicator over live servers ---------------------------------------

TEST(ClusterReplication, FetchesValidatedBytesFromPeer)
{
    MatchServer peer(mappedA());
    uint64_t fp = persist::artifactFingerprint(mappedA());

    Replicator repl({{"127.0.0.1", peer.port()}});
    std::vector<uint8_t> bytes = repl.fetchBytes(fp);
    persist::LoadedArtifact loaded = persist::loadArtifactBytes(bytes);
    EXPECT_EQ(persist::artifactFingerprint(*loaded.automaton), fp);
    EXPECT_EQ(repl.stats().fetchSuccesses, 1u);
    EXPECT_EQ(repl.stats().bytesFetched, bytes.size());

    net::NetServerStats s = peer.stats();
    EXPECT_GE(s.artifactQueries, 1u);
    EXPECT_GE(s.artifactChunksServed, 1u);
    EXPECT_GE(s.artifactBytesServed, bytes.size());
}

TEST(ClusterReplication, UnknownFingerprintFailsCleanly)
{
    MatchServer peer(mappedA());
    Replicator repl({{"127.0.0.1", peer.port()}});
    EXPECT_THROW(repl.fetchBytes(0xdeadbeefull), CaError);
    EXPECT_EQ(repl.stats().fetchFailures, 1u);
    // The peer itself is unharmed and still serves matches.
    std::vector<uint8_t> input = sampleInput(8 << 10, 1);
    EXPECT_EQ(matchOver(peer.port(), input),
              oracleReports(mappedA(), input));
}

TEST(ClusterReplication, FailsOverPastDeadPeer)
{
    // Reserve a port that is certainly closed by the time we dial it.
    uint16_t dead_port;
    {
        MatchServer doomed(mappedA());
        dead_port = doomed.port();
    }
    MatchServer alive(mappedA());
    uint64_t fp = persist::artifactFingerprint(mappedA());

    Replicator repl(
        {{"127.0.0.1", dead_port}, {"127.0.0.1", alive.port()}},
        [] {
            cluster::ReplicatorOptions o;
            o.connectTimeoutMs = 1000;
            return o;
        }());
    std::vector<uint8_t> bytes = repl.fetchBytes(fp);
    EXPECT_EQ(persist::artifactFingerprint(
                  *persist::loadArtifactBytes(bytes).automaton),
              fp);
    EXPECT_EQ(repl.stats().fetchFailures, 1u);
    EXPECT_EQ(repl.stats().fetchSuccesses, 1u);
}

TEST(ClusterReplication, CorruptAndTruncatedTransfersAreRejected)
{
    uint64_t fp = persist::artifactFingerprint(mappedA());

    // Two lying peers: one serves bit-flipped bytes for any requested
    // fingerprint, one serves a truncated prefix. Chunk CRCs cover only
    // the wire, so both transfers *complete* — end-to-end CAAF
    // validation at the replicator is what must catch them.
    auto corrupt = std::make_shared<std::vector<uint8_t>>(
        packedBytes(mappedA()));
    (*corrupt)[corrupt->size() / 3] ^= 0x10;
    auto truncated = std::make_shared<std::vector<uint8_t>>(
        packedBytes(mappedA()));
    truncated->resize(truncated->size() / 2);

    MatchServerOptions bad_opts;
    bad_opts.artifactResolver = [corrupt](uint64_t) { return corrupt; };
    MatchServer bad_corrupt(mappedB(), bad_opts);
    MatchServerOptions trunc_opts;
    trunc_opts.artifactResolver = [truncated](uint64_t) {
        return truncated;
    };
    MatchServer bad_truncated(mappedB(), trunc_opts);
    MatchServer good(mappedA());

    Replicator repl({{"127.0.0.1", bad_corrupt.port()},
                     {"127.0.0.1", bad_truncated.port()},
                     {"127.0.0.1", good.port()}});
    std::vector<uint8_t> bytes = repl.fetchBytes(fp);
    EXPECT_EQ(persist::artifactFingerprint(
                  *persist::loadArtifactBytes(bytes).automaton),
              fp);
    EXPECT_EQ(repl.stats().fetchFailures, 2u);
    EXPECT_EQ(repl.stats().fetchSuccesses, 1u);
}

TEST(ClusterReplication, TwoServerFingerprintOnlyStartServesOracle)
{
    TempDir dir;
    // Server A: the only node that has (an artifact of) the ruleset.
    std::string path = dir.str("a.caa");
    persist::saveArtifact(path, mappedA());
    auto serverA = MatchServer::fromArtifact(path);
    uint64_t fp = persist::artifactFingerprint(mappedA());
    ASSERT_EQ(serverA->fingerprint(), fp);

    // Server B: started from nothing but the fingerprint + a peer.
    Replicator repl({{"127.0.0.1", serverA->port()}});
    ArtifactCache cacheB(dir.str("cache_b"));
    cacheB.setRemoteFetcher(repl.cacheFetcher());
    persist::LoadedArtifact loaded = cacheB.getOrFetch(fp);
    MatchServer serverB(loaded.automaton);
    EXPECT_EQ(serverB.fingerprint(), fp);
    EXPECT_EQ(cacheB.stats().remoteFills, 1u);

    // B serves reports byte-identical to the oracle (and to A).
    std::vector<uint8_t> input = sampleInput(32 << 10, 7);
    std::vector<Report> expect = oracleReports(mappedA(), input);
    EXPECT_EQ(matchOver(serverB.port(), input), expect);
    EXPECT_EQ(matchOver(serverA->port(), input), expect);

    // A restart of B is a pure local cache hit — no peer traffic.
    uint64_t queries_before = serverA->stats().artifactQueries;
    (void)cacheB.getOrFetch(fp);
    EXPECT_EQ(serverA->stats().artifactQueries, queries_before);
}

// --- Hot swap -----------------------------------------------------------

TEST(ClusterSwap, InProcessSwapDrainsOldEpochAndServesNew)
{
    MatchServer server(mappedA());
    uint64_t fpA = persist::artifactFingerprint(mappedA());
    uint64_t fpB = persist::artifactFingerprint(mappedB());
    std::vector<uint8_t> input = sampleInput(64 << 10, 11);

    // A stream opened before the swap, half-fed...
    MatchClient early;
    early.connect("127.0.0.1", server.port());
    uint32_t stream = early.openStream();
    size_t half = input.size() / 2;
    early.send(stream, input.data(), half);
    early.flush(stream);

    auto mappedBShared = std::make_shared<const MappedAutomaton>(
        mapPerformance(compileRuleset({"fish", "bir+d", "ow[l7]"})));
    MatchServer::SwapResult r = server.swap(mappedBShared);
    EXPECT_TRUE(r.swapped);
    EXPECT_EQ(r.oldFingerprint, fpA);
    EXPECT_EQ(r.newFingerprint, fpB);
    EXPECT_EQ(server.fingerprint(), fpB);
    EXPECT_EQ(server.epoch(), r.epoch);

    // ...keeps matching the OLD ruleset to the end: the whole report
    // stream equals the old-automaton oracle, with no new-ruleset
    // reports mixed in.
    early.send(stream, input.data() + half, input.size() - half);
    early.flush(stream);
    net::StreamSummary sum = early.closeStream(stream);
    EXPECT_EQ(sum.symbols, input.size());
    EXPECT_EQ(early.takeReports(stream), oracleReports(mappedA(), input));
    early.close();

    // Streams opened after the swap match the new ruleset.
    EXPECT_EQ(matchOver(server.port(), input),
              oracleReports(mappedB(), input));

    // With the early stream closed, the old epoch gets reaped — and the
    // runtime totals stay cumulative across the generations.
    MatchServer::SwapResult again = server.swap(mappedBShared);
    EXPECT_FALSE(again.swapped); // also exercises the no-op path
    runtime::ServerStats totals = server.streamStats();
    EXPECT_EQ(totals.sessionsOpened, 2u);
    EXPECT_EQ(totals.sessionsClosed, 2u);
    EXPECT_EQ(totals.symbols, 2 * input.size());
}

TEST(ClusterSwap, AdminSwapBySourcePathUnderLiveLoad)
{
    TempDir dir;
    std::string pathB = dir.str("b.caa");
    persist::saveArtifact(pathB, mappedB());

    MatchServerOptions opts;
    opts.adminEnabled = true;
    MatchServer server(mappedA(), opts);
    ASSERT_NE(server.adminPort(), 0);
    uint64_t fpA = persist::artifactFingerprint(mappedA());
    uint64_t fpB = persist::artifactFingerprint(mappedB());
    std::vector<uint8_t> input = sampleInput(32 << 10, 13);

    // Live load: a match-plane stream is mid-flight through the swap.
    MatchClient live;
    live.connect("127.0.0.1", server.port());
    uint32_t stream = live.openStream();
    size_t half = input.size() / 2;
    live.send(stream, input.data(), half);

    MatchClient admin;
    admin.connect("127.0.0.1", server.adminPort());
    net::SwapOutcome out = admin.requestSwap(0, pathB);
    EXPECT_EQ(out.status, SwapStatus::Swapped);
    EXPECT_EQ(out.oldFingerprint, fpA);
    EXPECT_EQ(out.newFingerprint, fpB);
    EXPECT_EQ(admin.serverFingerprint(), fpB);

    // Swapping again to the same artifact is a no-op.
    net::SwapOutcome noop = admin.requestSwap(fpB, pathB);
    EXPECT_EQ(noop.status, SwapStatus::Unchanged);
    admin.close();

    // The live stream drained on the old ruleset, zero drops.
    live.send(stream, input.data() + half, input.size() - half);
    live.flush(stream);
    net::StreamSummary sum = live.closeStream(stream);
    EXPECT_EQ(sum.symbols, input.size());
    EXPECT_EQ(live.takeReports(stream), oracleReports(mappedA(), input));
    live.close();

    EXPECT_EQ(matchOver(server.port(), input),
              oracleReports(mappedB(), input));
    net::NetServerStats s = server.stats();
    EXPECT_EQ(s.swapsCompleted, 1u);
    EXPECT_EQ(s.slowConsumerDrops, 0u);
    EXPECT_EQ(s.protocolErrors, 0u);
}

TEST(ClusterSwap, MatchPlaneSwapIsDenied)
{
    TempDir dir;
    std::string pathB = dir.str("b.caa");
    persist::saveArtifact(pathB, mappedB());

    MatchServerOptions opts;
    opts.adminEnabled = true;
    MatchServer server(mappedA(), opts);
    uint64_t fpA = server.fingerprint();

    MatchClient client;
    client.connect("127.0.0.1", server.port()); // match plane, not admin
    EXPECT_THROW(client.requestSwap(0, pathB), CaError);
    client.close();

    // Nothing swapped; the server still serves the original ruleset.
    EXPECT_EQ(server.fingerprint(), fpA);
    EXPECT_EQ(server.epoch(), 1u);
    std::vector<uint8_t> input = sampleInput(8 << 10, 17);
    EXPECT_EQ(matchOver(server.port(), input),
              oracleReports(mappedA(), input));
}

TEST(ClusterSwap, FailedSwapReportsReasonAndKeepsServing)
{
    MatchServerOptions opts;
    opts.adminEnabled = true;
    MatchServer server(mappedA(), opts);
    uint64_t fpA = server.fingerprint();

    MatchClient admin;
    admin.connect("127.0.0.1", server.adminPort());
    net::SwapOutcome out =
        admin.requestSwap(0, "/nonexistent/ruleset.caa");
    EXPECT_EQ(out.status, SwapStatus::Failed);
    EXPECT_FALSE(out.message.empty());
    EXPECT_EQ(out.oldFingerprint, fpA);

    // The admin connection survives a failed swap and can retry.
    net::SwapOutcome out2 = admin.requestSwap(0, "/still/wrong.caa");
    EXPECT_EQ(out2.status, SwapStatus::Failed);
    admin.close();

    EXPECT_EQ(server.fingerprint(), fpA);
    EXPECT_EQ(server.stats().swapsFailed, 2u);
    std::vector<uint8_t> input = sampleInput(8 << 10, 19);
    EXPECT_EQ(matchOver(server.port(), input),
              oracleReports(mappedA(), input));
}

TEST(ClusterSwap, SwapByFingerprintPullsThroughSwapLoader)
{
    // Peer topology: admin asks server (which serves A) to swap to B's
    // fingerprint; the server's swapLoader pulls B from the donor peer.
    MatchServer donor(mappedB());
    uint64_t fpB = persist::artifactFingerprint(mappedB());

    Replicator repl({{"127.0.0.1", donor.port()}});
    MatchServerOptions opts;
    opts.adminEnabled = true;
    opts.swapLoader = [&repl](uint64_t fp,
                              const std::string &) {
        return repl.fetch(fp);
    };
    MatchServer server(mappedA(), opts);

    MatchClient admin;
    admin.connect("127.0.0.1", server.adminPort());
    net::SwapOutcome out = admin.requestSwap(fpB);
    EXPECT_EQ(out.status, SwapStatus::Swapped);
    EXPECT_EQ(out.newFingerprint, fpB);
    admin.close();

    EXPECT_EQ(server.fingerprint(), fpB);
    std::vector<uint8_t> input = sampleInput(8 << 10, 23);
    EXPECT_EQ(matchOver(server.port(), input),
              oracleReports(mappedB(), input));
}

// --- Observability of the cluster plane ---------------------------------

TEST(ClusterObservability, UnpinnedClientSeesServingFingerprint)
{
    MatchServer server(mappedA());
    uint64_t fpA = server.fingerprint();
    ASSERT_NE(fpA, 0u);

    // No --fingerprint pinning: the HELLO fingerprint must still
    // surface, so clients can log what they matched against.
    MatchClient client;
    client.connect("127.0.0.1", server.port());
    EXPECT_EQ(client.serverFingerprint(), fpA);
    client.close();

    auto mappedBShared = std::make_shared<const MappedAutomaton>(
        mapPerformance(compileRuleset({"fish", "bir+d", "ow[l7]"})));
    server.swap(mappedBShared);

    // A post-swap connection (still unpinned) sees the new identity...
    MatchClient later;
    later.connect("127.0.0.1", server.port());
    EXPECT_EQ(later.serverFingerprint(), server.fingerprint());
    EXPECT_NE(later.serverFingerprint(), fpA);
    later.close();

    // ...while pinning to the retired fingerprint is now rejected.
    MatchClient pinned;
    ClientOptions copts;
    copts.expectedFingerprint = fpA;
    EXPECT_THROW(pinned.connect("127.0.0.1", server.port(), copts),
                 CaError);
}

TEST(ClusterObservability, StatsCarryEpochFingerprintAndClusterCounters)
{
    MatchServerOptions opts;
    opts.adminEnabled = true;
    MatchServer server(mappedA(), opts);
    uint64_t fpA = persist::artifactFingerprint(mappedA());

    // Pull the artifact once so the artifact counters move.
    MatchClient puller;
    puller.connect("127.0.0.1", server.port());
    (void)puller.fetchArtifact(fpA);
    puller.close();

    // Keep one pre-swap stream open so an epoch is draining during the
    // stats poll.
    MatchClient live;
    live.connect("127.0.0.1", server.port());
    uint32_t stream = live.openStream();
    live.send(stream, reinterpret_cast<const uint8_t *>("catfish"), 7);
    live.flush(stream);

    auto mappedBShared = std::make_shared<const MappedAutomaton>(
        mapPerformance(compileRuleset({"fish", "bir+d", "ow[l7]"})));
    MatchServer::SwapResult r = server.swap(mappedBShared);
    ASSERT_TRUE(r.swapped);

    MatchClient poll;
    poll.connect("127.0.0.1", server.port());
    net::StatsReplyBody b = poll.requestStats();
    poll.close();

    EXPECT_EQ(b.totals.epoch, r.epoch);
    EXPECT_EQ(b.totals.automatonFp, r.newFingerprint);
    EXPECT_EQ(b.totals.epochsDraining, 1u);
    EXPECT_EQ(b.totals.swapsCompleted, 1u);
    EXPECT_GE(b.totals.artifactQueries, 1u);
    EXPECT_GE(b.totals.artifactChunksServed, 1u);
    // The draining epoch's session is visible in the Sessions table.
    bool found = false;
    for (const runtime::SessionLiveStats &s : b.sessions)
        if (!s.closed)
            found = true;
    EXPECT_TRUE(found);

    live.closeStream(stream);
    live.close();
}

} // namespace
} // namespace ca
