/**
 * @file
 * Unit tests for the NFA IR and structural analyses.
 */
#include <gtest/gtest.h>

#include "core/error.h"
#include "nfa/analysis.h"
#include "nfa/nfa.h"

namespace ca {
namespace {

Nfa
chain(int n, bool report_last = true)
{
    Nfa nfa;
    for (int i = 0; i < n; ++i) {
        nfa.addState(SymbolSet::of(static_cast<uint8_t>('a' + i % 26)),
                     i == 0 ? StartType::AllInput : StartType::None,
                     report_last && i == n - 1);
    }
    for (int i = 0; i + 1 < n; ++i)
        nfa.addTransition(i, i + 1);
    return nfa;
}

TEST(Nfa, AddStateAndTransition)
{
    Nfa nfa = chain(3);
    EXPECT_EQ(nfa.numStates(), 3u);
    EXPECT_EQ(nfa.numTransitions(), 2u);
    EXPECT_EQ(nfa.startStates().size(), 1u);
    EXPECT_EQ(nfa.reportStates().size(), 1u);
}

TEST(Nfa, DedupeEdges)
{
    Nfa nfa = chain(2);
    nfa.addTransition(0, 1);
    nfa.addTransition(0, 1);
    EXPECT_EQ(nfa.numTransitions(), 3u);
    nfa.dedupeEdges();
    EXPECT_EQ(nfa.numTransitions(), 1u);
}

// Regression: a state's *first* edge carrying a nonzero weight must
// materialize the weight vector — an earlier version backfilled zeros
// before the push and silently dropped the weight.
TEST(Nfa, FirstWeightedEdgeKeepsItsWeight)
{
    Nfa nfa = chain(3);
    Nfa fresh;
    StateId a = fresh.addState(nfa.state(0).label, StartType::AllInput);
    StateId b = fresh.addState(nfa.state(1).label);
    StateId c = fresh.addState(nfa.state(2).label);
    fresh.addTransition(a, b, 2);  // first edge of a: nonzero weight
    fresh.addTransition(a, c, -1);
    fresh.addTransition(b, c, 0);  // zero stays unmaterialized
    EXPECT_EQ(fresh.edgeWeight(a, 0), 2);
    EXPECT_EQ(fresh.edgeWeight(a, 1), -1);
    EXPECT_TRUE(fresh.state(b).outWeight.empty());
    EXPECT_TRUE(fresh.hasWeights());
    fresh.dedupeEdges();
    EXPECT_EQ(fresh.edgeWeight(a, 0), 2);
    EXPECT_EQ(fresh.edgeWeight(a, 1), -1);
}

TEST(Nfa, PredecessorsLazyAndCorrect)
{
    Nfa nfa = chain(4);
    nfa.addTransition(0, 2);
    nfa.dedupeEdges();
    EXPECT_EQ(nfa.predecessors(0).size(), 0u);
    EXPECT_EQ(nfa.predecessors(1).size(), 1u);
    ASSERT_EQ(nfa.predecessors(2).size(), 2u);
}

TEST(Nfa, PredecessorsInvalidatedByMutation)
{
    Nfa nfa = chain(3);
    EXPECT_EQ(nfa.predecessors(2).size(), 1u);
    nfa.addTransition(0, 2);
    EXPECT_EQ(nfa.predecessors(2).size(), 2u);
}

TEST(Nfa, StatsAggregates)
{
    Nfa nfa = chain(5);
    nfa.addTransition(0, 2);
    nfa.addTransition(0, 3);
    nfa.dedupeEdges();
    NfaStats st = nfa.stats();
    EXPECT_EQ(st.numStates, 5u);
    EXPECT_EQ(st.numTransitions, 6u);
    EXPECT_EQ(st.maxFanOut, 3u); // state 0 -> {1,2,3}
    EXPECT_EQ(st.maxFanIn, 2u);  // states 2 and 3 each have two in-edges
    EXPECT_DOUBLE_EQ(st.avgFanOut, 6.0 / 5.0);
}

TEST(Nfa, ValidatePassesOnWellFormed)
{
    EXPECT_NO_THROW(chain(10).validate());
}

TEST(Nfa, ValidateRejectsNoStart)
{
    Nfa nfa;
    nfa.addState(SymbolSet::of('a'));
    EXPECT_THROW(nfa.validate(), CaError);
}

TEST(Nfa, ValidateRejectsUnreachableReport)
{
    Nfa nfa = chain(2);
    nfa.addState(SymbolSet::of('z'), StartType::None, /*report=*/true);
    EXPECT_THROW(nfa.validate(), CaError);
}

TEST(Nfa, ValidateRejectsDuplicateEdges)
{
    Nfa nfa = chain(2);
    nfa.addTransition(0, 1); // duplicate, not deduped
    EXPECT_THROW(nfa.validate(), CaError);
}

TEST(Nfa, MergeRemapsIds)
{
    Nfa a = chain(3);
    Nfa b = chain(2);
    StateId offset = a.merge(b);
    EXPECT_EQ(offset, 3u);
    EXPECT_EQ(a.numStates(), 5u);
    EXPECT_EQ(a.numTransitions(), 3u);
    // b's edge 0->1 became 3->4.
    EXPECT_EQ(a.state(3).out.at(0), 4u);
    EXPECT_NO_THROW(a.validate());
}

TEST(Nfa, SubAutomatonCompactsAndFilters)
{
    Nfa nfa = chain(4);
    Nfa sub = nfa.subAutomaton({0, 1, 3});
    EXPECT_EQ(sub.numStates(), 3u);
    // Edge 1->2 dropped (2 excluded); 2->3 dropped; only 0->1 remains.
    EXPECT_EQ(sub.numTransitions(), 1u);
}

// ---------------------------------------------------------------- analysis

TEST(Analysis, SingleComponentChain)
{
    Nfa nfa = chain(6);
    ComponentInfo cc = connectedComponents(nfa);
    EXPECT_EQ(cc.numComponents(), 1u);
    EXPECT_EQ(cc.largestSize(), 6u);
}

TEST(Analysis, DisjointComponents)
{
    Nfa a = chain(3);
    a.merge(chain(4));
    a.merge(chain(2));
    ComponentInfo cc = connectedComponents(a);
    EXPECT_EQ(cc.numComponents(), 3u);
    EXPECT_EQ(cc.largestSize(), 4u);
    // Membership covers every state exactly once.
    size_t total = 0;
    for (const auto &m : cc.members)
        total += m.size();
    EXPECT_EQ(total, a.numStates());
}

TEST(Analysis, ComponentsAreUndirected)
{
    // 0 -> 1 <- 2: all one component despite no directed path 0..2.
    Nfa nfa;
    nfa.addState(SymbolSet::of('a'), StartType::AllInput);
    nfa.addState(SymbolSet::of('b'));
    nfa.addState(SymbolSet::of('c'), StartType::AllInput);
    nfa.addTransition(0, 1);
    nfa.addTransition(2, 1);
    ComponentInfo cc = connectedComponents(nfa);
    EXPECT_EQ(cc.numComponents(), 1u);
}

TEST(Analysis, ComponentIndexConsistent)
{
    Nfa a = chain(3);
    a.merge(chain(3));
    ComponentInfo cc = connectedComponents(a);
    for (uint32_t c = 0; c < cc.numComponents(); ++c)
        for (StateId s : cc.members[c])
            EXPECT_EQ(cc.component[s], c);
}

TEST(Analysis, ReachableCount)
{
    Nfa nfa = chain(5);
    EXPECT_EQ(reachableCount(nfa, 0), 5u);
    EXPECT_EQ(reachableCount(nfa, 4), 1u);
}

TEST(Analysis, ReachableCountWithCycle)
{
    Nfa nfa = chain(3);
    nfa.addTransition(2, 0);
    nfa.dedupeEdges();
    EXPECT_EQ(reachableCount(nfa, 2), 3u);
}

TEST(Analysis, AverageReachableSet)
{
    Nfa nfa = chain(4);
    // Reachable sets: 4, 3, 2, 1 -> avg 2.5.
    EXPECT_DOUBLE_EQ(averageReachableSet(nfa), 2.5);
}

} // namespace
} // namespace ca
