/**
 * @file
 * Tests for the simulator's incremental streaming API and the §2.9
 * suspend/resume checkpoint model.
 */
#include <gtest/gtest.h>

#include "baseline/nfa_engine.h"
#include "core/error.h"
#include "compiler/mapping.h"
#include "nfa/glushkov.h"
#include "sim/engine.h"
#include "workload/input_gen.h"

namespace ca {
namespace {

MappedAutomaton
sampleMapped()
{
    Nfa nfa = compileRuleset({"cat", "do+g", "[hx]at"});
    return mapPerformance(nfa);
}

std::vector<uint8_t>
sampleInput(size_t bytes, uint64_t seed)
{
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"cat", "dog", "hat"};
    spec.plantsPer4k = 32.0;
    return buildInput(spec, bytes, seed);
}

TEST(Streaming, ChunkedFeedEqualsSingleRun)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(16 << 10, 3);

    CacheAutomatonSim whole(m);
    SimResult expect = whole.run(input);

    CacheAutomatonSim chunked(m);
    chunked.reset();
    size_t pos = 0;
    // Deliberately odd chunk sizes, including empty chunks. size_t
    // literals keep std::min's arguments the same type everywhere
    // (unsigned literals deduce a narrower type on LLP64/32-bit).
    for (size_t chunk : {size_t{1000}, size_t{1}, size_t{0},
                         size_t{4096}, size_t{37}}) {
        size_t n = std::min(chunk, input.size() - pos);
        chunked.feed(input.data() + pos, n);
        pos += n;
    }
    chunked.feed(input.data() + pos, input.size() - pos);
    SimResult got = chunked.result();

    EXPECT_EQ(got.reports, expect.reports);
    EXPECT_EQ(got.symbols, expect.symbols);
    EXPECT_EQ(got.totalActiveStates, expect.totalActiveStates);
    EXPECT_EQ(got.totalActivePartitionCycles,
              expect.totalActivePartitionCycles);
    EXPECT_EQ(got.cycles, expect.cycles);
}

TEST(Streaming, EmptyInputYieldsEmptyResult)
{
    MappedAutomaton m = sampleMapped();
    CacheAutomatonSim sim(m);
    SimResult direct = sim.run(nullptr, 0);
    EXPECT_EQ(direct.symbols, 0u);
    EXPECT_EQ(direct.cycles, 0u);
    EXPECT_TRUE(direct.reports.empty());

    // An explicit empty feed() is a no-op too.
    sim.reset();
    sim.feed(nullptr, 0);
    SimResult fed = sim.result();
    EXPECT_EQ(fed.symbols, 0u);
    EXPECT_TRUE(fed.reports.empty());
}

TEST(Streaming, FeedAfterResultContinuesTheStream)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(8 << 10, 13);
    size_t cut = input.size() / 2;

    CacheAutomatonSim whole(m);
    SimResult expect = whole.run(input);

    // result() is a snapshot, not a terminator: feeding afterwards must
    // continue the same stream.
    CacheAutomatonSim sim(m);
    sim.reset();
    sim.feed(input.data(), cut);
    SimResult mid = sim.result();
    EXPECT_EQ(mid.symbols, cut);
    sim.feed(input.data() + cut, input.size() - cut);
    SimResult full = sim.result();
    EXPECT_EQ(full.reports, expect.reports);
    EXPECT_EQ(full.symbols, expect.symbols);
    EXPECT_EQ(full.cycles, expect.cycles);
}

TEST(Streaming, ResultIsIdempotent)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(4 << 10, 5);
    CacheAutomatonSim sim(m);
    sim.reset();
    sim.feed(input.data(), input.size());
    SimResult a = sim.result();
    SimResult b = sim.result();
    EXPECT_EQ(a.reports, b.reports);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Checkpoint, ResumeContinuesExactly)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(16 << 10, 7);
    size_t cut = input.size() / 3;

    CacheAutomatonSim whole(m);
    SimResult expect = whole.run(input);

    // Process the head, suspend, restore into a *fresh* simulator.
    CacheAutomatonSim head(m);
    head.reset();
    head.feed(input.data(), cut);
    SimResult head_res = head.result();
    SimCheckpoint ckpt = head.checkpoint();
    EXPECT_EQ(ckpt.symbolOffset, cut);

    CacheAutomatonSim tail(m);
    tail.restore(ckpt);
    tail.feed(input.data() + cut, input.size() - cut);
    SimResult tail_res = tail.result();

    // Stitching head + tail reports reproduces the single run.
    std::vector<Report> stitched = head_res.reports;
    stitched.insert(stitched.end(), tail_res.reports.begin(),
                    tail_res.reports.end());
    EXPECT_EQ(stitched, expect.reports);
    // Offsets in the tail are absolute, not chunk-relative.
    if (!tail_res.reports.empty()) {
        EXPECT_GE(tail_res.reports.front().offset, cut);
    }
}

TEST(Checkpoint, RoundTripAtEveryBoundary)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(2 << 10, 9);
    CacheAutomatonSim whole(m);
    SimResult expect = whole.run(input);

    for (size_t cut : {size_t{0}, size_t{1}, input.size() / 2,
                       input.size() - 1, input.size()}) {
        CacheAutomatonSim a(m);
        a.reset();
        a.feed(input.data(), cut);
        SimCheckpoint ckpt = a.checkpoint();
        CacheAutomatonSim b(m);
        b.restore(ckpt);
        b.feed(input.data() + cut, input.size() - cut);
        std::vector<Report> stitched = a.result().reports;
        auto tail = b.result().reports;
        stitched.insert(stitched.end(), tail.begin(), tail.end());
        EXPECT_EQ(stitched, expect.reports) << "cut at " << cut;
    }
}

TEST(Checkpoint, InvalidStateRejected)
{
    MappedAutomaton m = sampleMapped();
    CacheAutomatonSim sim(m);
    SimCheckpoint bogus;
    bogus.enabledStates = {static_cast<StateId>(1u << 30)};
    EXPECT_THROW(sim.restore(bogus), CaError);
}

TEST(Checkpoint, FreshCheckpointEqualsReset)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(2 << 10, 11);
    CacheAutomatonSim a(m);
    SimCheckpoint ckpt = a.checkpoint(); // offset 0, start states
    CacheAutomatonSim b(m);
    b.restore(ckpt);
    b.feed(input.data(), input.size());
    CacheAutomatonSim c(m);
    EXPECT_EQ(b.result().reports, c.run(input).reports);
}

// Suspend/resume at offsets NOT aligned to fifoRefillSymbols: the FIFO
// refill counter is keyed to the *absolute* stream offset, so the head
// and tail counts must sum to the straight run's count (no double-fetch
// at the cut, no missed refill after it), and report offsets must stay
// absolute — under both execution kernels.
TEST(Checkpoint, UnalignedCutPreservesFifoRefills)
{
    MappedAutomaton m = sampleMapped();
    auto input = sampleInput(4 << 10, 21);

    SimOptions base;
    base.fifoRefillSymbols = 64;
    CacheAutomatonSim whole(m, base);
    SimResult expect = whole.run(input);
    ASSERT_GT(expect.fifoRefills, 0u);

    for (SimKernel k : {SimKernel::Sparse, SimKernel::Dense}) {
        SimOptions opts = base;
        opts.kernel = k;
        // Mid-refill-batch cuts: none is a multiple of 64.
        for (size_t cut : {size_t{1}, size_t{63}, size_t{65},
                           size_t{1000}, input.size() - 7}) {
            ASSERT_NE(cut % 64, 0u);
            CacheAutomatonSim head(m, opts);
            head.reset();
            head.feed(input.data(), cut);
            SimCheckpoint ckpt = head.checkpoint();
            CacheAutomatonSim tail(m, opts);
            tail.restore(ckpt);
            tail.feed(input.data() + cut, input.size() - cut);

            SimResult h = head.result();
            SimResult t = tail.result();
            EXPECT_EQ(h.fifoRefills + t.fifoRefills, expect.fifoRefills)
                << "kernel " << static_cast<int>(k) << " cut " << cut;
            std::vector<Report> stitched = h.reports;
            stitched.insert(stitched.end(), t.reports.begin(),
                            t.reports.end());
            EXPECT_EQ(stitched, expect.reports)
                << "kernel " << static_cast<int>(k) << " cut " << cut;
        }
    }
}

// Property: random cut points on a randomized workload resume exactly.
class CheckpointProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CheckpointProperty, ResumeMatchesOracle)
{
    Rng rng(GetParam() * 52361 + 19);
    Nfa nfa = compileRuleset({"ab+c", "x[yz]{1,3}w", "m.*n"});
    MappedAutomaton m = mapSpace(nfa);
    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = {"abc", "xyw", "mn"};
    spec.plantsPer4k = 24.0;
    auto input = buildInput(spec, 8 << 10, GetParam());

    size_t cut = rng.below(input.size() + 1);
    CacheAutomatonSim a(m);
    a.reset();
    a.feed(input.data(), cut);
    SimCheckpoint ckpt = a.checkpoint();
    CacheAutomatonSim b(m);
    b.restore(ckpt);
    b.feed(input.data() + cut, input.size() - cut);

    NfaEngine oracle(m.nfa());
    std::vector<Report> stitched = a.result().reports;
    auto tail = b.result().reports;
    stitched.insert(stitched.end(), tail.begin(), tail.end());
    EXPECT_EQ(stitched, oracle.run(input)) << "cut at " << cut;
}

INSTANTIATE_TEST_SUITE_P(RandomCuts, CheckpointProperty,
                         ::testing::Range(0, 15));

} // namespace
} // namespace ca
