/**
 * @file
 * Tests for the graph IR and the multilevel k-way partitioner.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "core/error.h"
#include "core/rng.h"
#include "nfa/glushkov.h"
#include "partition/graph.h"
#include "partition/partitioner.h"

namespace ca {
namespace {

/** A ring of n vertices with unit weights. */
Graph
ring(int32_t n)
{
    Graph g;
    g.vwgt.assign(n, 1);
    g.xadj.push_back(0);
    for (int32_t v = 0; v < n; ++v) {
        g.adjncy.push_back((v + n - 1) % n);
        g.adjwgt.push_back(1);
        g.adjncy.push_back((v + 1) % n);
        g.adjwgt.push_back(1);
        g.xadj.push_back(static_cast<int32_t>(g.adjncy.size()));
    }
    return g;
}

/** Two dense cliques of size n joined by a single bridge edge. */
Graph
twoCliques(int32_t n)
{
    int32_t total = 2 * n;
    std::vector<std::vector<int32_t>> adj(total);
    auto connect = [&](int32_t a, int32_t b) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    };
    for (int32_t c = 0; c < 2; ++c)
        for (int32_t i = 0; i < n; ++i)
            for (int32_t j = i + 1; j < n; ++j)
                connect(c * n + i, c * n + j);
    connect(0, n); // bridge

    Graph g;
    g.vwgt.assign(total, 1);
    g.xadj.push_back(0);
    for (int32_t v = 0; v < total; ++v) {
        for (int32_t u : adj[v]) {
            g.adjncy.push_back(u);
            g.adjwgt.push_back(1);
        }
        g.xadj.push_back(static_cast<int32_t>(g.adjncy.size()));
    }
    return g;
}

TEST(Graph, ValidateAcceptsRing)
{
    EXPECT_NO_THROW(ring(10).validate());
}

TEST(Graph, ValidateCatchesAsymmetry)
{
    Graph g;
    g.vwgt = {1, 1};
    g.xadj = {0, 1, 1};
    g.adjncy = {1};
    g.adjwgt = {1};
    EXPECT_THROW(g.validate(), CaError);
}

TEST(Graph, FromNfaComponentSymmetrizes)
{
    Nfa nfa = compileRuleset({"abc"});
    std::vector<StateId> members = {0, 1, 2};
    Graph g = Graph::fromNfaComponent(nfa, members);
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.numVertices(), 3);
    // Chain: edges (0,1), (1,2) undirected -> 4 CSR entries.
    EXPECT_EQ(g.adjncy.size(), 4u);
}

TEST(Graph, AntiParallelEdgesGetWeightTwo)
{
    Nfa nfa;
    nfa.addState(SymbolSet::of('a'), StartType::AllInput);
    nfa.addState(SymbolSet::of('b'));
    nfa.addTransition(0, 1);
    nfa.addTransition(1, 0);
    Graph g = Graph::fromNfaComponent(nfa, {0, 1});
    ASSERT_EQ(g.adjwgt.size(), 2u);
    EXPECT_EQ(g.adjwgt[0], 2);
}

TEST(Graph, SelfLoopsDropped)
{
    Nfa nfa;
    nfa.addState(SymbolSet::of('a'), StartType::AllInput);
    nfa.addTransition(0, 0);
    Graph g = Graph::fromNfaComponent(nfa, {0});
    EXPECT_EQ(g.adjncy.size(), 0u);
}

TEST(Partitioner, KOneIsTrivial)
{
    Graph g = ring(16);
    PartitionResult res = partitionGraph(g, 1);
    EXPECT_EQ(res.edgeCut, 0);
    for (int32_t p : res.part)
        EXPECT_EQ(p, 0);
}

TEST(Partitioner, InvalidKThrows)
{
    EXPECT_THROW(partitionGraph(ring(4), 0), CaError);
}

TEST(Partitioner, RingBisectionCutsTwoEdges)
{
    Graph g = ring(64);
    PartitionResult res = partitionGraph(g, 2);
    // Optimal ring bisection cuts exactly 2 edges; allow tiny slack.
    EXPECT_LE(res.edgeCut, 4);
    EXPECT_EQ(res.partWeights[0] + res.partWeights[1], 64);
    EXPECT_NEAR(res.partWeights[0], 32, 4);
}

TEST(Partitioner, TwoCliquesSplitAtBridge)
{
    Graph g = twoCliques(20);
    PartitionResult res = partitionGraph(g, 2);
    EXPECT_EQ(res.edgeCut, 1) << "should cut only the bridge";
    EXPECT_EQ(res.partWeights[0], 20);
    EXPECT_EQ(res.partWeights[1], 20);
}

TEST(Partitioner, EdgeCutMatchesRecomputation)
{
    Graph g = ring(50);
    PartitionResult res = partitionGraph(g, 4);
    EXPECT_EQ(res.edgeCut, computeEdgeCut(g, res.part));
}

TEST(Partitioner, CapacityRespected)
{
    Graph g = ring(100);
    PartitionOptions opts;
    opts.partCapacity = 30;
    PartitionResult res = partitionGraph(g, 4, opts);
    for (int64_t w : res.partWeights)
        EXPECT_LE(w, 30);
}

TEST(Partitioner, InfeasibleCapacityThrows)
{
    Graph g = ring(100);
    PartitionOptions opts;
    opts.partCapacity = 10;
    EXPECT_THROW(partitionGraph(g, 4, opts), CaError); // 100 > 4*10
}

TEST(Partitioner, DeterministicForFixedSeed)
{
    Graph g = twoCliques(15);
    PartitionOptions opts;
    opts.seed = 77;
    PartitionResult a = partitionGraph(g, 2, opts);
    PartitionResult b = partitionGraph(g, 2, opts);
    EXPECT_EQ(a.part, b.part);
}

TEST(Partitioner, AllPartsNonEmptyOnLargeGraph)
{
    Graph g = ring(256);
    PartitionResult res = partitionGraph(g, 8);
    for (int64_t w : res.partWeights)
        EXPECT_GT(w, 0);
}

// Property: random graphs partition within balance and the cut matches.
class PartitionProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PartitionProperty, BalancedAndConsistent)
{
    Rng rng(GetParam() * 31337 + 1);
    int32_t n = 64 + static_cast<int32_t>(rng.below(256));
    // Random connected graph: spanning chain + extra edges.
    std::vector<std::pair<int32_t, int32_t>> edges;
    for (int32_t v = 1; v < n; ++v)
        edges.emplace_back(static_cast<int32_t>(rng.below(v)), v);
    int32_t extra = n / 2;
    for (int32_t i = 0; i < extra; ++i) {
        int32_t a = static_cast<int32_t>(rng.below(n));
        int32_t b = static_cast<int32_t>(rng.below(n));
        if (a != b)
            edges.emplace_back(std::min(a, b), std::max(a, b));
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    std::vector<std::vector<int32_t>> adj(n);
    for (auto [a, b] : edges) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    Graph g;
    g.vwgt.assign(n, 1);
    g.xadj.push_back(0);
    for (int32_t v = 0; v < n; ++v) {
        for (int32_t u : adj[v]) {
            g.adjncy.push_back(u);
            g.adjwgt.push_back(1);
        }
        g.xadj.push_back(static_cast<int32_t>(g.adjncy.size()));
    }
    g.validate();

    int32_t k = 2 + static_cast<int32_t>(rng.below(6));
    PartitionOptions opts;
    opts.seed = GetParam();
    opts.partCapacity = (n + k - 1) / k + n / 4 + 2;
    PartitionResult res = partitionGraph(g, k, opts);

    int64_t total = 0;
    for (int64_t w : res.partWeights) {
        EXPECT_LE(w, opts.partCapacity);
        total += w;
    }
    EXPECT_EQ(total, n);
    EXPECT_EQ(res.edgeCut, computeEdgeCut(g, res.part));
    for (int32_t p : res.part) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, k);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PartitionProperty,
                         ::testing::Range(0, 20));

TEST(Partitioner, PeelModeFillsToCapacity)
{
    // A 1000-vertex ring peeled at capacity 256: every part stays within
    // capacity and the peeled parts fill to near-capacity (the FM trim
    // lands within a few vertices of full).
    Graph g = ring(1000);
    PartitionOptions opts;
    opts.partCapacity = 256;
    opts.peelToCapacity = true;
    PartitionResult res = partitionGraph(g, 4, opts);
    std::vector<int64_t> weights = res.partWeights;
    std::sort(weights.begin(), weights.end());
    int64_t total = 0;
    for (int64_t w : weights) {
        EXPECT_LE(w, 256);
        EXPECT_GE(w, 230); // near-full: ~90%+ occupancy everywhere
        total += w;
    }
    EXPECT_EQ(total, 1000);
    // Ring cuts stay linear in k.
    EXPECT_LE(res.edgeCut, 2 * 4);
}

TEST(Partitioner, PeelModeRespectsCapacity)
{
    Graph g = twoCliques(140); // 280 vertices
    PartitionOptions opts;
    opts.partCapacity = 140;
    opts.peelToCapacity = true;
    PartitionResult res = partitionGraph(g, 2, opts);
    for (int64_t w : res.partWeights)
        EXPECT_LE(w, 140);
    // Peeling one capacity-sized part lands exactly on a clique, so only
    // the bridge is cut.
    EXPECT_EQ(res.edgeCut, 1);
}

TEST(Partitioner, PeelAndBalancedAgreeOnTotals)
{
    Graph g = ring(300);
    PartitionOptions bal;
    bal.partCapacity = 100;
    PartitionOptions peel = bal;
    peel.peelToCapacity = true;
    PartitionResult rb = partitionGraph(g, 3, bal);
    PartitionResult rp = partitionGraph(g, 3, peel);
    int64_t tb = 0;
    int64_t tp = 0;
    for (int64_t w : rb.partWeights)
        tb += w;
    for (int64_t w : rp.partWeights)
        tp += w;
    EXPECT_EQ(tb, 300);
    EXPECT_EQ(tp, 300);
}


} // namespace
} // namespace ca
