/**
 * @file
 * Tests for subset construction and the DFA engine, cross-checked against
 * the NFA oracle on randomized patterns and inputs.
 */
#include <gtest/gtest.h>

#include <set>

#include "baseline/dfa_engine.h"
#include "baseline/nfa_engine.h"
#include "core/error.h"
#include "nfa/dfa.h"
#include "nfa/regex_parser.h"
#include "nfa/glushkov.h"
#include "workload/input_gen.h"

namespace ca {
namespace {

std::set<std::pair<uint64_t, uint32_t>>
asSet(const std::vector<Report> &reports)
{
    std::set<std::pair<uint64_t, uint32_t>> out;
    for (const Report &r : reports)
        out.emplace(r.offset, r.reportId);
    return out;
}

TEST(Dfa, LiteralPattern)
{
    Nfa nfa = compileRuleset({"cat"});
    Dfa dfa = buildDfa(nfa);
    std::string text = "the cat sat";
    auto reports = runDfa(
        dfa, reinterpret_cast<const uint8_t *>(text.data()), text.size());
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].offset, 6u);
    EXPECT_EQ(reports[0].reportId, 0u);
}

TEST(Dfa, StartStateIsZero)
{
    Nfa nfa = compileRuleset({"ab"});
    Dfa dfa = buildDfa(nfa);
    EXPECT_EQ(dfa.startState(), 0u);
    EXPECT_GE(dfa.numStates(), 2u);
}

TEST(Dfa, TableBytesMatchesStateCount)
{
    Nfa nfa = compileRuleset({"abc"});
    Dfa dfa = buildDfa(nfa);
    EXPECT_EQ(dfa.tableBytes(), dfa.numStates() * 256 * sizeof(uint32_t));
}

TEST(Dfa, StateCapEnforced)
{
    // Unanchored a.{12}b must track 'a' offsets in a 13-symbol window:
    // the DFA needs ~2^12 states, far past the cap.
    Nfa nfa = compileRuleset({"a.{12}b"});
    EXPECT_THROW(buildDfa(nfa, 64), CaError);
}

TEST(Dfa, AnchoredPattern)
{
    GlushkovOptions opts;
    Nfa nfa = buildGlushkov(parseRegex("^ab"), opts);
    Dfa dfa = buildDfa(nfa);
    std::string hit = "abxx";
    std::string miss = "xabx";
    EXPECT_EQ(runDfa(dfa, reinterpret_cast<const uint8_t *>(hit.data()),
                     hit.size())
                  .size(),
              1u);
    EXPECT_EQ(runDfa(dfa, reinterpret_cast<const uint8_t *>(miss.data()),
                     miss.size())
                  .size(),
              0u);
}

TEST(Dfa, MultiPatternReportIds)
{
    Nfa nfa = compileRuleset({"aa", "bb", "cc"});
    Dfa dfa = buildDfa(nfa);
    std::string text = "aa bb cc";
    auto reports = runDfa(
        dfa, reinterpret_cast<const uint8_t *>(text.data()), text.size());
    ASSERT_EQ(reports.size(), 3u);
    std::set<uint32_t> ids;
    for (const auto &r : reports)
        ids.insert(r.reportId);
    EXPECT_EQ(ids, (std::set<uint32_t>{0, 1, 2}));
}

TEST(Dfa, OverlappingMatchesAllReported)
{
    Nfa nfa = compileRuleset({"aa"});
    Dfa dfa = buildDfa(nfa);
    std::string text = "aaaa";
    auto reports = runDfa(
        dfa, reinterpret_cast<const uint8_t *>(text.data()), text.size());
    EXPECT_EQ(reports.size(), 3u);
}

// Property: DFA and NFA report identical (offset, id) streams.
class DfaEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(DfaEquivalence, MatchesNfaOracle)
{
    Rng rng(GetParam() * 2654435761u + 99);
    // Every block contains at least one mandatory symbol so the combined
    // pattern never matches the empty string (which Glushkov rejects).
    static const char *kBlocks[] = {
        "ab", "cq?", "(d|e)", "[f-h]{1,2}", "[ij]+", "k",
    };
    std::vector<std::string> rules;
    int n_rules = 1 + static_cast<int>(rng.below(4));
    for (int r = 0; r < n_rules; ++r) {
        std::string pat;
        int blocks = 1 + static_cast<int>(rng.below(4));
        for (int b = 0; b < blocks; ++b)
            pat += kBlocks[rng.below(std::size(kBlocks))];
        rules.push_back(pat);
    }

    Nfa nfa = compileRuleset(rules);
    Dfa dfa = buildDfa(nfa, 1 << 14);

    InputSpec spec;
    spec.kind = StreamKind::Text;
    spec.plantPatterns = rules;
    spec.plantsPer4k = 32.0;
    auto input = buildInput(spec, 4 << 10, GetParam() + 1);

    NfaEngine oracle(nfa);
    EXPECT_EQ(asSet(runDfa(dfa, input)), asSet(oracle.run(input)));
}

INSTANTIATE_TEST_SUITE_P(RandomPatterns, DfaEquivalence,
                         ::testing::Range(0, 25));

} // namespace
} // namespace ca
