/**
 * @file
 * Tests for the classical NFA representation and homogenization.
 */
#include <gtest/gtest.h>

#include "baseline/nfa_engine.h"
#include "core/error.h"
#include "nfa/classical.h"

namespace ca {
namespace {

bool
accepts(const Nfa &nfa, const std::string &text)
{
    NfaEngine eng(nfa);
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    // Anchored acceptance: report exactly at the final symbol.
    for (const Report &r : reports)
        if (r.offset == text.size() - 1)
            return true;
    return false;
}

ClassicalNfa
literalChain(const std::string &word)
{
    ClassicalNfa c;
    uint32_t prev = c.addState();
    c.markStart(prev);
    for (size_t i = 0; i < word.size(); ++i) {
        uint32_t next = c.addState(i + 1 == word.size());
        c.addEdge(prev, next, SymbolSet::of(
            static_cast<uint8_t>(word[i])));
        prev = next;
    }
    return c;
}

TEST(Classical, LiteralChainHomogenizes)
{
    Nfa nfa = literalChain("abc").homogenize(/*anchored=*/true);
    EXPECT_EQ(nfa.numStates(), 3u);
    EXPECT_TRUE(accepts(nfa, "abc"));
    EXPECT_FALSE(accepts(nfa, "abd"));
    EXPECT_FALSE(accepts(nfa, "ab"));
    EXPECT_NO_THROW(nfa.validate());
}

TEST(Classical, UnanchoredMatchesMidStream)
{
    Nfa nfa = literalChain("ab").homogenize(/*anchored=*/false);
    NfaEngine eng(nfa);
    std::string text = "xxabxx";
    auto reports = eng.run(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].offset, 3u);
}

TEST(Classical, SharedLabelsIntoSameTargetShareOneSte)
{
    // Two edges labelled 'a' into one target produce a single STE.
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t s1 = c.addState();
    uint32_t t = c.addState(true);
    c.markStart(s0);
    c.markStart(s1);
    c.addEdge(s0, t, SymbolSet::of('a'));
    c.addEdge(s1, t, SymbolSet::of('a'));
    Nfa nfa = c.homogenize();
    EXPECT_EQ(nfa.numStates(), 1u);
    EXPECT_TRUE(accepts(nfa, "a"));
}

TEST(Classical, DistinctLabelsIntoSameTargetSplit)
{
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t t = c.addState(true);
    c.markStart(s0);
    c.addEdge(s0, t, SymbolSet::of('a'));
    c.addEdge(s0, t, SymbolSet::of('b'));
    Nfa nfa = c.homogenize();
    EXPECT_EQ(nfa.numStates(), 2u);
    EXPECT_TRUE(accepts(nfa, "a"));
    EXPECT_TRUE(accepts(nfa, "b"));
    EXPECT_FALSE(accepts(nfa, "c"));
}

TEST(Classical, EpsilonClosureEliminated)
{
    // s0 --a--> s1 --eps--> s2 --b--> s3(accept): language is "ab".
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t s1 = c.addState();
    uint32_t s2 = c.addState();
    uint32_t s3 = c.addState(true);
    c.markStart(s0);
    c.addEdge(s0, s1, SymbolSet::of('a'));
    c.addEpsilon(s1, s2);
    c.addEdge(s2, s3, SymbolSet::of('b'));
    Nfa nfa = c.homogenize();
    EXPECT_TRUE(accepts(nfa, "ab"));
    EXPECT_FALSE(accepts(nfa, "a"));
    EXPECT_FALSE(accepts(nfa, "b"));
}

TEST(Classical, EpsilonToAcceptPropagatesAcceptance)
{
    // s0 --a--> s1 --eps--> accept: "a" is accepted.
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t s1 = c.addState();
    uint32_t s2 = c.addState(true);
    c.markStart(s0);
    c.addEdge(s0, s1, SymbolSet::of('a'));
    c.addEpsilon(s1, s2);
    Nfa nfa = c.homogenize();
    EXPECT_TRUE(accepts(nfa, "a"));
}

TEST(Classical, EpsilonChainFromStart)
{
    // start --eps--> s1 --b--> accept: "b" accepted via closure of start.
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t s1 = c.addState();
    uint32_t s2 = c.addState(true);
    c.markStart(s0);
    c.addEpsilon(s0, s1);
    c.addEdge(s1, s2, SymbolSet::of('b'));
    Nfa nfa = c.homogenize();
    EXPECT_TRUE(accepts(nfa, "b"));
    EXPECT_FALSE(accepts(nfa, "a"));
}

TEST(Classical, EmptyStringAcceptanceThrows)
{
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t s1 = c.addState(true);
    c.markStart(s0);
    c.addEpsilon(s0, s1);
    EXPECT_THROW(c.homogenize(), CaError);
}

TEST(Classical, EmptyEdgeLabelRejected)
{
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t s1 = c.addState(true);
    EXPECT_THROW(c.addEdge(s0, s1, SymbolSet{}), CaError);
}

TEST(Classical, BranchingWithCycle)
{
    // (ab)+ as a classical cycle.
    ClassicalNfa c;
    uint32_t s0 = c.addState();
    uint32_t s1 = c.addState();
    uint32_t s2 = c.addState(true);
    c.markStart(s0);
    c.addEdge(s0, s1, SymbolSet::of('a'));
    c.addEdge(s1, s2, SymbolSet::of('b'));
    c.addEpsilon(s2, s0);
    Nfa nfa = c.homogenize();
    EXPECT_TRUE(accepts(nfa, "ab"));
    EXPECT_TRUE(accepts(nfa, "abab"));
    EXPECT_FALSE(accepts(nfa, "aba"));
    EXPECT_FALSE(accepts(nfa, "ba"));
}

} // namespace
} // namespace ca
