#include "partition/graph.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/error.h"

namespace ca {

int64_t
Graph::totalVertexWeight() const
{
    return std::accumulate(vwgt.begin(), vwgt.end(), int64_t{0});
}

void
Graph::validate() const
{
    const int32_t n = numVertices();
    CA_FATAL_IF(xadj.size() != static_cast<size_t>(n) + 1,
                "xadj size mismatch");
    CA_FATAL_IF(adjncy.size() != adjwgt.size(), "adjwgt size mismatch");
    CA_FATAL_IF(xadj[0] != 0 ||
                    xadj[n] != static_cast<int32_t>(adjncy.size()),
                "xadj bounds corrupt");
    for (int32_t v = 0; v < n; ++v) {
        CA_FATAL_IF(xadj[v] > xadj[v + 1], "xadj not monotone at " << v);
        for (int32_t e = xadj[v]; e < xadj[v + 1]; ++e) {
            int32_t u = adjncy[e];
            CA_FATAL_IF(u < 0 || u >= n, "neighbour out of range");
            CA_FATAL_IF(u == v, "self-loop at vertex " << v);
            // Symmetry: find v in u's list with the same weight.
            bool found = false;
            for (int32_t f = xadj[u]; f < xadj[u + 1]; ++f) {
                if (adjncy[f] == v && adjwgt[f] == adjwgt[e]) {
                    found = true;
                    break;
                }
            }
            CA_FATAL_IF(!found, "asymmetric edge " << v << "-" << u);
        }
    }
}

Graph
Graph::fromNfaComponent(const Nfa &nfa, const std::vector<StateId> &members)
{
    const int32_t n = static_cast<int32_t>(members.size());
    std::unordered_map<StateId, int32_t> local;
    local.reserve(members.size() * 2);
    for (int32_t i = 0; i < n; ++i)
        local[members[i]] = i;

    // Accumulate undirected edge weights; anti-parallel directed edges sum.
    std::vector<std::unordered_map<int32_t, int32_t>> weights(n);
    for (int32_t i = 0; i < n; ++i) {
        for (StateId t : nfa.state(members[i]).out) {
            auto it = local.find(t);
            if (it == local.end() || it->second == i)
                continue; // outside the component, or self-loop
            int32_t j = it->second;
            weights[std::min(i, j)][std::max(i, j)] += 1;
        }
    }

    Graph g;
    g.vwgt.assign(n, 1);
    g.xadj.assign(n + 1, 0);
    // First pass: degrees.
    for (int32_t i = 0; i < n; ++i) {
        for (const auto &[j, w] : weights[i]) {
            (void)w;
            ++g.xadj[i + 1];
            ++g.xadj[j + 1];
        }
    }
    for (int32_t i = 0; i < n; ++i)
        g.xadj[i + 1] += g.xadj[i];
    g.adjncy.resize(g.xadj[n]);
    g.adjwgt.resize(g.xadj[n]);
    std::vector<int32_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
    for (int32_t i = 0; i < n; ++i) {
        for (const auto &[j, w] : weights[i]) {
            g.adjncy[cursor[i]] = j;
            g.adjwgt[cursor[i]] = w;
            ++cursor[i];
            g.adjncy[cursor[j]] = i;
            g.adjwgt[cursor[j]] = w;
            ++cursor[j];
        }
    }
    return g;
}

} // namespace ca
