/**
 * @file
 * Multilevel k-way graph partitioner (METIS substitute).
 *
 * The pipeline follows Karypis & Kumar's multilevel scheme the paper cites:
 *  1. *Coarsen* with heavy-edge matching until the graph is small.
 *  2. *Initial partition* the coarsest graph with greedy region growing.
 *  3. *Uncoarsen*, projecting the partition back and running
 *     Fiduccia–Mattheyses boundary refinement at every level.
 * k-way results come from recursive bisection with weighted part targets.
 *
 * The compiler uses it to split connected components larger than one
 * 256-STE partition while minimizing inter-partition transitions (the
 * paper reports METIS keeps cuts under 16 edges per partition pair).
 */
#ifndef CA_PARTITION_PARTITIONER_H
#define CA_PARTITION_PARTITIONER_H

#include <cstdint>
#include <vector>

#include "partition/graph.h"

namespace ca {

/** Tuning knobs for the multilevel partitioner. */
struct PartitionOptions
{
    /** Allowed part weight = ceil(avg) * (1 + imbalance). */
    double imbalance = 0.05;
    /** Stop coarsening below this many vertices. */
    int32_t coarsenTo = 128;
    /** FM passes per uncoarsening level. */
    int refinementPasses = 6;
    /** Random seed (matching tie-breaks, initial growth). */
    uint64_t seed = 0xCA5EED;
    /** Hard per-part vertex-weight capacity; <=0 disables. */
    int64_t partCapacity = 0;
    /**
     * Peel mode: instead of balancing all k parts, repeatedly bisect off
     * one part filled to partCapacity. Packs maximally densely (the Cache
     * Automaton compiler's space objective) at a small edge-cut cost.
     * Requires partCapacity > 0.
     */
    bool peelToCapacity = false;
};

/** A k-way partition assignment plus quality metrics. */
struct PartitionResult
{
    int32_t k = 1;
    /** part[v] in [0, k). */
    std::vector<int32_t> part;
    /** Total weight of cut edges. */
    int64_t edgeCut = 0;
    /** Vertex weight per part. */
    std::vector<int64_t> partWeights;
};

/**
 * Partitions @p g into @p k parts minimizing edge cut subject to balance.
 *
 * @throws CaError if k < 1 or a feasible balanced partition cannot be
 * produced under opts.partCapacity.
 */
PartitionResult partitionGraph(const Graph &g, int32_t k,
                               const PartitionOptions &opts = {});

/** Recomputes the edge cut of @p part on @p g (for verification). */
int64_t computeEdgeCut(const Graph &g, const std::vector<int32_t> &part);

} // namespace ca

#endif // CA_PARTITION_PARTITIONER_H
