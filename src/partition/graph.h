/**
 * @file
 * Undirected weighted graph in CSR form — the partitioner's input.
 *
 * The Cache Automaton compiler partitions connected components larger than
 * one 256-STE partition across k cache arrays minimizing inter-array state
 * transitions (§3.2). The paper uses METIS; this module provides the graph
 * representation our from-scratch multilevel partitioner consumes.
 */
#ifndef CA_PARTITION_GRAPH_H
#define CA_PARTITION_GRAPH_H

#include <cstdint>
#include <vector>

#include "nfa/nfa.h"

namespace ca {

/**
 * CSR undirected graph with vertex and edge weights.
 *
 * Invariants: adjacency is symmetric (u∈adj(v) ⇔ v∈adj(u)) with matching
 * edge weights, and self-loops are dropped.
 */
struct Graph
{
    std::vector<int32_t> xadj;   ///< Size |V|+1; CSR row pointers.
    std::vector<int32_t> adjncy; ///< Concatenated neighbour lists.
    std::vector<int32_t> adjwgt; ///< Edge weights, parallel to adjncy.
    std::vector<int32_t> vwgt;   ///< Vertex weights (state multiplicity).

    int32_t numVertices() const
    {
        return static_cast<int32_t>(vwgt.size());
    }

    int64_t totalVertexWeight() const;

    int32_t degree(int32_t v) const { return xadj[v + 1] - xadj[v]; }

    /** Validates CSR structure and symmetry. @throws CaError on breakage. */
    void validate() const;

    /**
     * Builds the symmetrized transition graph of @p nfa restricted to
     * @p members (a connected component). Vertex i corresponds to
     * members[i]. A directed edge in either direction yields an undirected
     * edge; anti-parallel pairs get weight 2 (both directions would cross a
     * partition boundary).
     */
    static Graph fromNfaComponent(const Nfa &nfa,
                                  const std::vector<StateId> &members);
};

} // namespace ca

#endif // CA_PARTITION_GRAPH_H
