#include "partition/partitioner.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/error.h"
#include "core/rng.h"
#include "telemetry/telemetry.h"

namespace ca {

namespace {

/** One coarsening step: heavy-edge matching + contraction. */
Graph
coarsenOnce(const Graph &g, std::vector<int32_t> &cmap, Rng &rng)
{
    const int32_t n = g.numVertices();
    std::vector<int32_t> match(n, -1);
    std::vector<int32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    // Random visit order prevents systematic matching bias.
    for (int32_t i = n - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(static_cast<uint64_t>(i) + 1)]);

    for (int32_t v : order) {
        if (match[v] != -1)
            continue;
        int32_t best = -1;
        int32_t best_w = -1;
        for (int32_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
            int32_t u = g.adjncy[e];
            if (match[u] == -1 && g.adjwgt[e] > best_w) {
                best_w = g.adjwgt[e];
                best = u;
            }
        }
        if (best != -1) {
            match[v] = best;
            match[best] = v;
        } else {
            match[v] = v;
        }
    }

    // Assign coarse ids: matched pair shares one id.
    cmap.assign(n, -1);
    int32_t nc = 0;
    for (int32_t v = 0; v < n; ++v) {
        if (cmap[v] != -1)
            continue;
        cmap[v] = nc;
        if (match[v] != v)
            cmap[match[v]] = nc;
        ++nc;
    }

    // Contract: accumulate edge weights between coarse vertices.
    Graph cg;
    cg.vwgt.assign(nc, 0);
    for (int32_t v = 0; v < n; ++v)
        cg.vwgt[cmap[v]] += g.vwgt[v];

    std::vector<std::pair<int64_t, int32_t>> buf; // (coarse u<<32|..., w)
    std::vector<int32_t> deg(nc + 1, 0);
    std::vector<std::vector<std::pair<int32_t, int32_t>>> nbrs(nc);
    // Merge neighbour maps with a per-coarse-vertex scratch map emulated by
    // sort+combine (nc is small enough that vectors win over hash maps).
    for (int32_t v = 0; v < n; ++v) {
        int32_t cv = cmap[v];
        for (int32_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
            int32_t cu = cmap[g.adjncy[e]];
            if (cu != cv)
                nbrs[cv].emplace_back(cu, g.adjwgt[e]);
        }
    }
    for (int32_t cv = 0; cv < nc; ++cv) {
        auto &vec = nbrs[cv];
        std::sort(vec.begin(), vec.end());
        size_t w = 0;
        for (size_t r = 0; r < vec.size(); ++r) {
            if (w > 0 && vec[w - 1].first == vec[r].first)
                vec[w - 1].second += vec[r].second;
            else
                vec[w++] = vec[r];
        }
        vec.resize(w);
        deg[cv + 1] = static_cast<int32_t>(w);
    }
    cg.xadj.assign(nc + 1, 0);
    for (int32_t cv = 0; cv < nc; ++cv)
        cg.xadj[cv + 1] = cg.xadj[cv] + deg[cv + 1];
    cg.adjncy.resize(cg.xadj[nc]);
    cg.adjwgt.resize(cg.xadj[nc]);
    for (int32_t cv = 0; cv < nc; ++cv) {
        int32_t p = cg.xadj[cv];
        for (const auto &[cu, w2] : nbrs[cv]) {
            cg.adjncy[p] = cu;
            cg.adjwgt[p] = w2;
            ++p;
        }
    }
    return cg;
}

/** Sum of vertex weights on side 0 / side 1. */
std::pair<int64_t, int64_t>
sideWeights(const Graph &g, const std::vector<int8_t> &side)
{
    int64_t w0 = 0;
    int64_t w1 = 0;
    for (int32_t v = 0; v < g.numVertices(); ++v)
        (side[v] ? w1 : w0) += g.vwgt[v];
    return {w0, w1};
}

/** Greedy BFS region growing for the initial bisection. */
void
growInitial(const Graph &g, int64_t target0, std::vector<int8_t> &side,
            Rng &rng)
{
    const int32_t n = g.numVertices();
    side.assign(n, 1);
    if (n == 0)
        return;

    int64_t w0 = 0;
    std::vector<int32_t> frontier;
    std::vector<char> seen(n, 0);
    while (w0 < target0) {
        if (frontier.empty()) {
            // Seed a new region from an unassigned vertex.
            int32_t seed = -1;
            for (int32_t tries = 0; tries < 16 && seed == -1; ++tries) {
                int32_t cand =
                    static_cast<int32_t>(rng.below(static_cast<uint64_t>(n)));
                if (!seen[cand])
                    seed = cand;
            }
            if (seed == -1) {
                for (int32_t v = 0; v < n && seed == -1; ++v)
                    if (!seen[v])
                        seed = v;
            }
            if (seed == -1)
                break; // everything assigned
            seen[seed] = 1;
            side[seed] = 0;
            w0 += g.vwgt[seed];
            frontier.push_back(seed);
            continue;
        }
        int32_t v = frontier.back();
        frontier.pop_back();
        for (int32_t e = g.xadj[v]; e < g.xadj[v + 1] && w0 < target0; ++e) {
            int32_t u = g.adjncy[e];
            if (!seen[u]) {
                seen[u] = 1;
                side[u] = 0;
                w0 += g.vwgt[u];
                frontier.push_back(u);
            }
        }
    }
}

/** Gain of moving v to the other side: cut reduction (positive = better). */
int32_t
moveGain(const Graph &g, const std::vector<int8_t> &side, int32_t v)
{
    int32_t internal = 0;
    int32_t external = 0;
    for (int32_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        if (side[g.adjncy[e]] == side[v])
            internal += g.adjwgt[e];
        else
            external += g.adjwgt[e];
    }
    return external - internal;
}

/**
 * One Fiduccia–Mattheyses pass with rollback: tentatively moves every
 * vertex once in best-gain order, then keeps the best prefix.
 *
 * @return cut improvement achieved (>= 0).
 */
int64_t
fmPass(const Graph &g, std::vector<int8_t> &side, int64_t max_w0,
       int64_t max_w1)
{
    const int32_t n = g.numVertices();
    auto [w0, w1] = sideWeights(g, side);

    std::vector<int32_t> gain(n);
    for (int32_t v = 0; v < n; ++v)
        gain[v] = moveGain(g, side, v);

    std::vector<char> locked(n, 0);
    std::vector<int32_t> moves;
    moves.reserve(n);
    int64_t cur = 0;
    int64_t best = 0;
    size_t best_len = 0;

    // Lazy max-heap of (gain, vertex); stale entries are skipped on pop by
    // comparing against the live gain array.
    std::vector<std::pair<int32_t, int32_t>> heap;
    heap.reserve(n * 2);
    auto push = [&](int32_t v) { heap.emplace_back(gain[v], v);
        std::push_heap(heap.begin(), heap.end()); };
    for (int32_t v = 0; v < n; ++v)
        push(v);

    auto violation = [&](int64_t a, int64_t b) {
        return std::max<int64_t>(0, a - max_w0) +
            std::max<int64_t>(0, b - max_w1);
    };
    int64_t best_viol = violation(w0, w1);

    // Deferred vertices: movable by gain but blocked by the ceiling now;
    // they may become movable after other moves, so stash rather than lock.
    std::vector<int32_t> deferred;

    for (int32_t step = 0; step < n; ++step) {
        int32_t pick = -1;
        int32_t pick_gain = 0;
        bool infeasible = violation(w0, w1) > 0;
        while (!heap.empty()) {
            auto [hg, v] = heap.front();
            std::pop_heap(heap.begin(), heap.end());
            heap.pop_back();
            if (locked[v] || hg != gain[v])
                continue; // stale entry
            int64_t nw0 = side[v] ? w0 + g.vwgt[v] : w0 - g.vwgt[v];
            int64_t nw1 = side[v] ? w1 - g.vwgt[v] : w1 + g.vwgt[v];
            if (infeasible) {
                // Balance recovery: only moves that shrink the violation.
                if (violation(nw0, nw1) >= violation(w0, w1)) {
                    deferred.push_back(v);
                    continue;
                }
            } else if (nw0 > max_w0 || nw1 > max_w1) {
                deferred.push_back(v);
                continue;
            }
            pick = v;
            pick_gain = hg;
            break;
        }
        if (pick == -1)
            break;
        // Blocked vertices get another chance after this move.
        for (int32_t v : deferred)
            if (!locked[v])
                push(v);
        deferred.clear();

        // Commit the tentative move.
        locked[pick] = 1;
        cur += pick_gain;
        if (side[pick]) {
            w0 += g.vwgt[pick];
            w1 -= g.vwgt[pick];
        } else {
            w0 -= g.vwgt[pick];
            w1 += g.vwgt[pick];
        }
        side[pick] = static_cast<int8_t>(1 - side[pick]);
        moves.push_back(pick);
        for (int32_t e = g.xadj[pick]; e < g.xadj[pick + 1]; ++e) {
            int32_t u = g.adjncy[e];
            if (!locked[u]) {
                gain[u] = moveGain(g, side, u);
                push(u);
            }
        }
        // Best prefix: lexicographically (smallest violation, largest
        // cut improvement). A feasible-but-worse-cut state beats an
        // infeasible one, so FM doubles as a balance-repair pass.
        int64_t viol_now = violation(w0, w1);
        if (viol_now < best_viol ||
            (viol_now == best_viol && cur > best)) {
            best_viol = viol_now;
            best = cur;
            best_len = moves.size();
        }
        // Heuristic cut-off: past the best point with deeply negative
        // gain (only once feasibility has been reached).
        if (viol_now == 0 && cur < best - 64 &&
            moves.size() > best_len + 32)
            break;
    }

    // Roll back moves beyond the best prefix.
    for (size_t i = moves.size(); i > best_len; --i)
        side[moves[i - 1]] = static_cast<int8_t>(1 - side[moves[i - 1]]);
    return best;
}

/** Multilevel 2-way partition of @p g targeting weight @p target0. */
void
multilevelBisect(const Graph &g, int64_t target0,
                 const PartitionOptions &opts, std::vector<int8_t> &side,
                 int64_t max_w0, int64_t max_w1, Rng &rng)
{
    // Coarsening phase.
    std::vector<Graph> levels;
    std::vector<std::vector<int32_t>> maps;
    levels.push_back(g);
    while (levels.back().numVertices() > opts.coarsenTo) {
        std::vector<int32_t> cmap;
        Graph cg = coarsenOnce(levels.back(), cmap, rng);
        // Stalled coarsening (pathological stars): stop.
        if (cg.numVertices() >
            levels.back().numVertices() - levels.back().numVertices() / 20)
            break;
        maps.push_back(std::move(cmap));
        levels.push_back(std::move(cg));
    }

    // Initial partition at the coarsest level.
    growInitial(levels.back(), target0, side, rng);
    for (int p = 0; p < opts.refinementPasses; ++p)
        if (fmPass(levels.back(), side, max_w0, max_w1) == 0)
            break;

    // Uncoarsen with refinement.
    for (size_t li = levels.size() - 1; li > 0; --li) {
        const std::vector<int32_t> &cmap = maps[li - 1];
        std::vector<int8_t> fine(levels[li - 1].numVertices());
        for (int32_t v = 0; v < levels[li - 1].numVertices(); ++v)
            fine[v] = side[cmap[v]];
        side = std::move(fine);
        for (int p = 0; p < opts.refinementPasses; ++p)
            if (fmPass(levels[li - 1], side, max_w0, max_w1) == 0)
                break;
    }
}

/** Extracts the side-@p s subgraph plus the vertex map into @p g. */
Graph
subgraph(const Graph &g, const std::vector<int8_t> &side, int8_t s,
         std::vector<int32_t> &orig)
{
    const int32_t n = g.numVertices();
    std::vector<int32_t> local(n, -1);
    orig.clear();
    for (int32_t v = 0; v < n; ++v) {
        if (side[v] == s) {
            local[v] = static_cast<int32_t>(orig.size());
            orig.push_back(v);
        }
    }
    Graph sg;
    sg.vwgt.reserve(orig.size());
    sg.xadj.push_back(0);
    for (int32_t v : orig) {
        sg.vwgt.push_back(g.vwgt[v]);
        for (int32_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
            int32_t u = g.adjncy[e];
            if (local[u] != -1) {
                sg.adjncy.push_back(local[u]);
                sg.adjwgt.push_back(g.adjwgt[e]);
            }
        }
        sg.xadj.push_back(static_cast<int32_t>(sg.adjncy.size()));
    }
    return sg;
}

/** Recursive bisection driver writing final labels into @p out. */
void
recursivePartition(const Graph &g, int32_t k, int32_t label_base,
                   const PartitionOptions &opts,
                   const std::vector<int32_t> &orig,
                   std::vector<int32_t> &out, Rng &rng)
{
    if (k == 1) {
        for (size_t i = 0; i < orig.size(); ++i)
            out[orig[i]] = label_base;
        return;
    }
    int32_t kl = (k + 1) / 2;
    int32_t kr = k - kl;
    int64_t total = g.totalVertexWeight();
    int64_t target0 = total * kl / k;
    if (opts.peelToCapacity && opts.partCapacity > 0) {
        // Peel one capacity-full part; the recursion handles the rest.
        kl = 1;
        kr = k - 1;
        int64_t lo = total - kr * opts.partCapacity; // rest must fit
        target0 = std::min<int64_t>(opts.partCapacity, total - kr);
        target0 = std::max(target0, std::max<int64_t>(lo, 1));
    }

    // Per-side ceilings from balance tolerance and hard capacity.
    double slack = 1.0 + opts.imbalance;
    int64_t max_w0 = static_cast<int64_t>(
        static_cast<double>(target0) * slack) + 1;
    int64_t max_w1 = static_cast<int64_t>(
        static_cast<double>(total - target0) * slack) + 1;
    if (opts.partCapacity > 0) {
        max_w0 = std::min(max_w0, opts.partCapacity * kl);
        max_w1 = std::min(max_w1, opts.partCapacity * kr);
    }

    std::vector<int8_t> side;
    multilevelBisect(g, target0, opts, side, max_w0, max_w1, rng);

    std::vector<int32_t> orig_l;
    std::vector<int32_t> orig_r;
    Graph gl = subgraph(g, side, 0, orig_l);
    Graph gr = subgraph(g, side, 1, orig_r);

    // Map side-subgraph vertices back to top-level ids.
    std::vector<int32_t> top_l(orig_l.size());
    for (size_t i = 0; i < orig_l.size(); ++i)
        top_l[i] = orig[orig_l[i]];
    std::vector<int32_t> top_r(orig_r.size());
    for (size_t i = 0; i < orig_r.size(); ++i)
        top_r[i] = orig[orig_r[i]];

    recursivePartition(gl, kl, label_base, opts, top_l, out, rng);
    recursivePartition(gr, kr, label_base + kl, opts, top_r, out, rng);
}

} // namespace

int64_t
computeEdgeCut(const Graph &g, const std::vector<int32_t> &part)
{
    int64_t cut = 0;
    for (int32_t v = 0; v < g.numVertices(); ++v)
        for (int32_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e)
            if (part[g.adjncy[e]] != part[v])
                cut += g.adjwgt[e];
    return cut / 2; // every cut edge counted from both sides
}

PartitionResult
partitionGraph(const Graph &g, int32_t k, const PartitionOptions &opts)
{
    CA_TRACE_SCOPE("ca.partition.kway");
    CA_FATAL_IF(k < 1, "k must be >= 1");
    CA_COUNTER_ADD("ca.partition.runs", 1);
    CA_HISTOGRAM_OBSERVE("ca.partition.graph_vertices", g.numVertices());
    const int32_t n = g.numVertices();
    CA_FATAL_IF(opts.partCapacity > 0 &&
                    g.totalVertexWeight() > opts.partCapacity * k,
                "graph weight " << g.totalVertexWeight()
                                << " cannot fit in " << k << " parts of "
                                << opts.partCapacity);

    PartitionResult res;
    res.k = k;
    res.part.assign(n, 0);

    Rng rng(opts.seed);
    std::vector<int32_t> orig(n);
    std::iota(orig.begin(), orig.end(), 0);
    recursivePartition(g, k, 0, opts, orig, res.part, rng);

    res.partWeights.assign(k, 0);
    for (int32_t v = 0; v < n; ++v)
        res.partWeights[res.part[v]] += g.vwgt[v];
    res.edgeCut = computeEdgeCut(g, res.part);

    if (opts.partCapacity > 0) {
        for (int32_t p = 0; p < k; ++p) {
            CA_FATAL_IF(res.partWeights[p] > opts.partCapacity,
                        "partition " << p << " weight "
                                     << res.partWeights[p]
                                     << " exceeds capacity "
                                     << opts.partCapacity);
        }
    }
    return res;
}

} // namespace ca
