#include "match/parallel_matcher.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>

#include "core/logging.h"
#include "telemetry/telemetry.h"

namespace ca::match {

namespace {

#if CA_TELEMETRY
/**
 * Registry handles for the ca.match.* counters, resolved once per
 * process. Flushed once per match() call, never per chunk or symbol.
 */
struct MatchCounters
{
    telemetry::Counter &calls;
    telemetry::Counter &serialCalls;
    telemetry::Counter &bytes;
    telemetry::Counter &chunks;
    telemetry::Counter &speculationHits;
    telemetry::Counter &replays;
    telemetry::Counter &replayedBytes;
    telemetry::Counter &joinMicros;

    static MatchCounters &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::global();
        static MatchCounters c{
            reg.counter("ca.match.calls"),
            reg.counter("ca.match.serial_calls"),
            reg.counter("ca.match.bytes"),
            reg.counter("ca.match.chunks"),
            reg.counter("ca.match.speculation_hits"),
            reg.counter("ca.match.replays"),
            reg.counter("ca.match.replayed_bytes"),
            reg.counter("ca.match.join_micros"),
        };
        return c;
    }
};
#endif

size_t
hardwareDegree()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<size_t>(n);
}

} // namespace

std::optional<size_t>
parseMatchParallel(std::string_view value)
{
    if (value == "off" || value == "0" || value == "1" || value == "none")
        return size_t{0};
    if (value == "auto")
        return hardwareDegree();
    size_t n = 0;
    const char *first = value.data();
    const char *last = first + value.size();
    auto [ptr, ec] = std::from_chars(first, last, n);
    if (ec == std::errc{} && ptr == last && n >= 2)
        return n;
    return std::nullopt;
}

std::optional<size_t>
matchParallelEnvOverride()
{
    static const std::optional<size_t> parsed = [] {
        std::optional<size_t> out;
        const char *env = std::getenv("CA_MATCH_PARALLEL");
        if (!env || !*env)
            return out;
        out = parseMatchParallel(env);
        if (!out) {
            CA_WARN("CA_MATCH_PARALLEL="
                    << env
                    << " is not off/auto/<count>; falling back to auto");
            out = hardwareDegree();
        }
        return out;
    }();
    return parsed;
}

ParallelMatcher::ParallelMatcher(std::shared_ptr<const MatchContext> ctx,
                                 const ParallelOptions &opts)
    : ctx_(std::move(ctx)), opts_(opts),
      join_engine_(ctx_, opts.engine)
{
    degree_ = opts_.degree == 0 ? hardwareDegree() : opts_.degree;
    if (degree_ < 1)
        degree_ = 1;
    if (opts_.minChunkBytes == 0)
        opts_.minChunkBytes = 1;
    workers_.reserve(degree_ - 1);
    for (size_t i = 0; i + 1 < degree_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelMatcher::~ParallelMatcher()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ParallelMatcher::workerLoop()
{
    // Each worker owns one engine for its whole life, so per-chunk cost
    // is frontier loading, never table building.
    MatchEngine eng(ctx_, opts_.engine);
    for (;;) {
        Chunk *c = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run.
            c = queue_.front();
            queue_.pop_front();
        }
        runChunk(eng, *c);
        {
            std::lock_guard<std::mutex> lk(mu_);
            c->done = true;
        }
        cv_done_.notify_all();
    }
}

void
ParallelMatcher::runChunk(MatchEngine &eng, Chunk &c)
{
    // Warm-up: compose the frontier transformer over the preceding
    // chunk's tail starting from the reachable overapproximation. The
    // warm bytes' reports belong to the preceding chunk's exact pass,
    // so collection is off.
    eng.setCollectReports(false);
    eng.setState(ctx_->reachableFrontier(), c.base - c.warmLen);
    eng.feed(c.warm, c.warmLen);
    c.specStart = eng.frontier();
    eng.setCollectReports(true);
    eng.feed(c.data, c.len);
    c.end = eng.frontier();
    c.reports = eng.takeReports();
}

MatchResult
ParallelMatcher::match(const uint8_t *data, size_t size)
{
    return match(ctx_->startFrontier(), 0, data, size);
}

MatchResult
ParallelMatcher::match(const std::vector<StateId> &frontier,
                       uint64_t offset, const uint8_t *data, size_t size)
{
    std::lock_guard<std::mutex> lk(call_mu_);
    return runLocked(frontier, offset, data, size);
}

std::optional<MatchResult>
ParallelMatcher::tryMatch(const std::vector<StateId> &frontier,
                          uint64_t offset, const uint8_t *data,
                          size_t size)
{
    std::unique_lock<std::mutex> lk(call_mu_, std::try_to_lock);
    if (!lk.owns_lock())
        return std::nullopt;
    return runLocked(frontier, offset, data, size);
}

void
ParallelMatcher::runSerial(MatchResult &out,
                           const std::vector<StateId> &frontier,
                           uint64_t offset, const uint8_t *data,
                           size_t size)
{
    join_engine_.setCollectReports(true);
    // A scored run from offset 0 must seed start weights, which a plain
    // frontier load would zero out; reset() carries them.
    if (ctx_->scored() && offset == 0 &&
        frontier == ctx_->startFrontier())
        join_engine_.reset();
    else
        join_engine_.setState(frontier, offset);
    join_engine_.feed(data, size);
    out.reports = join_engine_.takeReports();
    out.frontier = join_engine_.frontier();
    out.frontierScores = join_engine_.frontierScores();
    out.endOffset = offset + size;
}

MatchResult
ParallelMatcher::runLocked(const std::vector<StateId> &frontier,
                           uint64_t offset, const uint8_t *data,
                           size_t size)
{
    CA_TRACE_SCOPE("ca.match.run");
    MatchResult out;

    // Chunk count: every chunk at least minChunkBytes, at most one per
    // worker. N < 2 (short buffer or degree 1) runs serially. Weighted
    // automata always run serially: the speculative join proves only
    // frontier-set equality, and a converged *set* says nothing about
    // the accumulated scores, so a speculative chunk's scored reports
    // can never be certified.
    size_t n_chunks = std::min<size_t>(degree_, size / opts_.minChunkBytes);
    if (ctx_->scored())
        n_chunks = 1;
    if (n_chunks < 2 || workers_.empty()) {
        runSerial(out, frontier, offset, data, size);
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.calls;
        ++stats_.serialCalls;
        stats_.bytes += size;
        ++stats_.chunks;
#if CA_TELEMETRY
        if (telemetry::enabled()) {
            MatchCounters &mc = MatchCounters::get();
            mc.calls.add(1);
            mc.serialCalls.add(1);
            mc.bytes.add(size);
            mc.chunks.add(1);
        }
#endif
        return out;
    }

    // Partition [0, size) into n_chunks near-equal chunks; chunk 0 is
    // the exact one the caller runs while the helpers speculate.
    std::vector<Chunk> chunks(n_chunks);
    const size_t base_len = size / n_chunks;
    const size_t extra = size % n_chunks;
    size_t pos = 0;
    for (size_t i = 0; i < n_chunks; ++i) {
        Chunk &c = chunks[i];
        c.len = base_len + (i < extra ? 1 : 0);
        c.data = data + pos;
        c.base = offset + pos;
        if (i > 0) {
            c.warmLen = std::min(opts_.overlapBytes, pos);
            c.warm = data + (pos - c.warmLen);
        }
        pos += c.len;
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        for (size_t i = 1; i < n_chunks; ++i)
            queue_.push_back(&chunks[i]);
    }
    cv_work_.notify_all();

    // Chunk 0 runs exactly from the incoming frontier.
    join_engine_.setCollectReports(true);
    join_engine_.setState(frontier, offset);
    join_engine_.feed(chunks[0].data, chunks[0].len);
    out.reports = join_engine_.takeReports();
    std::vector<StateId> exact = join_engine_.frontier();

    // Left-to-right join: a speculative chunk whose warm-up converged
    // to the exact incoming frontier is already correct (reports and
    // end frontier alike); otherwise replay it from the exact frontier.
    uint64_t hits = 0;
    uint64_t replays = 0;
    uint64_t replayed_bytes = 0;
    const auto join_start = std::chrono::steady_clock::now();
    for (size_t i = 1; i < n_chunks; ++i) {
        Chunk &c = chunks[i];
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_done_.wait(lk, [&] { return c.done; });
        }
        if (c.specStart == exact) {
            ++hits;
            out.reports.insert(out.reports.end(), c.reports.begin(),
                               c.reports.end());
            exact = std::move(c.end);
        } else {
            ++replays;
            replayed_bytes += c.len;
            join_engine_.setState(exact, c.base);
            join_engine_.feed(c.data, c.len);
            std::vector<Report> r = join_engine_.takeReports();
            out.reports.insert(out.reports.end(), r.begin(), r.end());
            exact = join_engine_.frontier();
        }
    }
    const uint64_t join_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - join_start)
            .count());

    out.frontier = std::move(exact);
    out.endOffset = offset + size;

    {
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.calls;
        stats_.bytes += size;
        stats_.chunks += n_chunks;
        stats_.speculationHits += hits;
        stats_.replays += replays;
        stats_.replayedBytes += replayed_bytes;
        stats_.joinMicros += join_micros;
    }
#if CA_TELEMETRY
    if (telemetry::enabled()) {
        MatchCounters &mc = MatchCounters::get();
        mc.calls.add(1);
        mc.bytes.add(size);
        mc.chunks.add(n_chunks);
        mc.speculationHits.add(hits);
        mc.replays.add(replays);
        mc.replayedBytes.add(replayed_bytes);
        mc.joinMicros.add(join_micros);
    }
#endif
    return out;
}

ParallelStats
ParallelMatcher::stats() const
{
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
}

} // namespace ca::match
