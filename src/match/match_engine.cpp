#include "match/match_engine.h"

#include <algorithm>
#include <bit>
#include <deque>

#include "core/error.h"
#include "core/logging.h"

namespace ca::match {

namespace {

/** Null-checks before the delegating ctor dereferences. */
const MappedAutomaton &
requireAutomaton(const std::shared_ptr<const MappedAutomaton> &mapped)
{
    CA_FATAL_IF(!mapped, "MatchContext: null mapped automaton");
    return *mapped;
}

/** Dense-kernel partition geometry (§2.2: 256 STEs per 8 KB array). */
constexpr uint32_t kSlotsPerPartition = 256;
constexpr uint32_t kWordsPerPartition = kSlotsPerPartition / 64;

} // namespace

MatchContext::MatchContext(std::shared_ptr<const MappedAutomaton> mapped)
    : MatchContext(requireAutomaton(mapped))
{
    owned_ = std::move(mapped);
}

MatchContext::MatchContext(const MappedAutomaton &mapped) : mapped_(mapped)
{
    num_states_ = mapped.nfa().numStates();
    buildSparseTables();
    buildDenseTables();
    buildFrontiers();
}

void
MatchContext::buildSparseTables()
{
    const Nfa &nfa = mapped_.nfa();
    labels_.resize(num_states_ * 4);
    report_info_.resize(num_states_);
    succ_xadj_.assign(num_states_ + 1, 0);
    for (StateId s = 0; s < num_states_; ++s) {
        const NfaState &st = nfa.state(s);
        if (st.start == StartType::AllInput)
            all_input_.push_back(s);
        const auto &words = st.label.raw();
        for (int w = 0; w < 4; ++w)
            labels_[s * 4 + w] = words[w];
        report_info_[s] =
            (static_cast<uint64_t>(st.reportId) << 1) | (st.report ? 1 : 0);
        succ_xadj_[s + 1] =
            succ_xadj_[s] + static_cast<uint32_t>(st.out.size());
    }
    succ_.resize(succ_xadj_.back());
    for (StateId s = 0; s < num_states_; ++s) {
        uint32_t base = succ_xadj_[s];
        const auto &out = nfa.state(s).out;
        for (size_t i = 0; i < out.size(); ++i)
            succ_[base + i] = out[i];
    }

    scored_ = nfa.hasWeights();
    if (scored_) {
        succ_w_.assign(succ_.size(), 0);
        start_w_.assign(num_states_, 0);
        for (StateId s = 0; s < num_states_; ++s) {
            uint32_t base = succ_xadj_[s];
            const NfaState &st = nfa.state(s);
            for (size_t i = 0; i < st.out.size(); ++i)
                succ_w_[base + i] = nfa.edgeWeight(s, i);
            start_w_[s] = st.startWeight;
        }
    }
}

void
MatchContext::buildDenseTables()
{
    const uint32_t P = static_cast<uint32_t>(mapped_.numPartitions());
    if (P == 0 || num_states_ == 0)
        return;
    for (StateId s = 0; s < num_states_; ++s) {
        if (mapped_.location(s).slot >= kSlotsPerPartition) {
            // Defensive: a non-standard design geometry falls back to
            // the sparse kernel rather than corrupting masks.
            CA_WARN("match dense kernel unavailable: state "
                    << s << " at slot " << mapped_.location(s).slot
                    << " exceeds " << kSlotsPerPartition);
            return;
        }
    }
    dense_partitions_ = P;
    const size_t words = static_cast<size_t>(P) * kWordsPerPartition;

    dense_index_of_.assign(num_states_, 0);
    state_of_dense_.assign(static_cast<size_t>(P) * kSlotsPerPartition,
                           kInvalidState);
    for (StateId s = 0; s < num_states_; ++s) {
        const SteLocation &loc = mapped_.location(s);
        uint32_t di = loc.partition * kSlotsPerPartition + loc.slot;
        dense_index_of_[s] = di;
        state_of_dense_[di] = s;
    }

    // Row reads (§2.2), symbol-major so one symbol's step scans
    // contiguous memory across partitions.
    dense_rows_.assign(static_cast<size_t>(256) * words, 0);
    for (StateId s = 0; s < num_states_; ++s) {
        uint32_t di = dense_index_of_[s];
        uint32_t p = di / kSlotsPerPartition;
        uint32_t slot = di % kSlotsPerPartition;
        uint64_t slot_bit = uint64_t{1} << (slot & 63);
        size_t slot_word = slot >> 6;
        for (int w = 0; w < 4; ++w) {
            uint64_t label = labels_[s * 4 + w];
            while (label) {
                int b = std::countr_zero(label);
                uint32_t c = static_cast<uint32_t>(w * 64 + b);
                dense_rows_[(static_cast<size_t>(c) * P + p) *
                                kWordsPerPartition +
                            slot_word] |= slot_bit;
                label &= label - 1;
            }
        }
    }

    // L-switch crossbar rows and G-switch CSR.
    dense_lswitch_.assign(state_of_dense_.size() * kWordsPerPartition, 0);
    dense_cross_xadj_.assign(state_of_dense_.size() + 1, 0);
    std::vector<uint32_t> partition_of(num_states_);
    for (StateId s = 0; s < num_states_; ++s)
        partition_of[s] = mapped_.location(s).partition;
    for (StateId s = 0; s < num_states_; ++s) {
        uint32_t cross = 0;
        for (uint32_t e = succ_xadj_[s]; e < succ_xadj_[s + 1]; ++e)
            if (partition_of[succ_[e]] != partition_of[s])
                ++cross;
        dense_cross_xadj_[dense_index_of_[s] + 1] = cross;
    }
    for (size_t i = 1; i < dense_cross_xadj_.size(); ++i)
        dense_cross_xadj_[i] += dense_cross_xadj_[i - 1];
    dense_cross_.resize(dense_cross_xadj_.back());
    for (StateId s = 0; s < num_states_; ++s) {
        uint32_t di = dense_index_of_[s];
        uint32_t fill = dense_cross_xadj_[di];
        for (uint32_t e = succ_xadj_[s]; e < succ_xadj_[s + 1]; ++e) {
            StateId t = succ_[e];
            uint32_t ti = dense_index_of_[t];
            if (partition_of[t] == partition_of[s]) {
                uint32_t slot = ti % kSlotsPerPartition;
                dense_lswitch_[static_cast<size_t>(di) *
                                   kWordsPerPartition +
                               (slot >> 6)] |= uint64_t{1} << (slot & 63);
            } else {
                dense_cross_[fill++] = ti;
            }
        }
    }

    dense_report_.assign(words, 0);
    for (StateId s = 0; s < num_states_; ++s) {
        if (report_info_[s] & 1) {
            uint32_t di = dense_index_of_[s];
            dense_report_[di >> 6] |= uint64_t{1} << (di & 63);
        }
    }

    std::vector<uint64_t> allinput(words, 0);
    for (StateId s : all_input_) {
        uint32_t di = dense_index_of_[s];
        allinput[di >> 6] |= uint64_t{1} << (di & 63);
    }
    for (size_t w = 0; w < allinput.size(); ++w)
        if (allinput[w])
            dense_allinput_words_.emplace_back(static_cast<uint32_t>(w),
                                               allinput[w]);

    dense_available_ = true;
}

void
MatchContext::buildFrontiers()
{
    const Nfa &nfa = mapped_.nfa();
    for (StateId s = 0; s < num_states_; ++s)
        if (nfa.state(s).start != StartType::None)
            start_frontier_.push_back(s);

    // reachableFrontier: AllInput starts plus everything reachable via
    // >= 1 transition from any start state. For any offset t >= 1 the
    // exact frontier is succ(active at t-1) ∪ allInput, and active
    // states are reachable, so this set contains every frontier a
    // stream can ever be in past offset 0. One BFS at build time.
    BitVector in_set(num_states_ == 0 ? 1 : num_states_);
    std::deque<StateId> queue;
    auto add = [&](StateId s) {
        if (!in_set.test(s)) {
            in_set.set(s);
            reachable_frontier_.push_back(s);
            queue.push_back(s);
        }
    };
    // Seed the BFS worklist with the starts themselves; a start enters
    // the frontier set only via an in-edge (or by being AllInput).
    BitVector visited(num_states_ == 0 ? 1 : num_states_);
    for (StateId s : start_frontier_) {
        visited.set(s);
        queue.push_back(s);
    }
    for (StateId s : all_input_)
        add(s);
    while (!queue.empty()) {
        StateId s = queue.front();
        queue.pop_front();
        for (uint32_t e = succ_xadj_[s]; e < succ_xadj_[s + 1]; ++e) {
            StateId t = succ_[e];
            if (!in_set.test(t)) {
                in_set.set(t);
                reachable_frontier_.push_back(t);
            }
            if (!visited.test(t)) {
                visited.set(t);
                queue.push_back(t);
            }
        }
    }
    std::sort(reachable_frontier_.begin(), reachable_frontier_.end());
}

MatchEngine::MatchEngine(std::shared_ptr<const MatchContext> ctx,
                         const MatchOptions &opts)
    : ctx_(std::move(ctx)), opts_(opts)
{
    CA_FATAL_IF(!ctx_, "MatchEngine: null context");
    const size_t n = ctx_->numStates();
    enabled_mask_ = BitVector(n == 0 ? 1 : n);
    if (ctx_->denseAvailable()) {
        const size_t bits = static_cast<size_t>(ctx_->dense_partitions_) *
            kSlotsPerPartition;
        dense_cur_ = BitVector(bits);
        dense_nxt_ = BitVector(bits);
        if (ctx_->scored()) {
            dense_score_cur_.assign(bits, 0);
            dense_score_nxt_.assign(bits, 0);
            dense_score_epoch_.assign(bits, 0);
        }
    }
    if (ctx_->scored()) {
        score_cur_.assign(n, 0);
        score_nxt_.assign(n, 0);
    }
    reset();
}

void
MatchEngine::reset()
{
    if (!ctx_->scored()) {
        setState(ctx_->startFrontier(), 0);
        return;
    }
    // Scored automata start each state at its start weight.
    std::vector<Score> scores;
    scores.reserve(ctx_->startFrontier().size());
    for (StateId s : ctx_->startFrontier())
        scores.push_back(static_cast<Score>(ctx_->start_w_[s]));
    setState(ctx_->startFrontier(), scores, 0);
}

void
MatchEngine::setState(const std::vector<StateId> &frontier, uint64_t offset)
{
    setState(frontier, {}, offset);
}

void
MatchEngine::setState(const std::vector<StateId> &frontier,
                      const std::vector<Score> &scores, uint64_t offset)
{
    CA_FATAL_IF(!scores.empty() && scores.size() != frontier.size(),
                "MatchEngine: " << frontier.size() << " frontier states "
                                << "but " << scores.size() << " scores");
    if (dense_active_) {
        dense_cur_.clearAll();
        dense_active_ = false;
    }
    const bool scored = ctx_->scored();
    for (StateId s : enabled_)
        enabled_mask_.resetUnchecked(s);
    enabled_.clear();
    for (size_t i = 0; i < frontier.size(); ++i) {
        StateId s = frontier[i];
        CA_FATAL_IF(s >= ctx_->numStates(),
                    "MatchEngine: frontier state " << s
                                                   << " outside automaton");
        if (!enabled_mask_.testUnchecked(s)) {
            enabled_mask_.setUnchecked(s);
            enabled_.push_back(s);
            if (scored)
                score_cur_[s] = scores.empty() ? 0 : scores[i];
        }
    }
    density_seeded_ = false;
    offset_ = offset;
    reports_.clear();
    cycle_report_scratch_.clear();
    cycle_report_scored_.clear();
}

std::vector<StateId>
MatchEngine::frontier() const
{
    std::vector<StateId> out;
    if (dense_active_) {
        dense_cur_.forEachSet([&](size_t di) {
            out.push_back(ctx_->state_of_dense_[di]);
        });
    } else {
        out = enabled_;
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Score>
MatchEngine::frontierScores() const
{
    std::vector<Score> out;
    if (!ctx_->scored())
        return out;
    std::vector<std::pair<StateId, Score>> pairs;
    if (dense_active_) {
        dense_cur_.forEachSet([&](size_t di) {
            pairs.emplace_back(ctx_->state_of_dense_[di],
                               dense_score_cur_[di]);
        });
    } else {
        for (StateId s : enabled_)
            pairs.emplace_back(s, score_cur_[s]);
    }
    std::sort(pairs.begin(), pairs.end());
    out.reserve(pairs.size());
    for (const auto &[s, score] : pairs) {
        (void)s;
        out.push_back(score);
    }
    return out;
}

size_t
MatchEngine::frontierSize() const
{
    return dense_active_ ? dense_cur_.count() : enabled_.size();
}

std::vector<Report>
MatchEngine::takeReports()
{
    std::vector<Report> out = std::move(reports_);
    reports_.clear();
    return out;
}

bool
MatchEngine::chooseDense()
{
    SimKernel kernel = opts_.kernel;
    if (kernel == SimKernel::Sparse || !ctx_->denseAvailable())
        return false;
    if (kernel == SimKernel::Dense)
        return true;
    // Auto: seed the EWMA from the current frontier density so an
    // engine loaded with a hot frontier starts on the right kernel.
    const size_t n = ctx_->numStates();
    if (n == 0)
        return false;
    if (!density_seeded_) {
        density_ewma_ = static_cast<double>(frontierSize()) /
            static_cast<double>(n);
        density_seeded_ = true;
    }
    return density_ewma_ > opts_.autoDensityThreshold;
}

void
MatchEngine::syncDenseFromSparse()
{
    const bool scored = ctx_->scored();
    dense_cur_.clearAll();
    for (StateId s : enabled_) {
        uint32_t di = ctx_->dense_index_of_[s];
        dense_cur_.setUnchecked(di);
        if (scored)
            dense_score_cur_[di] = score_cur_[s];
    }
    dense_active_ = true;
}

void
MatchEngine::syncSparseFromDense()
{
    const bool scored = ctx_->scored();
    for (StateId s : enabled_)
        enabled_mask_.resetUnchecked(s);
    enabled_.clear();
    dense_cur_.forEachSet([&](size_t di) {
        StateId s = ctx_->state_of_dense_[di];
        enabled_mask_.setUnchecked(s);
        enabled_.push_back(s);
        if (scored)
            score_cur_[s] = dense_score_cur_[di];
    });
    dense_active_ = false;
}

void
MatchEngine::emitCycleReports()
{
    if (cycle_report_scratch_.empty())
        return;
    // Canonical within-cycle order: ascending state id (shared with the
    // CPU oracle, both sim kernels, and both match kernels).
    std::sort(cycle_report_scratch_.begin(), cycle_report_scratch_.end());
    for (StateId s : cycle_report_scratch_)
        reports_.push_back(Report{
            offset_, static_cast<uint32_t>(ctx_->report_info_[s] >> 1),
            s});
    cycle_report_scratch_.clear();
}

void
MatchEngine::emitCycleReportsScored()
{
    if (cycle_report_scored_.empty())
        return;
    std::sort(cycle_report_scored_.begin(), cycle_report_scored_.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[s, score] : cycle_report_scored_)
        reports_.push_back(Report{
            offset_, static_cast<uint32_t>(ctx_->report_info_[s] >> 1),
            s, score});
    cycle_report_scored_.clear();
}

void
MatchEngine::feed(const uint8_t *data, size_t size)
{
    const bool auto_kernel = opts_.kernel == SimKernel::Auto;
    const size_t n_states = ctx_->numStates();
    size_t pos = 0;
    while (pos < size) {
        // A dead stream stays dead: with no enabled states and no
        // always-on starts, no future symbol can fire anything. Jump to
        // the end — this is what makes replaying past a died-out
        // anchored ruleset nearly free.
        if (frontierSize() == 0 && ctx_->all_input_.empty()) {
            offset_ += size - pos;
            return;
        }

        bool use_dense = chooseDense();
        size_t block = size - pos;
        if (auto_kernel && opts_.autoBlockSymbols > 0)
            block = std::min(
                block, static_cast<size_t>(opts_.autoBlockSymbols));

        if (use_dense && !dense_active_)
            syncDenseFromSparse();
        else if (!use_dense && dense_active_)
            syncSparseFromDense();

        if (use_dense) {
            feedDense(data + pos, block);
            dense_symbols_ += block;
        } else {
            feedSparse(data + pos, block);
            sparse_symbols_ += block;
        }
        pos += block;

        if (auto_kernel && n_states > 0 && block > 0) {
            double sample = static_cast<double>(frontierSize()) /
                static_cast<double>(n_states);
            density_ewma_ = opts_.autoEwmaAlpha * sample +
                (1.0 - opts_.autoEwmaAlpha) * density_ewma_;
        }
    }
}

void
MatchEngine::feedSparse(const uint8_t *data, size_t size)
{
    if (ctx_->scored())
        feedSparseImpl<true>(data, size);
    else
        feedSparseImpl<false>(data, size);
}

template <bool Scored>
void
MatchEngine::feedSparseImpl(const uint8_t *data, size_t size)
{
    const MatchContext &cx = *ctx_;
    const uint64_t *labels = cx.labels_.data();
    const uint64_t *report_info = cx.report_info_.data();
    const uint32_t *succ_xadj = cx.succ_xadj_.data();
    const StateId *succ = cx.succ_.data();

    for (size_t i = 0; i < size; ++i) {
        uint8_t c = data[i];
        const uint64_t label_bit = uint64_t{1} << (c & 63);
        const size_t label_word = c >> 6;

        active_scratch_.clear();
        for (StateId s : enabled_) {
            if (!(labels[s * 4 + label_word] & label_bit))
                continue;
            active_scratch_.push_back(s);
            if (collect_ && (report_info[s] & 1)) {
                if constexpr (Scored)
                    cycle_report_scored_.emplace_back(s, score_cur_[s]);
                else
                    cycle_report_scratch_.push_back(s);
            }
        }
        if constexpr (Scored)
            emitCycleReportsScored();
        else
            emitCycleReports();

        // Transition phase: clear only the bits set last cycle.
        for (StateId s : enabled_)
            enabled_mask_.resetUnchecked(s);
        enabled_.clear();
        for (StateId s : active_scratch_) {
            uint32_t end = succ_xadj[s + 1];
            for (uint32_t e = succ_xadj[s]; e < end; ++e) {
                StateId t = succ[e];
                if constexpr (Scored) {
                    const Score cand = score_cur_[s] +
                        static_cast<Score>(cx.succ_w_[e]);
                    if (!enabled_mask_.testUnchecked(t)) {
                        enabled_mask_.setUnchecked(t);
                        enabled_.push_back(t);
                        score_nxt_[t] = cand;
                    } else {
                        score_nxt_[t] = scoreCombine(
                            opts_.semiring, score_nxt_[t], cand);
                    }
                } else {
                    if (!enabled_mask_.testUnchecked(t)) {
                        enabled_mask_.setUnchecked(t);
                        enabled_.push_back(t);
                    }
                }
            }
        }
        for (StateId s : cx.all_input_) {
            if constexpr (Scored) {
                const Score w = static_cast<Score>(cx.start_w_[s]);
                if (!enabled_mask_.testUnchecked(s)) {
                    enabled_mask_.setUnchecked(s);
                    enabled_.push_back(s);
                    score_nxt_[s] = w;
                } else {
                    score_nxt_[s] =
                        scoreCombine(opts_.semiring, score_nxt_[s], w);
                }
            } else {
                if (!enabled_mask_.testUnchecked(s)) {
                    enabled_mask_.setUnchecked(s);
                    enabled_.push_back(s);
                }
            }
        }
        if constexpr (Scored)
            score_cur_.swap(score_nxt_);
        ++offset_;
    }
}

void
MatchEngine::feedDense(const uint8_t *data, size_t size)
{
    if (ctx_->scored())
        feedDenseImpl<true>(data, size);
    else
        feedDenseImpl<false>(data, size);
}

template <bool Scored>
void
MatchEngine::feedDenseImpl(const uint8_t *data, size_t size)
{
    const MatchContext &cx = *ctx_;
    const uint32_t P = cx.dense_partitions_;
    const size_t words = static_cast<size_t>(P) * kWordsPerPartition;
    uint64_t *cur = dense_cur_.raw().data();
    uint64_t *nxt = dense_nxt_.raw().data();
    const uint64_t *rep_mask = cx.dense_report_.data();
    const uint64_t *lswitch = cx.dense_lswitch_.data();
    Score *scur = Scored ? dense_score_cur_.data() : nullptr;
    Score *snxt = Scored ? dense_score_nxt_.data() : nullptr;

    for (size_t i = 0; i < size; ++i) {
        uint8_t c = data[i];
        std::fill(nxt, nxt + words, 0);
        [[maybe_unused]] uint64_t score_epoch = 0;
        if constexpr (Scored)
            score_epoch = ++dense_epoch_counter_;

        const uint64_t *rows = &cx.dense_rows_[static_cast<size_t>(c) *
                                               words];
        for (uint32_t p = 0; p < P; ++p) {
            const size_t base = static_cast<size_t>(p) *
                kWordsPerPartition;
            const uint64_t e0 = cur[base + 0];
            const uint64_t e1 = cur[base + 1];
            const uint64_t e2 = cur[base + 2];
            const uint64_t e3 = cur[base + 3];
            if (!(e0 | e1 | e2 | e3))
                continue;
            // The §2.2 row read: the SRAM row *is* the match vector.
            uint64_t m[4] = {e0 & rows[base + 0], e1 & rows[base + 1],
                             e2 & rows[base + 2], e3 & rows[base + 3]};
            if (!(m[0] | m[1] | m[2] | m[3]))
                continue;
            for (int w = 0; w < 4; ++w) {
                uint64_t mw = m[w];
                if (!mw)
                    continue;
                if (collect_) {
                    uint64_t rw = mw & rep_mask[base + w];
                    while (rw) {
                        int b = std::countr_zero(rw);
                        uint32_t di = static_cast<uint32_t>(
                            (base + static_cast<size_t>(w)) * 64 +
                            static_cast<size_t>(b));
                        if constexpr (Scored)
                            cycle_report_scored_.emplace_back(
                                cx.state_of_dense_[di], scur[di]);
                        else
                            cycle_report_scratch_.push_back(
                                cx.state_of_dense_[di]);
                        rw &= rw - 1;
                    }
                }
                // Matched states drive their L-switch rows and their
                // few G-switch wires.
                while (mw) {
                    int b = std::countr_zero(mw);
                    uint32_t di = static_cast<uint32_t>(
                        (base + static_cast<size_t>(w)) * 64 +
                        static_cast<size_t>(b));
                    const uint64_t *row = lswitch +
                        static_cast<size_t>(di) * kWordsPerPartition;
                    nxt[base + 0] |= row[0];
                    nxt[base + 1] |= row[1];
                    nxt[base + 2] |= row[2];
                    nxt[base + 3] |= row[3];
                    for (uint32_t e = cx.dense_cross_xadj_[di];
                         e < cx.dense_cross_xadj_[di + 1]; ++e) {
                        uint32_t ti = cx.dense_cross_[e];
                        nxt[ti >> 6] |= uint64_t{1} << (ti & 63);
                    }
                    if constexpr (Scored) {
                        // Scalar score propagation via the successor
                        // CSR; the epoch array discriminates first
                        // write from ⊕-combine.
                        const StateId s = cx.state_of_dense_[di];
                        const Score from = scur[di];
                        const uint32_t end = cx.succ_xadj_[s + 1];
                        for (uint32_t e = cx.succ_xadj_[s]; e < end;
                             ++e) {
                            const uint32_t ti =
                                cx.dense_index_of_[cx.succ_[e]];
                            const Score cand = from +
                                static_cast<Score>(cx.succ_w_[e]);
                            if (dense_score_epoch_[ti] != score_epoch) {
                                dense_score_epoch_[ti] = score_epoch;
                                snxt[ti] = cand;
                            } else {
                                snxt[ti] = scoreCombine(
                                    opts_.semiring, snxt[ti], cand);
                            }
                        }
                    }
                    mw &= mw - 1;
                }
            }
        }
        if constexpr (Scored)
            emitCycleReportsScored();
        else
            emitCycleReports();

        for (const auto &[w, mask] : cx.dense_allinput_words_)
            nxt[w] |= mask;
        if constexpr (Scored) {
            for (StateId s : cx.all_input_) {
                const uint32_t ti = cx.dense_index_of_[s];
                const Score w = static_cast<Score>(cx.start_w_[s]);
                if (dense_score_epoch_[ti] != score_epoch) {
                    dense_score_epoch_[ti] = score_epoch;
                    snxt[ti] = w;
                } else {
                    snxt[ti] =
                        scoreCombine(opts_.semiring, snxt[ti], w);
                }
            }
        }

        std::swap(cur, nxt);
        if constexpr (Scored)
            std::swap(scur, snxt);
        ++offset_;
    }
    // An odd symbol count leaves the live frontier in dense_nxt_'s
    // storage; swap the vectors so dense_cur_ owns it again.
    if (cur != dense_cur_.raw().data())
        std::swap(dense_cur_, dense_nxt_);
    if constexpr (Scored) {
        if (scur != dense_score_cur_.data())
            dense_score_cur_.swap(dense_score_nxt_);
    }
}

} // namespace ca::match
