/**
 * @file
 * Functional match engine (docs/MATCH.md).
 *
 * The serving-path counterpart of the cycle-accurate simulator: the same
 * frontier semantics and the same bit-identical report stream, with none
 * of the architecture model (no FIFO-refill accounting, no output-buffer
 * interrupts, no per-cycle activity counters feeding the energy model).
 * `CacheAutomatonSim` answers "what would the hardware do, cycle by
 * cycle"; `MatchEngine` answers "which reports fire, as fast as this CPU
 * can compute them". tests/match_test.cpp holds the two report-identical
 * on randomized automata under every kernel.
 *
 * The immutable per-automaton tables (flattened labels/successors plus
 * the dense §2.2 row-read tables) live in a shared `MatchContext`, so N
 * engines running chunks of one stream in parallel share one copy of
 * the tables and carry only their own frontier.
 */
#ifndef CA_MATCH_MATCH_ENGINE_H
#define CA_MATCH_MATCH_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "core/bitvector.h"
#include "sim/engine.h"

namespace ca::match {

/** Engine controls (a functional subset of SimOptions). */
struct MatchOptions
{
    /** Per-symbol stepper; Auto re-decides per block on frontier density. */
    SimKernel kernel = SimKernel::Auto;
    /** Auto: dense while the density EWMA exceeds this (see SimOptions). */
    double autoDensityThreshold = 0.02;
    /** Auto: EWMA smoothing factor for per-block density samples. */
    double autoEwmaAlpha = 0.25;
    /** Auto: symbols per block between kernel re-evaluations. */
    uint32_t autoBlockSymbols = 4096;
    /** ⊕ for weighted automata (ignored for unweighted ones). */
    ScoreSemiring semiring = ScoreSemiring::MaxPlus;
};

/**
 * Immutable per-automaton tables shared by every MatchEngine bound to
 * the same mapped automaton. Construction flattens the NFA exactly the
 * way CacheAutomatonSim does (same layouts, same dense geometry) and
 * additionally precomputes the two frontier sets the speculative
 * chunk-parallel matcher needs:
 *
 *  - startFrontier(): the exact offset-0 frontier (StartOfData and
 *    AllInput start states).
 *  - reachableFrontier(): AllInput starts plus every state reachable
 *    through at least one transition from any start state — a superset
 *    of the true enabled frontier at *every* offset >= 1. Speculative
 *    chunks seed from this overapproximation (the SFA construction's
 *    "all candidate states" set, restricted to what is reachable at
 *    all) and converge toward the exact frontier over a warm-up window.
 *
 * Thread-safe by immutability: after the constructor returns, the
 * context is never written again.
 */
class MatchContext
{
  public:
    explicit MatchContext(const MappedAutomaton &mapped);

    /**
     * Co-owning variant for automata loaded from disk.
     * @throws CaError when @p mapped is null.
     */
    explicit MatchContext(std::shared_ptr<const MappedAutomaton> mapped);

    size_t numStates() const { return num_states_; }
    uint32_t numPartitions() const { return dense_partitions_; }

    /** False when the mapping's geometry rules out the dense kernel. */
    bool denseAvailable() const { return dense_available_; }

    /** True when the bound automaton carries transition weights. */
    bool scored() const { return scored_; }

    const std::vector<StateId> &startFrontier() const
    {
        return start_frontier_;
    }
    const std::vector<StateId> &reachableFrontier() const
    {
        return reachable_frontier_;
    }

    const MappedAutomaton &mapped() const { return mapped_; }

  private:
    friend class MatchEngine;

    void buildSparseTables();
    void buildDenseTables();
    void buildFrontiers();

    /** Keeps a loaded automaton alive; null when bound by reference. */
    std::shared_ptr<const MappedAutomaton> owned_;
    const MappedAutomaton &mapped_;
    size_t num_states_ = 0;

    // Sparse tables (layouts shared with CacheAutomatonSim).
    std::vector<StateId> all_input_;
    /** Flat 4-word label images: labels_[s*4 + w]. */
    std::vector<uint64_t> labels_;
    /** CSR successor lists. */
    std::vector<uint32_t> succ_xadj_;
    std::vector<StateId> succ_;
    /** Report flag + id packed: (id << 1) | report. */
    std::vector<uint64_t> report_info_;

    // Scoring tables (built only for weighted automata).
    bool scored_ = false;
    /** Per-edge weights, CSR-parallel to succ_. */
    std::vector<Weight> succ_w_;
    /** Per-state start weights. */
    std::vector<Weight> start_w_;

    // Dense tables (§2.2 geometry: 4 words = 256 bits per partition).
    bool dense_available_ = false;
    uint32_t dense_partitions_ = 0;
    std::vector<uint32_t> dense_index_of_;
    std::vector<StateId> state_of_dense_;
    /** Symbol-major row reads: rows_[((c*P)+p)*4 + w]. */
    std::vector<uint64_t> dense_rows_;
    /** L-switch: per-state intra-partition successor masks. */
    std::vector<uint64_t> dense_lswitch_;
    /** G-switch: CSR of cross-partition successor dense indices. */
    std::vector<uint32_t> dense_cross_xadj_;
    std::vector<uint32_t> dense_cross_;
    /** Per-partition reporting mask (p*4+w). */
    std::vector<uint64_t> dense_report_;
    /** Non-zero words of the all-input start mask, OR-ed in each cycle. */
    std::vector<std::pair<uint32_t, uint64_t>> dense_allinput_words_;

    // Precomputed frontier sets (sorted, deduplicated).
    std::vector<StateId> start_frontier_;
    std::vector<StateId> reachable_frontier_;
};

/**
 * One stream's worth of mutable match state over a shared MatchContext.
 * Cheap to construct (O(states) bitvectors, no table builds); a thread
 * pool keeps one per worker and reuses it across chunks via setState().
 *
 * Semantics contract (identical to CacheAutomatonSim and the CPU
 * oracle): a report fires at the offset of the symbol that activated
 * the reporting state, and within one symbol reports are emitted in
 * ascending state-id order.
 */
class MatchEngine
{
  public:
    explicit MatchEngine(std::shared_ptr<const MatchContext> ctx,
                         const MatchOptions &opts = {});

    /** Rewinds to offset 0 with the exact start frontier. */
    void reset();

    /**
     * Loads an arbitrary frontier at an arbitrary offset (the chunk-
     * parallel join's primitive; also the checkpoint-restore path).
     * Clears pending reports. @p frontier need not be sorted; duplicate
     * and out-of-range entries are rejected.
     */
    void setState(const std::vector<StateId> &frontier, uint64_t offset);

    /**
     * setState with per-state accumulated scores, parallel to
     * @p frontier (the scored checkpoint-restore path). An empty
     * @p scores means all-zero; otherwise sizes must match.
     */
    void setState(const std::vector<StateId> &frontier,
                  const std::vector<Score> &scores, uint64_t offset);

    /** Consumes one chunk of the stream; callable repeatedly. */
    void feed(const uint8_t *data, size_t size);

    /** Moves out the reports accumulated since the last setState/take. */
    std::vector<Report> takeReports();

    /**
     * Report collection toggle: speculative warm-up runs with
     * collection off (those symbols' reports belong to the previous
     * chunk's exact pass), then flips it on for the chunk body.
     */
    void setCollectReports(bool on) { collect_ = on; }

    /** The live enabled frontier, sorted ascending. */
    std::vector<StateId> frontier() const;

    /**
     * Per-state scores parallel to frontier()'s order. Empty for
     * unweighted automata.
     */
    std::vector<Score> frontierScores() const;

    /** Absolute stream position: the offset the next symbol gets. */
    uint64_t streamOffset() const { return offset_; }

    /** Kernel accounting (tests + bench introspection). */
    uint64_t sparseSymbols() const { return sparse_symbols_; }
    uint64_t denseSymbols() const { return dense_symbols_; }

    const MatchContext &context() const { return *ctx_; }

  private:
    /** Steppers, instantiated scored/unscored at compile time (the
        Scored=false bodies are the exact unweighted kernels). */
    template <bool Scored>
    void feedSparseImpl(const uint8_t *data, size_t size);
    template <bool Scored>
    void feedDenseImpl(const uint8_t *data, size_t size);
    void feedSparse(const uint8_t *data, size_t size);
    void feedDense(const uint8_t *data, size_t size);
    void emitCycleReports();
    void emitCycleReportsScored();
    bool chooseDense();
    void syncDenseFromSparse();
    void syncSparseFromDense();
    size_t frontierSize() const;

    std::shared_ptr<const MatchContext> ctx_;
    MatchOptions opts_;
    bool collect_ = true;

    // Sparse frontier representation.
    std::vector<StateId> enabled_;
    BitVector enabled_mask_;
    std::vector<StateId> active_scratch_;
    std::vector<StateId> cycle_report_scratch_;
    std::vector<std::pair<StateId, Score>> cycle_report_scored_;

    // Dense frontier representation.
    BitVector dense_cur_;
    BitVector dense_nxt_;
    bool dense_active_ = false;

    // Scored-frontier state (allocated only for weighted automata).
    std::vector<Score> score_cur_;
    std::vector<Score> score_nxt_;
    std::vector<Score> dense_score_cur_;
    std::vector<Score> dense_score_nxt_;
    std::vector<uint64_t> dense_score_epoch_;
    uint64_t dense_epoch_counter_ = 0;

    // Auto-kernel state.
    double density_ewma_ = 0.0;
    bool density_seeded_ = false;

    uint64_t offset_ = 0;
    uint64_t sparse_symbols_ = 0;
    uint64_t dense_symbols_ = 0;
    std::vector<Report> reports_;
};

} // namespace ca::match

#endif // CA_MATCH_MATCH_ENGINE_H
