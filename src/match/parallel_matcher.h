/**
 * @file
 * Chunk-parallel single-stream matching (docs/MATCH.md).
 *
 * The SFA idea (PAPERS.md: *Simultaneous Finite Automata*) applied to
 * the mapped automaton: split one buffer into N chunks, run chunk 0
 * exactly from the incoming frontier, and run chunks 1..N-1
 * *speculatively* in parallel. Each speculative chunk seeds from the
 * reachable-frontier overapproximation and composes the frontier
 * transformer over a warm-up window (the tail of the preceding chunk,
 * reports suppressed); because one automaton step is monotone in the
 * frontier and the seed contains every reachable frontier, the
 * speculative start frontier is always a superset of the true one —
 * when the warm-up has converged to *equality*, the chunk's reports and
 * end frontier are exact and the join is free. On a miss the joiner
 * replays the chunk from the exact frontier (counted; `ca.match.*`).
 *
 * The joiner walks chunks left to right, so the returned report stream
 * is byte-identical to a serial MatchEngine run — tests/match_test.cpp
 * and bench_parallel_match enforce this against the oracle on every
 * suite ruleset.
 */
#ifndef CA_MATCH_PARALLEL_MATCHER_H
#define CA_MATCH_PARALLEL_MATCHER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "match/match_engine.h"

namespace ca::match {

/** ParallelMatcher controls. */
struct ParallelOptions
{
    /**
     * Worker count including the calling thread; 0 = one per hardware
     * thread. Degree 1 always runs serially.
     */
    size_t degree = 0;
    /**
     * Buffers shorter than 2x this run serially; otherwise the chunk
     * count is capped so no chunk is smaller than this (speculation
     * must amortize its warm-up window).
     */
    size_t minChunkBytes = 64 << 10;
    /**
     * Speculative warm-up window: how many tail bytes of the preceding
     * chunk each speculative chunk replays (reports off) to converge
     * the overapproximated frontier before its own bytes begin.
     */
    size_t overlapBytes = 4 << 10;
    /** Per-engine kernel options. */
    MatchOptions engine;
};

/** Cumulative speculation statistics (mirrors the ca.match.* counters). */
struct ParallelStats
{
    uint64_t calls = 0;        ///< match()/tryMatch() invocations.
    uint64_t serialCalls = 0;  ///< Calls that ran without chunking.
    uint64_t bytes = 0;        ///< Total input bytes matched.
    uint64_t chunks = 0;       ///< Chunks executed (incl. chunk 0).
    uint64_t speculationHits = 0; ///< Speculative chunks joined for free.
    uint64_t replays = 0;      ///< Speculative chunks replayed exactly.
    uint64_t replayedBytes = 0;
    uint64_t joinMicros = 0;   ///< Wall time in the join walk (waits,
                               ///< frontier compares, replays).
};

/** One match() call's output. */
struct MatchResult
{
    std::vector<Report> reports;
    /** Exact frontier after the last byte, sorted ascending. */
    std::vector<StateId> frontier;
    /** Per-state scores parallel to frontier; empty when unweighted. */
    std::vector<Score> frontierScores;
    /** Absolute stream offset after the last byte. */
    uint64_t endOffset = 0;
};

/**
 * A persistent pool of MatchEngines that match one buffer with
 * speculative chunk parallelism. One matcher serializes its calls (it
 * owns one set of engines); tryMatch() is the non-blocking variant the
 * StreamServer uses so concurrent sessions fall back to their serial
 * per-worker engines instead of queueing here.
 */
class ParallelMatcher
{
  public:
    explicit ParallelMatcher(std::shared_ptr<const MatchContext> ctx,
                             const ParallelOptions &opts = {});
    ~ParallelMatcher();

    ParallelMatcher(const ParallelMatcher &) = delete;
    ParallelMatcher &operator=(const ParallelMatcher &) = delete;

    /** Matches a whole stream from offset 0 (start frontier). */
    MatchResult match(const uint8_t *data, size_t size);

    /** Matches a buffer continuing from an arbitrary frontier/offset. */
    MatchResult match(const std::vector<StateId> &frontier,
                      uint64_t offset, const uint8_t *data, size_t size);

    /** match(), unless another call is in flight (then nullopt). */
    std::optional<MatchResult> tryMatch(
        const std::vector<StateId> &frontier, uint64_t offset,
        const uint8_t *data, size_t size);

    /** Resolved worker count (>= 1), including the calling thread. */
    size_t degree() const { return degree_; }

    const MatchContext &context() const { return *ctx_; }

    ParallelStats stats() const;

  private:
    struct Chunk
    {
        const uint8_t *warm = nullptr; ///< Warm-up window bytes.
        size_t warmLen = 0;
        const uint8_t *data = nullptr; ///< The chunk body.
        size_t len = 0;
        uint64_t base = 0;             ///< Absolute offset of data[0].
        std::vector<StateId> specStart; ///< Frontier after warm-up.
        std::vector<StateId> end;       ///< Frontier after the body.
        std::vector<Report> reports;
        bool done = false;
    };

    MatchResult runLocked(const std::vector<StateId> &frontier,
                          uint64_t offset, const uint8_t *data,
                          size_t size);
    void runSerial(MatchResult &out,
                   const std::vector<StateId> &frontier, uint64_t offset,
                   const uint8_t *data, size_t size);
    void workerLoop();
    void runChunk(MatchEngine &eng, Chunk &c);

    std::shared_ptr<const MatchContext> ctx_;
    ParallelOptions opts_;
    size_t degree_ = 1;

    /** The calling thread's engine: chunk 0, replays, serial calls. */
    MatchEngine join_engine_;

    std::mutex call_mu_; ///< Serializes match() calls.

    // Work queue (guarded by mu_). Chunks live in the caller's frame
    // for the duration of the call; the queue holds borrowed pointers.
    std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::deque<Chunk *> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;

    mutable std::mutex stats_mu_;
    ParallelStats stats_;
};

/**
 * Parses a CA_MATCH_PARALLEL / --match-parallel value into a degree:
 * "off"/"0"/"1" = disabled (0), "auto" = one per hardware thread,
 * an integer >= 2 = that many workers. nullopt on anything else.
 */
std::optional<size_t> parseMatchParallel(std::string_view value);

/**
 * The $CA_MATCH_PARALLEL override, parsed once per process.
 * Unrecognized values warn once and fall back to "auto" (mirroring
 * $CA_SIM_KERNEL's unknown-value handling). Returns nullopt only when
 * the variable is unset/empty.
 */
std::optional<size_t> matchParallelEnvOverride();

} // namespace ca::match

#endif // CA_MATCH_PARALLEL_MATCHER_H
