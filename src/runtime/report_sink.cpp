#include "runtime/report_sink.h"

namespace ca::runtime {

void
CollectingSink::onReports(uint32_t sessionId, const Report *reports,
                          size_t count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &vec = reports_[sessionId];
    vec.insert(vec.end(), reports, reports + count);
}

void
CollectingSink::onClose(uint32_t sessionId, const SessionSummary &summary)
{
    std::lock_guard<std::mutex> lock(mutex_);
    summaries_[sessionId] = summary;
}

std::vector<Report>
CollectingSink::reports(uint32_t sessionId) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = reports_.find(sessionId);
    return it == reports_.end() ? std::vector<Report>{} : it->second;
}

SessionSummary
CollectingSink::summary(uint32_t sessionId) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = summaries_.find(sessionId);
    return it == summaries_.end() ? SessionSummary{} : it->second;
}

size_t
CollectingSink::sessionsClosed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summaries_.size();
}

} // namespace ca::runtime
