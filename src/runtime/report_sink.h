/**
 * @file
 * Match-report sinks for the multi-stream runtime.
 *
 * The hardware raises an output-buffer interrupt and the OS drains the
 * report buffer (§2.8); in the runtime that drain is a ReportSink. A
 * worker delivers each session's reports in stream order — the sequence
 * of onReports() calls for one session, concatenated, is byte-identical
 * to a single-threaded CacheAutomatonSim::run() on the same input
 * (docs/RUNTIME.md, "Determinism").
 *
 * Calls for *different* sessions arrive concurrently from different
 * workers, so sinks must be thread-safe. Sinks must not call back into
 * StreamSession/StreamServer (a sink that blocks on flush() would
 * deadlock the worker delivering to it).
 */
#ifndef CA_RUNTIME_REPORT_SINK_H
#define CA_RUNTIME_REPORT_SINK_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "baseline/nfa_engine.h"

namespace ca::runtime {

/** Final accounting delivered with a session's close notification. */
struct SessionSummary
{
    uint64_t symbols = 0; ///< Stream bytes simulated.
    uint64_t reports = 0; ///< Reports delivered over the session.
};

/** Consumer of a session's match reports. */
class ReportSink
{
  public:
    virtual ~ReportSink() = default;

    /**
     * One in-order batch of reports from session @p sessionId (offsets
     * are absolute stream positions). The array is only valid for the
     * duration of the call.
     */
    virtual void onReports(uint32_t sessionId, const Report *reports,
                           size_t count) = 0;

    /** The session closed; no further calls for @p sessionId follow. */
    virtual void
    onClose(uint32_t sessionId, const SessionSummary &summary)
    {
        (void)sessionId;
        (void)summary;
    }
};

/** Adapts plain functions/lambdas to the sink interface. */
class CallbackSink final : public ReportSink
{
  public:
    using ReportsFn =
        std::function<void(uint32_t, const Report *, size_t)>;
    using CloseFn = std::function<void(uint32_t, const SessionSummary &)>;

    explicit CallbackSink(ReportsFn on_reports, CloseFn on_close = {})
        : on_reports_(std::move(on_reports)),
          on_close_(std::move(on_close))
    {
    }

    void
    onReports(uint32_t sessionId, const Report *reports,
              size_t count) override
    {
        if (on_reports_)
            on_reports_(sessionId, reports, count);
    }

    void
    onClose(uint32_t sessionId, const SessionSummary &summary) override
    {
        if (on_close_)
            on_close_(sessionId, summary);
    }

  private:
    ReportsFn on_reports_;
    CloseFn on_close_;
};

/**
 * Accumulates every report per session (tests, small batch jobs). The
 * per-session vectors are in stream order.
 */
class CollectingSink final : public ReportSink
{
  public:
    void onReports(uint32_t sessionId, const Report *reports,
                   size_t count) override;
    void onClose(uint32_t sessionId,
                 const SessionSummary &summary) override;

    /** Reports collected for @p sessionId (copy; safe after close). */
    std::vector<Report> reports(uint32_t sessionId) const;

    /** Summary delivered at close ({} if the session is still open). */
    SessionSummary summary(uint32_t sessionId) const;

    size_t sessionsClosed() const;

  private:
    mutable std::mutex mutex_;
    std::map<uint32_t, std::vector<Report>> reports_;
    std::map<uint32_t, SessionSummary> summaries_;
};

/**
 * Counts reports without storing them — the high-traffic sink (an IDS
 * counting alerts, a bench measuring aggregate throughput).
 */
class CountingSink final : public ReportSink
{
  public:
    void
    onReports(uint32_t, const Report *, size_t count) override
    {
        total_reports_.fetch_add(count, std::memory_order_relaxed);
        batches_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    onClose(uint32_t, const SessionSummary &summary) override
    {
        total_symbols_.fetch_add(summary.symbols,
                                 std::memory_order_relaxed);
        closed_.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t totalReports() const { return total_reports_.load(); }
    uint64_t totalSymbols() const { return total_symbols_.load(); }
    uint64_t batches() const { return batches_.load(); }
    uint64_t sessionsClosed() const { return closed_.load(); }

  private:
    std::atomic<uint64_t> total_reports_{0};
    std::atomic<uint64_t> total_symbols_{0};
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> closed_{0};
};

} // namespace ca::runtime

#endif // CA_RUNTIME_REPORT_SINK_H
