/**
 * @file
 * One input stream's session on a StreamServer.
 *
 * A session is the runtime's unit of multiplexing (§2.8-2.9): producers
 * submit stream chunks into a bounded queue (backpressure: submit()
 * blocks when full, trySubmit() refuses), workers drain the queue in
 * scheduling slices, and the session's automaton state travels between
 * workers as a SimCheckpoint — the paper's suspend/resume context
 * switch, so sessions can outnumber workers.
 *
 * Thread model: any number of threads may submit to *different*
 * sessions; per session, producers may also race (chunk order then
 * follows lock acquisition). flush()/close() may be called from any
 * producer thread. All report delivery happens on worker threads, in
 * stream order per session (see report_sink.h).
 */
#ifndef CA_RUNTIME_STREAM_SESSION_H
#define CA_RUNTIME_STREAM_SESSION_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/report_sink.h"
#include "sim/engine.h"

namespace ca::runtime {

class StreamServer;

/** Point-in-time accounting for one session. */
struct SessionStats
{
    uint64_t symbols = 0;         ///< Stream bytes simulated so far.
    uint64_t bytesSubmitted = 0;  ///< Bytes accepted into the queue.
    uint64_t chunksSubmitted = 0; ///< Chunks accepted into the queue.
    uint64_t reports = 0;         ///< Reports delivered to the sink.
    uint64_t slices = 0;          ///< Scheduling slices executed.
    uint64_t contextSwitches = 0; ///< Suspensions with work remaining.
    uint64_t queueFullStalls = 0; ///< submit() calls that had to block.
    uint64_t suspensions = 0;     ///< §2.9 suspend() calls taken.
    /** Bit i set when worker i ran a slice of this session. */
    uint64_t workerMask = 0;
};

/**
 * Live point-in-time view of one session, for the observability plane
 * (StreamServer::inspect(), STATS replies, ca_top).
 */
struct SessionLiveStats
{
    uint32_t id = 0;
    SessionStats stats;
    uint64_t queuedBytes = 0;  ///< Submitted but not yet simulated.
    uint32_t queuedChunks = 0; ///< Chunks waiting in the queue.
    bool suspended = false;
    bool closing = false;      ///< close() requested, drain pending.
    bool closed = false;       ///< Fully drained and finalized.
    /** EWMA (~1 s time constant) of simulated symbols per second. */
    double symbolsPerSec = 0.0;
};

/**
 * Handle to one open stream. Created by StreamServer::open() and owned
 * by the server; valid until the server is destroyed. Lifecycle:
 * open → submit()* → [flush()]* → close().
 */
class StreamSession
{
  public:
    uint32_t id() const { return id_; }

    /**
     * Queues a copy of @p data for simulation, blocking while the queue
     * is at capacity. Rejects (CaError) after close(). Empty chunks are
     * accepted and ignored.
     */
    void submit(const uint8_t *data, size_t size);

    void
    submit(const std::vector<uint8_t> &chunk)
    {
        submit(chunk.data(), chunk.size());
    }

    /** Non-blocking submit; false when the queue is full. */
    bool trySubmit(const uint8_t *data, size_t size);

    /**
     * Blocks until every chunk submitted before this call has been
     * simulated and its reports delivered to the sink.
     */
    void flush();

    /**
     * Declares end-of-stream and blocks until the queue is drained and
     * the sink's onClose() has run. Implicitly resume()s a suspended
     * session so the drain can complete. Idempotent.
     */
    void close();

    bool closed() const;

    /**
     * §2.9 suspend: takes the session off the scheduler (queued input
     * is retained; producers may keep submitting up to the queue bound)
     * and blocks until the in-flight slice, if any, has finished.
     * Returns the suspended automaton state — the active-state vector
     * and input offset the hardware would save — which can seed a new
     * session via StreamServer::open(sink, checkpoint), including on a
     * different server over the same mapped automaton.
     */
    SimCheckpoint suspend();

    /** Puts a suspended session back on the scheduler. */
    void resume();

    SessionStats stats() const;

    /** Live view: stats plus queue depth, state, and throughput EWMA. */
    SessionLiveStats live() const;

  private:
    friend class StreamServer;

    StreamSession(StreamServer &server, uint32_t id, ReportSink &sink);

    StreamSession(const StreamSession &) = delete;
    StreamSession &operator=(const StreamSession &) = delete;

    /** Scheduler visibility (guarded by mutex_). */
    enum class RunState {
        Idle,   ///< Not queued; scheduled on next submit/close.
        Queued, ///< In the server run queue awaiting a worker.
        Running ///< A worker is executing a slice.
    };

    // --- Worker-side interface (called by StreamServer) ---------------

    /**
     * Copies up to @p max_bytes of queued input into @p out (possibly
     * spanning chunks), advancing the queue and waking blocked
     * producers. Returns the number of bytes taken.
     */
    size_t takeInput(std::vector<uint8_t> &out, size_t max_bytes);

    StreamServer &server_;
    const uint32_t id_;
    ReportSink &sink_;

    mutable std::mutex mutex_;
    /** Producers blocked on a full queue. */
    std::condition_variable space_cv_;
    /** flush()/close() waiters. */
    std::condition_variable drain_cv_;

    std::deque<std::vector<uint8_t>> chunks_;
    /** Read offset into chunks_.front() (suspend mid-chunk). */
    size_t front_pos_ = 0;
    /** Total queued-but-unsimulated bytes (fast has-work checks). */
    size_t queued_bytes_ = 0;

    RunState run_state_ = RunState::Idle;
    bool close_requested_ = false;
    bool finalized_ = false;
    bool suspended_ = false;

    /**
     * Suspended automaton state (§2.9), seeded with the automaton's
     * start frontier at open(). Between slices only suspend() reads it;
     * while Running only the owning worker touches it (handoff between
     * workers is ordered by the scheduler and session mutexes).
     */
    SimCheckpoint checkpoint_;

    SessionStats stats_;

    /** Throughput EWMA state (guarded by mutex_, updated per slice). */
    double rate_ewma_ = 0.0;
    std::chrono::steady_clock::time_point rate_updated_{};
};

} // namespace ca::runtime

#endif // CA_RUNTIME_STREAM_SESSION_H
