/**
 * @file
 * Multi-stream runtime: a worker pool time-multiplexing many stream
 * sessions over one immutable mapped automaton.
 *
 * The paper's system integration (§2.8-2.9) gives the Cache Automaton an
 * input FIFO, an output report buffer, and OS suspend/resume of the
 * active-state vector so one accelerator serves many streams. The
 * StreamServer is that OS layer in software:
 *
 *   - One MappedAutomaton, shared read-only by every worker (each worker
 *     binds its own CacheAutomatonSim to it — the per-stream state is in
 *     the SimCheckpoint, not the automaton).
 *   - N StreamSessions, each an independent stream with a bounded chunk
 *     queue and a ReportSink.
 *   - A fixed pool of workers executing sessions in round-robin
 *     scheduling slices of at most `sliceSymbols` input bytes; a session
 *     with work left re-enters the tail of the run queue (a context
 *     switch), so sessions may far outnumber workers and still make
 *     fair progress.
 *
 * Determinism: each session's delivered report stream is byte-identical
 * to a single-threaded CacheAutomatonSim::run() over the concatenation
 * of its chunks, for every worker count, slice length, and scheduling
 * interleaving (enforced by tests/runtime_test.cpp).
 */
#ifndef CA_RUNTIME_STREAM_SERVER_H
#define CA_RUNTIME_STREAM_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "compiler/mapping.h"
#include "match/parallel_matcher.h"
#include "runtime/stream_session.h"
#include "sim/engine.h"

namespace ca::runtime {

/** Server configuration. */
struct StreamServerOptions
{
    /** Worker threads (clamped to >= 1). */
    size_t workers = 4;
    /** Max queued chunks per session before submit() blocks. */
    size_t sessionQueueDepth = 16;
    /**
     * Context-switch quantum: max input bytes one scheduling slice feeds
     * before the session is suspended and requeued (clamped to >= 1).
     */
    uint64_t sliceSymbols = 64 << 10;
    /**
     * Simulator options for the per-worker engines, including the
     * execution kernel (SimOptions::kernel — Sparse/Dense/Auto; with
     * Auto each worker adapts per slice to the density of the streams
     * it happens to run). collectReports is forced on (reports are the
     * product; the sink is the drain).
     */
    SimOptions sim;
    /**
     * Chunk-parallel single-stream matching (docs/MATCH.md): degree of
     * the shared ParallelMatcher, including the calling worker. 0 or 1
     * disables it; N >= 2 fans large submitted chunks of one session
     * out across N threads with SFA-style speculative joins. The
     * $CA_MATCH_PARALLEL environment variable ("off"/"auto"/<count>),
     * when set, overrides this.
     */
    size_t matchParallelism = 0;
    /**
     * Minimum gathered input (bytes) before a slice routes through the
     * ParallelMatcher; smaller slices stay on the worker's serial
     * engine (speculation cannot amortize its warm-up on them).
     */
    size_t matchParallelMinBytes = 128 << 10;
};

/** Aggregate server accounting (all sessions, since construction). */
struct ServerStats
{
    uint64_t sessionsOpened = 0;
    uint64_t sessionsClosed = 0;
    uint64_t symbols = 0;
    uint64_t reports = 0;
    uint64_t slices = 0;
    uint64_t contextSwitches = 0;
};

/**
 * Point-in-time view of the whole runtime for the observability plane
 * (docs/OBSERVABILITY.md): aggregate totals, every session's live
 * stats, and each worker engine's kernel-decision counters.
 */
struct ServerInspect
{
    ServerStats totals;
    size_t workers = 0;
    /** Every session the server has opened (closed ones included). */
    std::vector<SessionLiveStats> sessions;
    /** One entry per worker, indexed by worker id. */
    std::vector<KernelDecisionStats> kernels;
    /** Resolved ParallelMatcher degree (0 when disabled). */
    size_t matchParallelism = 0;
    /** Cumulative speculation statistics (zero when disabled). */
    match::ParallelStats match;
};

/** The multi-stream runtime (one per mapped automaton). */
class StreamServer
{
  public:
    explicit StreamServer(const MappedAutomaton &mapped,
                          const StreamServerOptions &opts = {});

    /**
     * Co-owning variant for automata loaded from a persist artifact:
     * the server keeps the loaded automaton alive for its lifetime.
     * @throws CaError when @p mapped is null.
     */
    explicit StreamServer(std::shared_ptr<const MappedAutomaton> mapped,
                          const StreamServerOptions &opts = {});

    /**
     * Warm-starts a server from an on-disk artifact (docs/PERSIST.md):
     * loads, checksum-verifies, and cross-validates the compiled
     * automaton, then serves it — no compile pipeline on the process's
     * critical path. @throws CaError on a missing/corrupt artifact.
     */
    static std::unique_ptr<StreamServer>
    fromArtifact(const std::string &path,
                 const StreamServerOptions &opts = {});

    /** Closes every open session (draining them), then joins workers. */
    ~StreamServer();

    StreamServer(const StreamServer &) = delete;
    StreamServer &operator=(const StreamServer &) = delete;

    /**
     * Opens a new session reporting into @p sink. The sink must outlive
     * the session; the returned session lives until the server dies.
     */
    StreamSession &open(ReportSink &sink);

    /**
     * Opens a session resuming from a suspended automaton state (§2.9):
     * the first slice restore()s @p resume_from instead of resetting,
     * so report offsets continue the original stream's numbering. The
     * checkpoint must come from the same mapped automaton.
     */
    StreamSession &open(ReportSink &sink,
                        const SimCheckpoint &resume_from);

    /** close() on every session still open. */
    void closeAll();

    size_t workerCount() const { return workers_.size(); }
    const MappedAutomaton &mapped() const { return mapped_; }
    const StreamServerOptions &options() const { return opts_; }

    ServerStats stats() const;

    /**
     * The shared chunk-parallel matcher; null when matchParallelism
     * resolved to off. Exposed for benches and tests — traffic should
     * flow through sessions, which route to it automatically.
     */
    match::ParallelMatcher *parallelMatcher() { return matcher_.get(); }

    /**
     * Live snapshot of totals, every session, and per-worker kernel
     * decisions. Safe to call concurrently with running traffic (takes
     * each session's mutex briefly; kernel counters are relaxed
     * atomics). Must not race the server's destructor.
     */
    ServerInspect inspect() const;

  private:
    friend class StreamSession;

    /** Appends @p session to the run queue and wakes a worker. */
    void schedule(StreamSession *session);

    void workerLoop(size_t worker_index);

    /** Runs one scheduling slice of @p session on @p sim. */
    void runSlice(StreamSession &session, CacheAutomatonSim &sim,
                  size_t worker_index, std::vector<uint8_t> &buf);

    /** Keeps a loaded automaton alive; null when bound by reference. */
    std::shared_ptr<const MappedAutomaton> owned_;
    const MappedAutomaton &mapped_;
    StreamServerOptions opts_;
    /** Start-state frontier at offset 0: every session's first state. */
    SimCheckpoint initial_checkpoint_;

    /**
     * Chunk-parallel matching (null when disabled): one MatchContext
     * shares the flattened tables, one ParallelMatcher shares its
     * engine pool across all sessions. tryMatch()'s non-blocking
     * contract keeps concurrent sessions on their serial engines.
     */
    std::shared_ptr<const match::MatchContext> match_ctx_;
    std::unique_ptr<match::ParallelMatcher> matcher_;

    // Scheduler: run queue of sessions owed a slice.
    mutable std::mutex sched_mutex_;
    std::condition_variable sched_cv_;
    std::deque<StreamSession *> run_queue_;
    bool stopping_ = false;

    // Sessions (owned; stable addresses — workers hold raw pointers).
    mutable std::mutex sessions_mutex_;
    std::vector<std::unique_ptr<StreamSession>> sessions_;
    uint32_t next_session_id_ = 0;

    ServerStats stats_; ///< Guarded by sessions_mutex_.

    /**
     * Each worker's engine, registered at worker startup for
     * inspect()'s kernel-decision section (guarded by sessions_mutex_;
     * null until the worker has started). The pointers dangle once the
     * destructor joins the workers, which is why inspect() must not
     * race destruction.
     */
    std::vector<const CacheAutomatonSim *> worker_sims_;

    std::vector<std::thread> workers_;
};

} // namespace ca::runtime

#endif // CA_RUNTIME_STREAM_SERVER_H
