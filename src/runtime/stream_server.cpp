#include "runtime/stream_server.h"

#include <chrono>
#include <cmath>

#include "core/error.h"
#include "persist/artifact.h"
#include "telemetry/telemetry.h"

namespace ca::runtime {

namespace {

/** Null-checks before the delegating ctor dereferences. */
const MappedAutomaton &
requireAutomaton(const std::shared_ptr<const MappedAutomaton> &mapped)
{
    CA_FATAL_IF(!mapped, "StreamServer: null mapped automaton");
    return *mapped;
}

} // namespace

StreamServer::StreamServer(std::shared_ptr<const MappedAutomaton> mapped,
                           const StreamServerOptions &opts)
    : StreamServer(requireAutomaton(mapped), opts)
{
    owned_ = std::move(mapped);
}

std::unique_ptr<StreamServer>
StreamServer::fromArtifact(const std::string &path,
                           const StreamServerOptions &opts)
{
    CA_TRACE_SCOPE("ca.runtime.server_from_artifact");
    persist::LoadedArtifact loaded = persist::loadArtifact(path);
    return std::make_unique<StreamServer>(std::move(loaded.automaton),
                                          opts);
}

StreamServer::StreamServer(const MappedAutomaton &mapped,
                           const StreamServerOptions &opts)
    : mapped_(mapped), opts_(opts)
{
    if (opts_.workers == 0)
        opts_.workers = 1;
    if (opts_.sessionQueueDepth == 0)
        opts_.sessionQueueDepth = 1;
    if (opts_.sliceSymbols == 0)
        opts_.sliceSymbols = 1;
    // Reports are the product; the sink is the §2.8 output-buffer drain.
    opts_.sim.collectReports = true;
    if (opts_.matchParallelMinBytes == 0)
        opts_.matchParallelMinBytes = 1;
    if (std::optional<size_t> env = match::matchParallelEnvOverride())
        opts_.matchParallelism = *env;

    // The checkpoint a fresh session starts from: offset 0, the start
    // frontier (restore()-ing it is identical to reset()). Weighted
    // automata additionally seed each start state's startWeight so a
    // resumed session scores identically to a reset() one.
    const Nfa &nfa = mapped_.nfa();
    const bool scored = nfa.hasWeights();
    for (StateId s = 0; s < nfa.numStates(); ++s)
        if (nfa.state(s).start != StartType::None) {
            initial_checkpoint_.enabledStates.push_back(s);
            if (scored)
                initial_checkpoint_.enabledScores.push_back(
                    nfa.state(s).startWeight);
        }

    // The ParallelMatcher hands state between chunks as a bare frontier;
    // that drops accumulated scores, so weighted automata stay on the
    // per-worker serial engines (whose checkpoints carry scores).
    if (opts_.matchParallelism > 1 && !scored) {
        match::ParallelOptions popts;
        popts.degree = opts_.matchParallelism;
        // The functional engines honor the same kernel choice (and the
        // same $CA_SIM_KERNEL override) as the per-worker simulators.
        popts.engine.kernel = opts_.sim.kernel;
        if (std::optional<SimKernel> k = simKernelEnvOverride())
            popts.engine.kernel = *k;
        popts.engine.autoDensityThreshold = opts_.sim.autoDensityThreshold;
        popts.engine.autoEwmaAlpha = opts_.sim.autoEwmaAlpha;
        popts.engine.autoBlockSymbols = opts_.sim.autoBlockSymbols;
        match_ctx_ = std::make_shared<match::MatchContext>(mapped_);
        matcher_ = std::make_unique<match::ParallelMatcher>(match_ctx_,
                                                            popts);
        opts_.matchParallelism = matcher_->degree();
    } else {
        opts_.matchParallelism = 0;
    }

    worker_sims_.assign(opts_.workers, nullptr);
    workers_.reserve(opts_.workers);
    for (size_t i = 0; i < opts_.workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

StreamServer::~StreamServer()
{
    closeAll();
    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        stopping_ = true;
    }
    sched_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

StreamSession &
StreamServer::open(ReportSink &sink)
{
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.emplace_back(std::unique_ptr<StreamSession>(
        new StreamSession(*this, next_session_id_++, sink)));
    sessions_.back()->checkpoint_ = initial_checkpoint_;
    ++stats_.sessionsOpened;
    CA_COUNTER_ADD("ca.runtime.sessions_opened", 1);
    CA_GAUGE_SET("ca.runtime.sessions_open",
                 stats_.sessionsOpened - stats_.sessionsClosed);
    return *sessions_.back();
}

StreamSession &
StreamServer::open(ReportSink &sink, const SimCheckpoint &resume_from)
{
    for (StateId s : resume_from.enabledStates)
        CA_FATAL_IF(s >= mapped_.nfa().numStates(),
                    "resume checkpoint references state "
                        << s << " outside automaton");
    StreamSession &session = open(sink);
    // No worker has seen the session yet, so its suspended state can be
    // seeded without locking.
    session.checkpoint_ = resume_from;
    return session;
}

void
StreamServer::closeAll()
{
    std::vector<StreamSession *> to_close;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        for (auto &s : sessions_)
            to_close.push_back(s.get());
    }
    for (StreamSession *s : to_close)
        if (!s->closed())
            s->close();
}

ServerStats
StreamServer::stats() const
{
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    return stats_;
}

ServerInspect
StreamServer::inspect() const
{
    ServerInspect out;
    std::vector<StreamSession *> sessions;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        out.totals = stats_;
        out.workers = workers_.size();
        sessions.reserve(sessions_.size());
        for (const auto &s : sessions_)
            sessions.push_back(s.get());
        out.kernels.reserve(worker_sims_.size());
        for (const CacheAutomatonSim *sim : worker_sims_)
            out.kernels.push_back(sim != nullptr ? sim->kernelStats()
                                                 : KernelDecisionStats{});
    }
    if (matcher_) {
        out.matchParallelism = matcher_->degree();
        out.match = matcher_->stats();
    }
    // Session addresses are stable for the server's lifetime, so their
    // mutexes can be taken outside sessions_mutex_ (no nesting, no lock
    // ordering to get wrong).
    out.sessions.reserve(sessions.size());
    for (StreamSession *s : sessions)
        out.sessions.push_back(s->live());
    return out;
}

void
StreamServer::schedule(StreamSession *session)
{
    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        run_queue_.push_back(session);
    }
    sched_cv_.notify_one();
}

void
StreamServer::workerLoop(size_t worker_index)
{
    // One engine per worker, all bound to the shared read-only mapped
    // automaton; per-stream state arrives as a SimCheckpoint.
    CacheAutomatonSim sim(mapped_, opts_.sim);
    {
        // Register for inspect()'s kernel-decision section.
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        worker_sims_[worker_index] = &sim;
    }
    std::vector<uint8_t> buf;
    buf.reserve(static_cast<size_t>(
        std::min<uint64_t>(opts_.sliceSymbols, 1u << 20)));

    for (;;) {
        StreamSession *session = nullptr;
        {
            std::unique_lock<std::mutex> lock(sched_mutex_);
            sched_cv_.wait(lock, [&] {
                return stopping_ || !run_queue_.empty();
            });
            if (run_queue_.empty())
                return; // stopping, queue drained
            session = run_queue_.front();
            run_queue_.pop_front();
        }
        runSlice(*session, sim, worker_index, buf);
    }
}

void
StreamServer::runSlice(StreamSession &s, CacheAutomatonSim &sim,
                       size_t worker_index, std::vector<uint8_t> &buf)
{
    CA_TRACE_SCOPE_CAT("ca.runtime.slice", "ca.runtime");
    {
        std::lock_guard<std::mutex> lock(s.mutex_);
        if (s.suspended_) {
            // suspend() won the race before this slice started; park the
            // session until resume()/close() reschedules it.
            s.run_state_ = StreamSession::RunState::Idle;
            s.drain_cv_.notify_all();
            return;
        }
        s.run_state_ = StreamSession::RunState::Running;
        ++s.stats_.slices;
        if (worker_index < 64)
            s.stats_.workerMask |= uint64_t{1} << worker_index;
    }

    // A slice with the ParallelMatcher enabled gets a degree-times
    // larger quantum: the point is to hand one hot stream enough bytes
    // for every matcher thread to get a full chunk.
    uint64_t budget = opts_.sliceSymbols;
    if (matcher_)
        budget *= matcher_->degree();
    uint64_t fed = 0;
    std::vector<Report> reports;

    // The session's automaton state lives in s.checkpoint_; only the
    // worker owning Running touches it. Large gathered chunks route to
    // the shared ParallelMatcher (checkpoint in, checkpoint out); the
    // rest run on this worker's serial engine, restored lazily (§2.9)
    // and parked back into the checkpoint when the matcher takes over
    // or the slice ends.
    bool sim_loaded = false;
    auto parkSim = [&] {
        if (!sim_loaded)
            return;
        s.checkpoint_ = sim.checkpoint();
        std::vector<Report> r = sim.takeReports();
        reports.insert(reports.end(), r.begin(), r.end());
        sim_loaded = false;
    };
    while (budget > 0) {
        size_t n = s.takeInput(buf, static_cast<size_t>(budget));
        if (n == 0)
            break;
        if (matcher_ && n >= opts_.matchParallelMinBytes) {
            parkSim();
            // tryMatch: if another session holds the matcher, fall
            // through to the serial engine instead of queueing.
            if (std::optional<match::MatchResult> r = matcher_->tryMatch(
                    s.checkpoint_.enabledStates,
                    s.checkpoint_.symbolOffset, buf.data(), n)) {
                s.checkpoint_.enabledStates = std::move(r->frontier);
                s.checkpoint_.symbolOffset = r->endOffset;
                reports.insert(reports.end(), r->reports.begin(),
                               r->reports.end());
                fed += n;
                budget -= n;
                continue;
            }
        }
        if (!sim_loaded) {
            sim.restore(s.checkpoint_);
            sim_loaded = true;
        }
        sim.feed(buf.data(), n);
        fed += n;
        budget -= n;
    }
    parkSim();

    // Suspend: the automaton state is saved, so drain the output buffer
    // to the sink in stream order (the session is not yet requeued, so
    // no other worker can interleave deliveries).
    if (!reports.empty())
        s.sink_.onReports(s.id_, reports.data(), reports.size());

    // Aggregate into the server totals *before* the session's state
    // transition below: once close()/flush() observe the transition and
    // return, the server stats must already include this slice.
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        stats_.symbols += fed;
        stats_.reports += reports.size();
        ++stats_.slices;
    }

    bool reschedule = false;
    bool finalize = false;
    bool context_switch = false;
    SessionSummary summary;
    {
        std::lock_guard<std::mutex> lock(s.mutex_);
        s.stats_.symbols += fed;
        s.stats_.reports += reports.size();
        // Throughput EWMA with a ~1 s time constant: alpha follows the
        // actual gap between slices, so bursts of short slices and long
        // idle gaps both decay correctly.
        auto now = std::chrono::steady_clock::now();
        if (s.rate_updated_.time_since_epoch().count() != 0) {
            double dt = std::chrono::duration<double>(
                            now - s.rate_updated_)
                            .count();
            if (dt > 0) {
                double inst = static_cast<double>(fed) / dt;
                double alpha = 1.0 - std::exp(-dt);
                s.rate_ewma_ += alpha * (inst - s.rate_ewma_);
            }
        }
        s.rate_updated_ = now;
        if (s.suspended_) {
            s.run_state_ = StreamSession::RunState::Idle;
            s.drain_cv_.notify_all();
        } else if (s.queued_bytes_ > 0) {
            // More input arrived (or the quantum expired first): context
            // switch — back of the run queue, round-robin.
            s.run_state_ = StreamSession::RunState::Queued;
            reschedule = true;
            context_switch = true;
            ++s.stats_.contextSwitches;
        } else if (s.close_requested_ && !s.finalized_) {
            finalize = true; // sink call happens outside the lock
            summary = SessionSummary{s.stats_.symbols, s.stats_.reports};
        } else {
            s.run_state_ = StreamSession::RunState::Idle;
            s.drain_cv_.notify_all();
        }
    }
    if (context_switch) {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        ++stats_.contextSwitches;
    }
    if (reschedule)
        schedule(&s);
    if (finalize) {
        s.sink_.onClose(s.id_, summary);
        {
            std::lock_guard<std::mutex> lock(sessions_mutex_);
            ++stats_.sessionsClosed;
            CA_GAUGE_SET("ca.runtime.sessions_open",
                         stats_.sessionsOpened - stats_.sessionsClosed);
        }
        std::lock_guard<std::mutex> lock(s.mutex_);
        s.finalized_ = true;
        s.run_state_ = StreamSession::RunState::Idle;
        s.drain_cv_.notify_all();
    }
    CA_COUNTER_ADD("ca.runtime.symbols", fed);
    CA_COUNTER_ADD("ca.runtime.reports", reports.size());
    CA_COUNTER_ADD("ca.runtime.slices", 1);
    if (context_switch)
        CA_COUNTER_ADD("ca.runtime.context_switches", 1);
    if (finalize)
        CA_COUNTER_ADD("ca.runtime.sessions_closed", 1);
}

} // namespace ca::runtime
