#include "runtime/stream_session.h"

#include <algorithm>

#include "core/error.h"
#include "runtime/stream_server.h"
#include "telemetry/telemetry.h"

namespace ca::runtime {

StreamSession::StreamSession(StreamServer &server, uint32_t id,
                             ReportSink &sink)
    : server_(server), id_(id), sink_(sink)
{
}

void
StreamSession::submit(const uint8_t *data, size_t size)
{
    if (size == 0)
        return;
    bool need_schedule = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        CA_FATAL_IF(close_requested_,
                    "submit() on closed session " << id_);
        const size_t depth = server_.options().sessionQueueDepth;
        if (chunks_.size() >= depth) {
            ++stats_.queueFullStalls;
            CA_COUNTER_ADD("ca.runtime.queue_full_stalls", 1);
            space_cv_.wait(lock, [&] {
                return chunks_.size() < depth || close_requested_;
            });
            CA_FATAL_IF(close_requested_,
                        "session " << id_ << " closed during submit()");
        }
        chunks_.emplace_back(data, data + size);
        queued_bytes_ += size;
        stats_.bytesSubmitted += size;
        ++stats_.chunksSubmitted;
        CA_COUNTER_ADD("ca.runtime.chunks", 1);
        if (run_state_ == RunState::Idle && !suspended_) {
            run_state_ = RunState::Queued;
            need_schedule = true;
        }
    }
    if (need_schedule)
        server_.schedule(this);
}

bool
StreamSession::trySubmit(const uint8_t *data, size_t size)
{
    if (size == 0)
        return true;
    bool need_schedule = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CA_FATAL_IF(close_requested_,
                    "trySubmit() on closed session " << id_);
        if (chunks_.size() >= server_.options().sessionQueueDepth)
            return false;
        chunks_.emplace_back(data, data + size);
        queued_bytes_ += size;
        stats_.bytesSubmitted += size;
        ++stats_.chunksSubmitted;
        CA_COUNTER_ADD("ca.runtime.chunks", 1);
        if (run_state_ == RunState::Idle && !suspended_) {
            run_state_ = RunState::Queued;
            need_schedule = true;
        }
    }
    if (need_schedule)
        server_.schedule(this);
    return true;
}

void
StreamSession::flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drain_cv_.wait(lock, [&] {
        return queued_bytes_ == 0 && run_state_ == RunState::Idle;
    });
}

void
StreamSession::close()
{
    bool need_schedule = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!close_requested_) {
            close_requested_ = true;
            suspended_ = false; // close drains; a paused drain would hang
            space_cv_.notify_all();
            if (run_state_ == RunState::Idle && !finalized_) {
                run_state_ = RunState::Queued;
                need_schedule = true;
            }
        }
    }
    if (need_schedule)
        server_.schedule(this);
    std::unique_lock<std::mutex> lock(mutex_);
    drain_cv_.wait(lock, [&] { return finalized_; });
}

bool
StreamSession::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return finalized_;
}

SimCheckpoint
StreamSession::suspend()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (!suspended_) {
        suspended_ = true;
        ++stats_.suspensions;
        CA_COUNTER_ADD("ca.runtime.suspensions", 1);
    }
    // An in-flight slice finishes its quantum; a queued-but-unstarted
    // slice is skipped by the worker (runSlice's suspended_ check).
    drain_cv_.wait(lock, [&] { return run_state_ != RunState::Running; });
    return checkpoint_;
}

void
StreamSession::resume()
{
    bool need_schedule = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        suspended_ = false;
        if (run_state_ == RunState::Idle && !finalized_ &&
            (queued_bytes_ > 0 || close_requested_)) {
            run_state_ = RunState::Queued;
            need_schedule = true;
        }
    }
    if (need_schedule)
        server_.schedule(this);
}

SessionStats
StreamSession::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

SessionLiveStats
StreamSession::live() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SessionLiveStats v;
    v.id = id_;
    v.stats = stats_;
    v.queuedBytes = queued_bytes_;
    v.queuedChunks = static_cast<uint32_t>(chunks_.size());
    v.suspended = suspended_;
    v.closing = close_requested_ && !finalized_;
    v.closed = finalized_;
    v.symbolsPerSec = rate_ewma_;
    return v;
}

size_t
StreamSession::takeInput(std::vector<uint8_t> &out, size_t max_bytes)
{
    out.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    bool freed_slot = false;
    while (out.size() < max_bytes && !chunks_.empty()) {
        const std::vector<uint8_t> &front = chunks_.front();
        size_t n = std::min(max_bytes - out.size(),
                            front.size() - front_pos_);
        out.insert(out.end(), front.begin() + front_pos_,
                   front.begin() + front_pos_ + n);
        front_pos_ += n;
        queued_bytes_ -= n;
        if (front_pos_ == front.size()) {
            chunks_.pop_front();
            front_pos_ = 0;
            freed_slot = true;
        }
    }
    if (freed_slot)
        space_cv_.notify_all();
    return out.size();
}

} // namespace ca::runtime
