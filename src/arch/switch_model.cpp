#include "arch/switch_model.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace ca {

namespace {

/** A measured anchor point from Table 2, keyed by max(inputs, outputs). */
struct Anchor
{
    double n;
    double delayPs;
    double energyPjPerBit;
    double areaMm2; ///< For the square n x n configuration.
};

// 280x256 L-switch matches the 256 anchor with a small area bump; the
// extra 24 inputs are accounted for by area scaling below.
const Anchor kAnchors[] = {
    {128.0, 128.0, 0.16, 0.011},
    {256.0, 163.5, 0.19, 0.032},
    {512.0, 327.0, 0.381, 0.1293},
};
constexpr int kNumAnchors = 3;

/** Log-log interpolation between anchors; extrapolates the edge slopes. */
double
interpolate(double n, double (*field)(const Anchor &))
{
    if (n <= kAnchors[0].n) {
        // Below the smallest anchor: scale with the first segment's slope.
        double slope = std::log(field(kAnchors[1]) / field(kAnchors[0])) /
            std::log(kAnchors[1].n / kAnchors[0].n);
        return field(kAnchors[0]) *
            std::pow(n / kAnchors[0].n, slope);
    }
    for (int i = 0; i < kNumAnchors - 1; ++i) {
        if (n <= kAnchors[i + 1].n) {
            double slope =
                std::log(field(kAnchors[i + 1]) / field(kAnchors[i])) /
                std::log(kAnchors[i + 1].n / kAnchors[i].n);
            return field(kAnchors[i]) *
                std::pow(n / kAnchors[i].n, slope);
        }
    }
    const Anchor &a = kAnchors[kNumAnchors - 2];
    const Anchor &b = kAnchors[kNumAnchors - 1];
    double slope =
        std::log(field(b) / field(a)) / std::log(b.n / a.n);
    return field(b) * std::pow(n / b.n, slope);
}

double delayField(const Anchor &a) { return a.delayPs; }
double energyField(const Anchor &a) { return a.energyPjPerBit; }
double areaField(const Anchor &a) { return a.areaMm2; }

} // namespace

SwitchSpec
modelSwitch(const std::string &name, int inputs, int outputs)
{
    CA_FATAL_IF(inputs <= 0 || outputs <= 0,
                "switch radix must be positive");
    SwitchSpec s;
    s.name = name;
    s.inputs = inputs;
    s.outputs = outputs;

    double n = std::max(inputs, outputs);
    s.delayPs = interpolate(n, delayField);
    s.energyPjPerBit = interpolate(n, energyField);

    // Area scales with cross-point count relative to the square anchor.
    double square_area = interpolate(n, areaField);
    s.areaMm2 = square_area * (static_cast<double>(inputs) * outputs) /
        (n * n);
    return s;
}

SwitchSpec
lSwitchSpec()
{
    SwitchSpec s = modelSwitch("L-switch", 280, 256);
    // Published values for this exact design point (Table 2).
    s.delayPs = 163.5;
    s.energyPjPerBit = 0.191;
    s.areaMm2 = 0.033;
    return s;
}

SwitchSpec
gSwitch1WayPerf()
{
    SwitchSpec s = modelSwitch("G-switch(1 way)", 128, 128);
    s.delayPs = 128.0;
    s.energyPjPerBit = 0.16;
    s.areaMm2 = 0.011;
    return s;
}

SwitchSpec
gSwitch1WaySpace()
{
    SwitchSpec s = modelSwitch("G-switch(1 way)", 256, 256);
    s.delayPs = 163.0;
    s.energyPjPerBit = 0.19;
    s.areaMm2 = 0.032;
    return s;
}

SwitchSpec
gSwitch4WaySpace()
{
    SwitchSpec s = modelSwitch("G-switch(4 ways)", 512, 512);
    s.delayPs = 327.0;
    s.energyPjPerBit = 0.381;
    s.areaMm2 = 0.1293;
    return s;
}

} // namespace ca
