/**
 * @file
 * System-integration models (§2.9-§2.10, §5.2).
 *
 * Covers the parts of the paper that live between the architecture and
 * the OS: configuration time (loading STE binary pages and programming
 * switch enable bits), the Cache-Allocation-Technology sharing model
 * (NFA ways vs regular ways of a slice), the compiler's peak-power hint
 * for OS scheduling, and §5.2's observation that space savings translate
 * directly into throughput by running multiple NFA instances.
 */
#ifndef CA_ARCH_SYSTEM_H
#define CA_ARCH_SYSTEM_H

#include "arch/design.h"
#include "arch/geometry.h"
#include "arch/params.h"

namespace ca {

/** Inputs for the configuration-time estimate. */
struct ConfigCost
{
    /** STE image bytes (256 rows x 32 B per partition). */
    size_t steImageBytes = 0;
    /** Switch enable bits programmed through write mode. */
    size_t switchConfigBits = 0;
    /** Estimated wall-clock to configure, in seconds. */
    double seconds = 0.0;
};

/**
 * Estimates configuration time for @p partitions partitions.
 *
 * The paper reports ~0.2 ms for its largest benchmark on a Xeon
 * workstation (vs tens of ms for the AP); the model assumes STE pages
 * stream at @p bytes_per_sec (default ~25 GB/s, a socket's streaming
 * write bandwidth) and switch rows are programmed one write per cycle at
 * the design's operating frequency.
 */
ConfigCost estimateConfigCost(const Design &design, int partitions,
                              double bytes_per_sec = 25e9);

/** How a slice is shared between automata and regular cache (§2.9). */
struct CatPlan
{
    int nfaWays = 0;     ///< Ways dedicated to automata via CAT cgroups.
    int cacheWays = 0;   ///< Ways left to ordinary workloads.
    double nfaCapacityStes = 0.0;
    double remainingCacheMB = 0.0;
};

/**
 * Splits a slice's ways: enough ways for @p partitions (rounded up),
 * bounded by the design's waysUsable; the rest stays ordinary cache.
 * @throws CaError when the automaton cannot fit the usable ways.
 */
CatPlan planCacheAllocation(const Design &design, int partitions,
                            const TechnologyParams &tech = defaultTech());

/**
 * The §2.9 compiler hint: coarse peak-power estimate the OS scheduler
 * uses to keep the package within TDP while co-scheduling CPU work.
 */
struct PowerHint
{
    double peakW = 0.0;
    double tdpW = 160.0; ///< Xeon E5-2600 v3 class package.
    /** Watts left for cores while the automaton runs at peak. */
    double headroomW = 0.0;
    bool withinTdp = false;
};

PowerHint schedulerPowerHint(const Design &design, int partitions,
                             const TechnologyParams &tech = defaultTech());

/** §5.2: replicate the automaton into freed space for throughput. */
struct InstanceScaling
{
    int instances = 1;
    double aggregateGbps = 0.0;
    double perInstanceMB = 0.0;
};

/**
 * Given a cache budget (slices x usable ways), how many copies of an
 * automaton with @p partitions partitions fit, and the aggregate scan
 * rate when each processes an independent stream.
 */
InstanceScaling scaleInstances(const Design &design, int partitions,
                               int slices,
                               const TechnologyParams &tech = defaultTech());

} // namespace ca

#endif // CA_ARCH_SYSTEM_H
