#include "arch/comparison.h"

#include "arch/energy.h"

namespace ca {

double
throughputGbps(double freq_hz)
{
    return freq_hz * 8.0 / 1e9;
}

double
runtimeMs(double megabytes, double freq_hz)
{
    double symbols = megabytes * 1024.0 * 1024.0;
    return symbols / freq_hz * 1e3;
}

double
apThroughputGbps(const TechnologyParams &tech)
{
    return throughputGbps(tech.apFreqHz);
}

double
speedupOverAp(const Design &design, const TechnologyParams &tech)
{
    return design.operatingFreqHz / tech.apFreqHz;
}

double
speedupOverCpu(const Design &design, const TechnologyParams &tech)
{
    return speedupOverAp(design, tech) * tech.apOverCpuSpeedup;
}

AcceleratorPoint
harePublished()
{
    AcceleratorPoint p;
    p.name = "HARE (W=32)";
    p.throughputGbps = 3.9;
    p.runtimeMsFor10MB = 20.48;
    p.powerW = 125.0;
    p.energyNjPerByte = 256.0;
    p.areaMm2 = 80.0;
    return p;
}

AcceleratorPoint
uapPublished()
{
    AcceleratorPoint p;
    p.name = "UAP";
    p.throughputGbps = 5.3;
    p.runtimeMsFor10MB = 15.83;
    p.powerW = 0.507;
    p.energyNjPerByte = 0.802;
    p.areaMm2 = 5.67;
    return p;
}

AcceleratorPoint
caTable5Row(const Design &design, double energy_nj_per_symbol,
            double input_megabytes)
{
    AcceleratorPoint p;
    p.name = design.name;
    p.throughputGbps = throughputGbps(design.operatingFreqHz);
    p.runtimeMsFor10MB = runtimeMs(input_megabytes, design.operatingFreqHz);
    p.energyNjPerByte = energy_nj_per_symbol;
    p.powerW = averagePowerW(energy_nj_per_symbol * 1e3,
                             design.operatingFreqHz);
    p.areaMm2 = designArea32k(design);
    return p;
}

} // namespace ca
