/**
 * @file
 * 8T-SRAM crossbar switch model (§2.7, Table 2).
 *
 * The interconnect's L- and G-switches are repurposed 8T SRAM arrays: the
 * enable bit of each cross-point lives in a 6T cell and a 2T block wires
 * input bit-lines to output bit-lines (active-low wired-OR). This model
 * reports delay, per-bit energy, and area for a switch of a given radix,
 * anchored to the paper's measured design points and interpolated in
 * between for design-space sweeps (Figure 10).
 */
#ifndef CA_ARCH_SWITCH_MODEL_H
#define CA_ARCH_SWITCH_MODEL_H

#include <string>

#include "arch/params.h"

namespace ca {

/** A crossbar switch design point. */
struct SwitchSpec
{
    std::string name;   ///< e.g. "L-switch", "G-switch(1 way)".
    int inputs = 0;     ///< Input bit-lines (IBL).
    int outputs = 0;    ///< Output bit-lines (OBL).
    double delayPs = 0.0;
    double energyPjPerBit = 0.0;
    double areaMm2 = 0.0;
    /** Configuration storage: one enable bit per cross-point. */
    long long configBits() const
    {
        return static_cast<long long>(inputs) * outputs;
    }
};

/**
 * Models a switch of radix @p inputs x @p outputs.
 *
 * Anchored to Table 2: 128x128 -> 128 ps / 0.16 pJ/bit / 0.011 mm2;
 * 256x256 (and 280x256) -> ~163.5 ps / 0.19 pJ/bit / 0.032-0.033 mm2;
 * 512x512 -> 327 ps / 0.381 pJ/bit / 0.1293 mm2. Other radices are
 * log-log interpolated between anchors (delay/energy) or scaled by
 * cross-point count (area).
 */
SwitchSpec modelSwitch(const std::string &name, int inputs, int outputs);

/** The paper's L-switch: 280 inputs (256 STEs + 16 G1 + 8 G4) x 256. */
SwitchSpec lSwitchSpec();

/** CA_P G-switch covering one way: 128x128. */
SwitchSpec gSwitch1WayPerf();

/** CA_S G-switch covering one way: 256x256. */
SwitchSpec gSwitch1WaySpace();

/** CA_S G-switch spanning 4 ways: 512x512. */
SwitchSpec gSwitch4WaySpace();

} // namespace ca

#endif // CA_ARCH_SWITCH_MODEL_H
