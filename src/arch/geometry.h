/**
 * @file
 * LLC slice geometry helpers (§2.4, Figure 2).
 *
 * Translates STE/partition counts into cache resources: sub-arrays, ways,
 * slices, and megabytes — the quantities Figure 8 (cache utilization)
 * reports and the placement stage of the compiler allocates against.
 */
#ifndef CA_ARCH_GEOMETRY_H
#define CA_ARCH_GEOMETRY_H

#include "arch/params.h"

namespace ca {

/** Resource footprint of a mapped automaton. */
struct CacheFootprint
{
    int partitions = 0;
    int subArrays = 0;
    int ways = 0;
    int slices = 0;
    double megabytes = 0.0;
};

/** Geometry calculator over the Xeon-E5-style slice of TechnologyParams. */
class CacheGeometry
{
  public:
    explicit CacheGeometry(const TechnologyParams &tech = defaultTech(),
                           int stes_per_sub_array = 256);

    int stesPerPartition() const { return tech_.partitionStes; }

    /** Partitions hosted per 16 KB sub-array (1 for CA_P, 2 for CA_S). */
    int partitionsPerSubArray() const { return partitions_per_sub_array_; }

    int partitionsPerWay() const;
    int partitionsPerSlice(int ways_usable) const;

    /** Cache bytes consumed by @p partitions allocated partitions. */
    double megabytes(int partitions) const;

    /** Full footprint for @p partitions under @p ways_usable per slice. */
    CacheFootprint footprint(int partitions, int ways_usable) const;

    /** Max STEs storable in @p slices x @p ways_usable. */
    long long capacityStes(int slices, int ways_usable) const;

  private:
    TechnologyParams tech_;
    int partitions_per_sub_array_;
};

} // namespace ca

#endif // CA_ARCH_GEOMETRY_H
