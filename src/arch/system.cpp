#include "arch/system.h"

#include <algorithm>
#include <cmath>

#include "arch/energy.h"
#include "core/error.h"
#include "core/symbol_set.h"

namespace ca {

ConfigCost
estimateConfigCost(const Design &design, int partitions,
                   double bytes_per_sec)
{
    CA_FATAL_IF(partitions < 0, "negative partition count");
    ConfigCost cost;

    // STE image: one 256-row x 256-bit array image per partition.
    cost.steImageBytes = static_cast<size_t>(partitions) *
        SymbolSet::kAlphabetSize * (design.partitionStes / 8);

    // Switch configuration: every partition's L-switch rows, plus the
    // G-switch cross-points amortized over the partitions they serve.
    size_t l_bits = static_cast<size_t>(partitions) *
        design.lSwitch.configBits();
    double g_bits_per_partition =
        static_cast<double>(design.gSwitch1.configBits()) *
            design.g1SwitchesPer32k / 128.0 +
        (design.gSwitch4 ? static_cast<double>(
                               design.gSwitch4->configBits()) *
                 design.g4SwitchesPer32k / 128.0
                         : 0.0);
    cost.switchConfigBits = l_bits +
        static_cast<size_t>(g_bits_per_partition * partitions);

    // Pages stream to the cache at memory bandwidth; switch rows program
    // one write word-line per cycle (§2.7 write mode), 256 bits at a time.
    double page_s = static_cast<double>(cost.steImageBytes) / bytes_per_sec;
    double rows = static_cast<double>(cost.switchConfigBits) / 256.0;
    double switch_s = rows / design.operatingFreqHz;
    cost.seconds = page_s + switch_s;
    return cost;
}

CatPlan
planCacheAllocation(const Design &design, int partitions,
                    const TechnologyParams &tech)
{
    CacheGeometry geom(tech, design.stesPerMatchRead);
    int per_way = geom.partitionsPerSubArray() * tech.subArraysPerWay;
    int ways_needed = (partitions + per_way - 1) / per_way;
    CA_FATAL_IF(ways_needed > design.waysUsable,
                "automaton needs " << ways_needed << " ways but the design "
                "allows " << design.waysUsable
                          << " per slice; add slices or use CA_S");
    CatPlan plan;
    plan.nfaWays = ways_needed;
    plan.cacheWays = tech.waysPerSlice - ways_needed;
    plan.nfaCapacityStes =
        static_cast<double>(ways_needed) * per_way * tech.partitionStes;
    plan.remainingCacheMB =
        tech.sliceMB * plan.cacheWays / tech.waysPerSlice;
    return plan;
}

PowerHint
schedulerPowerHint(const Design &design, int partitions,
                   const TechnologyParams &tech)
{
    PowerHint hint;
    hint.peakW = peakPowerW(design, partitions, tech);
    hint.headroomW = std::max(0.0, hint.tdpW - hint.peakW);
    hint.withinTdp = hint.peakW < hint.tdpW;
    return hint;
}

InstanceScaling
scaleInstances(const Design &design, int partitions, int slices,
               const TechnologyParams &tech)
{
    CA_FATAL_IF(partitions <= 0, "instance needs at least one partition");
    CacheGeometry geom(tech, design.stesPerMatchRead);
    long long budget = static_cast<long long>(slices) *
        geom.partitionsPerSlice(design.waysUsable);
    InstanceScaling out;
    out.instances = std::max<long long>(1, budget / partitions);
    out.aggregateGbps =
        out.instances * design.operatingFreqHz * 8.0 / 1e9;
    out.perInstanceMB = geom.megabytes(partitions);
    return out;
}

} // namespace ca
