#include "arch/sram_timing.h"

#include <sstream>

#include "core/error.h"
#include "core/string_utils.h"

namespace ca {

ReadSequence
planArrayRead(int mux_groups, bool sense_amp_cycling,
              const TechnologyParams &tech)
{
    CA_FATAL_IF(mux_groups < 1, "need at least one column-mux group");
    ReadSequence seq;
    seq.groupsRead = mux_groups;
    seq.senseAmpCycling = sense_amp_cycling;

    if (sense_amp_cycling) {
        // One decode / pre-charge / RWL phase covering all bit-lines...
        double dec_w = tech.prechargeRwlPs * 0.25;
        double pch_w = tech.prechargeRwlPs * 0.45;
        double rwl_w = tech.prechargeRwlPs - dec_w - pch_w;
        seq.pulses.push_back(SignalPulse{"DEC", 0.0, dec_w, -1});
        seq.pulses.push_back(SignalPulse{"PCH", dec_w, pch_w, -1});
        seq.pulses.push_back(
            SignalPulse{"RWL", dec_w + pch_w, rwl_w, -1});
        // ...then cycled sensing: SEL selects the group, SAE strobes it.
        double t = tech.prechargeRwlPs;
        for (int g = 0; g < mux_groups; ++g) {
            seq.pulses.push_back(
                SignalPulse{"SEL", t, tech.senseStepPs, g});
            seq.pulses.push_back(
                SignalPulse{"SAE", t, tech.senseStepPs, g});
            t += tech.senseStepPs;
        }
        seq.totalPs = t;
    } else {
        // Baseline: a full decode/pre-charge/sense cycle per group.
        double t = 0.0;
        for (int g = 0; g < mux_groups; ++g) {
            double dec_w = tech.sramCyclePs * 0.2;
            double pch_w = tech.sramCyclePs * 0.35;
            double rwl_w = tech.sramCyclePs * 0.2;
            double sense_w = tech.sramCyclePs - dec_w - pch_w - rwl_w;
            seq.pulses.push_back(SignalPulse{"DEC", t, dec_w, -1});
            seq.pulses.push_back(SignalPulse{"PCH", t + dec_w, pch_w, -1});
            seq.pulses.push_back(
                SignalPulse{"RWL", t + dec_w + pch_w, rwl_w, -1});
            seq.pulses.push_back(SignalPulse{
                "SEL", t + dec_w + pch_w + rwl_w, sense_w, g});
            seq.pulses.push_back(SignalPulse{
                "SAE", t + dec_w + pch_w + rwl_w, sense_w, g});
            t += tech.sramCyclePs;
        }
        seq.totalPs = t;
    }
    return seq;
}

std::string
formatReadSequence(const ReadSequence &seq)
{
    std::ostringstream os;
    os << (seq.senseAmpCycling ? "sense-amp cycling" : "baseline")
       << " read of " << seq.groupsRead << " groups, "
       << fixed(seq.totalPs, 1) << " ps total\n";
    for (const SignalPulse &p : seq.pulses) {
        os << "  " << p.signal;
        if (p.group >= 0)
            os << '[' << p.group << ']';
        os << " @ " << fixed(p.startPs, 1) << " ps for "
           << fixed(p.widthPs, 1) << " ps\n";
    }
    return os.str();
}

} // namespace ca
