#include "arch/geometry.h"

#include "core/error.h"

namespace ca {

CacheGeometry::CacheGeometry(const TechnologyParams &tech,
                             int stes_per_sub_array)
    : tech_(tech)
{
    CA_FATAL_IF(stes_per_sub_array % tech.partitionStes != 0,
                "sub-array STE capacity " << stes_per_sub_array
                                          << " is not a whole number of "
                                          << tech.partitionStes
                                          << "-STE partitions");
    partitions_per_sub_array_ = stes_per_sub_array / tech.partitionStes;
    CA_FATAL_IF(partitions_per_sub_array_ < 1 ||
                    partitions_per_sub_array_ > 2,
                "a 16 KB sub-array holds 1 or 2 partitions, not "
                    << partitions_per_sub_array_);
}

int
CacheGeometry::partitionsPerWay() const
{
    return tech_.subArraysPerWay * partitions_per_sub_array_;
}

int
CacheGeometry::partitionsPerSlice(int ways_usable) const
{
    CA_FATAL_IF(ways_usable < 1 || ways_usable > tech_.waysPerSlice,
                "ways_usable " << ways_usable << " out of range");
    return partitionsPerWay() * ways_usable;
}

double
CacheGeometry::megabytes(int partitions) const
{
    return static_cast<double>(partitions) * tech_.partitionBytes /
        (1024.0 * 1024.0);
}

CacheFootprint
CacheGeometry::footprint(int partitions, int ways_usable) const
{
    CacheFootprint fp;
    fp.partitions = partitions;
    fp.subArrays = (partitions + partitions_per_sub_array_ - 1) /
        partitions_per_sub_array_;
    fp.ways = (fp.subArrays + tech_.subArraysPerWay - 1) /
        tech_.subArraysPerWay;
    int per_slice = ways_usable;
    fp.slices = (fp.ways + per_slice - 1) / per_slice;
    fp.megabytes = megabytes(partitions);
    return fp;
}

long long
CacheGeometry::capacityStes(int slices, int ways_usable) const
{
    return static_cast<long long>(slices) *
        partitionsPerSlice(ways_usable) * tech_.partitionStes;
}

} // namespace ca
