/**
 * @file
 * Technology and geometry constants for the Cache Automaton models.
 *
 * Every number here is taken from the paper (MICRO-50 2017, §4-5, Tables
 * 2-3) or derived from it; the derivations are noted inline. The models in
 * this module consume these constants exactly the way the paper's own
 * evaluation does (foundry-compiler / SPICE values plugged into analytic
 * stage models plus a functional simulator for activity factors).
 */
#ifndef CA_ARCH_PARAMS_H
#define CA_ARCH_PARAMS_H

#include <cstdint>

namespace ca {

/** 28 nm technology + Xeon-E5 LLC slice constants (§4, Table 2). */
struct TechnologyParams
{
    // --- SRAM array timing -------------------------------------------------
    /** Max SRAM array clock (paper caps the 1.2-4.6 GHz range at 4 GHz). */
    double sramMaxFreqHz = 4.0e9;
    /** One array cycle at the 4 GHz cap. */
    double sramCyclePs = 256.0;
    /**
     * Decode + pre-charge + RWL portion of the optimized read sequence.
     * Derived: Table 3 gives 438 ps to match 256 STEs with sense-amp
     * cycling (4 × 64-bit sense steps) and 687 ps for 512 STEs (8 steps);
     * both fit t = 188 ps + steps × 62.5 ps.
     */
    double prechargeRwlPs = 188.0;
    /** One cycled sense-amp step (sensing is ~25% of the array cycle). */
    double senseStepPs = 62.5;
    /** Bits sensed per step: 32 sense-amps × 2 chunks per sub-array. */
    int bitsPerSenseStep = 64;

    // --- Wires --------------------------------------------------------------
    /** Global metal layer wire delay (SPICE, 4X metal, repeatered). */
    double wireDelayPsPerMm = 66.0;
    /** H-Bus / H-Tree reuse alternative (Table 4 sensitivity). */
    double hbusDelayPsPerMm = 300.0;
    /** Wire energy per bit per mm. */
    double wireEnergyPjPerMmBit = 0.07;

    // --- Arrays and energy ---------------------------------------------------
    /** 6T 256-column sub-array access energy (match-phase read). */
    double arrayAccessPj = 22.0;
    /** Ideal-AP DRAM array access energy per bit (optimistic; §5.3). */
    double dramAccessPjPerBit = 1.0;

    // --- LLC slice geometry (Xeon E5, §2.4) ----------------------------------
    int waysPerSlice = 20;
    int subArraysPerWay = 8;
    int subArrayKB = 16;
    /** One SRAM array is 256 rows x 128 columns of 6T cells. */
    int arrayRows = 256;
    int arrayColumns = 128;
    /** STEs per partition: 256 STEs in two 4 KB arrays (Figure 2a). */
    int partitionStes = 256;
    /** Bytes of cache an allocated partition occupies (two 4 KB arrays). */
    int partitionBytes = 8 * 1024;
    /** Slice dimensions (mm), for wire-length estimates. */
    double sliceWidthMm = 3.19;
    double sliceHeightMm = 3.0;
    /** Slice capacity. */
    double sliceMB = 2.5;

    // --- Micron AP reference (§1, §5) ----------------------------------------
    double apFreqHz = 133.0e6;
    double apReachability = 230.5;
    int apMaxFanIn = 16;
    /** AP routing-matrix area for a 32K-STE state space (Figure 10). */
    double apAreaMm2 = 38.0;

    // --- CPU reference --------------------------------------------------------
    /** Published suite-wide AP-over-CPU speedup the paper composes with. */
    double apOverCpuSpeedup = 256.0;
};

/** Returns the process-wide default technology parameters. */
inline const TechnologyParams &
defaultTech()
{
    static const TechnologyParams tech;
    return tech;
}

} // namespace ca

#endif // CA_ARCH_PARAMS_H
