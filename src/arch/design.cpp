#include "arch/design.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace ca {

Design
designCaP()
{
    Design d;
    d.name = "CA_P";
    d.kind = DesignKind::Performance;
    d.stesPerMatchRead = 256;
    d.partitionStes = 256;
    d.lSwitch = lSwitchSpec();
    d.gSwitch1 = gSwitch1WayPerf();
    d.gSwitch4.reset();
    d.g1WiresPerPartition = 16;
    d.g4WiresPerPartition = 0;
    d.gWireDistanceMm = 1.5;
    d.lWireDistanceMm = 1.5;
    // Table 2 lists 64 L + 8 G1 per slice (16K usable STEs); doubled here
    // for the 32K-STE complement Figure 10 reports area against.
    d.lSwitchesPer32k = 128;
    d.g1SwitchesPer32k = 16;
    d.g4SwitchesPer32k = 0;
    d.operatingFreqHz = 2.0e9;
    d.waysUsable = 8;
    return d;
}

Design
designCaS()
{
    Design d;
    d.name = "CA_S";
    d.kind = DesignKind::Space;
    // CA_S packs both array halves: 512 STEs read per sub-array.
    d.stesPerMatchRead = 512;
    d.partitionStes = 256;
    d.lSwitch = lSwitchSpec();
    d.gSwitch1 = gSwitch1WaySpace();
    d.gSwitch4 = gSwitch4WaySpace();
    d.g1WiresPerPartition = 16;
    d.g4WiresPerPartition = 8;
    // Longer wires: richer connectivity spans 4 ways (§5.1 gives the CA_S
    // G stage as 468 ps = 327 ps switch + ~141 ps wire => ~2.14 mm).
    d.gWireDistanceMm = 2.14;
    d.lWireDistanceMm = 2.13;
    d.lSwitchesPer32k = 128;
    d.g1SwitchesPer32k = 8;
    d.g4SwitchesPer32k = 1;
    d.operatingFreqHz = 1.2e9;
    d.waysUsable = 8;
    return d;
}

Design
designCa4GHz()
{
    Design d;
    d.name = "CA_4GHz";
    d.kind = DesignKind::Custom;
    d.stesPerMatchRead = 64;
    d.partitionStes = 64;
    d.lSwitch = modelSwitch("L-switch(64)", 64, 64);
    d.gSwitch1 = modelSwitch("none", 1, 1);
    d.gSwitch1.delayPs = 0.0;
    d.gSwitch1.energyPjPerBit = 0.0;
    d.gSwitch1.areaMm2 = 0.0;
    d.gSwitch4.reset();
    d.g1WiresPerPartition = 0;
    d.g4WiresPerPartition = 0;
    d.gWireDistanceMm = 0.0;
    d.lWireDistanceMm = 0.5;
    d.lSwitchesPer32k = 512; // 64-STE partitions
    d.g1SwitchesPer32k = 0;
    d.g4SwitchesPer32k = 0;
    d.operatingFreqHz = 4.0e9;
    d.waysUsable = 8;
    return d;
}

Design
designCustom(int partition_stes, int g1_wires_per_partition,
             int g4_wires_per_partition, int ways_usable)
{
    CA_FATAL_IF(partition_stes <= 0 || partition_stes > 512,
                "partition size " << partition_stes << " out of range");
    Design d;
    d.kind = DesignKind::Custom;
    d.name = "CA_" + std::to_string(partition_stes) + "p" +
        std::to_string(g1_wires_per_partition) + "g";
    d.stesPerMatchRead = partition_stes;
    d.partitionStes = partition_stes;
    d.g1WiresPerPartition = g1_wires_per_partition;
    d.g4WiresPerPartition = g4_wires_per_partition;
    d.waysUsable = ways_usable;

    // L-switch: partition inputs plus the incoming G wires.
    int l_in = partition_stes + g1_wires_per_partition +
        g4_wires_per_partition;
    d.lSwitch = modelSwitch("L-switch", l_in, partition_stes);

    // One G1 switch serves a way's worth of partitions; its radix is the
    // wires contributed by up to 8 partitions (a 16 KB sub-array holds
    // 512/partition_stes partitions; 8 sub-arrays per way).
    int partitions_per_way = std::max(1, 512 / partition_stes) * 8;
    int g1_radix = std::max(1, g1_wires_per_partition *
                                   std::min(partitions_per_way, 8));
    if (g1_wires_per_partition > 0)
        d.gSwitch1 = modelSwitch("G-switch(1 way)", g1_radix, g1_radix);
    else {
        d.gSwitch1 = modelSwitch("none", 1, 1);
        d.gSwitch1.delayPs = 0.0;
        d.gSwitch1.energyPjPerBit = 0.0;
        d.gSwitch1.areaMm2 = 0.0;
    }
    if (g4_wires_per_partition > 0) {
        int g4_radix = g4_wires_per_partition * 64;
        d.gSwitch4 = modelSwitch("G-switch(4 ways)", g4_radix, g4_radix);
    } else {
        d.gSwitch4.reset();
    }

    // Wires lengthen with connectivity reach.
    d.gWireDistanceMm = g4_wires_per_partition > 0 ? 2.14 : 1.5;
    d.lWireDistanceMm = g4_wires_per_partition > 0 ? 2.13 : 1.5;
    if (g1_wires_per_partition == 0) {
        d.gWireDistanceMm = 0.0;
        d.lWireDistanceMm = 0.5;
    }

    // Switch population per 32K STEs.
    d.lSwitchesPer32k = 32768 / partition_stes;
    d.g1SwitchesPer32k = g1_wires_per_partition > 0
        ? std::max(1, d.lSwitchesPer32k * g1_wires_per_partition /
                           std::max(1, d.gSwitch1.inputs))
        : 0;
    d.g4SwitchesPer32k = g4_wires_per_partition > 0
        ? std::max(1, d.lSwitchesPer32k * g4_wires_per_partition /
                           std::max(1, d.gSwitch4->inputs))
        : 0;

    // Derated operating frequency from the stage-limited max.
    PipelineTiming t = computeTiming(d);
    d.operatingFreqHz =
        std::floor(t.maxFreqHz() / 1e8) * 1e8;
    return d;
}

double
PipelineTiming::clockPeriodPs() const
{
    return std::max({stateMatchPs, gSwitchPs, lSwitchPs});
}

double
PipelineTiming::maxFreqHz() const
{
    double period = clockPeriodPs();
    CA_ASSERT(period > 0.0);
    return 1.0e12 / period;
}

PipelineTiming
computeTiming(const Design &design, const TimingOptions &opts,
              const TechnologyParams &tech)
{
    PipelineTiming t;

    int steps = (design.stesPerMatchRead + tech.bitsPerSenseStep - 1) /
        tech.bitsPerSenseStep;
    if (opts.senseAmpCycling) {
        // Parallel pre-charge, then cycled sensing of the multiplexed bits.
        t.stateMatchPs = tech.prechargeRwlPs + steps * tech.senseStepPs;
    } else {
        // Baseline sequence: one full array cycle per column-mux group.
        t.stateMatchPs = steps * tech.sramCyclePs;
    }

    double wire_ps_per_mm =
        opts.useHBusWires ? tech.hbusDelayPsPerMm : tech.wireDelayPsPerMm;

    double g_delay = design.gSwitch1.delayPs;
    if (design.gSwitch4)
        g_delay = std::max(g_delay, design.gSwitch4->delayPs);
    t.gSwitchPs = design.g1WiresPerPartition > 0 ||
            design.g4WiresPerPartition > 0
        ? g_delay + design.gWireDistanceMm * wire_ps_per_mm
        : 0.0;

    t.lSwitchPs = design.lSwitch.delayPs +
        design.lWireDistanceMm * wire_ps_per_mm;
    return t;
}

double
designReachability(const Design &design)
{
    // Each state reaches its whole partition through the L-switch. A
    // g1-wire grants (fractionally, averaged over the partition) access to
    // every other partition in its G1 domain; g4-wires extend that to the
    // G4 domain. Domain sizes follow from the switch radices.
    double reach = design.partitionStes;
    if (design.g1WiresPerPartition > 0) {
        int n1 = design.gSwitch1.inputs /
            std::max(1, design.g1WiresPerPartition);
        reach += static_cast<double>(design.g1WiresPerPartition) *
            std::max(0, n1 - 1);
        if (design.gSwitch4 && design.g4WiresPerPartition > 0) {
            int n4 = design.gSwitch4->inputs /
                std::max(1, design.g4WiresPerPartition);
            reach += static_cast<double>(design.g4WiresPerPartition) *
                std::max(0, n4 - n1);
        }
    }
    return reach;
}

int
designMaxFanIn(const Design &design)
{
    return design.lSwitch.outputs;
}

double
designArea32k(const Design &design)
{
    return design.lSwitchesPer32k * design.lSwitch.areaMm2 +
        design.g1SwitchesPer32k * design.gSwitch1.areaMm2 +
        (design.gSwitch4
             ? design.g4SwitchesPer32k * design.gSwitch4->areaMm2
             : 0.0);
}

} // namespace ca
