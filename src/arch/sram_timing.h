/**
 * @file
 * Structural model of the SRAM array read sequence (§2.6, Figure 4).
 *
 * A match-phase read is decode → bit-line pre-charge (PCH) + read
 * word-line (RWL) → sensing. With column multiplexing, the baseline
 * sequence repeats the whole cycle once per multiplexed group; the
 * paper's *sense-amplifier cycling* optimization pre-charges all
 * bit-lines once and then pulses SAE/SEL once per group, overlapping
 * the serialization with the single pre-charge.
 *
 * This model emits the actual control-signal schedule (what Figure 4
 * draws) and its total latency; the pipeline model's state-match stage
 * is checked against it in the test suite.
 */
#ifndef CA_ARCH_SRAM_TIMING_H
#define CA_ARCH_SRAM_TIMING_H

#include <string>
#include <vector>

#include "arch/params.h"

namespace ca {

/** One control-signal assertion in the read schedule. */
struct SignalPulse
{
    std::string signal; ///< "DEC", "PCH", "RWL", "SAE", "SEL".
    double startPs = 0.0;
    double widthPs = 0.0;
    int group = -1; ///< Column-mux group for SAE/SEL pulses; -1 otherwise.

    double endPs() const { return startPs + widthPs; }
};

/** A complete array read schedule. */
struct ReadSequence
{
    std::vector<SignalPulse> pulses;
    double totalPs = 0.0;
    int groupsRead = 0;
    bool senseAmpCycling = false;
};

/**
 * Plans the read of all @p mux_groups column-multiplexed bit groups.
 *
 * With cycling: one decode+PCH+RWL phase (tech.prechargeRwlPs) followed
 * by mux_groups back-to-back SAE/SEL pulses of tech.senseStepPs each.
 * Without: mux_groups full array cycles of tech.sramCyclePs.
 */
ReadSequence planArrayRead(int mux_groups, bool sense_amp_cycling,
                           const TechnologyParams &tech = defaultTech());

/** Renders the schedule as an ASCII waveform table (for docs/debug). */
std::string formatReadSequence(const ReadSequence &seq);

} // namespace ca

#endif // CA_ARCH_SRAM_TIMING_H
