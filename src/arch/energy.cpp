#include "arch/energy.h"

namespace ca {

EnergyBreakdown
computeEnergyPerSymbol(const Design &design, const ActivityStats &activity,
                       const TechnologyParams &tech)
{
    EnergyBreakdown e;

    // Match phase: one sub-array read per active partition.
    e.arrayPj = activity.avgActivePartitions * tech.arrayAccessPj;

    // L-switch: pre-charging all output bit-lines of each active partition
    // dominates (the crossbar is active-low wired-OR), so the per-access
    // cost is outputs x pJ/bit.
    e.lSwitchPj = activity.avgActivePartitions *
        design.lSwitch.outputs * design.lSwitch.energyPjPerBit;

    // G-switches: each crossing drives one input wire through the switch;
    // energy is per-bit on the traversed column.
    e.gSwitchPj = activity.avgG1Crossings *
            design.gSwitch1.outputs * design.gSwitch1.energyPjPerBit /
            design.gSwitch1.inputs +
        (design.gSwitch4 ? activity.avgG4Crossings *
                 design.gSwitch4->outputs *
                 design.gSwitch4->energyPjPerBit / design.gSwitch4->inputs
                         : 0.0);

    // Wires: array -> G-switch -> L-switch round trip per crossing, plus
    // the array -> L-switch hop every active partition pays.
    double g_round_trip_mm = 2.0 * design.gWireDistanceMm;
    e.wirePj = (activity.avgG1Crossings + activity.avgG4Crossings) *
            g_round_trip_mm * tech.wireEnergyPjPerMmBit +
        activity.avgActivePartitions * design.lWireDistanceMm *
            tech.wireEnergyPjPerMmBit;

    return e;
}

double
idealApEnergyPerSymbolPj(const ActivityStats &activity, const Design &design,
                         const TechnologyParams &tech)
{
    // A DRAM row activation per active partition, 1 pJ/bit over the
    // partition's one-hot row width; interconnect assumed free.
    return activity.avgActivePartitions * design.partitionStes *
        tech.dramAccessPjPerBit;
}

double
averagePowerW(double energy_per_symbol_pj, double freq_hz)
{
    return energy_per_symbol_pj * 1e-12 * freq_hz;
}

double
peakPowerW(const Design &design, int allocated_partitions,
           const TechnologyParams &tech)
{
    ActivityStats peak;
    peak.avgActivePartitions = allocated_partitions;
    peak.avgActiveStates =
        static_cast<double>(allocated_partitions) * design.partitionStes;
    peak.avgG1Crossings =
        static_cast<double>(allocated_partitions) *
        design.g1WiresPerPartition;
    peak.avgG4Crossings =
        static_cast<double>(allocated_partitions) *
        design.g4WiresPerPartition;
    EnergyBreakdown e = computeEnergyPerSymbol(design, peak, tech);
    return averagePowerW(e.totalPj(), design.operatingFreqHz);
}

} // namespace ca
