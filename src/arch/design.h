/**
 * @file
 * Cache Automaton design points and the pipeline timing model.
 *
 * The paper evaluates two designs (§3.1): CA_P (performance-optimized,
 * intra-way connectivity, 2 GHz) and CA_S (space-optimized, cross-way
 * connectivity via a 4-way G-switch, 1.2 GHz). A design point bundles the
 * interconnect configuration with everything the timing/energy/area models
 * need; custom points support the Figure 10 reachability sweep.
 */
#ifndef CA_ARCH_DESIGN_H
#define CA_ARCH_DESIGN_H

#include <optional>
#include <string>

#include "arch/params.h"
#include "arch/switch_model.h"

namespace ca {

/** Which mapping/interconnect flavour a design uses. */
enum class DesignKind { Performance, Space, Custom };

/** A complete Cache Automaton configuration. */
struct Design
{
    std::string name;
    DesignKind kind = DesignKind::Performance;

    /** STEs read per partition in the match stage (256 CA_P, 512 CA_S). */
    int stesPerMatchRead = 256;
    /** STEs per mapped partition (L-switch domain). */
    int partitionStes = 256;

    SwitchSpec lSwitch;
    SwitchSpec gSwitch1;                ///< Intra-way global switch.
    std::optional<SwitchSpec> gSwitch4; ///< Cross-way switch (CA_S only).

    /** Wires a partition can drive into G-switch-1 / G-switch-4. */
    int g1WiresPerPartition = 16;
    int g4WiresPerPartition = 8;

    /** Array-to-G-switch wire distance (mm); 1.5 for CA_P per §5.1. */
    double gWireDistanceMm = 1.5;
    /** G-switch-to-L-switch wire distance (mm). */
    double lWireDistanceMm = 1.5;

    /** Number of L-switches (partitions) per 32K-STE complement. */
    int lSwitchesPer32k = 128;
    int g1SwitchesPer32k = 8;
    int g4SwitchesPer32k = 0;

    /** Chosen operating frequency (conservative vs the max; §5.1). */
    double operatingFreqHz = 2.0e9;

    /** Ways of a slice the design may occupy. */
    int waysUsable = 8;
};

/** The performance-optimized design CA_P (2 GHz, intra-way G-switches). */
Design designCaP();

/** The space-optimized design CA_S (1.2 GHz, adds a 4-way G-switch). */
Design designCaS();

/**
 * The Figure 10 "highly performance optimized" corner: 64-STE partitions,
 * no global switches, 4 GHz, reachability 64.
 */
Design designCa4GHz();

/**
 * A custom design point for Figure 10-style sweeps: partition size and
 * G-wire budgets are free; switch radices, timing, reachability, and area
 * follow from the models. The operating frequency is set to the max
 * stage-limited frequency rounded down to 0.1 GHz (the paper's derating).
 */
Design designCustom(int partition_stes, int g1_wires_per_partition,
                    int g4_wires_per_partition, int ways_usable = 8);

/** Pipeline stage delays (Table 3) and the frequencies they imply. */
struct PipelineTiming
{
    double stateMatchPs = 0.0;
    double gSwitchPs = 0.0;
    double lSwitchPs = 0.0;

    double clockPeriodPs() const;
    /** Max frequency = 1 / slowest stage. */
    double maxFreqHz() const;
};

/** Knobs for the Table 4 sensitivity studies. */
struct TimingOptions
{
    bool senseAmpCycling = true;
    bool useHBusWires = false;
};

/**
 * Computes the three pipeline stage delays for @p design.
 *
 * State-match: pre-charge/RWL + ceil(stesPerMatchRead / 64) sense steps
 * with cycling, or that many full array cycles without (§2.6).
 * G-switch stage: array→switch wire + G-switch delay (the slowest G level).
 * L-switch stage: switch→L wire + L-switch delay.
 */
PipelineTiming computeTiming(const Design &design,
                             const TimingOptions &opts = {},
                             const TechnologyParams &tech = defaultTech());

/**
 * Architectural reachability (Figure 10): average number of states a state
 * can reach in one transition hop domain — its own partition plus the
 * partitions its G-switch wires fan out to.
 */
double designReachability(const Design &design);

/** Max fan-in per state (L-switch inputs per output; 256 for CA). */
int designMaxFanIn(const Design &design);

/** Interconnect area (mm^2) for a 32K-STE complement (Figure 10). */
double designArea32k(const Design &design);

} // namespace ca

#endif // CA_ARCH_DESIGN_H
