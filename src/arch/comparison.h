/**
 * @file
 * Reference accelerator models: Micron AP, UAP, HARE, and the CPU baseline
 * composition (§5.1, §5.6, Table 5, Figure 7).
 *
 * Throughputs for memory-centric engines are deterministic (one symbol per
 * cycle), so AP/CA throughput comparisons reduce to frequency ratios. The
 * UAP and HARE rows reproduce the paper's published Table 5 constants;
 * they are reference points, not simulations.
 */
#ifndef CA_ARCH_COMPARISON_H
#define CA_ARCH_COMPARISON_H

#include <string>
#include <vector>

#include "arch/design.h"
#include "arch/params.h"

namespace ca {

/** One accelerator row for Table 5. */
struct AcceleratorPoint
{
    std::string name;
    double throughputGbps = 0.0;
    double runtimeMsFor10MB = 0.0;
    double powerW = 0.0;
    double energyNjPerByte = 0.0;
    double areaMm2 = 0.0;
};

/** Deterministic symbol throughput in Gb/s for a frequency (8b symbols). */
double throughputGbps(double freq_hz);

/** Runtime in ms for @p megabytes of input at @p freq_hz (1 symbol/cycle). */
double runtimeMs(double megabytes, double freq_hz);

/** Micron AP reference throughput (133 MHz, 1 symbol/cycle). */
double apThroughputGbps(const TechnologyParams &tech = defaultTech());

/** CA-over-AP speedup for a design (frequency ratio). */
double speedupOverAp(const Design &design,
                     const TechnologyParams &tech = defaultTech());

/** CA-over-CPU speedup composed via the published AP/CPU factor. */
double speedupOverCpu(const Design &design,
                      const TechnologyParams &tech = defaultTech());

/** Published HARE (W=32) row for the Dotstar0.9 workload (Table 5). */
AcceleratorPoint harePublished();

/** Published UAP row for the Dotstar0.9 workload (Table 5). */
AcceleratorPoint uapPublished();

/**
 * Builds a CA row for Table 5 from this library's own models.
 * @param energy_nj_per_symbol measured by the simulator on Dotstar0.9.
 */
AcceleratorPoint caTable5Row(const Design &design,
                             double energy_nj_per_symbol,
                             double input_megabytes = 10.0);

} // namespace ca

#endif // CA_ARCH_COMPARISON_H
