/**
 * @file
 * Energy and power models (§5.3, Figure 9).
 *
 * Per-symbol energy is activity-driven, exactly as in the paper: the
 * functional simulator reports per-cycle active partitions and G-switch
 * crossings, and this model converts those into pJ using the Table 2
 * per-access constants. The Ideal-AP reference assumes zero interconnect
 * energy and an optimistic 1 pJ/bit DRAM array access.
 */
#ifndef CA_ARCH_ENERGY_H
#define CA_ARCH_ENERGY_H

#include "arch/design.h"
#include "arch/params.h"

namespace ca {

/** Per-symbol activity factors, averaged over a simulated input stream. */
struct ActivityStats
{
    /** Mean partitions with >= 1 active state (each costs an array access
     *  and an L-switch traversal; idle partitions are clock-gated via the
     *  wired-OR partition-disable circuit). */
    double avgActivePartitions = 0.0;
    /** Mean active states per symbol (drives L-switch input energy). */
    double avgActiveStates = 0.0;
    /** Mean state transitions crossing G-switch-1 per symbol. */
    double avgG1Crossings = 0.0;
    /** Mean state transitions crossing G-switch-4 per symbol. */
    double avgG4Crossings = 0.0;
};

/** Energy breakdown per input symbol (picojoules). */
struct EnergyBreakdown
{
    double arrayPj = 0.0;
    double lSwitchPj = 0.0;
    double gSwitchPj = 0.0;
    double wirePj = 0.0;

    double totalPj() const
    {
        return arrayPj + lSwitchPj + gSwitchPj + wirePj;
    }
};

/** Per-symbol energy of a Cache Automaton design under @p activity. */
EnergyBreakdown computeEnergyPerSymbol(
    const Design &design, const ActivityStats &activity,
    const TechnologyParams &tech = defaultTech());

/**
 * Ideal Automata Processor per-symbol energy under the same mapping:
 * zero interconnect energy, 1 pJ/bit DRAM row reads for active partitions.
 */
double idealApEnergyPerSymbolPj(const ActivityStats &activity,
                                const Design &design,
                                const TechnologyParams &tech = defaultTech());

/** Average power (W) = energy/symbol * symbol rate. */
double averagePowerW(double energy_per_symbol_pj, double freq_hz);

/**
 * Peak power (W): every allocated partition active with a full active-state
 * vector (used for the §5.3 TDP discussion and the OS-scheduling hints).
 */
double peakPowerW(const Design &design, int allocated_partitions,
                  const TechnologyParams &tech = defaultTech());

} // namespace ca

#endif // CA_ARCH_ENERGY_H
