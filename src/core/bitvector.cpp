#include "core/bitvector.h"

#include <bit>

#include "core/error.h"

namespace ca {

BitVector::BitVector(size_t size)
    : size_(size), words_((size + 63) / 64, 0)
{
}

void
BitVector::set(size_t i)
{
    CA_ASSERT_MSG(i < size_, "bit " << i << " out of range " << size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
}

void
BitVector::reset(size_t i)
{
    CA_ASSERT_MSG(i < size_, "bit " << i << " out of range " << size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

void
BitVector::assign(size_t i, bool v)
{
    if (v)
        set(i);
    else
        reset(i);
}

bool
BitVector::test(size_t i) const
{
    CA_ASSERT_MSG(i < size_, "bit " << i << " out of range " << size_);
    return words_[i >> 6] & (uint64_t{1} << (i & 63));
}

void
BitVector::clearAll()
{
    std::fill(words_.begin(), words_.end(), 0);
}

void
BitVector::setAll()
{
    std::fill(words_.begin(), words_.end(), ~uint64_t{0});
    maskTail();
}

void
BitVector::maskTail()
{
    size_t rem = size_ & 63;
    if (rem && !words_.empty())
        words_.back() &= (uint64_t{1} << rem) - 1;
}

size_t
BitVector::count() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

bool
BitVector::any() const
{
    for (uint64_t w : words_)
        if (w)
            return true;
    return false;
}

std::ptrdiff_t
BitVector::first() const
{
    return next(-1);
}

std::ptrdiff_t
BitVector::next(std::ptrdiff_t i) const
{
    for (size_t v = static_cast<size_t>(i + 1); v < size_; ) {
        size_t wi = v >> 6;
        uint64_t w = words_[wi] >> (v & 63);
        if (w)
            return static_cast<std::ptrdiff_t>(v) + std::countr_zero(w);
        v = (wi + 1) * 64;
    }
    return -1;
}

BitVector &
BitVector::operator|=(const BitVector &o)
{
    CA_ASSERT(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] |= o.words_[i];
    return *this;
}

BitVector &
BitVector::operator&=(const BitVector &o)
{
    CA_ASSERT(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= o.words_[i];
    return *this;
}

BitVector &
BitVector::operator^=(const BitVector &o)
{
    CA_ASSERT(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= o.words_[i];
    return *this;
}

BitVector &
BitVector::andNot(const BitVector &o)
{
    CA_ASSERT(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= ~o.words_[i];
    return *this;
}

bool
BitVector::intersects(const BitVector &o) const
{
    CA_ASSERT(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & o.words_[i])
            return true;
    return false;
}

std::string
BitVector::toString() const
{
    std::string s;
    s.reserve(size_);
    for (size_t i = 0; i < size_; ++i)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

} // namespace ca
