/**
 * @file
 * SymbolSet: a set over the 256-symbol (8-bit) input alphabet.
 *
 * In Cache Automaton each NFA state (STE) is labelled by the set of input
 * symbols it matches, stored physically as a 256-bit one-hot column in an
 * SRAM array (one bit per alphabet symbol). SymbolSet is the in-memory
 * equivalent: four 64-bit words, with set algebra and a character-class
 * syntax compatible with the regex front end.
 */
#ifndef CA_CORE_SYMBOL_SET_H
#define CA_CORE_SYMBOL_SET_H

#include <array>
#include <cstdint>
#include <string>

namespace ca {

/**
 * A set of 8-bit input symbols, i.e. one STE column's worth of match bits.
 *
 * Value semantics; all operations are O(1) over the four backing words.
 */
class SymbolSet
{
  public:
    static constexpr int kAlphabetSize = 256;
    static constexpr int kWords = 4;

    /** Constructs the empty set. */
    constexpr SymbolSet() : words_{} {}

    /** Returns the set containing every symbol (ANML '*' / regex '.'). */
    static SymbolSet all();

    /** Returns the singleton set {c}. */
    static SymbolSet of(uint8_t c);

    /** Returns the inclusive range [lo, hi]. */
    static SymbolSet range(uint8_t lo, uint8_t hi);

    /**
     * Parses an ANML/regex-style character class.
     *
     * Accepts the *body* of a bracket expression, e.g. "abc", "a-z0-9",
     * "^\\x00-\\x1f", "\\n\\t", "\\d", "\\w", "\\s" (and upper-case
     * negations). A leading '^' complements the set.
     *
     * @throws CaError on malformed syntax (reversed range, dangling escape).
     */
    static SymbolSet parseClass(const std::string &body);

    void set(uint8_t c) { words_[c >> 6] |= word(c); }
    void reset(uint8_t c) { words_[c >> 6] &= ~word(c); }
    bool test(uint8_t c) const { return words_[c >> 6] & word(c); }

    /** Number of symbols in the set. */
    int count() const;

    bool empty() const;

    /** True when every alphabet symbol is present. */
    bool isAll() const;

    SymbolSet operator|(const SymbolSet &o) const;
    SymbolSet operator&(const SymbolSet &o) const;
    SymbolSet operator~() const;
    SymbolSet &operator|=(const SymbolSet &o);
    SymbolSet &operator&=(const SymbolSet &o);

    bool operator==(const SymbolSet &o) const = default;

    /** True when the intersection with @p o is non-empty. */
    bool intersects(const SymbolSet &o) const;

    /** The smallest member, or -1 when empty. */
    int first() const;

    /** The smallest member greater than @p c, or -1 when none. */
    int next(int c) const;

    /**
     * Renders a canonical character-class string, e.g. "[a-c x]" forms.
     * Printable symbols appear literally; others as \xNN escapes.
     */
    std::string toString() const;

    /** Raw 64-bit words, LSB-first; word 0 holds symbols 0..63. */
    const std::array<uint64_t, kWords> &raw() const { return words_; }

    /** Stable hash usable as an unordered-map key. */
    size_t hash() const;

  private:
    static constexpr uint64_t word(uint8_t c) {
        return uint64_t{1} << (c & 63);
    }

    std::array<uint64_t, kWords> words_;
};

/** Hash functor so SymbolSet can key unordered containers. */
struct SymbolSetHash
{
    size_t operator()(const SymbolSet &s) const { return s.hash(); }
};

} // namespace ca

#endif // CA_CORE_SYMBOL_SET_H
