#include "core/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace ca {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("CA_LOG");
    if (!env)
        return LogLevel::Warn;
    if (!std::strcmp(env, "quiet")) return LogLevel::Quiet;
    if (!std::strcmp(env, "warn")) return LogLevel::Warn;
    if (!std::strcmp(env, "info")) return LogLevel::Info;
    if (!std::strcmp(env, "debug")) return LogLevel::Debug;
    return LogLevel::Warn;
}

LogLevel g_level = initialLevel();

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Info: return "info: ";
      case LogLevel::Debug: return "debug: ";
      default: return "";
    }
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
emitLog(LogLevel level, const std::string &msg)
{
    std::cerr << prefix(level) << msg << '\n';
}

} // namespace detail
} // namespace ca
