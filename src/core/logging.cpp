#include "core/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace ca {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("CA_LOG");
    if (!env)
        return LogLevel::Warn;
    if (!std::strcmp(env, "quiet")) return LogLevel::Quiet;
    if (!std::strcmp(env, "error")) return LogLevel::Error;
    if (!std::strcmp(env, "warn")) return LogLevel::Warn;
    if (!std::strcmp(env, "info")) return LogLevel::Info;
    if (!std::strcmp(env, "debug")) return LogLevel::Debug;
    // One diagnostic, then the default — a typo'd CA_LOG silently eating
    // info/debug output is much harder to spot than this line.
    std::cerr << "warn: unrecognized CA_LOG value '" << env
              << "' (expected quiet|error|warn|info|debug); "
                 "using 'warn'\n";
    return LogLevel::Warn;
}

/** Lazy so the unrecognized-value warning fires on first use, once. */
LogLevel &
levelRef()
{
    static LogLevel level = initialLevel();
    return level;
}

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Info: return "info: ";
      case LogLevel::Debug: return "debug: ";
      default: return "";
    }
}

} // namespace

LogLevel
logLevel()
{
    return levelRef();
}

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

namespace detail {

void
emitLog(LogLevel level, const std::string &msg)
{
    std::cerr << prefix(level) << msg << '\n';
}

} // namespace detail
} // namespace ca
