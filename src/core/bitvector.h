/**
 * @file
 * BitVector: a fixed-size dynamic bit vector.
 *
 * The simulator's match vectors, active-state vectors, and report masks are
 * all per-partition 256-bit (or wider) vectors; BitVector is the shared
 * representation with the bulk logical operations the pipeline needs
 * (AND, OR, AND-NOT) plus fast set-bit iteration for statistics.
 */
#ifndef CA_CORE_BITVECTOR_H
#define CA_CORE_BITVECTOR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ca {

/** Fixed-size bit vector with word-parallel bulk operations. */
class BitVector
{
  public:
    BitVector() = default;

    /** Creates a vector of @p size bits, all clear. */
    explicit BitVector(size_t size);

    size_t size() const { return size_; }

    void set(size_t i);
    void reset(size_t i);
    void assign(size_t i, bool v);
    bool test(size_t i) const;

    /**
     * Unchecked variants for hot loops whose indices are known-valid
     * (the simulator's frontier bookkeeping): no bounds assertion.
     * @{ */
    void setUnchecked(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
    void
    resetUnchecked(size_t i)
    {
        words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
    bool
    testUnchecked(size_t i) const
    {
        return words_[i >> 6] & (uint64_t{1} << (i & 63));
    }
    /** @} */

    /** Clears every bit (size unchanged). */
    void clearAll();

    /** Sets every bit (size respected; trailing word bits stay clear). */
    void setAll();

    /** Number of set bits. */
    size_t count() const;

    /** True when at least one bit is set. */
    bool any() const;

    bool none() const { return !any(); }

    /** Index of the lowest set bit, or -1. */
    std::ptrdiff_t first() const;

    /** Index of the lowest set bit above @p i, or -1. */
    std::ptrdiff_t next(std::ptrdiff_t i) const;

    /** Calls @p fn(index) for every set bit in ascending order. */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t word = words_[w];
            while (word) {
                int b = __builtin_ctzll(word);
                fn(w * 64 + static_cast<size_t>(b));
                word &= word - 1;
            }
        }
    }

    /** Number of 64-bit words backing the vector. */
    size_t wordCount() const { return words_.size(); }

    /** Word @p w of the backing storage (word 0 holds bits 0-63). */
    uint64_t word(size_t w) const { return words_[w]; }

    /** OR @p v into word @p w (word-granular bulk update). */
    void orWord(size_t w, uint64_t v) { words_[w] |= v; }

    /** AND @p v into word @p w (word-granular bulk update). */
    void andWord(size_t w, uint64_t v) { words_[w] &= v; }

    BitVector &operator|=(const BitVector &o);
    BitVector &operator&=(const BitVector &o);
    BitVector &operator^=(const BitVector &o);

    /** this &= ~o (clears bits set in @p o). */
    BitVector &andNot(const BitVector &o);

    bool operator==(const BitVector &o) const = default;

    /** True when (this & o) is non-empty, without materializing it. */
    bool intersects(const BitVector &o) const;

    /** "0101..." rendering, LSB first; for diagnostics and tests. */
    std::string toString() const;

    const std::vector<uint64_t> &raw() const { return words_; }

    /**
     * Mutable word access for word-parallel hot loops (the simulator's
     * dense kernel builds next-frontier vectors in place). Callers must
     * keep bits above size() clear — the class invariant every other
     * operation (count, any, forEachSet, ==) relies on.
     */
    std::vector<uint64_t> &raw() { return words_; }

  private:
    void maskTail();

    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace ca

#endif // CA_CORE_BITVECTOR_H
