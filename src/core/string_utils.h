/**
 * @file
 * Small string helpers shared by the ANML parser, bench table printers, and
 * the command-line examples.
 */
#ifndef CA_CORE_STRING_UTILS_H
#define CA_CORE_STRING_UTILS_H

#include <string>
#include <vector>

namespace ca {

/** Splits @p s on @p sep; empty fields are kept. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strips leading/trailing ASCII whitespace. */
std::string trim(const std::string &s);

bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);

/** Escapes &<>"' for XML attribute/text contexts. */
std::string xmlEscape(const std::string &s);

/** Formats @p v with @p decimals digits after the point. */
std::string fixed(double v, int decimals);

/**
 * Human-readable engineering formatting with an SI-style suffix, e.g.
 * formatSi(2.0e9, "Hz") == "2.00 GHz". Supports p/n/u/m/(none)/K/M/G/T.
 */
std::string formatSi(double v, const std::string &unit);

} // namespace ca

#endif // CA_CORE_STRING_UTILS_H
