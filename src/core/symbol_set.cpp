#include "core/symbol_set.h"

#include <bit>
#include <cctype>
#include <sstream>

#include "core/error.h"

namespace ca {

SymbolSet
SymbolSet::all()
{
    SymbolSet s;
    s.words_.fill(~uint64_t{0});
    return s;
}

SymbolSet
SymbolSet::of(uint8_t c)
{
    SymbolSet s;
    s.set(c);
    return s;
}

SymbolSet
SymbolSet::range(uint8_t lo, uint8_t hi)
{
    CA_FATAL_IF(lo > hi, "reversed symbol range [" << int(lo) << ", "
                                                   << int(hi) << "]");
    SymbolSet s;
    for (int c = lo; c <= hi; ++c)
        s.set(static_cast<uint8_t>(c));
    return s;
}

int
SymbolSet::count() const
{
    int n = 0;
    for (uint64_t w : words_)
        n += std::popcount(w);
    return n;
}

bool
SymbolSet::empty() const
{
    for (uint64_t w : words_)
        if (w)
            return false;
    return true;
}

bool
SymbolSet::isAll() const
{
    for (uint64_t w : words_)
        if (w != ~uint64_t{0})
            return false;
    return true;
}

SymbolSet
SymbolSet::operator|(const SymbolSet &o) const
{
    SymbolSet r(*this);
    r |= o;
    return r;
}

SymbolSet
SymbolSet::operator&(const SymbolSet &o) const
{
    SymbolSet r(*this);
    r &= o;
    return r;
}

SymbolSet
SymbolSet::operator~() const
{
    SymbolSet r;
    for (int i = 0; i < kWords; ++i)
        r.words_[i] = ~words_[i];
    return r;
}

SymbolSet &
SymbolSet::operator|=(const SymbolSet &o)
{
    for (int i = 0; i < kWords; ++i)
        words_[i] |= o.words_[i];
    return *this;
}

SymbolSet &
SymbolSet::operator&=(const SymbolSet &o)
{
    for (int i = 0; i < kWords; ++i)
        words_[i] &= o.words_[i];
    return *this;
}

bool
SymbolSet::intersects(const SymbolSet &o) const
{
    for (int i = 0; i < kWords; ++i)
        if (words_[i] & o.words_[i])
            return true;
    return false;
}

int
SymbolSet::first() const
{
    for (int i = 0; i < kWords; ++i)
        if (words_[i])
            return i * 64 + std::countr_zero(words_[i]);
    return -1;
}

int
SymbolSet::next(int c) const
{
    for (int v = c + 1; v < kAlphabetSize; ) {
        int wi = v >> 6;
        uint64_t w = words_[wi] >> (v & 63);
        if (w)
            return v + std::countr_zero(w);
        v = (wi + 1) * 64;
    }
    return -1;
}

namespace {

void
appendSymbol(std::ostringstream &os, int c)
{
    if (std::isprint(c) && c != '\\' && c != ']' && c != '-' && c != '^') {
        os << static_cast<char>(c);
    } else {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\x%02x", c);
        os << buf;
    }
}

/** Expands common escape sequences; returns the class for one token. */
SymbolSet
parseEscape(char e)
{
    switch (e) {
      case 'n': return SymbolSet::of('\n');
      case 't': return SymbolSet::of('\t');
      case 'r': return SymbolSet::of('\r');
      case 'f': return SymbolSet::of('\f');
      case 'v': return SymbolSet::of('\v');
      case '0': return SymbolSet::of('\0');
      case 'a': return SymbolSet::of('\a');
      case 'd': return SymbolSet::range('0', '9');
      case 'D': return ~SymbolSet::range('0', '9');
      case 'w': {
        SymbolSet s = SymbolSet::range('a', 'z') | SymbolSet::range('A', 'Z')
            | SymbolSet::range('0', '9') | SymbolSet::of('_');
        return s;
      }
      case 'W': {
        SymbolSet s = SymbolSet::range('a', 'z') | SymbolSet::range('A', 'Z')
            | SymbolSet::range('0', '9') | SymbolSet::of('_');
        return ~s;
      }
      case 's': {
        SymbolSet s;
        for (char c : {' ', '\t', '\n', '\r', '\f', '\v'})
            s.set(static_cast<uint8_t>(c));
        return s;
      }
      case 'S': {
        SymbolSet s;
        for (char c : {' ', '\t', '\n', '\r', '\f', '\v'})
            s.set(static_cast<uint8_t>(c));
        return ~s;
      }
      default:
        // Any other escaped character stands for itself (\., \\, \-, ...).
        return SymbolSet::of(static_cast<uint8_t>(e));
    }
}

int
hexVal(char c)
{
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

} // namespace

SymbolSet
SymbolSet::parseClass(const std::string &body)
{
    size_t i = 0;
    bool negate = false;
    if (i < body.size() && body[i] == '^') {
        negate = true;
        ++i;
    }

    SymbolSet out;
    // Tracks the last single symbol parsed so "a-z" ranges can extend it;
    // -1 means the previous token was a multi-symbol class (no range base).
    int last_single = -1;
    bool have_pending = false;

    auto flushPending = [&](SymbolSet tok, int single) {
        out |= tok;
        last_single = single;
        have_pending = true;
    };

    while (i < body.size()) {
        char c = body[i];
        if (c == '\\') {
            CA_FATAL_IF(i + 1 >= body.size(),
                        "dangling escape at end of class '" << body << "'");
            char e = body[i + 1];
            if (e == 'x') {
                CA_FATAL_IF(i + 3 >= body.size(),
                            "truncated \\x escape in class '" << body << "'");
                int hi = hexVal(body[i + 2]);
                int lo = hexVal(body[i + 3]);
                CA_FATAL_IF(hi < 0 || lo < 0,
                            "bad hex digits in \\x escape in '" << body
                                                                << "'");
                int v = hi * 16 + lo;
                flushPending(SymbolSet::of(static_cast<uint8_t>(v)), v);
                i += 4;
            } else {
                SymbolSet tok = parseEscape(e);
                bool single = tok.count() == 1;
                flushPending(tok, single ? tok.first() : -1);
                i += 2;
            }
        } else if (c == '-' && have_pending && last_single >= 0 &&
                   i + 1 < body.size()) {
            // Range: resolve the upper endpoint.
            ++i;
            int hi = -1;
            if (body[i] == '\\') {
                CA_FATAL_IF(i + 1 >= body.size(),
                            "dangling escape in range in '" << body << "'");
                if (body[i + 1] == 'x') {
                    CA_FATAL_IF(i + 3 >= body.size(),
                                "truncated \\x escape in '" << body << "'");
                    int h = hexVal(body[i + 2]);
                    int l = hexVal(body[i + 3]);
                    CA_FATAL_IF(h < 0 || l < 0,
                                "bad hex digits in '" << body << "'");
                    hi = h * 16 + l;
                    i += 4;
                } else {
                    SymbolSet tok = parseEscape(body[i + 1]);
                    CA_FATAL_IF(tok.count() != 1,
                                "class escape cannot terminate a range in '"
                                    << body << "'");
                    hi = tok.first();
                    i += 2;
                }
            } else {
                hi = static_cast<uint8_t>(body[i]);
                ++i;
            }
            CA_FATAL_IF(hi < last_single,
                        "reversed range in class '" << body << "'");
            out |= SymbolSet::range(static_cast<uint8_t>(last_single),
                                    static_cast<uint8_t>(hi));
            last_single = -1;
        } else {
            flushPending(SymbolSet::of(static_cast<uint8_t>(c)),
                         static_cast<uint8_t>(c));
            ++i;
        }
    }

    return negate ? ~out : out;
}

std::string
SymbolSet::toString() const
{
    if (isAll())
        return "[*]";
    std::ostringstream os;
    os << '[';
    int c = first();
    while (c >= 0) {
        int run_end = c;
        while (run_end + 1 < kAlphabetSize &&
               test(static_cast<uint8_t>(run_end + 1)))
            ++run_end;
        if (run_end - c >= 2) {
            appendSymbol(os, c);
            os << '-';
            appendSymbol(os, run_end);
        } else {
            for (int v = c; v <= run_end; ++v)
                appendSymbol(os, v);
        }
        c = next(run_end);
    }
    os << ']';
    return os.str();
}

size_t
SymbolSet::hash() const
{
    // SplitMix64-style avalanche per word: plain FNV multiplies propagate
    // low-to-high only, colliding sets that differ near bit 63.
    uint64_t h = 1469598103934665603ull;
    for (uint64_t w : words_) {
        uint64_t z = h ^ w;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        h = z ^ (z >> 31);
    }
    return static_cast<size_t>(h);
}

} // namespace ca
