/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every workload generator and randomized test in the repository seeds one
 * of these explicitly so runs are reproducible bit-for-bit. The generator is
 * xoshiro256** (Blackman & Vigna), seeded through SplitMix64.
 */
#ifndef CA_CORE_RNG_H
#define CA_CORE_RNG_H

#include <cstdint>

namespace ca {

/** SplitMix64 step; used for seeding and cheap hashing. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** xoshiro256** PRNG with convenience draws. Deterministic given the seed. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x6d69636172636873ull)
    {
        uint64_t sm = seed;
        for (auto &w : s_)
            w = splitmix64(sm);
    }

    uint64_t
    next()
    {
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        uint64_t l = static_cast<uint64_t>(m);
        if (l < bound) {
            uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Random printable lowercase letter. */
    char lowercase() { return static_cast<char>('a' + below(26)); }

    /** Random byte. */
    uint8_t byte() { return static_cast<uint8_t>(below(256)); }

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace ca

#endif // CA_CORE_RNG_H
