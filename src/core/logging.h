/**
 * @file
 * Minimal leveled logging for library diagnostics.
 *
 * Follows the gem5 inform/warn split: inform() for status a user should see,
 * warn() for "this might not be what you want". Output goes to stderr so it
 * never corrupts bench tables printed on stdout. Level is controlled
 * programmatically or via the CA_LOG environment variable
 * (quiet|error|warn|info|debug); unrecognized values fall back to warn
 * with a one-time diagnostic.
 */
#ifndef CA_CORE_LOGGING_H
#define CA_CORE_LOGGING_H

#include <sstream>
#include <string>

namespace ca {

enum class LogLevel { Quiet = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/** Returns the process-wide log level (initialized from $CA_LOG once). */
LogLevel logLevel();

/** Overrides the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {
void emitLog(LogLevel level, const std::string &msg);
} // namespace detail

} // namespace ca

#define CA_LOG_AT(level, msg_expr)                                          \
    do {                                                                    \
        if (static_cast<int>(::ca::logLevel()) >=                           \
            static_cast<int>(level)) {                                      \
            std::ostringstream ca_log_os_;                                  \
            ca_log_os_ << msg_expr;                                         \
            ::ca::detail::emitLog(level, ca_log_os_.str());                 \
        }                                                                   \
    } while (0)

#define CA_ERROR(msg_expr) CA_LOG_AT(::ca::LogLevel::Error, msg_expr)
#define CA_WARN(msg_expr) CA_LOG_AT(::ca::LogLevel::Warn, msg_expr)
#define CA_INFO(msg_expr) CA_LOG_AT(::ca::LogLevel::Info, msg_expr)
#define CA_DEBUG(msg_expr) CA_LOG_AT(::ca::LogLevel::Debug, msg_expr)

#endif // CA_CORE_LOGGING_H
