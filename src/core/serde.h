/**
 * @file
 * Byte-order-explicit serialization primitives.
 *
 * Everything this repository writes to disk (configuration bitstreams,
 * persist artifacts) goes through these helpers so the on-disk layout is
 * *defined* — little-endian, byte-by-byte, independent of the host's
 * endianness or struct padding — and artifacts written on one machine
 * load on any other. The reader side is bounds-checked: any read past
 * the end of the buffer throws CaError, which is what lets the artifact
 * layer guarantee "corrupt input ⇒ clean error, never UB".
 *
 * Also home to the two checksums the persist layer uses: CRC32 (IEEE,
 * per-section integrity) and FNV-1a 64 (content-hash cache keys).
 */
#ifndef CA_CORE_SERDE_H
#define CA_CORE_SERDE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/bitvector.h"
#include "core/error.h"

namespace ca::serde {

// --- Little-endian writers ---------------------------------------------

inline void
putU8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

inline void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline void
putI32(std::vector<uint8_t> &out, int32_t v)
{
    putU32(out, static_cast<uint32_t>(v));
}

inline void
putI64(std::vector<uint8_t> &out, int64_t v)
{
    putU64(out, static_cast<uint64_t>(v));
}

/** IEEE-754 bit pattern, little-endian (all supported hosts use IEEE). */
inline void
putF64(std::vector<uint8_t> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

/** u32 byte length followed by the raw bytes (no terminator). */
inline void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/**
 * The bits packed LSB-first into ceil(size/8) bytes, no length prefix —
 * the packing ConfigImage::serialize() has always used (the bit count is
 * implied by context there).
 */
inline void
putPackedBits(std::vector<uint8_t> &out, const BitVector &bv)
{
    // Byte i is bits [8i, 8i+8) LSB-first — i.e. byte 8*(i%8) of backing
    // word i/8, which BitVector keeps tail-masked, so slicing the words
    // emits exactly the per-bit packing (just without the per-bit loop).
    const std::vector<uint64_t> &words = bv.raw();
    for (size_t byte = 0; byte * 8 < bv.size(); ++byte)
        out.push_back(static_cast<uint8_t>(
            words[byte / 8] >> (8 * (byte % 8))));
}

/** u32 bit count, then the putPackedBits() image (self-describing form). */
inline void
putBits(std::vector<uint8_t> &out, const BitVector &bv)
{
    putU32(out, static_cast<uint32_t>(bv.size()));
    putPackedBits(out, bv);
}

// --- Bounds-checked reader ---------------------------------------------

/**
 * Sequential little-endian decoder over a borrowed buffer. Every accessor
 * throws CaError when the remaining bytes cannot satisfy it, so decoding
 * arbitrarily corrupted input is memory-safe by construction.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit ByteReader(const std::vector<uint8_t> &buf)
        : ByteReader(buf.data(), buf.size())
    {
    }

    size_t pos() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

    uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    uint16_t
    u16()
    {
        need(2);
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v = static_cast<uint16_t>(v | (uint16_t{data_[pos_++]} << (8 * i)));
        return v;
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t{data_[pos_++]} << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t{data_[pos_++]} << (8 * i);
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        uint32_t len = u32();
        need(len);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return s;
    }

    /** Decodes a putBits() image back into a BitVector. */
    BitVector
    bits()
    {
        uint32_t nbits = u32();
        size_t nbytes = (static_cast<size_t>(nbits) + 7) / 8;
        need(nbytes);
        BitVector bv(nbits);
        for (size_t byte = 0; byte < nbytes; ++byte) {
            uint8_t b = data_[pos_ + byte];
            // Hostile input may set padding bits past nbits in the last
            // byte; mask them so BitVector's tail invariant holds.
            if (byte == nbytes - 1 && (nbits % 8) != 0)
                b &= static_cast<uint8_t>((1u << (nbits % 8)) - 1);
            while (b) {
                int bit = __builtin_ctz(b);
                bv.setUnchecked(byte * 8 + static_cast<size_t>(bit));
                b = static_cast<uint8_t>(b & (b - 1));
            }
        }
        pos_ += nbytes;
        return bv;
    }

    /** Borrowed view of the next @p n bytes (advances the cursor). */
    const uint8_t *
    bytes(size_t n)
    {
        need(n);
        const uint8_t *p = data_ + pos_;
        pos_ += n;
        return p;
    }

    void skip(size_t n) { need(n); pos_ += n; }

  private:
    void
    need(size_t n) const
    {
        CA_FATAL_IF(n > size_ - pos_,
                    "serde: truncated input (need " << n << " bytes at offset "
                        << pos_ << ", have " << (size_ - pos_) << ")");
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

// --- Checksums ----------------------------------------------------------

/** CRC-32 (IEEE 802.3, reflected). @p seed chains incremental updates. */
uint32_t crc32(const uint8_t *data, size_t size, uint32_t seed = 0);

inline uint32_t
crc32(const std::vector<uint8_t> &buf, uint32_t seed = 0)
{
    return crc32(buf.data(), buf.size(), seed);
}

constexpr uint64_t kFnv1a64Seed = 0xcbf29ce484222325ull;

/** FNV-1a 64-bit; @p seed chains incremental updates. */
uint64_t fnv1a64(const uint8_t *data, size_t size,
                 uint64_t seed = kFnv1a64Seed);

inline uint64_t
fnv1a64(const std::vector<uint8_t> &buf, uint64_t seed = kFnv1a64Seed)
{
    return fnv1a64(buf.data(), buf.size(), seed);
}

inline uint64_t
fnv1a64(const std::string &s, uint64_t seed = kFnv1a64Seed)
{
    return fnv1a64(reinterpret_cast<const uint8_t *>(s.data()), s.size(),
                   seed);
}

} // namespace ca::serde

#endif // CA_CORE_SERDE_H
