#include "core/string_utils.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace ca {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
xmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&apos;"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

std::string
fixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatSi(double v, const std::string &unit)
{
    struct Scale { double factor; const char *prefix; };
    static const Scale scales[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "K"},
        {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
    };
    if (v == 0.0)
        return "0 " + unit;
    double mag = std::fabs(v);
    for (const auto &s : scales) {
        if (mag >= s.factor) {
            return fixed(v / s.factor, 2) + " " + s.prefix + unit;
        }
    }
    return fixed(v / 1e-12, 2) + " p" + unit;
}

} // namespace ca
