#include "core/serde.h"

#include <array>

namespace ca::serde {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

uint64_t
fnv1a64(const uint8_t *data, size_t size, uint64_t seed)
{
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace ca::serde
