/**
 * @file
 * Error handling primitives for the Cache Automaton library.
 *
 * Two categories mirror the gem5 fatal/panic split:
 *  - CaError / CA_FATAL_IF: user-level misuse (bad regex, infeasible mapping
 *    request, malformed ANML). Recoverable by the caller via try/catch.
 *  - CA_ASSERT: internal invariant violations — a bug in this library.
 */
#ifndef CA_CORE_ERROR_H
#define CA_CORE_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace ca {

/** Exception thrown for user-facing errors (bad input, infeasible request). */
class CaError : public std::runtime_error
{
  public:
    explicit CaError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class CaInternalError : public std::logic_error
{
  public:
    explicit CaInternalError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

[[noreturn]] inline void
throwError(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " (" << file << ":" << line << ")";
    throw CaError(os.str());
}

[[noreturn]] inline void
throwInternal(const char *file, int line, const char *expr,
              const std::string &msg)
{
    std::ostringstream os;
    os << "internal invariant violated: " << expr;
    if (!msg.empty())
        os << " — " << msg;
    os << " (" << file << ":" << line << ")";
    throw CaInternalError(os.str());
}

} // namespace detail
} // namespace ca

/** Throw a ca::CaError with a streamed message. */
#define CA_THROW(msg_expr)                                                  \
    do {                                                                    \
        std::ostringstream ca_os_;                                          \
        ca_os_ << msg_expr;                                                 \
        ::ca::detail::throwError(__FILE__, __LINE__, ca_os_.str());         \
    } while (0)

/** Throw a ca::CaError if @p cond holds. */
#define CA_FATAL_IF(cond, msg_expr)                                         \
    do {                                                                    \
        if (cond) [[unlikely]]                                              \
            CA_THROW(msg_expr);                                             \
    } while (0)

/** Internal invariant check; failure indicates a library bug. */
#define CA_ASSERT(expr)                                                     \
    do {                                                                    \
        if (!(expr)) [[unlikely]]                                           \
            ::ca::detail::throwInternal(__FILE__, __LINE__, #expr, "");     \
    } while (0)

/** Internal invariant check with an explanatory message. */
#define CA_ASSERT_MSG(expr, msg_expr)                                       \
    do {                                                                    \
        if (!(expr)) [[unlikely]] {                                         \
            std::ostringstream ca_os_;                                      \
            ca_os_ << msg_expr;                                             \
            ::ca::detail::throwInternal(__FILE__, __LINE__, #expr,          \
                                        ca_os_.str());                      \
        }                                                                   \
    } while (0)

#endif // CA_CORE_ERROR_H
