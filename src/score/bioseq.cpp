#include "score/bioseq.h"

#include <algorithm>
#include <limits>

#include "core/error.h"
#include "core/rng.h"
#include "core/symbol_set.h"

namespace ca {

const std::string kDnaAlphabet = "ACGT";
const std::string kProteinAlphabet = "ACDEFGHIKLMNPQRSTVWY";

namespace {

/** Consuming-state kinds; the kind encodes "last move was an insertion",
    which is what affine gap extension needs to see. */
enum Kind : uint8_t
{
    KindMatch = 0, ///< Consumed the pattern residue (label {P[i-1]}).
    KindSub = 1,   ///< Consumed a substituted residue (label ¬{P[i-1]}).
    KindIns = 2,   ///< Consumed an inserted residue (label Σ).
};

struct BaseState
{
    StateId id = kInvalidState;
    Kind kind = KindMatch;
    int i = 0; ///< Pattern residues consumed after this state's move.
    int e = 0; ///< Edits spent after this state's move.
};

} // namespace

Nfa
bioLevenshteinNfa(const std::string &pattern, const BioPatternOptions &opt,
                  uint32_t report_id)
{
    const int m = static_cast<int>(pattern.size());
    const int k = opt.maxEdits;
    CA_FATAL_IF(m == 0, "empty bio pattern");
    CA_FATAL_IF(k < 0 || k >= m,
                "bio edit budget k=" << k << " out of range for m=" << m);
    const BioScoreParams &sc = opt.score;
    const StartType start_type =
        opt.anchored ? StartType::StartOfData : StartType::AllInput;

    Nfa nfa;
    // Base consuming states. M(i,e): i in [1..m], e in [0..k];
    // S(i,e): i in [1..m], e in [1..k]; I(i,e): i in [0..m], e in [1..k].
    auto idx = [&](Kind kind, int i, int e) {
        return (static_cast<size_t>(kind) * (m + 1) + i) * (k + 1) + e;
    };
    std::vector<StateId> id(3 * static_cast<size_t>(m + 1) * (k + 1),
                            kInvalidState);
    std::vector<BaseState> base;
    auto addBase = [&](Kind kind, int i, int e, const SymbolSet &label) {
        StateId s = nfa.addState(label, StartType::None,
                                 /*report=*/i == m, report_id);
        id[idx(kind, i, e)] = s;
        base.push_back(BaseState{s, kind, i, e});
    };
    for (int i = 1; i <= m; ++i) {
        SymbolSet sym = SymbolSet::of(static_cast<uint8_t>(pattern[i - 1]));
        for (int e = 0; e <= k; ++e)
            addBase(KindMatch, i, e, sym);
        for (int e = 1; e <= k; ++e)
            addBase(KindSub, i, e, ~sym);
    }
    for (int i = 0; i <= m; ++i)
        for (int e = 1; e <= k; ++e)
            addBase(KindIns, i, e, SymbolSet::all());

    // Start enables: the first consuming move, after d leading deletions
    // from the virtual origin. The move's residue score plus the leading
    // gap penalty lives on the start weight.
    for (int d = 0; d <= k; ++d) {
        if (d + 1 <= m && d <= k) {
            StateId s = id[idx(KindMatch, d + 1, d)];
            nfa.state(s).start = start_type;
            nfa.state(s).startWeight =
                static_cast<Weight>(sc.gapCost(d) + sc.match);
        }
        if (d + 1 <= m && d + 1 <= k) {
            StateId s = id[idx(KindSub, d + 1, d + 1)];
            nfa.state(s).start = start_type;
            nfa.state(s).startWeight =
                static_cast<Weight>(sc.gapCost(d) + sc.mismatch);
        }
        if (d <= m && d + 1 <= k) {
            StateId s = id[idx(KindIns, d, d + 1)];
            nfa.state(s).start = start_type;
            nfa.state(s).startWeight = static_cast<Weight>(
                sc.gapCost(d) + sc.gapOpen + sc.gapExtend);
        }
    }

    // Transitions: from grid (i, e), d interior deletions fold into the
    // edge, then one consuming move.
    struct Edge
    {
        StateId from, to;
        Weight w;
    };
    std::vector<Edge> edges;
    for (const BaseState &b : base) {
        for (int d = 0; d + b.e <= k; ++d) {
            const Score gap = sc.gapCost(d);
            if (b.i + d + 1 <= m && b.e + d <= k) {
                edges.push_back(
                    Edge{b.id, id[idx(KindMatch, b.i + d + 1, b.e + d)],
                         static_cast<Weight>(gap + sc.match)});
            }
            if (b.i + d + 1 <= m && b.e + d + 1 <= k) {
                edges.push_back(
                    Edge{b.id,
                         id[idx(KindSub, b.i + d + 1, b.e + d + 1)],
                         static_cast<Weight>(gap + sc.mismatch)});
            }
            if (b.i + d <= m && b.e + d + 1 <= k) {
                // Extending an insertion run (I -> I with no interleaved
                // deletions) pays only the extend charge.
                const bool extend = b.kind == KindIns && d == 0;
                const Score ins = extend
                    ? static_cast<Score>(sc.gapExtend)
                    : static_cast<Score>(sc.gapOpen) + sc.gapExtend;
                edges.push_back(
                    Edge{b.id, id[idx(KindIns, b.i + d, b.e + d + 1)],
                         static_cast<Weight>(gap + ins)});
            }
        }
    }

    // Trailing-deletion clones: a state at (i, e) with m-i residues left
    // and budget for them accepts "consume this residue, then delete the
    // rest". The clone re-reports with every incoming weight (edges and
    // start) shifted by the terminal gap penalty.
    std::vector<StateId> clone_of(base.size(), kInvalidState);
    std::vector<Score> clone_shift(base.size(), 0);
    for (size_t bi = 0; bi < base.size(); ++bi) {
        const BaseState &b = base[bi];
        const int dd = m - b.i;
        if (dd < 1 || b.e + dd > k)
            continue;
        const NfaState &src = nfa.state(b.id);
        StateId c = nfa.addState(src.label, src.start, /*report=*/true,
                                 report_id, src.name);
        nfa.state(c).startWeight = static_cast<Weight>(
            static_cast<Score>(src.startWeight) + sc.gapCost(dd));
        clone_of[bi] = c;
        clone_shift[bi] = sc.gapCost(dd);
    }
    std::vector<size_t> base_index(nfa.numStates(), ~size_t{0});
    for (size_t bi = 0; bi < base.size(); ++bi)
        base_index[base[bi].id] = bi;
    const size_t n_plain = edges.size();
    for (size_t ei = 0; ei < n_plain; ++ei) {
        const Edge &e = edges[ei];
        size_t bi = base_index[e.to];
        if (bi != ~size_t{0} && clone_of[bi] != kInvalidState)
            edges.push_back(Edge{
                e.from, clone_of[bi],
                static_cast<Weight>(static_cast<Score>(e.w) +
                                    clone_shift[bi])});
    }

    for (const Edge &e : edges)
        nfa.addTransition(e.from, e.to, e.w);
    nfa.dedupeEdges();
    nfa.validate();
    return nfa;
}

BioWorkload
makeBioWorkload(int num_patterns, int pattern_len,
                const BioPatternOptions &opt, const std::string &alphabet,
                uint64_t seed)
{
    CA_FATAL_IF(num_patterns <= 0 || pattern_len <= 0,
                "bio workload needs >= 1 pattern of >= 1 residues");
    CA_FATAL_IF(alphabet.empty(), "bio workload needs an alphabet");
    Rng rng(seed);
    BioWorkload w;
    w.options = opt;
    w.alphabet = alphabet;
    for (int r = 0; r < num_patterns; ++r) {
        std::string p(static_cast<size_t>(pattern_len), '\0');
        for (auto &ch : p)
            ch = alphabet[rng.below(alphabet.size())];
        w.nfa.merge(
            bioLevenshteinNfa(p, opt, static_cast<uint32_t>(r)));
        w.patterns.push_back(std::move(p));
    }
    w.nfa.validate();
    return w;
}

std::vector<uint8_t>
bioSampleInput(const BioWorkload &w, size_t size, double plant_rate,
               uint64_t seed)
{
    Rng rng(seed);
    const std::string &alpha = w.alphabet;
    std::vector<uint8_t> out;
    out.reserve(size);
    while (out.size() < size) {
        if (!w.patterns.empty() && rng.uniform() < plant_rate) {
            // Plant a mutated copy: up to maxEdits random edits.
            std::string p =
                w.patterns[rng.below(w.patterns.size())];
            int edits = static_cast<int>(
                rng.below(static_cast<uint64_t>(w.options.maxEdits) + 1));
            for (int j = 0; j < edits && !p.empty(); ++j) {
                size_t pos = rng.below(p.size());
                switch (rng.below(3)) {
                case 0: // substitution
                    p[pos] = alpha[rng.below(alpha.size())];
                    break;
                case 1: // insertion
                    p.insert(p.begin() + static_cast<long>(pos),
                             alpha[rng.below(alpha.size())]);
                    break;
                default: // deletion
                    p.erase(p.begin() + static_cast<long>(pos));
                    break;
                }
            }
            for (char ch : p) {
                if (out.size() >= size)
                    break;
                out.push_back(static_cast<uint8_t>(ch));
            }
        } else {
            out.push_back(static_cast<uint8_t>(
                alpha[rng.below(alpha.size())]));
        }
    }
    return out;
}

std::vector<BioWitnessHit>
bioAlignWitness(const std::string &pattern, const uint8_t *data, size_t n,
                const BioPatternOptions &opt)
{
    const int m = static_cast<int>(pattern.size());
    const int k = opt.maxEdits;
    CA_FATAL_IF(m == 0, "empty bio pattern");
    CA_FATAL_IF(k < 0 || k >= m,
                "bio edit budget k=" << k << " out of range for m=" << m);
    const BioScoreParams &sc = opt.score;
    const ScoreSemiring sr = opt.semiring;

    // Cells: (kind, i, e) where kind 0 = last move aligned a pattern
    // residue (match or substitution), 1 = last move was an insertion;
    // i = pattern residues consumed, e = edits spent. Deletions fold into
    // the transition as d-runs, mirroring the alignment definition (and
    // nothing else — this is DP over alignments, not over the automaton).
    const size_t cells = 2 * static_cast<size_t>(m + 1) * (k + 1);
    auto at = [&](int kind, int i, int e) {
        return (static_cast<size_t>(kind) * (m + 1) + i) * (k + 1) + e;
    };
    std::vector<Score> cur(cells), nxt(cells);
    std::vector<char> cur_set(cells, 0), nxt_set(cells, 0);
    auto relax = [&](int kind, int i, int e, Score v) {
        size_t c = at(kind, i, e);
        if (!nxt_set[c]) {
            nxt_set[c] = 1;
            nxt[c] = v;
        } else {
            nxt[c] = scoreCombine(sr, nxt[c], v);
        }
    };

    std::vector<BioWitnessHit> hits;
    for (size_t j = 0; j < n; ++j) {
        const uint8_t x = data[j];
        std::fill(nxt_set.begin(), nxt_set.end(), 0);

        // A fresh alignment's first consuming move, after d leading
        // deletions (anchored: only at offset 0).
        if (!opt.anchored || j == 0) {
            for (int d = 0; d <= k; ++d) {
                const Score gap = sc.gapCost(d);
                if (d < m) {
                    if (x == static_cast<uint8_t>(pattern[d])) {
                        if (d <= k)
                            relax(0, d + 1, d, gap + sc.match);
                    } else if (d + 1 <= k) {
                        relax(0, d + 1, d + 1, gap + sc.mismatch);
                    }
                }
                if (d <= m && d + 1 <= k)
                    relax(1, d, d + 1,
                          gap + sc.gapOpen + sc.gapExtend);
            }
        }

        // Extend every live partial alignment by d deletions plus one
        // consuming move.
        for (int kind = 0; kind < 2; ++kind) {
            for (int i = 0; i <= m; ++i) {
                for (int e = 0; e <= k; ++e) {
                    size_t c = at(kind, i, e);
                    if (!cur_set[c])
                        continue;
                    const Score v = cur[c];
                    for (int d = 0; d + e <= k; ++d) {
                        const Score gap = sc.gapCost(d);
                        const int ii = i + d;
                        if (ii < m) {
                            if (x == static_cast<uint8_t>(pattern[ii])) {
                                if (e + d <= k)
                                    relax(0, ii + 1, e + d,
                                          v + gap + sc.match);
                            } else if (e + d + 1 <= k) {
                                relax(0, ii + 1, e + d + 1,
                                      v + gap + sc.mismatch);
                            }
                        }
                        if (ii <= m && e + d + 1 <= k) {
                            const bool extend = kind == 1 && d == 0;
                            const Score ins = extend
                                ? static_cast<Score>(sc.gapExtend)
                                : static_cast<Score>(sc.gapOpen) +
                                    sc.gapExtend;
                            relax(1, ii, e + d + 1, v + gap + ins);
                        }
                    }
                }
            }
        }

        // Acceptance at this offset: any cell whose remaining residues
        // fit in the edit budget as trailing deletions.
        bool hit = false;
        Score best = 0;
        for (int kind = 0; kind < 2; ++kind) {
            for (int i = 0; i <= m; ++i) {
                const int dd = m - i;
                for (int e = 0; e + dd <= k; ++e) {
                    size_t c = at(kind, i, e);
                    if (!nxt_set[c])
                        continue;
                    const Score v = nxt[c] + sc.gapCost(dd);
                    best = hit ? scoreCombine(sr, best, v) : v;
                    hit = true;
                }
            }
        }
        if (hit)
            hits.push_back(BioWitnessHit{static_cast<uint64_t>(j), best});

        cur.swap(nxt);
        cur_set.swap(nxt_set);
    }
    return hits;
}

} // namespace ca
