#include "score/oracle.h"

#include <algorithm>

#include "core/error.h"

namespace ca {

ScoredOracle::ScoredOracle(const Nfa &nfa, ScoreSemiring semiring)
    : nfa_(nfa), semiring_(semiring)
{
    const size_t n = nfa.numStates();
    enabled_mask_.assign(n, 0);
    next_mask_.assign(n, 0);
    score_.assign(n, 0);
    next_score_.assign(n, 0);
    for (StateId s = 0; s < n; ++s)
        if (nfa.state(s).start == StartType::AllInput)
            all_input_.push_back(s);
    reset();
}

void
ScoredOracle::reset()
{
    for (StateId s : enabled_)
        enabled_mask_[s] = 0;
    enabled_.clear();
    for (StateId s = 0; s < nfa_.numStates(); ++s) {
        const NfaState &st = nfa_.state(s);
        if (st.start != StartType::None) {
            enabled_mask_[s] = 1;
            score_[s] = st.startWeight;
            enabled_.push_back(s);
        }
    }
    reports_.clear();
    offset_ = 0;
}

void
ScoredOracle::step(uint8_t symbol)
{
    // Match phase: enabled states whose label contains the symbol
    // activate; reporting states fire at this offset with their
    // accumulated score, in ascending state-id order (the canonical
    // within-cycle order all engines share).
    report_scratch_.clear();
    next_enabled_.clear();
    for (StateId s : enabled_) {
        if (!nfa_.state(s).label.test(symbol))
            continue;
        if (nfa_.state(s).report)
            report_scratch_.push_back(s);
        // Transition phase: each out-edge extends the path score by the
        // edge weight; alternatives into one target combine under ⊕.
        const NfaState &st = nfa_.state(s);
        for (size_t k = 0; k < st.out.size(); ++k) {
            StateId t = st.out[k];
            Score cand = score_[s] +
                static_cast<Score>(nfa_.edgeWeight(s, k));
            if (!next_mask_[t]) {
                next_mask_[t] = 1;
                next_score_[t] = cand;
                next_enabled_.push_back(t);
            } else {
                next_score_[t] =
                    scoreCombine(semiring_, next_score_[t], cand);
            }
        }
    }
    std::sort(report_scratch_.begin(), report_scratch_.end());
    for (StateId s : report_scratch_)
        reports_.push_back(
            Report{offset_, nfa_.state(s).reportId, s, score_[s]});

    // AllInput starts re-enable every cycle at their start weight (a
    // fresh local alignment can begin at any offset); an incoming path
    // competes with the restart under ⊕.
    for (StateId s : all_input_) {
        Score w = nfa_.state(s).startWeight;
        if (!next_mask_[s]) {
            next_mask_[s] = 1;
            next_score_[s] = w;
            next_enabled_.push_back(s);
        } else {
            next_score_[s] = scoreCombine(semiring_, next_score_[s], w);
        }
    }

    for (StateId s : enabled_)
        enabled_mask_[s] = 0;
    enabled_.swap(next_enabled_);
    enabled_mask_.swap(next_mask_);
    score_.swap(next_score_);
    ++offset_;
}

std::vector<Report>
ScoredOracle::run(const uint8_t *data, size_t size)
{
    reset();
    for (size_t i = 0; i < size; ++i)
        step(data[i]);
    return reports_;
}

std::vector<StateId>
ScoredOracle::frontier() const
{
    std::vector<StateId> out = enabled_;
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace ca
