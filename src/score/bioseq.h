/**
 * @file
 * Bioinformatics workload: scored approximate sequence matching
 * (docs/SCORING.md).
 *
 * Weighted Levenshtein automata over DNA/protein alphabets, in the
 * scored-NFA-processor style: a pattern P compiles into a homogeneous NFA
 * whose reports carry the alignment score of P against the input substring
 * ending at the report offset — match/mismatch residue scores and
 * affine-gap penalties (open + extend), under an edit budget k. Linear
 * gaps are the gapOpen = 0 special case.
 *
 * Construction (direct homogeneous build; no epsilon elimination):
 * consuming states are M(i,e) (residue matched P[i-1]), S(i,e)
 * (substitution), and I(i,e) (insertion), where i = pattern residues
 * consumed and e = edits spent. Deletions consume no input, so they fold
 * into edge weights: an edge performing d deletions then a consuming move
 * carries the gap penalty for the d-run plus the move's score. Leading
 * deletions fold into start weights, trailing deletions into cloned
 * reporting states whose incoming weights add the terminal gap penalty.
 * The state kind encodes "last move was an insertion", which is exactly
 * what affine gap scoring needs.
 *
 * Every generated automaton is witness-checked: an independent Gotoh-style
 * banded DP (bioAlignWitness) recomputes the per-offset hit set and best
 * scores from the alignment definition alone.
 */
#ifndef CA_SCORE_BIOSEQ_H
#define CA_SCORE_BIOSEQ_H

#include <cstdint>
#include <string>
#include <vector>

#include "nfa/nfa.h"
#include "score/semiring.h"

namespace ca {

/** The two standard residue alphabets. */
extern const std::string kDnaAlphabet;     ///< "ACGT"
extern const std::string kProteinAlphabet; ///< 20 amino-acid letters.

/** Residue/gap scoring parameters (added into the max-plus score). */
struct BioScoreParams
{
    int32_t match = 2;      ///< Per matching residue.
    int32_t mismatch = -1;  ///< Per substituted residue.
    int32_t gapOpen = -2;   ///< Once per gap run (insertions or deletions).
    int32_t gapExtend = -1; ///< Per gap residue.

    /** Linear-gap convenience: no per-run open charge. */
    static BioScoreParams
    linear(int32_t match, int32_t mismatch, int32_t indel)
    {
        return BioScoreParams{match, mismatch, 0, indel};
    }

    /** Penalty of a d-residue gap run (0 for d == 0). */
    Score
    gapCost(int d) const
    {
        return d == 0 ? 0
                      : static_cast<Score>(gapOpen) +
                static_cast<Score>(d) * static_cast<Score>(gapExtend);
    }
};

/** One pattern's compilation controls. */
struct BioPatternOptions
{
    int maxEdits = 1;      ///< Edit budget k (each sub/ins/del costs 1).
    bool anchored = false; ///< Alignment must start at input offset 0.
    BioScoreParams score;
    ScoreSemiring semiring = ScoreSemiring::MaxPlus;
};

/**
 * Compiles @p pattern into a weighted homogeneous NFA reporting every
 * input offset where an alignment with <= maxEdits edits ends, scored
 * under @p opt. Requires 0 <= maxEdits < pattern length.
 */
Nfa bioLevenshteinNfa(const std::string &pattern,
                      const BioPatternOptions &opt,
                      uint32_t report_id = 0);

/** A generated multi-pattern workload (patterns merged into one NFA). */
struct BioWorkload
{
    Nfa nfa;
    std::vector<std::string> patterns; ///< patterns[r] reports with id r.
    BioPatternOptions options;
    std::string alphabet;
};

/**
 * Generates @p num_patterns random patterns of length @p pattern_len over
 * @p alphabet and merges their scored automata (reportId = pattern index).
 */
BioWorkload makeBioWorkload(int num_patterns, int pattern_len,
                            const BioPatternOptions &opt,
                            const std::string &alphabet, uint64_t seed);

/**
 * Random residue stream with approximate pattern occurrences planted at
 * rate @p plant_rate (expected planted starts per symbol); each planted
 * copy is mutated with up to maxEdits random edits so scores exercise the
 * whole gap/substitution space.
 */
std::vector<uint8_t> bioSampleInput(const BioWorkload &w, size_t size,
                                    double plant_rate, uint64_t seed);

/** One witness ground-truth hit: an alignment ends at @p offset. */
struct BioWitnessHit
{
    uint64_t offset = 0;
    Score score = 0; ///< Semiring-best over all alignments ending here.

    bool operator==(const BioWitnessHit &) const = default;
};

/**
 * Independent ground truth for bioLevenshteinNfa: Gotoh-style DP with an
 * edit budget, computed directly from the alignment definition. Returns
 * one hit per input offset where some alignment of the full pattern (with
 * <= maxEdits edits) ends, with the semiring-combined best score.
 */
std::vector<BioWitnessHit> bioAlignWitness(const std::string &pattern,
                                           const uint8_t *data, size_t n,
                                           const BioPatternOptions &opt);

} // namespace ca

#endif // CA_SCORE_BIOSEQ_H
