/**
 * @file
 * Scored CPU oracle (docs/SCORING.md).
 *
 * An independent frontier interpreter for weighted homogeneous NFAs: it
 * reads the Nfa directly (no flattened tables, no mapping, no kernels)
 * and computes, per enabled state, the semiring sum of all path scores
 * reaching it. Every scored execution engine — both sim kernels and the
 * functional MatchEngine — is held to this oracle's report stream *and*
 * scores exactly, the weighted extension of the repo's bit-identity
 * contract. Deliberately simple and slow; correctness reference only.
 */
#ifndef CA_SCORE_ORACLE_H
#define CA_SCORE_ORACLE_H

#include <cstdint>
#include <vector>

#include "baseline/nfa_engine.h"
#include "nfa/nfa.h"
#include "score/semiring.h"

namespace ca {

/** Frontier interpreter tracking per-state accumulated scores. */
class ScoredOracle
{
  public:
    explicit ScoredOracle(const Nfa &nfa,
                          ScoreSemiring semiring = ScoreSemiring::MaxPlus);

    /** Rewinds to offset 0 (start states enabled at their startWeight). */
    void reset();

    /** Consumes one symbol; reports carry the activating state's score. */
    void step(uint8_t symbol);

    /** Runs a whole buffer from a fresh reset. */
    std::vector<Report> run(const uint8_t *data, size_t size);

    std::vector<Report>
    run(const std::vector<uint8_t> &input)
    {
        return run(input.data(), input.size());
    }

    /** Reports accumulated since the last reset. */
    const std::vector<Report> &reports() const { return reports_; }

    /** The live frontier, sorted ascending. */
    std::vector<StateId> frontier() const;

    /** Score of an enabled state (meaningless when not enabled). */
    Score stateScore(StateId s) const { return score_[s]; }

  private:
    const Nfa &nfa_;
    ScoreSemiring semiring_;
    std::vector<StateId> all_input_;

    std::vector<StateId> enabled_;
    std::vector<char> enabled_mask_;
    std::vector<Score> score_;
    std::vector<StateId> next_enabled_;
    std::vector<char> next_mask_;
    std::vector<Score> next_score_;
    std::vector<StateId> report_scratch_;
    std::vector<Report> reports_;
    uint64_t offset_ = 0;
};

} // namespace ca

#endif // CA_SCORE_ORACLE_H
