/**
 * @file
 * Score semirings for weighted automata (docs/SCORING.md).
 *
 * A scored automaton annotates transitions with integer weights; a run
 * accumulates them under a semiring whose ⊗ is addition along a path and
 * whose ⊕ combines alternative paths reaching the same state on the same
 * symbol. Max-plus (⊕ = max) is the alignment semiring — a report's score
 * is the best alignment ending there — and min-plus (⊕ = min) is its
 * cost-minimizing dual (edit distance proper). Weights never gate
 * transitions, so the report *set* of a scored run is identical to the
 * boolean run's; only the score payload differs.
 */
#ifndef CA_SCORE_SEMIRING_H
#define CA_SCORE_SEMIRING_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace ca {

/** Accumulated path score; wide enough that i32 weights never overflow. */
using Score = int64_t;

/** Which ⊕ combines alternative paths into one state. */
enum class ScoreSemiring : uint8_t
{
    MaxPlus, ///< ⊕ = max: best-alignment scoring (default).
    MinPlus, ///< ⊕ = min: least-cost / edit-distance scoring.
};

/** ⊕: combine two alternative path scores. */
inline Score
scoreCombine(ScoreSemiring s, Score a, Score b)
{
    return s == ScoreSemiring::MaxPlus ? (a > b ? a : b)
                                       : (a < b ? a : b);
}

/** Parses "maxplus"/"minplus"; nullopt on anything else. */
inline std::optional<ScoreSemiring>
parseSemiringName(std::string_view name)
{
    if (name == "maxplus" || name == "max-plus" || name == "max")
        return ScoreSemiring::MaxPlus;
    if (name == "minplus" || name == "min-plus" || name == "min")
        return ScoreSemiring::MinPlus;
    return std::nullopt;
}

/** The semiring's canonical spelling ("maxplus"/"minplus"). */
inline const char *
semiringName(ScoreSemiring s)
{
    return s == ScoreSemiring::MaxPlus ? "maxplus" : "minplus";
}

} // namespace ca

#endif // CA_SCORE_SEMIRING_H
