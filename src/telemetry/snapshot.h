/**
 * @file
 * Point-in-time metric snapshots and the live exposition formats.
 *
 * The registry's JSON/CSV exporters (metrics.cpp) are end-of-run
 * artifacts; the observability plane (docs/OBSERVABILITY.md) needs the
 * same data *while the process runs*. A MetricsSnapshot is an immutable
 * copy of the registry taken under its mutex, cheap enough to capture on
 * a poll interval, and supports:
 *
 *  - deltaSince()/ratesSince(): interval deltas and per-second rates
 *    between two snapshots (what `ca_top` renders);
 *  - writePrometheus(): the Prometheus text exposition served by
 *    `ca_server --stats-port`;
 *  - serialize()/deserialize(): a compact versioned binary image
 *    ("CASN", core/serde.h primitives, bounds-checked decode) carried
 *    inside STATS_REPLY frames.
 *
 * Everything here works in both telemetry build configs: with
 * -DCA_TELEMETRY=OFF the instrumentation sites compile out, the registry
 * stays empty, and snapshots are simply empty rather than erroring.
 */
#ifndef CA_TELEMETRY_SNAPSHOT_H
#define CA_TELEMETRY_SNAPSHOT_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace ca::telemetry {

/** "CASN" little-endian fourcc heading a binary snapshot image. */
constexpr uint32_t kSnapshotMagic = 0x4e534143u;
/** Bump on any binary-layout change; deserialize rejects others. */
constexpr uint16_t kSnapshotVersion = 1;

/**
 * Value of one metric at capture time. `kind` decides which fields are
 * meaningful; the rest keep their zero defaults.
 */
struct MetricValue
{
    MetricKind kind = MetricKind::Counter;
    uint64_t counter = 0;
    double gauge = 0.0;
    // Histogram (buckets has Histogram::kNumBuckets entries when set).
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::vector<uint64_t> buckets;

    /** Histogram quantile (Histogram::percentileOf); 0 otherwise. */
    double percentile(double q) const;
    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }
};

/**
 * Immutable point-in-time copy of a MetricsRegistry (sorted by name, so
 * every exposition below is deterministic for a given capture).
 */
class MetricsSnapshot
{
  public:
    /** steady_clock capture time, for ratesSince() intervals. */
    uint64_t monotonicMicros = 0;
    std::map<std::string, MetricValue> metrics;

    bool empty() const { return metrics.empty(); }
    size_t size() const { return metrics.size(); }

    /** The named metric, or nullptr if this capture doesn't have it. */
    const MetricValue *find(const std::string &name) const;

    /**
     * Interval delta `this - earlier`. Counters and histogram
     * counts/sums/buckets subtract (clamped at zero, so a resetAll()
     * between captures yields the post-reset values instead of an
     * underflow); gauges and histogram max keep this snapshot's value
     * (neither is meaningfully subtractable). Metrics absent from
     * @p earlier are included whole.
     */
    MetricsSnapshot deltaSince(const MetricsSnapshot &earlier) const;

    /**
     * Per-second rates over the interval between the two captures:
     * counter value deltas and histogram sample-count deltas divided by
     * the elapsed monotonic time. Empty when the interval is not
     * positive. Gauges are omitted.
     */
    std::map<std::string, double>
    ratesSince(const MetricsSnapshot &earlier) const;

    /**
     * Prometheus text exposition (format 0.0.4). Metric names are
     * sanitized (every character outside [a-zA-Z0-9_:] becomes '_');
     * counters gain the conventional `_total` suffix; histograms emit
     * cumulative `_bucket{le="..."}` lines over the non-empty log2
     * bucket boundaries plus `+Inf`, `_sum`, and `_count`.
     */
    void writePrometheus(std::ostream &os) const;
    std::string prometheusText() const;

    /** Compact versioned binary image (CASN, little-endian). */
    void serialize(std::vector<uint8_t> &out) const;
    std::vector<uint8_t> serialize() const;

    /**
     * Decodes a serialize() image. Bounds-checked throughout: any
     * truncated, oversized, or ill-formed input throws CaError — never
     * UB — so images that crossed a network are safe to parse.
     */
    static MetricsSnapshot deserialize(const uint8_t *data, size_t size);
    static MetricsSnapshot deserialize(const std::vector<uint8_t> &buf);
};

/** Prometheus-safe spelling of @p name (see writePrometheus). */
std::string prometheusName(const std::string &name);

} // namespace ca::telemetry

#endif // CA_TELEMETRY_SNAPSHOT_H
