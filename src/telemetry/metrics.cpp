#include "telemetry/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ca::telemetry {

namespace {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

/** Minimal JSON string escaper (metric names are ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Doubles must stay valid JSON (no "nan"/"inf" tokens). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry &
MetricsRegistry::lookup(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry entry;
        entry.kind = kind;
        switch (kind) {
          case MetricKind::Counter:
            entry.counter = std::make_unique<Counter>();
            break;
          case MetricKind::Gauge:
            entry.gauge = std::make_unique<Gauge>();
            break;
          case MetricKind::Histogram:
            entry.histogram = std::make_unique<Histogram>();
            break;
        }
        it = entries_.emplace(name, std::move(entry)).first;
    } else if (it->second.kind != kind) {
        throw std::logic_error("telemetry metric '" + name +
                               "' registered as " +
                               kindName(it->second.kind) +
                               ", requested as " + kindName(kind));
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *lookup(name, MetricKind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *lookup(name, MetricKind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *lookup(name, MetricKind::Histogram).histogram;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, entry] : entries_) {
        switch (entry.kind) {
          case MetricKind::Counter: entry.counter->reset(); break;
          case MetricKind::Gauge: entry.gauge->reset(); break;
          case MetricKind::Histogram: entry.histogram->reset(); break;
        }
    }
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"schema\":\"ca.metrics.v1\",\"metrics\":{";
    bool first = true;
    for (const auto &[name, entry] : entries_) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":{\"type\":\""
           << kindName(entry.kind) << '"';
        switch (entry.kind) {
          case MetricKind::Counter:
            os << ",\"value\":" << entry.counter->value();
            break;
          case MetricKind::Gauge:
            os << ",\"value\":" << jsonNumber(entry.gauge->value());
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *entry.histogram;
            os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum()
               << ",\"max\":" << h.max()
               << ",\"mean\":" << jsonNumber(h.mean()) << ",\"buckets\":[";
            bool first_bucket = true;
            for (int i = 0; i < Histogram::kNumBuckets; ++i) {
                uint64_t n = h.bucketCount(i);
                if (n == 0)
                    continue;
                if (!first_bucket)
                    os << ',';
                first_bucket = false;
                os << "{\"lo\":" << Histogram::bucketLow(i)
                   << ",\"hi\":" << Histogram::bucketHigh(i)
                   << ",\"count\":" << n << '}';
            }
            os << ']';
            break;
          }
        }
        os << '}';
    }
    os << "}}\n";
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "name,kind,value,count,sum,max,mean\n";
    for (const auto &[name, entry] : entries_) {
        os << name << ',' << kindName(entry.kind) << ',';
        switch (entry.kind) {
          case MetricKind::Counter:
            os << entry.counter->value() << ",,,,\n";
            break;
          case MetricKind::Gauge:
            os << entry.gauge->value() << ",,,,\n";
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *entry.histogram;
            os << ',' << h.count() << ',' << h.sum() << ',' << h.max()
               << ',' << h.mean() << '\n';
            break;
          }
        }
    }
}

bool
MetricsRegistry::saveFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        writeCsv(out);
    else
        writeJson(out);
    return static_cast<bool>(out);
}

} // namespace ca::telemetry
