#include "telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "telemetry/snapshot.h"

namespace ca::telemetry {

namespace {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

/** Minimal JSON string escaper (metric names are ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Doubles must stay valid JSON (no "nan"/"inf" tokens). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

double
Histogram::percentileOf(const uint64_t buckets[kNumBuckets],
                        uint64_t maxValue, double q)
{
    uint64_t count = 0;
    for (int i = 0; i < kNumBuckets; ++i)
        count += buckets[i];
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest rank: the ceil(q * count)-th smallest sample (1-based).
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
    rank = std::clamp<uint64_t>(rank, 1, count);
    uint64_t cum = 0;
    double maxd = static_cast<double>(maxValue);
    for (int i = 0; i < kNumBuckets; ++i) {
        uint64_t n = buckets[i];
        if (n == 0)
            continue;
        if (cum + n >= rank) {
            double lo = static_cast<double>(bucketLow(i));
            double hi = static_cast<double>(bucketHigh(i));
            // Spread the bucket's n samples evenly across [lo, hi] and
            // pick the rank's position; clamping to max() keeps the top
            // quantiles honest in the (sparse) last bucket.
            double frac = n == 1
                ? 0.0
                : static_cast<double>(rank - cum - 1) /
                    static_cast<double>(n - 1);
            return std::min(lo + (hi - lo) * frac, maxd);
        }
        cum += n;
    }
    return maxd;
}

double
Histogram::percentile(double q) const
{
    // Copy once so the rank search runs over a self-consistent view even
    // while observe() keeps landing on other threads.
    uint64_t b[kNumBuckets];
    for (int i = 0; i < kNumBuckets; ++i)
        b[i] = bucketCount(i);
    return percentileOf(b, max(), q);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry &
MetricsRegistry::lookup(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry entry;
        entry.kind = kind;
        switch (kind) {
          case MetricKind::Counter:
            entry.counter = std::make_unique<Counter>();
            break;
          case MetricKind::Gauge:
            entry.gauge = std::make_unique<Gauge>();
            break;
          case MetricKind::Histogram:
            entry.histogram = std::make_unique<Histogram>();
            break;
        }
        it = entries_.emplace(name, std::move(entry)).first;
    } else if (it->second.kind != kind) {
        throw std::logic_error("telemetry metric '" + name +
                               "' registered as " +
                               kindName(it->second.kind) +
                               ", requested as " + kindName(kind));
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *lookup(name, MetricKind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *lookup(name, MetricKind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *lookup(name, MetricKind::Histogram).histogram;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, entry] : entries_) {
        switch (entry.kind) {
          case MetricKind::Counter: entry.counter->reset(); break;
          case MetricKind::Gauge: entry.gauge->reset(); break;
          case MetricKind::Histogram: entry.histogram->reset(); break;
        }
    }
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.monotonicMicros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : entries_) {
        MetricValue v;
        v.kind = entry.kind;
        switch (entry.kind) {
          case MetricKind::Counter:
            v.counter = entry.counter->value();
            break;
          case MetricKind::Gauge:
            v.gauge = entry.gauge->value();
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *entry.histogram;
            v.buckets.resize(Histogram::kNumBuckets);
            for (int i = 0; i < Histogram::kNumBuckets; ++i) {
                v.buckets[static_cast<size_t>(i)] = h.bucketCount(i);
                v.count += v.buckets[static_cast<size_t>(i)];
            }
            v.sum = h.sum();
            v.max = h.max();
            break;
          }
        }
        snap.metrics.emplace(name, std::move(v));
    }
    return snap;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"schema\":\"ca.metrics.v1\",\"metrics\":{";
    bool first = true;
    for (const auto &[name, entry] : entries_) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":{\"type\":\""
           << kindName(entry.kind) << '"';
        switch (entry.kind) {
          case MetricKind::Counter:
            os << ",\"value\":" << entry.counter->value();
            break;
          case MetricKind::Gauge:
            os << ",\"value\":" << jsonNumber(entry.gauge->value());
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *entry.histogram;
            os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum()
               << ",\"max\":" << h.max()
               << ",\"mean\":" << jsonNumber(h.mean()) << ",\"buckets\":[";
            bool first_bucket = true;
            for (int i = 0; i < Histogram::kNumBuckets; ++i) {
                uint64_t n = h.bucketCount(i);
                if (n == 0)
                    continue;
                if (!first_bucket)
                    os << ',';
                first_bucket = false;
                os << "{\"lo\":" << Histogram::bucketLow(i)
                   << ",\"hi\":" << Histogram::bucketHigh(i)
                   << ",\"count\":" << n << '}';
            }
            os << ']';
            break;
          }
        }
        os << '}';
    }
    os << "}}\n";
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "name,kind,value,count,sum,max,mean\n";
    for (const auto &[name, entry] : entries_) {
        os << name << ',' << kindName(entry.kind) << ',';
        switch (entry.kind) {
          case MetricKind::Counter:
            os << entry.counter->value() << ",,,,\n";
            break;
          case MetricKind::Gauge:
            os << entry.gauge->value() << ",,,,\n";
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *entry.histogram;
            os << ',' << h.count() << ',' << h.sum() << ',' << h.max()
               << ',' << h.mean() << '\n';
            break;
          }
        }
    }
}

bool
MetricsRegistry::saveFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        writeCsv(out);
    else
        writeJson(out);
    return static_cast<bool>(out);
}

} // namespace ca::telemetry
