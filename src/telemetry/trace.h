/**
 * @file
 * Span trace collection with Chrome trace_event export.
 *
 * ScopedTimer (usually via the CA_TRACE_SCOPE macro) records one complete
 * "X"-phase event per dynamic scope into the process-wide TraceCollector.
 * writeChromeTrace() emits the JSON object format that chrome://tracing
 * and Perfetto load directly, so a benchmark run's stage breakdown
 * (parse → Glushkov → partition → map → simulate) can be inspected on a
 * timeline.
 *
 * Collection is bounded: past the configured capacity events are counted
 * as dropped rather than grown without limit (a long simulation feeding
 * many chunks would otherwise exhaust memory).
 */
#ifndef CA_TELEMETRY_TRACE_H
#define CA_TELEMETRY_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/runtime.h"

namespace ca::telemetry {

/** One completed span ("X" phase event in the Chrome schema). */
struct TraceEvent
{
    std::string name;
    std::string category;
    uint64_t startMicros = 0; ///< Relative to the collector's epoch.
    uint64_t durationMicros = 0;
    uint32_t tid = 0;
};

class TraceCollector
{
  public:
    /** The process-wide collector CA_TRACE_SCOPE records into. */
    static TraceCollector &global();

    TraceCollector();

    /** Microseconds since the collector's epoch (steady clock). */
    uint64_t nowMicros() const;

    void record(std::string name, std::string category,
                uint64_t start_us, uint64_t duration_us);

    /** Drops recorded events (the epoch is kept). */
    void clear();

    size_t size() const;
    uint64_t dropped() const;

    /** Events past this count are dropped (default 1M). */
    void setCapacity(size_t capacity);

    /** Snapshot of the recorded events. */
    std::vector<TraceEvent> events() const;

    /** Chrome trace_event JSON object ({"traceEvents":[...]}). */
    void writeChromeTrace(std::ostream &os) const;

    bool saveFile(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    size_t capacity_ = 1u << 20;
    uint64_t dropped_ = 0;
    uint64_t epoch_ns_ = 0;
};

/**
 * RAII span: records [construction, destruction) into the global
 * collector when telemetry is runtime-enabled at construction. When
 * disabled the constructor is a single branch.
 */
class ScopedTimer
{
  public:
    /** Literal-name spans: no allocation happens when disabled. */
    explicit ScopedTimer(const char *name, const char *category = "ca")
        : active_(enabled())
    {
        if (active_) {
            name_ = name;
            category_ = category;
            start_us_ = TraceCollector::global().nowMicros();
        }
    }

    /** Dynamic-name spans (cold paths: per-benchmark labels). */
    explicit ScopedTimer(std::string name, std::string category)
        : active_(enabled())
    {
        if (active_) {
            name_ = std::move(name);
            category_ = std::move(category);
            start_us_ = TraceCollector::global().nowMicros();
        }
    }

    ~ScopedTimer()
    {
        if (active_) {
            TraceCollector &tc = TraceCollector::global();
            uint64_t now = tc.nowMicros();
            tc.record(std::move(name_), std::move(category_), start_us_,
                      now - start_us_);
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    bool active_;
    std::string name_;
    std::string category_;
    uint64_t start_us_ = 0;
};

} // namespace ca::telemetry

#endif // CA_TELEMETRY_TRACE_H
