/**
 * @file
 * Telemetry umbrella: instrumentation macros, artifact dumping, and the
 * --metrics-out/--trace-out CLI session shared by benches and examples.
 *
 * Two gates control collection (docs/TELEMETRY.md):
 *  - CA_TELEMETRY *macro* (CMake -DCA_TELEMETRY=ON/OFF, default ON):
 *    compiles every instrumentation site out entirely when 0.
 *  - runtime enable (telemetry::setEnabled or the CA_TELEMETRY
 *    *environment variable*): when compiled in but disabled, each site
 *    costs one relaxed load + branch.
 *
 * Sites use the macros below so the registry lookup (mutex + map) runs
 * once per site, not per hit:
 *
 *   CA_TRACE_SCOPE("ca.compiler.map");          // RAII span
 *   CA_COUNTER_ADD("ca.sim.symbols", n);
 *   CA_GAUGE_SET("ca.compiler.utilization_mb", mb);
 *   CA_HISTOGRAM_OBSERVE("ca.sim.feed_symbols", size);
 */
#ifndef CA_TELEMETRY_TELEMETRY_H
#define CA_TELEMETRY_TELEMETRY_H

#include <iosfwd>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/runtime.h"
#include "telemetry/trace.h"

#ifndef CA_TELEMETRY
#define CA_TELEMETRY 1
#endif

namespace ca::telemetry {

/** Writes the global registry to @p path (CSV iff it ends in ".csv"). */
bool dumpMetrics(const std::string &path);

/** Writes the global collector as Chrome trace JSON to @p path. */
bool dumpTrace(const std::string &path);

/**
 * Per-span-name aggregate (count / total / mean wall time) of everything
 * in the global collector, sorted by total time — the quickstart's
 * end-of-run stage breakdown.
 */
void printStageSummary(std::ostream &os);

/**
 * Scans argv for `--metrics-out <file>` / `--trace-out <file>` (the
 * `--flag=value` spelling works too), runtime-enables telemetry when
 * either is present, and writes the artifacts on destruction. Put one at
 * the top of main(); unrelated arguments are ignored.
 */
class CliSession
{
  public:
    CliSession(int argc, const char *const *argv);
    ~CliSession();

    CliSession(const CliSession &) = delete;
    CliSession &operator=(const CliSession &) = delete;

    bool active() const { return !metrics_path_.empty() ||
                                 !trace_path_.empty(); }
    const std::string &metricsPath() const { return metrics_path_; }
    const std::string &tracePath() const { return trace_path_; }

    /**
     * Removes the telemetry flags from argv (for mains that hand argv to
     * a stricter parser, e.g. google-benchmark). Returns the new argc.
     */
    static int stripArgs(int argc, char **argv);

  private:
    std::string metrics_path_;
    std::string trace_path_;
};

} // namespace ca::telemetry

#if CA_TELEMETRY

#define CA_TELEMETRY_CAT2(a, b) a##b
#define CA_TELEMETRY_CAT(a, b) CA_TELEMETRY_CAT2(a, b)

/** RAII span over the enclosing scope, named by a string literal. */
#define CA_TRACE_SCOPE(name)                                               \
    ::ca::telemetry::ScopedTimer CA_TELEMETRY_CAT(ca_trace_scope_,         \
                                                  __LINE__)(name)

/** Same, with an explicit category (and std::string names allowed). */
#define CA_TRACE_SCOPE_CAT(name, cat)                                      \
    ::ca::telemetry::ScopedTimer CA_TELEMETRY_CAT(ca_trace_scope_,         \
                                                  __LINE__)(name, cat)

#define CA_COUNTER_ADD(name, delta)                                        \
    do {                                                                   \
        if (::ca::telemetry::enabled()) {                                  \
            static ::ca::telemetry::Counter &ca_tm_ctr_ =                  \
                ::ca::telemetry::MetricsRegistry::global().counter(name);  \
            ca_tm_ctr_.add(static_cast<uint64_t>(delta));                  \
        }                                                                  \
    } while (0)

#define CA_GAUGE_SET(name, value)                                          \
    do {                                                                   \
        if (::ca::telemetry::enabled()) {                                  \
            static ::ca::telemetry::Gauge &ca_tm_gauge_ =                  \
                ::ca::telemetry::MetricsRegistry::global().gauge(name);    \
            ca_tm_gauge_.set(static_cast<double>(value));                  \
        }                                                                  \
    } while (0)

#define CA_HISTOGRAM_OBSERVE(name, value)                                  \
    do {                                                                   \
        if (::ca::telemetry::enabled()) {                                  \
            static ::ca::telemetry::Histogram &ca_tm_hist_ =               \
                ::ca::telemetry::MetricsRegistry::global().histogram(      \
                    name);                                                 \
            ca_tm_hist_.observe(static_cast<uint64_t>(value));             \
        }                                                                  \
    } while (0)

#else // !CA_TELEMETRY

#define CA_TRACE_SCOPE(name) ((void)0)
#define CA_TRACE_SCOPE_CAT(name, cat) ((void)0)
#define CA_COUNTER_ADD(name, delta) ((void)0)
#define CA_GAUGE_SET(name, value) ((void)0)
#define CA_HISTOGRAM_OBSERVE(name, value) ((void)0)

#endif // CA_TELEMETRY

#endif // CA_TELEMETRY_TELEMETRY_H
