/**
 * @file
 * Process-wide metrics registry: counters, gauges, and histograms.
 *
 * Every stage of the compile→map→simulate pipeline reports its activity
 * here under the `ca.<subsystem>.<name>` naming scheme (see
 * docs/TELEMETRY.md), giving one uniform place to collect the numbers the
 * paper's evaluation is built from (active states/partitions per cycle,
 * G1/G4 crossings, mapping utilization) plus stage timing.
 *
 * Handles returned by the registry are stable for the process lifetime and
 * update with relaxed atomics, so instrumented hot paths pay one atomic
 * add. Registration takes a mutex; instrumentation sites therefore look a
 * handle up once (see the CA_COUNTER_ADD macro in telemetry.h) and reuse
 * it.
 */
#ifndef CA_TELEMETRY_METRICS_H
#define CA_TELEMETRY_METRICS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ca::telemetry {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-written instantaneous value (utilization, sizes, ratios). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed log2-scale histogram over non-negative integer samples.
 *
 * Bucket 0 holds exactly the value 0; bucket i >= 1 holds values in
 * [2^(i-1), 2^i - 1] — i.e. bucketIndex(v) == std::bit_width(v). The 65
 * buckets cover the full uint64_t range, so observe() never clips.
 */
class Histogram
{
  public:
    static constexpr int kNumBuckets = 65;

    void
    observe(uint64_t v)
    {
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (v > prev &&
               !max_.compare_exchange_weak(prev, v,
                                           std::memory_order_relaxed)) {
        }
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }

    /**
     * Quantile @p q in [0, 1] by nearest rank over the log2 buckets with
     * linear interpolation inside the winning bucket, clamped to max()
     * (which is tracked exactly, so percentile(1.0) == max()). Returns 0
     * on an empty histogram. Log2 buckets bound the error: the estimate
     * lands in the same power-of-two bucket as the true order statistic.
     */
    double percentile(double q) const;
    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }

    /**
     * The same quantile definition over an already-captured bucket
     * array, so snapshots and STATS replies reuse the exact production
     * math (the sample count is taken from the buckets themselves).
     */
    static double percentileOf(const uint64_t buckets[kNumBuckets],
                               uint64_t maxValue, double q);

    double
    mean() const
    {
        uint64_t n = count();
        return n == 0 ? 0.0
                      : static_cast<double>(sum()) / static_cast<double>(n);
    }

    uint64_t
    bucketCount(int i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    static int
    bucketIndex(uint64_t v)
    {
        return std::bit_width(v);
    }

    /** Smallest value bucket @p i accepts. */
    static uint64_t
    bucketLow(int i)
    {
        if (i <= 1)
            return static_cast<uint64_t>(i);
        return uint64_t{1} << (i - 1);
    }

    /** Largest value bucket @p i accepts. */
    static uint64_t
    bucketHigh(int i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~uint64_t{0};
        return (uint64_t{1} << i) - 1;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> buckets_[kNumBuckets]{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

enum class MetricKind { Counter, Gauge, Histogram };

class MetricsSnapshot; // telemetry/snapshot.h

/**
 * Thread-safe name → metric registry.
 *
 * Lookup creates the metric on first use; asking for an existing name with
 * a different kind throws std::logic_error (a naming bug worth failing
 * loudly on). Export order is deterministic (sorted by name).
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry the CA_* macros record into. */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Zeroes every registered metric (tests, per-run benches). */
    void resetAll();

    size_t size() const;

    /**
     * Point-in-time copy of every registered metric, taken under the
     * registry mutex (concurrent add/set/observe keep running; each
     * metric's fields are read with relaxed loads, so a snapshot is
     * per-metric-consistent, not globally atomic). See
     * telemetry/snapshot.h for deltas, rates, and exposition.
     */
    MetricsSnapshot snapshot() const;

    /** {"schema":"ca.metrics.v1","metrics":{name:{...}}} */
    void writeJson(std::ostream &os) const;

    /** Flat rows: name,kind,value,count,sum,max,mean */
    void writeCsv(std::ostream &os) const;

    /** Writes CSV when @p path ends in ".csv", JSON otherwise. */
    bool saveFile(const std::string &path) const;

  private:
    struct Entry
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &lookup(const std::string &name, MetricKind kind);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

} // namespace ca::telemetry

#endif // CA_TELEMETRY_METRICS_H
