#include "telemetry/snapshot.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/error.h"
#include "core/serde.h"

namespace ca::telemetry {

namespace {

/** Prometheus sample values: finite decimal, else the literal "NaN". */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
prometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
            c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

double
MetricValue::percentile(double q) const
{
    if (kind != MetricKind::Histogram ||
        buckets.size() !=
            static_cast<size_t>(Histogram::kNumBuckets))
        return 0.0;
    return Histogram::percentileOf(buckets.data(), max, q);
}

const MetricValue *
MetricsSnapshot::find(const std::string &name) const
{
    auto it = metrics.find(name);
    return it == metrics.end() ? nullptr : &it->second;
}

MetricsSnapshot
MetricsSnapshot::deltaSince(const MetricsSnapshot &earlier) const
{
    auto clamped = [](uint64_t now, uint64_t then) {
        return now >= then ? now - then : now;
    };
    MetricsSnapshot out;
    out.monotonicMicros = monotonicMicros;
    for (const auto &[name, now] : metrics) {
        const MetricValue *then = earlier.find(name);
        MetricValue d = now;
        if (then != nullptr && then->kind == now.kind) {
            switch (now.kind) {
              case MetricKind::Counter:
                d.counter = clamped(now.counter, then->counter);
                break;
              case MetricKind::Gauge:
                break; // latest value stands
              case MetricKind::Histogram:
                d.count = clamped(now.count, then->count);
                d.sum = clamped(now.sum, then->sum);
                if (then->buckets.size() == now.buckets.size())
                    for (size_t i = 0; i < d.buckets.size(); ++i)
                        d.buckets[i] =
                            clamped(now.buckets[i], then->buckets[i]);
                break;
            }
        }
        out.metrics.emplace(name, std::move(d));
    }
    return out;
}

std::map<std::string, double>
MetricsSnapshot::ratesSince(const MetricsSnapshot &earlier) const
{
    std::map<std::string, double> rates;
    if (monotonicMicros <= earlier.monotonicMicros)
        return rates;
    double seconds =
        static_cast<double>(monotonicMicros - earlier.monotonicMicros) /
        1e6;
    MetricsSnapshot d = deltaSince(earlier);
    for (const auto &[name, v] : d.metrics) {
        switch (v.kind) {
          case MetricKind::Counter:
            rates[name] = static_cast<double>(v.counter) / seconds;
            break;
          case MetricKind::Histogram:
            rates[name] = static_cast<double>(v.count) / seconds;
            break;
          case MetricKind::Gauge:
            break;
        }
    }
    return rates;
}

void
MetricsSnapshot::writePrometheus(std::ostream &os) const
{
    for (const auto &[name, v] : metrics) {
        std::string pname = prometheusName(name);
        switch (v.kind) {
          case MetricKind::Counter:
            os << "# TYPE " << pname << "_total counter\n"
               << pname << "_total " << v.counter << '\n';
            break;
          case MetricKind::Gauge:
            os << "# TYPE " << pname << " gauge\n"
               << pname << ' ' << promNumber(v.gauge) << '\n';
            break;
          case MetricKind::Histogram: {
            os << "# TYPE " << pname << " histogram\n";
            uint64_t cum = 0;
            for (size_t i = 0; i < v.buckets.size(); ++i) {
                if (v.buckets[i] == 0)
                    continue;
                cum += v.buckets[i];
                os << pname << "_bucket{le=\""
                   << Histogram::bucketHigh(static_cast<int>(i))
                   << "\"} " << cum << '\n';
            }
            os << pname << "_bucket{le=\"+Inf\"} " << v.count << '\n'
               << pname << "_sum " << v.sum << '\n'
               << pname << "_count " << v.count << '\n';
            break;
          }
        }
    }
}

std::string
MetricsSnapshot::prometheusText() const
{
    std::ostringstream os;
    writePrometheus(os);
    return os.str();
}

void
MetricsSnapshot::serialize(std::vector<uint8_t> &out) const
{
    serde::putU32(out, kSnapshotMagic);
    serde::putU16(out, kSnapshotVersion);
    serde::putU64(out, monotonicMicros);
    serde::putU32(out, static_cast<uint32_t>(metrics.size()));
    for (const auto &[name, v] : metrics) {
        serde::putString(out, name);
        serde::putU8(out, static_cast<uint8_t>(v.kind));
        switch (v.kind) {
          case MetricKind::Counter:
            serde::putU64(out, v.counter);
            break;
          case MetricKind::Gauge:
            serde::putF64(out, v.gauge);
            break;
          case MetricKind::Histogram: {
            serde::putU64(out, v.count);
            serde::putU64(out, v.sum);
            serde::putU64(out, v.max);
            uint16_t nonzero = 0;
            for (uint64_t b : v.buckets)
                nonzero = static_cast<uint16_t>(nonzero + (b != 0));
            serde::putU16(out, nonzero);
            for (size_t i = 0; i < v.buckets.size(); ++i) {
                if (v.buckets[i] == 0)
                    continue;
                serde::putU8(out, static_cast<uint8_t>(i));
                serde::putU64(out, v.buckets[i]);
            }
            break;
          }
        }
    }
}

std::vector<uint8_t>
MetricsSnapshot::serialize() const
{
    std::vector<uint8_t> out;
    serialize(out);
    return out;
}

MetricsSnapshot
MetricsSnapshot::deserialize(const uint8_t *data, size_t size)
{
    serde::ByteReader r(data, size);
    MetricsSnapshot snap;
    uint32_t magic = r.u32();
    CA_FATAL_IF(magic != kSnapshotMagic,
                "metrics snapshot: bad magic 0x" << std::hex << magic);
    uint16_t version = r.u16();
    CA_FATAL_IF(version != kSnapshotVersion,
                "metrics snapshot: unsupported version " << version);
    snap.monotonicMicros = r.u64();
    uint32_t n = r.u32();
    // Each metric needs >= 13 bytes (name length + kind + one payload
    // word); reject hostile counts before the loop allocates anything.
    CA_FATAL_IF(static_cast<uint64_t>(n) * 13 > r.remaining(),
                "metrics snapshot: metric count " << n
                    << " cannot fit in " << r.remaining() << " bytes");
    for (uint32_t i = 0; i < n; ++i) {
        std::string name = r.str();
        uint8_t kind = r.u8();
        MetricValue v;
        switch (kind) {
          case static_cast<uint8_t>(MetricKind::Counter):
            v.kind = MetricKind::Counter;
            v.counter = r.u64();
            break;
          case static_cast<uint8_t>(MetricKind::Gauge):
            v.kind = MetricKind::Gauge;
            v.gauge = r.f64();
            break;
          case static_cast<uint8_t>(MetricKind::Histogram): {
            v.kind = MetricKind::Histogram;
            uint64_t count = r.u64();
            v.sum = r.u64();
            v.max = r.u64();
            uint16_t nonzero = r.u16();
            CA_FATAL_IF(nonzero > Histogram::kNumBuckets,
                        "metrics snapshot: " << nonzero
                            << " histogram buckets exceeds "
                            << Histogram::kNumBuckets);
            v.buckets.assign(Histogram::kNumBuckets, 0);
            for (uint16_t b = 0; b < nonzero; ++b) {
                uint8_t idx = r.u8();
                CA_FATAL_IF(idx >= Histogram::kNumBuckets,
                            "metrics snapshot: bucket index " << unsigned{
                                idx} << " out of range");
                v.buckets[idx] = r.u64();
                v.count += v.buckets[idx];
            }
            CA_FATAL_IF(v.count != count,
                        "metrics snapshot: histogram count " << count
                            << " disagrees with bucket total " << v.count);
            break;
          }
          default:
            CA_THROW("metrics snapshot: unknown metric kind "
                     << unsigned{kind});
        }
        snap.metrics.emplace(std::move(name), std::move(v));
    }
    CA_FATAL_IF(!r.done(), "metrics snapshot: " << r.remaining()
                               << " trailing bytes");
    return snap;
}

MetricsSnapshot
MetricsSnapshot::deserialize(const std::vector<uint8_t> &buf)
{
    return deserialize(buf.data(), buf.size());
}

} // namespace ca::telemetry
