#include "telemetry/runtime.h"

#include <cstdlib>
#include <cstring>

namespace ca::telemetry {

namespace {

bool
envDefault()
{
    const char *env = std::getenv("CA_TELEMETRY");
    if (!env)
        return false;
    return !std::strcmp(env, "1") || !std::strcmp(env, "on") ||
           !std::strcmp(env, "true");
}

} // namespace

namespace detail {
std::atomic<bool> g_enabled{envDefault()};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

} // namespace ca::telemetry
