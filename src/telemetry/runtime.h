/**
 * @file
 * Runtime on/off switch for telemetry collection.
 *
 * Instrumentation is gated twice: compile-time by the CA_TELEMETRY macro
 * (see telemetry.h — compiles every site out entirely when 0) and runtime
 * by this flag, so an instrumented-but-disabled binary pays one relaxed
 * atomic load and a predictable branch per site.
 *
 * The initial state comes from the CA_TELEMETRY *environment variable*
 * ("1"/"on"/"true" enable it); programs that want artifacts
 * unconditionally call setEnabled(true) (the CliSession does this when
 * --metrics-out/--trace-out is passed).
 */
#ifndef CA_TELEMETRY_RUNTIME_H
#define CA_TELEMETRY_RUNTIME_H

#include <atomic>

namespace ca::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True when instrumentation sites should record. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void setEnabled(bool on);

} // namespace ca::telemetry

#endif // CA_TELEMETRY_RUNTIME_H
