#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <ostream>
#include <vector>

namespace ca::telemetry {

bool
dumpMetrics(const std::string &path)
{
    return MetricsRegistry::global().saveFile(path);
}

bool
dumpTrace(const std::string &path)
{
    return TraceCollector::global().saveFile(path);
}

void
printStageSummary(std::ostream &os)
{
    struct Agg
    {
        uint64_t count = 0;
        uint64_t total_us = 0;
    };
    std::map<std::string, Agg> by_name;
    for (const TraceEvent &ev : TraceCollector::global().events()) {
        Agg &a = by_name[ev.name];
        ++a.count;
        a.total_us += ev.durationMicros;
    }

    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                  by_name.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second.total_us > b.second.total_us;
    });

    size_t name_w = std::strlen("stage");
    for (const auto &[name, agg] : rows)
        name_w = std::max(name_w, name.size());

    char line[256];
    std::snprintf(line, sizeof(line), "%-*s  %8s  %12s  %12s\n",
                  static_cast<int>(name_w), "stage", "calls", "total ms",
                  "mean ms");
    os << line;
    os << std::string(name_w + 2 + 8 + 2 + 12 + 2 + 12, '-') << '\n';
    for (const auto &[name, agg] : rows) {
        double total_ms = static_cast<double>(agg.total_us) / 1000.0;
        double mean_ms = agg.count == 0
            ? 0.0
            : total_ms / static_cast<double>(agg.count);
        std::snprintf(line, sizeof(line), "%-*s  %8llu  %12.3f  %12.3f\n",
                      static_cast<int>(name_w), name.c_str(),
                      static_cast<unsigned long long>(agg.count), total_ms,
                      mean_ms);
        os << line;
    }
    if (rows.empty())
        os << "(no spans recorded; is telemetry enabled?)\n";
}

namespace {

/** Matches "--flag value" and "--flag=value"; returns the value or "". */
std::string
matchFlag(const char *flag, int argc, const char *const *argv, int &i)
{
    const char *arg = argv[i];
    size_t flag_len = std::strlen(flag);
    if (std::strncmp(arg, flag, flag_len) != 0)
        return "";
    if (arg[flag_len] == '=')
        return arg + flag_len + 1;
    if (arg[flag_len] == '\0' && i + 1 < argc)
        return argv[++i];
    return "";
}

} // namespace

CliSession::CliSession(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string v = matchFlag("--metrics-out", argc, argv, i);
            !v.empty())
            metrics_path_ = v;
        else if (std::string t = matchFlag("--trace-out", argc, argv, i);
                 !t.empty())
            trace_path_ = t;
    }
    if (active())
        setEnabled(true);
}

CliSession::~CliSession()
{
    if (!metrics_path_.empty()) {
        if (dumpMetrics(metrics_path_))
            std::fprintf(stderr, "[telemetry] wrote metrics to %s\n",
                         metrics_path_.c_str());
        else
            std::fprintf(stderr, "[telemetry] FAILED to write %s\n",
                         metrics_path_.c_str());
    }
    if (!trace_path_.empty()) {
        if (dumpTrace(trace_path_))
            std::fprintf(stderr, "[telemetry] wrote trace to %s "
                                 "(open in chrome://tracing or Perfetto)\n",
                         trace_path_.c_str());
        else
            std::fprintf(stderr, "[telemetry] FAILED to write %s\n",
                         trace_path_.c_str());
    }
}

int
CliSession::stripArgs(int argc, char **argv)
{
    std::vector<char *> kept;
    kept.reserve(static_cast<size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        bool is_flag = !std::strncmp(arg, "--metrics-out", 13) ||
                       !std::strncmp(arg, "--trace-out", 11);
        if (i > 0 && is_flag) {
            // "--flag value": also swallow the value argument.
            if (!std::strchr(arg, '=') && i + 1 < argc)
                ++i;
            continue;
        }
        kept.push_back(argv[i]);
    }
    for (size_t i = 0; i < kept.size(); ++i)
        argv[i] = kept[i];
    argv[kept.size()] = nullptr;
    return static_cast<int>(kept.size());
}

} // namespace ca::telemetry
