#include "telemetry/trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <ostream>
#include <thread>

namespace ca::telemetry {

namespace {

uint64_t
steadyNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Small sequential ids beat hashed std::thread::id in trace viewers. */
uint32_t
currentTid()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t tid = next.fetch_add(1);
    return tid;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

} // namespace

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

TraceCollector::TraceCollector() : epoch_ns_(steadyNanos())
{
}

uint64_t
TraceCollector::nowMicros() const
{
    return (steadyNanos() - epoch_ns_) / 1000;
}

void
TraceCollector::record(std::string name, std::string category,
                       uint64_t start_us, uint64_t duration_us)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.startMicros = start_us;
    ev.durationMicros = duration_us;
    ev.tid = currentTid();

    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(ev));
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    dropped_ = 0;
}

size_t
TraceCollector::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

uint64_t
TraceCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
TraceCollector::setCapacity(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
TraceCollector::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : events_) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
           << jsonEscape(ev.category)
           << "\",\"ph\":\"X\",\"ts\":" << ev.startMicros
           << ",\"dur\":" << ev.durationMicros
           << ",\"pid\":1,\"tid\":" << ev.tid << '}';
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"schema\":\"ca.trace.v1\",\"droppedEvents\":"
       << dropped_ << "}}\n";
}

bool
TraceCollector::saveFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return static_cast<bool>(out);
}

} // namespace ca::telemetry
