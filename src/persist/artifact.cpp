#include "persist/artifact.h"

#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "core/error.h"
#include "core/serde.h"
#include "telemetry/telemetry.h"

namespace ca::persist {

namespace {

using serde::ByteReader;

// --- Section encoders / decoders ---------------------------------------
//
// All multi-byte values are little-endian (core/serde.h). Decoders never
// pre-allocate from untrusted counts: element loops read at least one
// byte per element, so a lying count runs into ByteReader's bounds check
// long before memory is at risk.

void
encodeSwitchSpec(std::vector<uint8_t> &out, const SwitchSpec &s)
{
    serde::putString(out, s.name);
    serde::putI32(out, s.inputs);
    serde::putI32(out, s.outputs);
    serde::putF64(out, s.delayPs);
    serde::putF64(out, s.energyPjPerBit);
    serde::putF64(out, s.areaMm2);
}

SwitchSpec
decodeSwitchSpec(ByteReader &r)
{
    SwitchSpec s;
    s.name = r.str();
    s.inputs = r.i32();
    s.outputs = r.i32();
    s.delayPs = r.f64();
    s.energyPjPerBit = r.f64();
    s.areaMm2 = r.f64();
    return s;
}

std::vector<uint8_t>
encodeDesign(const Design &d)
{
    std::vector<uint8_t> out;
    serde::putString(out, d.name);
    serde::putU8(out, static_cast<uint8_t>(d.kind));
    serde::putI32(out, d.stesPerMatchRead);
    serde::putI32(out, d.partitionStes);
    encodeSwitchSpec(out, d.lSwitch);
    encodeSwitchSpec(out, d.gSwitch1);
    serde::putU8(out, d.gSwitch4.has_value() ? 1 : 0);
    if (d.gSwitch4)
        encodeSwitchSpec(out, *d.gSwitch4);
    serde::putI32(out, d.g1WiresPerPartition);
    serde::putI32(out, d.g4WiresPerPartition);
    serde::putF64(out, d.gWireDistanceMm);
    serde::putF64(out, d.lWireDistanceMm);
    serde::putI32(out, d.lSwitchesPer32k);
    serde::putI32(out, d.g1SwitchesPer32k);
    serde::putI32(out, d.g4SwitchesPer32k);
    serde::putF64(out, d.operatingFreqHz);
    serde::putI32(out, d.waysUsable);
    return out;
}

Design
decodeDesign(ByteReader &r)
{
    Design d;
    d.name = r.str();
    uint8_t kind = r.u8();
    CA_FATAL_IF(kind > static_cast<uint8_t>(DesignKind::Custom),
                "artifact: bad design kind " << int(kind));
    d.kind = static_cast<DesignKind>(kind);
    d.stesPerMatchRead = r.i32();
    d.partitionStes = r.i32();
    CA_FATAL_IF(d.partitionStes <= 0 || d.partitionStes > (1 << 16),
                "artifact: implausible partitionStes " << d.partitionStes);
    d.lSwitch = decodeSwitchSpec(r);
    d.gSwitch1 = decodeSwitchSpec(r);
    if (r.u8())
        d.gSwitch4 = decodeSwitchSpec(r);
    d.g1WiresPerPartition = r.i32();
    d.g4WiresPerPartition = r.i32();
    CA_FATAL_IF(d.g1WiresPerPartition < 0 || d.g1WiresPerPartition > (1 << 16)
                    || d.g4WiresPerPartition < 0
                    || d.g4WiresPerPartition > (1 << 16),
                "artifact: implausible G-wire budget");
    d.gWireDistanceMm = r.f64();
    d.lWireDistanceMm = r.f64();
    d.lSwitchesPer32k = r.i32();
    d.g1SwitchesPer32k = r.i32();
    d.g4SwitchesPer32k = r.i32();
    d.operatingFreqHz = r.f64();
    d.waysUsable = r.i32();
    return d;
}

std::vector<uint8_t>
encodeNfa(const Nfa &nfa)
{
    std::vector<uint8_t> out;
    serde::putU32(out, static_cast<uint32_t>(nfa.numStates()));
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const NfaState &st = nfa.state(s);
        for (uint64_t w : st.label.raw())
            serde::putU64(out, w);
        serde::putU8(out, static_cast<uint8_t>(st.start));
        serde::putU8(out, st.report ? 1 : 0);
        serde::putU32(out, st.reportId);
        serde::putString(out, st.name);
        serde::putU32(out, static_cast<uint32_t>(st.out.size()));
        for (StateId t : st.out)
            serde::putU32(out, t);
    }
    return out;
}

Nfa
decodeNfa(ByteReader &r)
{
    Nfa nfa;
    uint32_t n = r.u32();
    std::vector<std::vector<StateId>> edges;
    for (uint32_t s = 0; s < n; ++s) {
        SymbolSet label;
        for (int w = 0; w < SymbolSet::kWords; ++w) {
            uint64_t word = r.u64();
            while (word) {
                int b = __builtin_ctzll(word);
                label.set(static_cast<uint8_t>(w * 64 + b));
                word &= word - 1;
            }
        }
        uint8_t start = r.u8();
        CA_FATAL_IF(start > static_cast<uint8_t>(StartType::AllInput),
                    "artifact: bad start type " << int(start));
        uint8_t report = r.u8();
        CA_FATAL_IF(report > 1, "artifact: bad report flag");
        uint32_t report_id = r.u32();
        std::string name = r.str();
        nfa.addState(label, static_cast<StartType>(start), report != 0,
                     report_id, std::move(name));
        uint32_t deg = r.u32();
        std::vector<StateId> out;
        for (uint32_t i = 0; i < deg; ++i) {
            StateId t = r.u32();
            CA_FATAL_IF(t >= n, "artifact: edge target " << t
                                    << " out of range (" << n << " states)");
            out.push_back(t);
        }
        edges.push_back(std::move(out));
    }
    for (StateId s = 0; s < n; ++s)
        for (StateId t : edges[s])
            nfa.addTransition(s, t);
    return nfa;
}

/** Layout version of the WGHT payload (independent of kFormatVersion). */
constexpr uint16_t kWeightsVersion = 1;

std::vector<uint8_t>
encodeWeights(const Nfa &nfa)
{
    std::vector<uint8_t> out;
    serde::putU16(out, kWeightsVersion);
    serde::putU32(out, static_cast<uint32_t>(nfa.numStates()));
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const NfaState &st = nfa.state(s);
        serde::putI32(out, st.startWeight);
        serde::putU32(out, static_cast<uint32_t>(st.out.size()));
        for (size_t k = 0; k < st.out.size(); ++k)
            serde::putI32(out, nfa.edgeWeight(s, k));
    }
    return out;
}

/** Overlays a decoded WGHT payload onto an already-decoded NFA. */
void
applyWeights(ByteReader &r, Nfa &nfa)
{
    uint16_t ver = r.u16();
    CA_FATAL_IF(ver != kWeightsVersion,
                "artifact: unsupported WGHT layout version " << ver);
    uint32_t n = r.u32();
    CA_FATAL_IF(n != nfa.numStates(),
                "artifact: WGHT covers " << n << " states, NFA has "
                                         << nfa.numStates());
    for (StateId s = 0; s < n; ++s) {
        NfaState &st = nfa.state(s);
        st.startWeight = r.i32();
        uint32_t deg = r.u32();
        CA_FATAL_IF(deg != st.out.size(),
                    "artifact: WGHT state " << s << " lists " << deg
                        << " edges, NFA has " << st.out.size());
        st.outWeight.assign(deg, 0);
        for (uint32_t k = 0; k < deg; ++k)
            st.outWeight[k] = r.i32();
    }
}

std::vector<uint8_t>
encodePlace(const MappedAutomaton &mapped)
{
    std::vector<uint8_t> out;
    serde::putU32(out, static_cast<uint32_t>(mapped.nfa().numStates()));
    for (StateId s = 0; s < mapped.nfa().numStates(); ++s) {
        const SteLocation &loc = mapped.location(s);
        serde::putU32(out, loc.partition);
        serde::putU16(out, loc.slot);
    }
    serde::putU32(out, static_cast<uint32_t>(mapped.numPartitions()));
    for (const PartitionInfo &p : mapped.partitions()) {
        serde::putU32(out, static_cast<uint32_t>(p.states.size()));
        for (StateId s : p.states)
            serde::putU32(out, s);
        serde::putI32(out, p.slice);
        serde::putI32(out, p.way);
        serde::putI32(out, p.subArray);
        serde::putI32(out, p.g1OutWires);
        serde::putI32(out, p.g1InWires);
        serde::putI32(out, p.g4OutWires);
        serde::putI32(out, p.g4InWires);
    }
    serde::putU32(out, static_cast<uint32_t>(mapped.crossEdges().size()));
    for (const CrossEdge &e : mapped.crossEdges()) {
        serde::putU32(out, e.from);
        serde::putU32(out, e.to);
        serde::putU8(out, e.viaG4 ? 1 : 0);
    }
    const MappingStats &st = mapped.stats();
    serde::putU64(out, st.states);
    serde::putU64(out, st.connectedComponents);
    serde::putU64(out, st.largestComponent);
    serde::putU64(out, st.partitions);
    serde::putF64(out, st.utilizationMB);
    serde::putU64(out, st.intraPartitionEdges);
    serde::putU64(out, st.g1Edges);
    serde::putU64(out, st.g4Edges);
    serde::putI32(out, st.maxG1OutWires);
    serde::putI32(out, st.maxG1InWires);
    serde::putI32(out, st.maxG4OutWires);
    serde::putI32(out, st.maxG4InWires);
    serde::putU64(out, st.budgetViolations);
    return out;
}

struct DecodedPlace
{
    std::vector<SteLocation> locations;
    std::vector<PartitionInfo> partitions;
    std::vector<CrossEdge> crossEdges;
    MappingStats stats;
};

DecodedPlace
decodePlace(ByteReader &r)
{
    DecodedPlace p;
    uint32_t n = r.u32();
    for (uint32_t s = 0; s < n; ++s) {
        SteLocation loc;
        loc.partition = r.u32();
        loc.slot = r.u16();
        p.locations.push_back(loc);
    }
    uint32_t parts = r.u32();
    for (uint32_t i = 0; i < parts; ++i) {
        PartitionInfo info;
        uint32_t count = r.u32();
        for (uint32_t s = 0; s < count; ++s)
            info.states.push_back(r.u32());
        info.slice = r.i32();
        info.way = r.i32();
        info.subArray = r.i32();
        info.g1OutWires = r.i32();
        info.g1InWires = r.i32();
        info.g4OutWires = r.i32();
        info.g4InWires = r.i32();
        p.partitions.push_back(std::move(info));
    }
    uint32_t crosses = r.u32();
    for (uint32_t i = 0; i < crosses; ++i) {
        CrossEdge e;
        e.from = r.u32();
        e.to = r.u32();
        uint8_t via = r.u8();
        CA_FATAL_IF(via > 1, "artifact: bad cross-edge level flag");
        e.viaG4 = via != 0;
        p.crossEdges.push_back(e);
    }
    MappingStats &st = p.stats;
    st.states = r.u64();
    st.connectedComponents = r.u64();
    st.largestComponent = r.u64();
    st.partitions = r.u64();
    st.utilizationMB = r.f64();
    st.intraPartitionEdges = r.u64();
    st.g1Edges = r.u64();
    st.g4Edges = r.u64();
    st.maxG1OutWires = r.i32();
    st.maxG1InWires = r.i32();
    st.maxG4OutWires = r.i32();
    st.maxG4InWires = r.i32();
    st.budgetViolations = r.u64();
    return p;
}

void
encodeIntList(std::vector<uint8_t> &out, const std::vector<int> &v)
{
    serde::putU32(out, static_cast<uint32_t>(v.size()));
    for (int x : v)
        serde::putI32(out, x);
}

std::vector<int>
decodeIntList(ByteReader &r)
{
    std::vector<int> v;
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(r.i32());
    return v;
}

std::vector<uint8_t>
encodeImage(const ConfigImage &img)
{
    std::vector<uint8_t> out;
    serde::putU32(out, static_cast<uint32_t>(img.partitions.size()));
    for (const PartitionConfig &p : img.partitions) {
        serde::putU32(out, static_cast<uint32_t>(p.steRows.size()));
        for (const BitVector &row : p.steRows)
            serde::putBits(out, row);
        serde::putI32(out, p.lSwitch.inputs);
        serde::putI32(out, p.lSwitch.outputs);
        serde::putU32(out, static_cast<uint32_t>(p.lSwitch.rowBits.size()));
        for (const BitVector &row : p.lSwitch.rowBits)
            serde::putBits(out, row);
        serde::putBits(out, p.startOfDataMask);
        serde::putBits(out, p.allInputMask);
        serde::putBits(out, p.reportMask);
        encodeIntList(out, p.g1Sources);
        serde::putU32(out, static_cast<uint32_t>(p.g1Targets.size()));
        for (const auto &t : p.g1Targets)
            encodeIntList(out, t);
        encodeIntList(out, p.g4Sources);
        serde::putU32(out, static_cast<uint32_t>(p.g4Targets.size()));
        for (const auto &t : p.g4Targets)
            encodeIntList(out, t);
    }
    return out;
}

void
decodeImagePartitions(ByteReader &r, ConfigImage &img)
{
    uint32_t parts = r.u32();
    for (uint32_t i = 0; i < parts; ++i) {
        PartitionConfig p;
        uint32_t rows = r.u32();
        for (uint32_t j = 0; j < rows; ++j)
            p.steRows.push_back(r.bits());
        p.lSwitch.inputs = r.i32();
        p.lSwitch.outputs = r.i32();
        uint32_t lrows = r.u32();
        CA_FATAL_IF(p.lSwitch.inputs < 0 ||
                        lrows != static_cast<uint32_t>(p.lSwitch.inputs),
                    "artifact: L-switch row count " << lrows
                        << " disagrees with input count "
                        << p.lSwitch.inputs);
        for (uint32_t j = 0; j < lrows; ++j)
            p.lSwitch.rowBits.push_back(r.bits());
        p.startOfDataMask = r.bits();
        p.allInputMask = r.bits();
        p.reportMask = r.bits();
        p.g1Sources = decodeIntList(r);
        uint32_t g1t = r.u32();
        for (uint32_t j = 0; j < g1t; ++j)
            p.g1Targets.push_back(decodeIntList(r));
        p.g4Sources = decodeIntList(r);
        uint32_t g4t = r.u32();
        for (uint32_t j = 0; j < g4t; ++j)
            p.g4Targets.push_back(decodeIntList(r));
        img.partitions.push_back(std::move(p));
    }
    CA_FATAL_IF(!r.done(), "artifact: trailing bytes in CIMG section");
}

std::vector<uint8_t>
encodeRoutes(const ConfigImage &img)
{
    std::vector<uint8_t> out;
    serde::putU32(out, static_cast<uint32_t>(img.routes.size()));
    for (const ConfigImage::Route &rt : img.routes) {
        serde::putU32(out, rt.srcPartition);
        serde::putI32(out, rt.srcWire);
        serde::putU32(out, rt.dstPartition);
        serde::putI32(out, rt.dstWire);
        serde::putU8(out, rt.viaG4 ? 1 : 0);
    }
    return out;
}

void
decodeRoutes(ByteReader &r, ConfigImage &img)
{
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
        ConfigImage::Route rt;
        rt.srcPartition = r.u32();
        rt.srcWire = r.i32();
        rt.dstPartition = r.u32();
        rt.dstWire = r.i32();
        uint8_t via = r.u8();
        CA_FATAL_IF(via > 1, "artifact: bad route level flag");
        rt.viaG4 = via != 0;
        CA_FATAL_IF(rt.srcPartition >= img.partitions.size() ||
                        rt.dstPartition >= img.partitions.size(),
                    "artifact: route partition out of range");
        img.routes.push_back(rt);
    }
    CA_FATAL_IF(!r.done(), "artifact: trailing bytes in ROUT section");
}

std::vector<uint8_t>
encodeMeta(const ArtifactMeta &meta)
{
    std::vector<uint8_t> out;
    serde::putString(out, meta.tool);
    serde::putString(out, meta.label);
    serde::putU64(out, meta.contentKey);
    return out;
}

ArtifactMeta
decodeMeta(ByteReader &r)
{
    ArtifactMeta meta;
    meta.tool = r.str();
    meta.label = r.str();
    meta.contentKey = r.u64();
    return meta;
}

} // namespace

std::string
sectionName(uint32_t id)
{
    std::string s;
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((id >> (8 * i)) & 0xff);
        s.push_back(std::isprint(static_cast<unsigned char>(c)) ? c : '?');
    }
    return s;
}

// --- ArtifactWriter -----------------------------------------------------

ArtifactWriter::ArtifactWriter(ArtifactMeta meta) : meta_(std::move(meta))
{
    sections_.emplace_back(kSecMeta, encodeMeta(meta_));
}

void
ArtifactWriter::setAutomaton(const MappedAutomaton &mapped)
{
    addSection(kSecDesign, encodeDesign(mapped.design()));
    addSection(kSecNfa, encodeNfa(mapped.nfa()));
    addSection(kSecPlace, encodePlace(mapped));
    // Weighted automata carry a WGHT overlay; unweighted ones omit it so
    // their artifact bytes (and fingerprints) predating scoring hold.
    if (mapped.nfa().hasWeights())
        addSection(kSecWeights, encodeWeights(mapped.nfa()));
}

void
ArtifactWriter::setImage(const ConfigImage &image)
{
    addSection(kSecImage, encodeImage(image));
    addSection(kSecRoutes, encodeRoutes(image));
}

void
ArtifactWriter::addSection(uint32_t id, std::vector<uint8_t> payload)
{
    for (const auto &[existing, bytes] : sections_)
        CA_FATAL_IF(existing == id, "artifact: duplicate section "
                                        << sectionName(id));
    sections_.emplace_back(id, std::move(payload));
}

std::vector<uint8_t>
ArtifactWriter::finish() const
{
    CA_TRACE_SCOPE("ca.persist.pack");
    std::vector<uint8_t> out;
    serde::putU32(out, kArtifactMagic);
    serde::putU16(out, kFormatVersion);
    serde::putU16(out, 0); // flags, reserved
    serde::putU32(out, static_cast<uint32_t>(sections_.size()));
    serde::putU32(out, serde::crc32(out.data(), out.size()));
    for (const auto &[id, payload] : sections_) {
        serde::putU32(out, id);
        serde::putU64(out, payload.size());
        serde::putU32(out, serde::crc32(payload));
        out.insert(out.end(), payload.begin(), payload.end());
    }
    return out;
}

void
ArtifactWriter::writeFile(const std::string &path) const
{
    CA_TRACE_SCOPE("ca.persist.save");
    std::vector<uint8_t> bytes = finish();
    writeBytesAtomic(path, bytes);
    CA_COUNTER_ADD("ca.persist.saves", 1);
    CA_COUNTER_ADD("ca.persist.save_bytes", bytes.size());
}

void
writeBytesAtomic(const std::string &path, const std::vector<uint8_t> &bytes)
{
    // Unique temp name in the target directory, then an atomic rename:
    // readers either see the old file or the complete new one, and
    // racing writers last-write-win without torn output.
    static std::atomic<uint64_t> seq{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        CA_FATAL_IF(!os, "artifact: cannot open temp file " << tmp);
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) {
            os.close();
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            CA_THROW("artifact: short write to " << tmp);
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        std::filesystem::remove(tmp, ec2);
        CA_THROW("artifact: rename " << tmp << " -> " << path
                                     << " failed: " << ec.message());
    }
}

// --- ArtifactReader -----------------------------------------------------

ArtifactReader::ArtifactReader(std::vector<uint8_t> bytes)
    : bytes_(std::move(bytes))
{
    parse();
}

ArtifactReader::ArtifactReader(const std::string &path)
{
    CA_TRACE_SCOPE("ca.persist.read_file");
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    CA_FATAL_IF(!is, "artifact: cannot open " << path);
    std::streamsize size = is.tellg();
    CA_FATAL_IF(size < 0, "artifact: cannot stat " << path);
    bytes_.resize(static_cast<size_t>(size));
    is.seekg(0);
    is.read(reinterpret_cast<char *>(bytes_.data()), size);
    CA_FATAL_IF(!is, "artifact: short read from " << path);
    parse();
}

void
ArtifactReader::parse()
{
    ByteReader r(bytes_);
    uint32_t magic = r.u32();
    CA_FATAL_IF(magic != kArtifactMagic,
                "artifact: bad magic 0x" << std::hex << magic
                                         << " (not a CAAF artifact)");
    version_ = r.u16();
    uint16_t flags = r.u16();
    uint32_t section_count = r.u32();
    uint32_t header_crc = r.u32();
    CA_FATAL_IF(version_ != kFormatVersion,
                "artifact: unsupported format version " << version_
                    << " (reader supports " << kFormatVersion << ")");
    CA_FATAL_IF(flags != 0, "artifact: unknown header flags " << flags);
    CA_FATAL_IF(header_crc != serde::crc32(bytes_.data(), 12),
                "artifact: header checksum mismatch");

    for (uint32_t i = 0; i < section_count; ++i) {
        SectionInfo info;
        info.id = r.u32();
        info.size = r.u64();
        info.crc = r.u32();
        CA_FATAL_IF(info.size > r.remaining(),
                    "artifact: section " << sectionName(info.id)
                        << " claims " << info.size << " bytes, only "
                        << r.remaining() << " remain");
        const uint8_t *payload = r.bytes(static_cast<size_t>(info.size));
        uint32_t crc = serde::crc32(payload,
                                    static_cast<size_t>(info.size));
        CA_FATAL_IF(crc != info.crc,
                    "artifact: section " << sectionName(info.id)
                        << " checksum mismatch");
        for (const SectionInfo &prev : sections_)
            CA_FATAL_IF(prev.id == info.id,
                        "artifact: duplicate section "
                            << sectionName(info.id));
        sections_.push_back(info);
        payloads_.emplace_back(
            info.id,
            std::vector<uint8_t>(payload,
                                 payload + static_cast<size_t>(info.size)));
    }
    CA_FATAL_IF(!r.done(), "artifact: " << r.remaining()
                                        << " trailing bytes after sections");

    ByteReader mr(section(kSecMeta));
    meta_ = decodeMeta(mr);
    CA_FATAL_IF(!mr.done(), "artifact: trailing bytes in META section");
}

bool
ArtifactReader::hasSection(uint32_t id) const
{
    for (const auto &[sid, payload] : payloads_)
        if (sid == id)
            return true;
    return false;
}

const std::vector<uint8_t> &
ArtifactReader::section(uint32_t id) const
{
    for (const auto &[sid, payload] : payloads_)
        if (sid == id)
            return payload;
    CA_THROW("artifact: missing section " << sectionName(id));
}

Design
ArtifactReader::design() const
{
    ByteReader r(section(kSecDesign));
    Design d = decodeDesign(r);
    CA_FATAL_IF(!r.done(), "artifact: trailing bytes in DSGN section");
    return d;
}

Nfa
ArtifactReader::nfa() const
{
    ByteReader r(section(kSecNfa));
    Nfa n = decodeNfa(r);
    CA_FATAL_IF(!r.done(), "artifact: trailing bytes in NFA section");
    if (hasSection(kSecWeights)) {
        ByteReader wr(section(kSecWeights));
        applyWeights(wr, n);
        CA_FATAL_IF(!wr.done(), "artifact: trailing bytes in WGHT section");
    }
    n.validate();
    return n;
}

MappedAutomaton
ArtifactReader::automaton() const
{
    ByteReader pr(section(kSecPlace));
    DecodedPlace place = decodePlace(pr);
    CA_FATAL_IF(!pr.done(), "artifact: trailing bytes in PLAC section");
    ByteReader nr(section(kSecNfa));
    Nfa n = decodeNfa(nr);
    CA_FATAL_IF(!nr.done(), "artifact: trailing bytes in NFA section");
    if (hasSection(kSecWeights)) {
        ByteReader wr(section(kSecWeights));
        applyWeights(wr, n);
        CA_FATAL_IF(!wr.done(), "artifact: trailing bytes in WGHT section");
    }
    return MappedAutomaton::fromParts(
        std::move(n), design(), std::move(place.locations),
        std::move(place.partitions), std::move(place.crossEdges),
        place.stats);
}

ConfigImage
ArtifactReader::image() const
{
    ConfigImage img;
    ByteReader ir(section(kSecImage));
    decodeImagePartitions(ir, img);
    ByteReader rr(section(kSecRoutes));
    decodeRoutes(rr, img);
    return img;
}

// --- High-level helpers -------------------------------------------------

std::vector<uint8_t>
packArtifact(const MappedAutomaton &mapped, const ConfigImage &image,
             const ArtifactMeta &meta)
{
    ArtifactWriter w(meta);
    w.setAutomaton(mapped);
    w.setImage(image);
    return w.finish();
}

void
saveArtifact(const std::string &path, const MappedAutomaton &mapped,
             const ArtifactMeta &meta)
{
    ArtifactWriter w(meta);
    w.setAutomaton(mapped);
    w.setImage(buildConfigImage(mapped));
    w.writeFile(path);
}

LoadedArtifact
loadArtifactBytes(std::vector<uint8_t> bytes)
{
    CA_TRACE_SCOPE("ca.persist.load");
    size_t total = bytes.size();
    ArtifactReader reader(std::move(bytes));
    LoadedArtifact out;
    out.meta = reader.meta();
    out.automaton = std::make_shared<const MappedAutomaton>(
        reader.automaton());
    out.image = reader.image();
    CA_COUNTER_ADD("ca.persist.loads", 1);
    CA_COUNTER_ADD("ca.persist.load_bytes", total);
    return out;
}

LoadedArtifact
loadArtifact(const std::string &path)
{
    CA_TRACE_SCOPE("ca.persist.load_file");
    ArtifactReader reader(path);
    LoadedArtifact out;
    out.meta = reader.meta();
    out.automaton = std::make_shared<const MappedAutomaton>(
        reader.automaton());
    out.image = reader.image();
    CA_COUNTER_ADD("ca.persist.loads", 1);
    CA_COUNTER_ADD("ca.persist.load_bytes", reader.fileBytes());
    return out;
}

bool
configImagesEqual(const ConfigImage &a, const ConfigImage &b)
{
    auto routeEq = [](const ConfigImage::Route &x,
                      const ConfigImage::Route &y) {
        return x.srcPartition == y.srcPartition && x.srcWire == y.srcWire &&
            x.dstPartition == y.dstPartition && x.dstWire == y.dstWire &&
            x.viaG4 == y.viaG4;
    };
    if (a.partitions.size() != b.partitions.size() ||
        a.routes.size() != b.routes.size())
        return false;
    for (size_t i = 0; i < a.routes.size(); ++i)
        if (!routeEq(a.routes[i], b.routes[i]))
            return false;
    for (size_t i = 0; i < a.partitions.size(); ++i) {
        const PartitionConfig &pa = a.partitions[i];
        const PartitionConfig &pb = b.partitions[i];
        if (pa.steRows != pb.steRows ||
            pa.lSwitch.inputs != pb.lSwitch.inputs ||
            pa.lSwitch.outputs != pb.lSwitch.outputs ||
            pa.lSwitch.rowBits != pb.lSwitch.rowBits ||
            pa.startOfDataMask != pb.startOfDataMask ||
            pa.allInputMask != pb.allInputMask ||
            pa.reportMask != pb.reportMask ||
            pa.g1Sources != pb.g1Sources ||
            pa.g1Targets != pb.g1Targets ||
            pa.g4Sources != pb.g4Sources || pa.g4Targets != pb.g4Targets)
            return false;
    }
    return true;
}

uint64_t
computeCacheKey(const std::vector<std::string> &rules, const Design &design,
                const MapperOptions &opts)
{
    std::vector<uint8_t> buf;
    serde::putString(buf, "ca-cache-key/1");
    serde::putU32(buf, static_cast<uint32_t>(rules.size()));
    for (const std::string &r : rules)
        serde::putString(buf, r);
    std::vector<uint8_t> dsgn = encodeDesign(design);
    serde::putU32(buf, static_cast<uint32_t>(dsgn.size()));
    buf.insert(buf.end(), dsgn.begin(), dsgn.end());
    serde::putU8(buf, opts.optimizeSpace ? 1 : 0);
    serde::putU8(buf, opts.strictBudgets ? 1 : 0);
    serde::putI32(buf, opts.maxPartitionRetries);
    serde::putU64(buf, opts.seed);
    return serde::fnv1a64(buf);
}

uint64_t
artifactFingerprint(const MappedAutomaton &mapped)
{
    // Canonical serialization under a fixed META so the hash depends
    // only on the compiled automaton — not on labels, tools, cache keys,
    // or whether it travelled through a .caa file first. The tool string
    // is a frozen constant: it predates this helper (the net layer
    // computed the fingerprint itself), and changing it would silently
    // re-fingerprint every deployed automaton.
    ArtifactMeta meta;
    meta.tool = "ca-net-fingerprint";
    meta.label.clear();
    meta.contentKey = 0;
    ArtifactWriter w(meta);
    w.setAutomaton(mapped);
    return serde::fnv1a64(w.finish());
}

} // namespace ca::persist
