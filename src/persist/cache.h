/**
 * @file
 * Compile-once / load-many artifact cache.
 *
 * A directory of content-addressed artifacts: the key is a hash of the
 * compile inputs (ruleset text, design parameters, mapper options — see
 * computeCacheKey), so any process that would compile the same automaton
 * finds the same file. Publication is atomic (temp file + rename), which
 * makes the directory safe to share between concurrent processes with no
 * locking: a reader sees either a complete artifact or none, and racing
 * writers produce identical bytes anyway (compilation is deterministic
 * in the key's inputs).
 *
 * Corrupt or version-skewed cache entries are treated as misses, evicted,
 * and rebuilt — a damaged cache degrades to cold compiles, never errors.
 *
 * Besides the compile-input keyspace (pathForKey), the cache holds a
 * second, fingerprint-addressed namespace (pathForFingerprint) keyed by
 * persist::artifactFingerprint — the identity of the compiled *result*
 * rather than its inputs. That namespace backs cluster replication
 * (docs/CLUSTER.md): getOrFetch() pulls a missing artifact through a
 * configurable remote fetcher (typically cluster::Replicator over the
 * configured peers), validates it end to end, and publishes it with the
 * same atomic temp+rename discipline. Concurrent misses on one
 * fingerprint are single-flighted: exactly one thread fetches, the rest
 * wait and load the published bytes.
 *
 * Telemetry: ca.persist.cache.{hits,misses,stores,corrupt_evicted,
 * remote_fills,remote_fill_failures,remote_fill_waits} counters and
 * ca.persist.{save,load}* spans.
 */
#ifndef CA_PERSIST_CACHE_H
#define CA_PERSIST_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "persist/artifact.h"

namespace ca::persist {

/** Point-in-time cache accounting (per ArtifactCache instance). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    /** Entries that failed to load and were removed. */
    uint64_t corruptEvicted = 0;
    /** Artifacts pulled in through the remote fetcher. */
    uint64_t remoteFills = 0;
    /** Remote pulls that failed (all peers down/missing/corrupt). */
    uint64_t remoteFillFailures = 0;
    /** Threads that waited on another thread's in-flight fetch. */
    uint64_t remoteFillWaits = 0;
};

/** One cache directory; cheap to construct, safe to share across threads. */
class ArtifactCache
{
  public:
    /**
     * Binds to @p dir, creating it (and parents) when absent.
     * @throws CaError when the directory cannot be created.
     */
    explicit ArtifactCache(std::string dir);

    const std::string &directory() const { return dir_; }

    /** The artifact path key @p key maps to: dir/ca-<hex key>.caa. */
    std::string pathForKey(uint64_t key) const;

    /**
     * Loads the cached artifact for @p key. Returns nullopt on a miss;
     * a corrupt/unreadable entry is evicted and also reported as a miss.
     */
    std::optional<LoadedArtifact> tryLoad(uint64_t key);

    /** Compiles-and-publishes: packs @p mapped under @p key atomically. */
    void store(uint64_t key, const MappedAutomaton &mapped,
               const std::string &label = {});

    /**
     * The cache's main entry point: returns the artifact for @p key,
     * invoking @p build (a full compile) and publishing its result only
     * on a miss.
     */
    LoadedArtifact getOrBuild(uint64_t key,
                              const std::function<MappedAutomaton()> &build,
                              const std::string &label = {});

    /**
     * Convenience getOrBuild for the standard pipeline: key =
     * computeCacheKey(rules, design, opts); build = compileRuleset +
     * mapNfa.
     */
    LoadedArtifact getOrCompile(const std::vector<std::string> &rules,
                                const Design &design,
                                const MapperOptions &opts = {},
                                const std::string &label = {});

    CacheStats stats() const;

    // --- Fingerprint-addressed namespace + remote fill -----------------

    /** Pulls CAAF bytes for a fingerprint from somewhere remote. */
    using RemoteFetcher =
        std::function<std::vector<uint8_t>(uint64_t fingerprint)>;

    /** Installs the remote-fill hook getOrFetch() uses on a local miss. */
    void setRemoteFetcher(RemoteFetcher fetcher);

    /** The path fingerprint @p fp maps to: dir/ca-fp-<hex fp>.caa. */
    std::string pathForFingerprint(uint64_t fingerprint) const;

    /**
     * Loads the cached artifact for @p fingerprint. Returns nullopt on a
     * miss; an entry that is corrupt — or whose decoded automaton does
     * not hash to @p fingerprint — is evicted and reported as a miss.
     */
    std::optional<LoadedArtifact> tryLoadByFingerprint(uint64_t fingerprint);

    /**
     * Validates @p bytes as a complete CAAF artifact whose automaton
     * hashes to @p fingerprint, then publishes them atomically under the
     * fingerprint namespace. Returns the decoded artifact. @throws
     * CaError when the bytes are corrupt, truncated, or hash elsewhere —
     * nothing is published in that case.
     */
    LoadedArtifact storeBytesByFingerprint(uint64_t fingerprint,
                                           std::vector<uint8_t> bytes);

    /**
     * Raw validated bytes of the cached artifact for @p fingerprint, or
     * null on a miss/corrupt entry (for serving replication pulls).
     */
    std::shared_ptr<const std::vector<uint8_t>>
    tryReadBytesByFingerprint(uint64_t fingerprint);

    /**
     * The replication entry point: local hit, or remote fill through the
     * configured fetcher (validated + atomically published), with
     * concurrent misses on one fingerprint collapsed to a single fetch.
     * @throws CaError when no fetcher is set or the fetch fails.
     */
    LoadedArtifact getOrFetch(uint64_t fingerprint);

  private:
    std::string dir_;
    mutable std::mutex mutex_; ///< Guards stats_ only; I/O is lock-free.
    CacheStats stats_;

    RemoteFetcher remote_;
    /** Single-flight state: fingerprints with a fetch in progress. */
    std::mutex flight_mutex_;
    std::condition_variable flight_cv_;
    std::set<uint64_t> inflight_;
};

} // namespace ca::persist

#endif // CA_PERSIST_CACHE_H
