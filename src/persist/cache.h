/**
 * @file
 * Compile-once / load-many artifact cache.
 *
 * A directory of content-addressed artifacts: the key is a hash of the
 * compile inputs (ruleset text, design parameters, mapper options — see
 * computeCacheKey), so any process that would compile the same automaton
 * finds the same file. Publication is atomic (temp file + rename), which
 * makes the directory safe to share between concurrent processes with no
 * locking: a reader sees either a complete artifact or none, and racing
 * writers produce identical bytes anyway (compilation is deterministic
 * in the key's inputs).
 *
 * Corrupt or version-skewed cache entries are treated as misses, evicted,
 * and rebuilt — a damaged cache degrades to cold compiles, never errors.
 *
 * Telemetry: ca.persist.cache.{hits,misses,stores,corrupt_evicted}
 * counters and ca.persist.{save,load}* spans.
 */
#ifndef CA_PERSIST_CACHE_H
#define CA_PERSIST_CACHE_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "persist/artifact.h"

namespace ca::persist {

/** Point-in-time cache accounting (per ArtifactCache instance). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    /** Entries that failed to load and were removed. */
    uint64_t corruptEvicted = 0;
};

/** One cache directory; cheap to construct, safe to share across threads. */
class ArtifactCache
{
  public:
    /**
     * Binds to @p dir, creating it (and parents) when absent.
     * @throws CaError when the directory cannot be created.
     */
    explicit ArtifactCache(std::string dir);

    const std::string &directory() const { return dir_; }

    /** The artifact path key @p key maps to: dir/ca-<hex key>.caa. */
    std::string pathForKey(uint64_t key) const;

    /**
     * Loads the cached artifact for @p key. Returns nullopt on a miss;
     * a corrupt/unreadable entry is evicted and also reported as a miss.
     */
    std::optional<LoadedArtifact> tryLoad(uint64_t key);

    /** Compiles-and-publishes: packs @p mapped under @p key atomically. */
    void store(uint64_t key, const MappedAutomaton &mapped,
               const std::string &label = {});

    /**
     * The cache's main entry point: returns the artifact for @p key,
     * invoking @p build (a full compile) and publishing its result only
     * on a miss.
     */
    LoadedArtifact getOrBuild(uint64_t key,
                              const std::function<MappedAutomaton()> &build,
                              const std::string &label = {});

    /**
     * Convenience getOrBuild for the standard pipeline: key =
     * computeCacheKey(rules, design, opts); build = compileRuleset +
     * mapNfa.
     */
    LoadedArtifact getOrCompile(const std::vector<std::string> &rules,
                                const Design &design,
                                const MapperOptions &opts = {},
                                const std::string &label = {});

    CacheStats stats() const;

  private:
    std::string dir_;
    mutable std::mutex mutex_; ///< Guards stats_ only; I/O is lock-free.
    CacheStats stats_;
};

} // namespace ca::persist

#endif // CA_PERSIST_CACHE_H
