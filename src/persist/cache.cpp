#include "persist/cache.h"

#include <filesystem>
#include <sstream>

#include "core/error.h"
#include "nfa/glushkov.h"
#include "telemetry/telemetry.h"

namespace ca::persist {

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir))
{
    CA_FATAL_IF(dir_.empty(), "artifact cache: empty directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    CA_FATAL_IF(ec, "artifact cache: cannot create directory " << dir_
                                                               << ": "
                                                               << ec.message());
}

std::string
ArtifactCache::pathForKey(uint64_t key) const
{
    std::ostringstream os;
    os << std::hex << key;
    std::string hex = os.str();
    // Fixed-width so directory listings sort and keys are unambiguous.
    return dir_ + "/ca-" + std::string(16 - hex.size(), '0') + hex + ".caa";
}

std::optional<LoadedArtifact>
ArtifactCache::tryLoad(uint64_t key)
{
    CA_TRACE_SCOPE("ca.persist.cache.lookup");
    std::string path = pathForKey(key);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        CA_COUNTER_ADD("ca.persist.cache.misses", 1);
        return std::nullopt;
    }
    try {
        LoadedArtifact loaded = loadArtifact(path);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
        }
        CA_COUNTER_ADD("ca.persist.cache.hits", 1);
        return loaded;
    } catch (const CaError &) {
        // Torn, corrupted, or version-skewed entry: evict and rebuild.
        // (A concurrent writer may already have replaced it; removal
        // failure is benign either way.)
        std::error_code rm_ec;
        std::filesystem::remove(path, rm_ec);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        ++stats_.corruptEvicted;
        CA_COUNTER_ADD("ca.persist.cache.misses", 1);
        CA_COUNTER_ADD("ca.persist.cache.corrupt_evicted", 1);
        return std::nullopt;
    }
}

void
ArtifactCache::store(uint64_t key, const MappedAutomaton &mapped,
                     const std::string &label)
{
    ArtifactMeta meta;
    meta.label = label;
    meta.contentKey = key;
    saveArtifact(pathForKey(key), mapped, meta);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
    }
    CA_COUNTER_ADD("ca.persist.cache.stores", 1);
}

LoadedArtifact
ArtifactCache::getOrBuild(uint64_t key,
                          const std::function<MappedAutomaton()> &build,
                          const std::string &label)
{
    CA_TRACE_SCOPE("ca.persist.cache.get");
    if (std::optional<LoadedArtifact> hit = tryLoad(key))
        return std::move(*hit);

    MappedAutomaton mapped = build();
    ConfigImage image = buildConfigImage(mapped);
    ArtifactMeta meta;
    meta.label = label;
    meta.contentKey = key;
    ArtifactWriter w(meta);
    w.setAutomaton(mapped);
    w.setImage(image);
    w.writeFile(pathForKey(key));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
    }
    CA_COUNTER_ADD("ca.persist.cache.stores", 1);

    LoadedArtifact out;
    out.meta = meta;
    out.automaton =
        std::make_shared<const MappedAutomaton>(std::move(mapped));
    out.image = std::move(image);
    return out;
}

LoadedArtifact
ArtifactCache::getOrCompile(const std::vector<std::string> &rules,
                            const Design &design, const MapperOptions &opts,
                            const std::string &label)
{
    uint64_t key = computeCacheKey(rules, design, opts);
    return getOrBuild(
        key,
        [&] {
            CA_TRACE_SCOPE("ca.persist.cache.cold_compile");
            return mapNfa(compileRuleset(rules), design, opts);
        },
        label);
}

CacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace ca::persist
