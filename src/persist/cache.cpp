#include "persist/cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.h"
#include "nfa/glushkov.h"
#include "telemetry/telemetry.h"

namespace ca::persist {

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir))
{
    CA_FATAL_IF(dir_.empty(), "artifact cache: empty directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    CA_FATAL_IF(ec, "artifact cache: cannot create directory " << dir_
                                                               << ": "
                                                               << ec.message());
}

std::string
ArtifactCache::pathForKey(uint64_t key) const
{
    std::ostringstream os;
    os << std::hex << key;
    std::string hex = os.str();
    // Fixed-width so directory listings sort and keys are unambiguous.
    return dir_ + "/ca-" + std::string(16 - hex.size(), '0') + hex + ".caa";
}

std::optional<LoadedArtifact>
ArtifactCache::tryLoad(uint64_t key)
{
    CA_TRACE_SCOPE("ca.persist.cache.lookup");
    std::string path = pathForKey(key);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        CA_COUNTER_ADD("ca.persist.cache.misses", 1);
        return std::nullopt;
    }
    try {
        LoadedArtifact loaded = loadArtifact(path);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
        }
        CA_COUNTER_ADD("ca.persist.cache.hits", 1);
        return loaded;
    } catch (const CaError &) {
        // Torn, corrupted, or version-skewed entry: evict and rebuild.
        // (A concurrent writer may already have replaced it; removal
        // failure is benign either way.)
        std::error_code rm_ec;
        std::filesystem::remove(path, rm_ec);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        ++stats_.corruptEvicted;
        CA_COUNTER_ADD("ca.persist.cache.misses", 1);
        CA_COUNTER_ADD("ca.persist.cache.corrupt_evicted", 1);
        return std::nullopt;
    }
}

void
ArtifactCache::store(uint64_t key, const MappedAutomaton &mapped,
                     const std::string &label)
{
    ArtifactMeta meta;
    meta.label = label;
    meta.contentKey = key;
    saveArtifact(pathForKey(key), mapped, meta);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
    }
    CA_COUNTER_ADD("ca.persist.cache.stores", 1);
}

LoadedArtifact
ArtifactCache::getOrBuild(uint64_t key,
                          const std::function<MappedAutomaton()> &build,
                          const std::string &label)
{
    CA_TRACE_SCOPE("ca.persist.cache.get");
    if (std::optional<LoadedArtifact> hit = tryLoad(key))
        return std::move(*hit);

    MappedAutomaton mapped = build();
    ConfigImage image = buildConfigImage(mapped);
    ArtifactMeta meta;
    meta.label = label;
    meta.contentKey = key;
    ArtifactWriter w(meta);
    w.setAutomaton(mapped);
    w.setImage(image);
    w.writeFile(pathForKey(key));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
    }
    CA_COUNTER_ADD("ca.persist.cache.stores", 1);

    LoadedArtifact out;
    out.meta = meta;
    out.automaton =
        std::make_shared<const MappedAutomaton>(std::move(mapped));
    out.image = std::move(image);
    return out;
}

LoadedArtifact
ArtifactCache::getOrCompile(const std::vector<std::string> &rules,
                            const Design &design, const MapperOptions &opts,
                            const std::string &label)
{
    uint64_t key = computeCacheKey(rules, design, opts);
    return getOrBuild(
        key,
        [&] {
            CA_TRACE_SCOPE("ca.persist.cache.cold_compile");
            return mapNfa(compileRuleset(rules), design, opts);
        },
        label);
}

CacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ArtifactCache::setRemoteFetcher(RemoteFetcher fetcher)
{
    // Configure before the cache is shared across threads: the hook is
    // read without a lock on the getOrFetch miss path.
    remote_ = std::move(fetcher);
}

std::string
ArtifactCache::pathForFingerprint(uint64_t fingerprint) const
{
    std::ostringstream os;
    os << std::hex << fingerprint;
    std::string hex = os.str();
    // A distinct "fp" namespace: compile-input keys and result
    // fingerprints are different hashes over different domains, and a
    // collision between the two must not alias a file.
    return dir_ + "/ca-fp-" + std::string(16 - hex.size(), '0') + hex +
        ".caa";
}

std::optional<LoadedArtifact>
ArtifactCache::tryLoadByFingerprint(uint64_t fingerprint)
{
    CA_TRACE_SCOPE("ca.persist.cache.lookup");
    std::string path = pathForFingerprint(fingerprint);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        CA_COUNTER_ADD("ca.persist.cache.misses", 1);
        return std::nullopt;
    }
    try {
        LoadedArtifact loaded = loadArtifact(path);
        // The entry's name is a claim about its content; a mismatch is
        // as disqualifying as a failed CRC (e.g. a hand-copied file).
        CA_FATAL_IF(artifactFingerprint(*loaded.automaton) != fingerprint,
                    "artifact cache: entry " << path
                        << " does not hash to its fingerprint");
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
        }
        CA_COUNTER_ADD("ca.persist.cache.hits", 1);
        return loaded;
    } catch (const CaError &) {
        std::error_code rm_ec;
        std::filesystem::remove(path, rm_ec);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        ++stats_.corruptEvicted;
        CA_COUNTER_ADD("ca.persist.cache.misses", 1);
        CA_COUNTER_ADD("ca.persist.cache.corrupt_evicted", 1);
        return std::nullopt;
    }
}

LoadedArtifact
ArtifactCache::storeBytesByFingerprint(uint64_t fingerprint,
                                       std::vector<uint8_t> bytes)
{
    // Validate everything — structure, CRCs, cross-checks, and the
    // fingerprint claim — before any byte reaches the directory.
    std::vector<uint8_t> raw = bytes;
    LoadedArtifact loaded = loadArtifactBytes(std::move(bytes));
    CA_FATAL_IF(artifactFingerprint(*loaded.automaton) != fingerprint,
                "artifact cache: fetched artifact hashes to another "
                    "fingerprint (corrupted or wrong artifact)");
    writeBytesAtomic(pathForFingerprint(fingerprint), raw);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
    }
    CA_COUNTER_ADD("ca.persist.cache.stores", 1);
    return loaded;
}

std::shared_ptr<const std::vector<uint8_t>>
ArtifactCache::tryReadBytesByFingerprint(uint64_t fingerprint)
{
    std::string path = pathForFingerprint(fingerprint);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec)
        return nullptr;
    try {
        ArtifactReader reader(path); // full structural + CRC validation
        auto bytes = std::make_shared<std::vector<uint8_t>>();
        std::ifstream is(path, std::ios::binary | std::ios::ate);
        CA_FATAL_IF(!is, "artifact cache: cannot reopen " << path);
        std::streamsize size = is.tellg();
        CA_FATAL_IF(size < 0, "artifact cache: cannot stat " << path);
        bytes->resize(static_cast<size_t>(size));
        is.seekg(0);
        is.read(reinterpret_cast<char *>(bytes->data()), size);
        CA_FATAL_IF(!is, "artifact cache: short read from " << path);
        return bytes;
    } catch (const CaError &) {
        return nullptr;
    }
}

LoadedArtifact
ArtifactCache::getOrFetch(uint64_t fingerprint)
{
    CA_TRACE_SCOPE("ca.persist.cache.get_or_fetch");
    if (std::optional<LoadedArtifact> hit =
            tryLoadByFingerprint(fingerprint))
        return std::move(*hit);

    // Single-flight: first miss fetches, concurrent misses wait and then
    // load what the winner published. A failed fetch wakes the waiters,
    // and the next one through the loop becomes the new fetcher.
    {
        std::unique_lock<std::mutex> lock(flight_mutex_);
        while (inflight_.count(fingerprint)) {
            {
                std::lock_guard<std::mutex> slock(mutex_);
                ++stats_.remoteFillWaits;
            }
            CA_COUNTER_ADD("ca.persist.cache.remote_fill_waits", 1);
            flight_cv_.wait(lock, [&] {
                return inflight_.count(fingerprint) == 0;
            });
            lock.unlock();
            if (std::optional<LoadedArtifact> hit =
                    tryLoadByFingerprint(fingerprint))
                return std::move(*hit);
            lock.lock();
        }
        inflight_.insert(fingerprint);
    }

    auto finishFlight = [&] {
        {
            std::lock_guard<std::mutex> lock(flight_mutex_);
            inflight_.erase(fingerprint);
        }
        flight_cv_.notify_all();
    };
    try {
        CA_FATAL_IF(!remote_, "artifact cache: no remote fetcher "
                                  "configured (set peers first)");
        CA_TRACE_SCOPE("ca.persist.cache.remote_fill");
        std::vector<uint8_t> bytes = remote_(fingerprint);
        LoadedArtifact loaded =
            storeBytesByFingerprint(fingerprint, std::move(bytes));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.remoteFills;
        }
        CA_COUNTER_ADD("ca.persist.cache.remote_fills", 1);
        finishFlight();
        return loaded;
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.remoteFillFailures;
        }
        CA_COUNTER_ADD("ca.persist.cache.remote_fill_failures", 1);
        finishFlight();
        throw;
    }
}

} // namespace ca::persist
