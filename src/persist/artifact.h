/**
 * @file
 * Versioned on-disk artifacts for compiled automata (§2.9, §5 deployment).
 *
 * The paper's deployment model compiles a ruleset once and loads the
 * resulting configuration image into LLC slices many times, across runs
 * and machines. This module is that "model checkpoint" tier: a compiled
 * `MappedAutomaton` + `ConfigImage` round-trips through a checksummed,
 * little-endian, versioned binary file, so servers and tools warm-start
 * from disk instead of re-running CC analysis, prefix merging, and k-way
 * partitioning per process.
 *
 * File layout (docs/PERSIST.md):
 *
 *   header:   u32 magic "CAAF" | u16 version | u16 flags |
 *             u32 sectionCount | u32 headerCrc
 *   section*: u32 id (fourcc) | u64 payloadSize | u32 payloadCrc | payload
 *
 * Sections: META (tool/label/content key), DSGN (design parameters),
 * NFA (states, labels, edges), PLAC (locations, partitions, cross edges,
 * stats), CIMG (per-partition STE images + L-switch matrices + G-wire
 * assignments), ROUT (G-switch routes), WGHT (transition/start weights,
 * present only for weighted automata).
 *
 * Guarantees:
 *  - Deterministic bytes: the same automaton always packs to the same
 *    file (no timestamps), so content-addressed caching works.
 *  - Corrupt input ⇒ clean `CaError`: every payload is CRC32-checked and
 *    every decode is bounds-checked (core/serde.h), and the reassembled
 *    automaton is cross-validated by MappedAutomaton::fromParts. Bit
 *    flips, truncation, and version skew never cause UB (fault-injection
 *    tested in tests/persist_test.cpp and tests/fuzz_test.cpp).
 *  - A sim restored from an artifact emits byte-identical reports to one
 *    built from a fresh compile.
 */
#ifndef CA_PERSIST_ARTIFACT_H
#define CA_PERSIST_ARTIFACT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/config_image.h"
#include "compiler/mapping.h"

namespace ca::persist {

/** "CAAF" as a little-endian fourcc. */
constexpr uint32_t kArtifactMagic = 0x46414143u;
/** Bump on any layout change; readers reject other versions. */
constexpr uint16_t kFormatVersion = 1;

/** Section ids (little-endian fourcc). */
constexpr uint32_t kSecMeta = 0x4154454du;   // "META"
constexpr uint32_t kSecDesign = 0x4e475344u; // "DSGN"
constexpr uint32_t kSecNfa = 0x2041464eu;    // "NFA "
constexpr uint32_t kSecPlace = 0x43414c50u;  // "PLAC"
constexpr uint32_t kSecImage = 0x474d4943u;  // "CIMG"
constexpr uint32_t kSecRoutes = 0x54554f52u; // "ROUT"
/**
 * "WGHT": per-transition weights + per-state start weights (docs/
 * SCORING.md). Written only for weighted automata, so every pre-scoring
 * artifact stays byte-identical; a reader that finds no WGHT section
 * decodes an unweighted automaton. The payload carries its own layout
 * version so the weight encoding can evolve without a CAAF bump.
 */
constexpr uint32_t kSecWeights = 0x54484757u; // "WGHT"

/** Renders a fourcc id as printable text (for inspect/diagnostics). */
std::string sectionName(uint32_t id);

/** Descriptive metadata carried in the META section. */
struct ArtifactMeta
{
    /** Writer identification, e.g. "ca-persist/1". */
    std::string tool = "ca-persist/1";
    /** Free-form label (benchmark name, ruleset description). */
    std::string label;
    /** Cache key of the compile inputs; 0 when not cache-managed. */
    uint64_t contentKey = 0;
};

/** One section's table entry, as stored (for inspect). */
struct SectionInfo
{
    uint32_t id = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
};

/**
 * Assembles an artifact: add sections (or use the high-level automaton
 * packer), then finish() for the bytes or writeFile() for atomic
 * publication (temp file + rename — concurrent readers never observe a
 * partial artifact, and concurrent writers last-write-win cleanly).
 */
class ArtifactWriter
{
  public:
    explicit ArtifactWriter(ArtifactMeta meta = {});

    /** Stores the compiled automaton (DSGN + NFA + PLAC sections). */
    void setAutomaton(const MappedAutomaton &mapped);

    /** Stores the configuration image (CIMG + ROUT sections). */
    void setImage(const ConfigImage &image);

    /** Adds a raw section. @throws CaError on duplicate id. */
    void addSection(uint32_t id, std::vector<uint8_t> payload);

    /** Serializes header + sections; deterministic for equal content. */
    std::vector<uint8_t> finish() const;

    /**
     * Atomically publishes finish() to @p path via temp-file + rename.
     * @throws CaError on I/O failure.
     */
    void writeFile(const std::string &path) const;

  private:
    ArtifactMeta meta_;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> sections_;
};

/**
 * Parses and integrity-checks an artifact. Construction validates the
 * magic, version, section table, and every section CRC; accessors then
 * decode individual sections with full bounds checking.
 *
 * @throws CaError on any structural problem — never UB.
 */
class ArtifactReader
{
  public:
    /** Parses an in-memory artifact (copies the buffer). */
    explicit ArtifactReader(std::vector<uint8_t> bytes);

    /** Reads and parses @p path. @throws CaError on I/O failure too. */
    explicit ArtifactReader(const std::string &path);

    uint16_t version() const { return version_; }
    const ArtifactMeta &meta() const { return meta_; }
    const std::vector<SectionInfo> &sections() const { return sections_; }
    size_t fileBytes() const { return bytes_.size(); }

    bool hasSection(uint32_t id) const;

    /** Raw payload of section @p id. @throws CaError when absent. */
    const std::vector<uint8_t> &section(uint32_t id) const;

    /** Decodes DSGN. */
    Design design() const;

    /** Decodes NFA. */
    Nfa nfa() const;

    /**
     * Decodes and cross-validates DSGN + NFA + PLAC into a mapped
     * automaton (see MappedAutomaton::fromParts).
     */
    MappedAutomaton automaton() const;

    /** Decodes CIMG + ROUT. */
    ConfigImage image() const;

  private:
    void parse();

    std::vector<uint8_t> bytes_;
    uint16_t version_ = 0;
    ArtifactMeta meta_;
    std::vector<SectionInfo> sections_;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> payloads_;
};

/** A fully decoded artifact, ready to drive sims and servers. */
struct LoadedArtifact
{
    ArtifactMeta meta;
    /** Shared so sims/servers can co-own it past the loader's scope. */
    std::shared_ptr<const MappedAutomaton> automaton;
    ConfigImage image;
};

/** Packs @p mapped (+ its config image) into artifact bytes. */
std::vector<uint8_t> packArtifact(const MappedAutomaton &mapped,
                                  const ConfigImage &image,
                                  const ArtifactMeta &meta = {});

/**
 * Builds the config image for @p mapped and atomically writes the
 * artifact to @p path.
 */
void saveArtifact(const std::string &path, const MappedAutomaton &mapped,
                  const ArtifactMeta &meta = {});

/** Decodes artifact bytes into a ready-to-run automaton + image. */
LoadedArtifact loadArtifactBytes(std::vector<uint8_t> bytes);

/** Reads, checks, and decodes the artifact at @p path. */
LoadedArtifact loadArtifact(const std::string &path);

/**
 * Atomically publishes raw bytes to @p path via temp-file + rename (the
 * same publication discipline ArtifactWriter::writeFile uses): readers
 * see either the old file or the complete new one, never a torn write.
 * @throws CaError on I/O failure.
 */
void writeBytesAtomic(const std::string &path,
                      const std::vector<uint8_t> &bytes);

/**
 * Content fingerprint of a mapped automaton: the FNV-1a 64 hash of its
 * canonical artifact serialization (DSGN + NFA + PLAC sections under a
 * fixed META — no image, no label, no cache key). Deterministic across
 * hosts and load paths, so a freshly compiled automaton and one loaded
 * from a CAAF file hash identically. This is the identity the network
 * layer exchanges in HELLO and the cluster layer replicates by
 * (docs/CLUSTER.md); it is NOT computeCacheKey, which hashes compile
 * *inputs* rather than the compiled result.
 */
uint64_t artifactFingerprint(const MappedAutomaton &mapped);

/**
 * Deep structural equality of two config images (partitions, switch
 * matrices, masks, G-wire assignments, routes) — verify's ground truth.
 */
bool configImagesEqual(const ConfigImage &a, const ConfigImage &b);

// --- Content-hash cache keys -------------------------------------------

/**
 * Content hash of a compile's inputs: ruleset text, design parameters,
 * and mapper options. Two processes computing the key from equal inputs
 * get equal keys on any host (the hash runs over the canonical
 * little-endian encoding, not in-memory bytes).
 */
uint64_t computeCacheKey(const std::vector<std::string> &rules,
                         const Design &design, const MapperOptions &opts);

} // namespace ca::persist

#endif // CA_PERSIST_ARTIFACT_H
