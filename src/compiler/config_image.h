/**
 * @file
 * Configuration bitstream emission (§2.10).
 *
 * The compiler's final product is a set of binary pages: per-partition STE
 * columns (256-bit one-hot symbol images, ordered to match the cache's
 * physical address decoding) and per-switch cross-point enable matrices
 * written through the switches' write mode. This module materializes both,
 * so a mapped automaton can be serialized, inspected, and reloaded.
 */
#ifndef CA_COMPILER_CONFIG_IMAGE_H
#define CA_COMPILER_CONFIG_IMAGE_H

#include <cstdint>
#include <vector>

#include "compiler/mapping.h"
#include "core/bitvector.h"

namespace ca {

/** Cross-point enable matrix for one switch (rows = inputs). */
struct SwitchMatrix
{
    int inputs = 0;
    int outputs = 0;
    /** rowBits[i] has bit o set when input i connects to output o. */
    std::vector<BitVector> rowBits;

    bool
    isSet(int in, int out) const
    {
        return rowBits[in].test(static_cast<size_t>(out));
    }

    /** Number of enabled cross-points. */
    size_t enabledCount() const;
};

/** One partition's piece of the configuration image. */
struct PartitionConfig
{
    /**
     * STE columns: steRows[r] bit s = 1 iff STE slot s matches symbol r.
     * This is exactly the 256x256 bit image loaded into the SRAM arrays.
     */
    std::vector<BitVector> steRows;       // 256 rows x partition width
    SwitchMatrix lSwitch;                 // 280 x 256 cross-points
    BitVector startOfDataMask;            // slots enabled at offset 0
    BitVector allInputMask;               // slots enabled every cycle
    BitVector reportMask;                 // reporting slots (§2.8)

    /**
     * G-wire assignments. g1Sources[w] = slot driving G1 input wire w
     * (-1 when unused); g1Targets[w] = slots activated by incoming G1
     * wire w (row 256+w of the L-switch). Same for G4 (rows 272+w).
     */
    std::vector<int> g1Sources;
    std::vector<std::vector<int>> g1Targets;
    std::vector<int> g4Sources;
    std::vector<std::vector<int>> g4Targets;
};

/** The full loadable image. */
struct ConfigImage
{
    std::vector<PartitionConfig> partitions;
    /**
     * Global-switch routes: for each cross edge, (source partition, source
     * G-wire index, dest partition, dest G-wire index, level).
     */
    struct Route
    {
        uint32_t srcPartition;
        int srcWire;
        uint32_t dstPartition;
        int dstWire;
        bool viaG4;
    };
    std::vector<Route> routes;

    /** Total configuration bits (STE image + switch enables). */
    size_t totalBits() const;

    /** Serializes to a flat byte image (stable layout, for tests/tools). */
    std::vector<uint8_t> serialize() const;
};

/**
 * Builds the configuration image for @p mapped.
 *
 * G-wire indices are allocated per partition first-come; exceeding the
 * design budget throws CaError (the mapper flags those cases up front).
 */
ConfigImage buildConfigImage(const MappedAutomaton &mapped);

} // namespace ca

#endif // CA_COMPILER_CONFIG_IMAGE_H
