#include "compiler/visualize.h"

#include <map>
#include <sstream>
#include <vector>

namespace ca {

std::string
toDot(const MappedAutomaton &mapped, const DotOptions &opts)
{
    const Nfa &nfa = mapped.nfa();
    std::ostringstream os;
    os << "digraph mapped {\n  rankdir=LR;\n  compound=true;\n";

    size_t n = std::min(nfa.numStates(), opts.maxStates);

    // Group rendered states per partition.
    std::map<uint32_t, std::vector<StateId>> by_partition;
    for (StateId s = 0; s < n; ++s)
        by_partition[mapped.location(s).partition].push_back(s);

    for (const auto &[p, members] : by_partition) {
        const PartitionInfo &info = mapped.partitions()[p];
        os << "  subgraph cluster_p" << p << " {\n"
           << "    label=\"partition " << p << " (slice " << info.slice
           << ", way " << info.way << ")\";\n";
        for (StateId s : members)
            os << "    s" << s << ' '
               << detail::dotNodeAttrs(nfa.state(s), opts.showLabels)
               << ";\n";
        os << "  }\n";
    }

    // Edge styles by interconnect level.
    std::map<std::pair<StateId, StateId>, int> level; // 1 = G1, 2 = G4
    for (const CrossEdge &e : mapped.crossEdges())
        level[{e.from, e.to}] = e.viaG4 ? 2 : 1;
    for (StateId s = 0; s < n; ++s) {
        for (StateId t : nfa.state(s).out) {
            if (t >= n)
                continue;
            auto it = level.find({s, t});
            os << "  s" << s << " -> s" << t;
            if (it != level.end())
                os << (it->second == 2 ? " [style=dotted color=red]"
                                       : " [style=dashed color=blue]");
            os << ";\n";
        }
    }
    if (n < nfa.numStates())
        os << "  note [shape=box label=\"" << (nfa.numStates() - n)
           << " more states truncated\"];\n";
    os << "}\n";
    return os.str();
}

} // namespace ca
