#include "compiler/mapping.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <numeric>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/error.h"
#include "core/logging.h"
#include "nfa/analysis.h"
#include "nfa/transform.h"
#include "partition/graph.h"
#include "partition/partitioner.h"
#include "telemetry/telemetry.h"

namespace ca {

MappedAutomaton::MappedAutomaton(Nfa nfa, Design design)
    : nfa_(std::move(nfa)), design_(std::move(design))
{
}

MappedAutomaton
MappedAutomaton::fromParts(Nfa nfa, Design design,
                           std::vector<SteLocation> locations,
                           std::vector<PartitionInfo> partitions,
                           std::vector<CrossEdge> cross_edges,
                           MappingStats stats)
{
    nfa.validate();

    const size_t n = nfa.numStates();
    CA_FATAL_IF(locations.size() != n,
                "mapped-automaton parts: " << locations.size()
                    << " locations for " << n << " states");
    CA_FATAL_IF(n > 0 && partitions.empty(),
                "mapped-automaton parts: states but no partitions");

    // Placement consistency: the location table and the partition slot
    // lists must be exact inverses, within the design's slot bounds.
    std::vector<uint8_t> placed(n, 0);
    for (size_t p = 0; p < partitions.size(); ++p) {
        const PartitionInfo &info = partitions[p];
        CA_FATAL_IF(info.states.size() >
                        static_cast<size_t>(design.partitionStes),
                    "mapped-automaton parts: partition " << p << " holds "
                        << info.states.size() << " states, design allows "
                        << design.partitionStes);
        for (size_t slot = 0; slot < info.states.size(); ++slot) {
            StateId sid = info.states[slot];
            CA_FATAL_IF(sid >= n, "mapped-automaton parts: partition "
                                      << p << " references state " << sid);
            CA_FATAL_IF(placed[sid],
                        "mapped-automaton parts: state " << sid
                            << " placed twice");
            placed[sid] = 1;
            const SteLocation &loc = locations[sid];
            CA_FATAL_IF(loc.partition != p || loc.slot != slot,
                        "mapped-automaton parts: location of state "
                            << sid << " (" << loc.partition << ","
                            << loc.slot << ") disagrees with partition "
                            << p << " slot " << slot);
        }
    }
    for (StateId s = 0; s < n; ++s)
        CA_FATAL_IF(!placed[s],
                    "mapped-automaton parts: state " << s << " unplaced");

    // Cross-edge consistency: the cross list must be exactly the set of
    // NFA edges whose endpoints land in different partitions.
    std::unordered_set<uint64_t> cross_set;
    cross_set.reserve(cross_edges.size() * 2);
    for (const CrossEdge &e : cross_edges) {
        CA_FATAL_IF(e.from >= n || e.to >= n,
                    "mapped-automaton parts: cross edge state out of range");
        CA_FATAL_IF(locations[e.from].partition ==
                        locations[e.to].partition,
                    "mapped-automaton parts: cross edge " << e.from << "->"
                        << e.to << " is intra-partition");
        uint64_t key = (static_cast<uint64_t>(e.from) << 32) | e.to;
        CA_FATAL_IF(!cross_set.insert(key).second,
                    "mapped-automaton parts: duplicate cross edge "
                        << e.from << "->" << e.to);
    }
    size_t expected_cross = 0;
    for (StateId s = 0; s < n; ++s) {
        for (StateId t : nfa.state(s).out) {
            if (locations[s].partition == locations[t].partition)
                continue;
            ++expected_cross;
            uint64_t key = (static_cast<uint64_t>(s) << 32) | t;
            CA_FATAL_IF(!cross_set.count(key),
                        "mapped-automaton parts: NFA edge " << s << "->"
                            << t << " crosses partitions but is missing "
                               "from the cross-edge list");
        }
    }
    CA_FATAL_IF(expected_cross != cross_edges.size(),
                "mapped-automaton parts: " << cross_edges.size()
                    << " cross edges listed, NFA has " << expected_cross);

    MappedAutomaton mapped(std::move(nfa), std::move(design));
    mapped.location_ = std::move(locations);
    mapped.partitions_ = std::move(partitions);
    mapped.cross_edges_ = std::move(cross_edges);
    mapped.stats_ = stats;
    return mapped;
}

namespace {

/**
 * Counts wire-budget violations of a tentative component split: for each
 * chunk, the distinct source states of outgoing cross-chunk edges and the
 * distinct remote sources of incoming edges must fit the G-switch wire
 * budget (checked against the tighter G1 bound since chunks of one
 * component are co-located within a way whenever possible).
 */
size_t
splitWireViolations(const Nfa &nfa, const std::vector<StateId> &members,
                    const std::vector<int32_t> &part, int wire_budget)
{
    std::unordered_map<StateId, int32_t> chunk_of;
    chunk_of.reserve(members.size() * 2);
    for (size_t i = 0; i < members.size(); ++i)
        chunk_of[members[i]] = part[i];

    int32_t k = 0;
    for (int32_t p : part)
        k = std::max(k, p + 1);
    std::vector<std::unordered_set<StateId>> out_src(k);
    std::vector<std::unordered_set<StateId>> in_src(k);
    for (size_t i = 0; i < members.size(); ++i) {
        StateId s = members[i];
        for (StateId t : nfa.state(s).out) {
            auto it = chunk_of.find(t);
            if (it == chunk_of.end() || it->second == part[i])
                continue;
            out_src[part[i]].insert(s);
            in_src[it->second].insert(s);
        }
    }
    size_t violations = 0;
    for (int32_t c = 0; c < k; ++c) {
        if (static_cast<int>(out_src[c].size()) > wire_budget)
            violations += out_src[c].size() - wire_budget;
        if (static_cast<int>(in_src[c].size()) > wire_budget)
            violations += in_src[c].size() - wire_budget;
    }
    return violations;
}

/**
 * Splits an oversized connected component into capacity-bounded chunks
 * with the multilevel partitioner. Attempts several part counts and seeds
 * and keeps the first wire-feasible split (else the least-violating one).
 *
 * @return per-part state-id lists (global NFA ids).
 */
std::vector<std::vector<StateId>>
splitComponent(const Nfa &nfa, const std::vector<StateId> &members,
               int capacity, int wire_budget, const MapperOptions &opts)
{
    Graph g = Graph::fromNfaComponent(nfa, members);
    // Start at the densest feasible part count; the FM pass doubles as a
    // balance-repair pass, so exact fills usually succeed, and the retry
    // loop escalates k when they do not.
    int32_t k = static_cast<int32_t>(
        (members.size() + capacity - 1) / capacity);

    std::vector<int32_t> best_part;
    size_t best_viol = ~size_t{0};

    for (int attempt = 0; attempt <= opts.maxPartitionRetries; ++attempt) {
        PartitionOptions popts;
        // Late attempts shrink the chunk capacity: smaller chunks carry
        // fewer boundary sources each, trading space for wire feasibility.
        popts.partCapacity = attempt >= 10 ? capacity * 3 / 4 : capacity;
        popts.imbalance = 0.05;
        popts.seed = opts.seed + static_cast<uint64_t>(attempt) * 7919;
        // First try peeling capacity-full chunks (densest packing), then
        // fall back to balanced splits with escalating k and fresh seeds.
        popts.peelToCapacity = attempt < 2;
        int32_t k_try = attempt < 2 ? k : k + (attempt - 2) / 2;
        if (attempt >= 10)
            k_try = static_cast<int32_t>(
                (members.size() + popts.partCapacity - 1) /
                popts.partCapacity) + (attempt - 10) / 2;
        if (attempt % 2 == 1)
            popts.seed ^= 0xD1CEB00Cull;
        try {
            PartitionResult res = partitionGraph(g, k_try, popts);
            size_t viol = splitWireViolations(nfa, members, res.part,
                                              wire_budget);
            if (viol < best_viol) {
                best_viol = viol;
                best_part = res.part;
            }
            if (viol == 0)
                break;
            CA_DEBUG("split attempt k=" << k_try << " has " << viol
                                        << " wire violations; retrying");
        } catch (const CaError &e) {
            CA_DEBUG("k-way split attempt k=" << k_try
                                              << " failed: " << e.what());
        }
    }
    CA_FATAL_IF(best_part.empty(),
                "unable to split component of "
                    << members.size() << " states into parts of "
                    << capacity << " after " << opts.maxPartitionRetries
                    << " retries");

    int32_t parts_n = 0;
    for (int32_t p : best_part)
        parts_n = std::max(parts_n, p + 1);
    std::vector<std::vector<StateId>> parts(parts_n);
    for (size_t v = 0; v < members.size(); ++v)
        parts[best_part[v]].push_back(members[v]);
    parts.erase(std::remove_if(parts.begin(), parts.end(),
                               [](const auto &p) { return p.empty(); }),
                parts.end());
    return parts;
}

} // namespace

namespace detail {

MappedAutomaton
mapNfaOnce(const Nfa &input, const Design &design, const MapperOptions &opts)
{
    CA_TRACE_SCOPE("ca.compiler.map_attempt");
    Nfa nfa = input; // the compiler owns a mutable copy
    if (opts.optimizeSpace) {
        TransformStats ts = optimizeForSpace(nfa);
        CA_INFO("space pipeline: " << ts.statesBefore << " -> "
                                   << ts.statesAfter << " states");
    }

    MappedAutomaton mapped(std::move(nfa), design);
    const Nfa &a = mapped.nfa();
    const int capacity = design.partitionStes;

    ComponentInfo cc = connectedComponents(a);
    mapped.stats_.states = a.numStates();
    mapped.stats_.connectedComponents = cc.numComponents();
    mapped.stats_.largestComponent = cc.largestSize();

    // ---- Step 1 & 2: form partition-sized state groups. -------------------
    // Small CCs sorted ascending (the paper packs smallest-first); each
    // oversized CC contributes the chunks the graph partitioner produces.
    std::vector<std::vector<StateId>> groups;  // atomic units <= capacity
    std::vector<size_t> group_cc;              // owning CC per group
    std::vector<uint32_t> order(cc.numComponents());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
        return cc.members[x].size() < cc.members[y].size();
    });

    for (uint32_t ci : order) {
        const auto &members = cc.members[ci];
        if (members.size() <= static_cast<size_t>(capacity)) {
            groups.push_back(members);
            group_cc.push_back(ci);
        } else {
            // Effective per-partition wire capacity: G1 wires plus the
            // share of G4 wires the classifier can use for overflow
            // (cross-way traffic needs the other half).
            int wire_budget = design.g1WiresPerPartition +
                design.g4WiresPerPartition / 2;
            auto parts = splitComponent(a, members, capacity, wire_budget,
                                        opts);
            for (auto &p : parts) {
                groups.push_back(std::move(p));
                group_cc.push_back(ci);
            }
        }
    }

    // ---- Greedy packing of groups into partitions. -------------------------
    // Groups from the same (split) CC stay in their own partitions so the
    // partitioner's cut structure is preserved; small-CC groups are packed
    // first-fit into partially filled partitions.
    struct Bin
    {
        std::vector<StateId> states;
        std::set<size_t> ccs;
    };
    std::vector<Bin> bins;
    std::vector<size_t> cc_chunks(cc.numComponents(), 0);
    for (size_t gi = 0; gi < groups.size(); ++gi)
        ++cc_chunks[group_cc[gi]];

    // Per-group wire demand (sources leaving / entering the group within
    // its component): needed to co-locate chunks without exceeding the
    // partition's G-switch wires.
    std::vector<int> grp_out(groups.size(), 0);
    std::vector<int> grp_in(groups.size(), 0);
    {
        std::vector<uint32_t> group_of(a.numStates(), ~uint32_t{0});
        for (size_t gi = 0; gi < groups.size(); ++gi)
            for (StateId st : groups[gi])
                group_of[st] = static_cast<uint32_t>(gi);
        std::vector<std::unordered_set<StateId>> outs(groups.size());
        std::vector<std::unordered_set<StateId>> ins(groups.size());
        for (StateId st = 0; st < a.numStates(); ++st) {
            for (StateId t : a.state(st).out) {
                if (group_of[st] != group_of[t]) {
                    outs[group_of[st]].insert(st);
                    ins[group_of[t]].insert(st);
                }
            }
        }
        for (size_t gi = 0; gi < groups.size(); ++gi) {
            grp_out[gi] = static_cast<int>(outs[gi].size());
            grp_in[gi] = static_cast<int>(ins[gi].size());
        }
    }

    // Best-fit packing. Chunks of *different* split components may share a
    // partition when states and wire budgets allow (they have no edges to
    // each other), which reclaims the partitioner's rounding slack; the
    // performance design keeps chunks exclusive so each split component's
    // cluster stays small enough for one way. Chunks of the same component
    // never share (the partitioner already decided that cut).
    const bool share_chunks = design.gSwitch4.has_value();
    struct BinUsage
    {
        int outW = 0;
        int inW = 0;
    };
    std::vector<BinUsage> usage;
    auto place = [&](size_t gi, bool exclusive) {
        const auto &grp = groups[gi];
        size_t ci = group_cc[gi];
        bool from_split = cc_chunks[ci] > 1;
        int best = -1;
        if (!exclusive) {
            size_t best_free = static_cast<size_t>(capacity) + 1;
            for (size_t b = 0; b < bins.size(); ++b) {
                size_t free = static_cast<size_t>(capacity) -
                    bins[b].states.size();
                if (grp.size() > free || free >= best_free)
                    continue;
                if (from_split && bins[b].ccs.count(ci))
                    continue; // never rejoin chunks of the same component
                if (usage[b].outW + grp_out[gi] >
                        design.g1WiresPerPartition ||
                    usage[b].inW + grp_in[gi] >
                        design.g1WiresPerPartition)
                    continue;
                best_free = free;
                best = static_cast<int>(b);
            }
        }
        if (best == -1) {
            bins.emplace_back();
            usage.emplace_back();
            best = static_cast<int>(bins.size() - 1);
        }
        Bin &bin = bins[best];
        bin.states.insert(bin.states.end(), grp.begin(), grp.end());
        bin.ccs.insert(ci);
        usage[best].outW += grp_out[gi];
        usage[best].inW += grp_in[gi];
    };
    for (size_t gi = 0; gi < groups.size(); ++gi)
        if (cc_chunks[group_cc[gi]] > 1)
            place(gi, /*exclusive=*/!share_chunks);
    for (size_t gi = 0; gi < groups.size(); ++gi)
        if (cc_chunks[group_cc[gi]] == 1)
            place(gi, /*exclusive=*/false);

    // ---- Step 3: placement into ways/slices. -------------------------------
    // Bins holding chunks of the same split component form a *cluster*
    // whose cross edges must ride G-switch-1, i.e. the whole cluster must
    // land in one way (mandatory for CA_P, preferred for CA_S; CA_S
    // clusters larger than a way overflow to adjacent ways via G4).
    CacheGeometry geom(defaultTech(), design.stesPerMatchRead);
    const int partitions_per_way = geom.partitionsPerSubArray() *
        defaultTech().subArraysPerWay;
    const int ways_per_slice = design.waysUsable;

    // Cluster bins by split-CC; bins hosting chunks of several components
    // fuse those components' clusters (union-find), since all their bins
    // should share a way.
    std::vector<size_t> cc_rep(cc.numComponents());
    std::iota(cc_rep.begin(), cc_rep.end(), size_t{0});
    std::function<size_t(size_t)> findRep = [&](size_t x) {
        while (cc_rep[x] != x) {
            cc_rep[x] = cc_rep[cc_rep[x]];
            x = cc_rep[x];
        }
        return x;
    };
    for (const Bin &bin : bins) {
        size_t first = ~size_t{0};
        for (size_t ci : bin.ccs) {
            if (cc_chunks[ci] <= 1)
                continue;
            if (first == ~size_t{0})
                first = findRep(ci);
            else
                cc_rep[findRep(ci)] = first;
        }
    }
    std::unordered_map<size_t, std::vector<int>> cluster_bins;
    std::vector<int> single_bins;
    for (size_t bi = 0; bi < bins.size(); ++bi) {
        size_t split_cc = ~size_t{0};
        for (size_t ci : bins[bi].ccs)
            if (cc_chunks[ci] > 1)
                split_cc = findRep(ci);
        if (split_cc != ~size_t{0})
            cluster_bins[split_cc].push_back(static_cast<int>(bi));
        else
            single_bins.push_back(static_cast<int>(bi));
    }

    // First-fit-decreasing of clusters into ways, then singles fill gaps.
    std::vector<int> way_free; // free partition slots per allocated way
    std::vector<int> global_slot(bins.size(), -1);
    auto newWay = [&]() {
        way_free.push_back(partitions_per_way);
        return static_cast<int>(way_free.size()) - 1;
    };
    auto placeInWay = [&](int way, int bin) {
        int used = partitions_per_way - way_free[way];
        global_slot[bin] = way * partitions_per_way + used;
        --way_free[way];
    };

    std::vector<std::pair<size_t, std::vector<int> *>> clusters;
    for (auto &[cc_id, members] : cluster_bins)
        clusters.emplace_back(members.size(), &members);
    std::sort(clusters.begin(), clusters.end(),
              [](const auto &x, const auto &y) { return x.first > y.first; });

    for (auto &[size_unused, members] : clusters) {
        (void)size_unused;
        int need = static_cast<int>(members->size());
        if (need <= partitions_per_way) {
            int way = -1;
            for (size_t w = 0; w < way_free.size(); ++w) {
                if (way_free[w] >= need) {
                    way = static_cast<int>(w);
                    break;
                }
            }
            if (way == -1)
                way = newWay();
            for (int bin : *members)
                placeInWay(way, bin);
        } else {
            CA_FATAL_IF(!design.gSwitch4,
                        "component cluster of " << need << " partitions "
                        "exceeds one way (" << partitions_per_way
                        << ") and the design has no cross-way G-switch");
            // Meta-partition the cluster's bins into ways, minimizing the
            // number of distinct source STEs that must cross ways (those
            // ride the scarcer G4 wires) — the same hierarchical min-cut
            // idea as the interconnect itself.
            std::unordered_map<int, int> bin_local;
            for (size_t i = 0; i < members->size(); ++i)
                bin_local[(*members)[i]] = static_cast<int>(i);
            std::vector<int> bin_of_state(a.numStates(), -1);
            for (int bin : *members)
                for (StateId st : bins[bin].states)
                    bin_of_state[st] = bin_local[bin];
            std::vector<std::unordered_map<int32_t, int32_t>> w(need);
            for (int bin : *members) {
                int bl = bin_local[bin];
                for (StateId st : bins[bin].states) {
                    for (StateId t : a.state(st).out) {
                        int tl = t < a.numStates() ? bin_of_state[t] : -1;
                        if (tl >= 0 && tl != bl)
                            w[std::min(bl, tl)][std::max(bl, tl)] += 1;
                    }
                }
            }
            Graph meta;
            meta.vwgt.assign(need, 1);
            meta.xadj.assign(need + 1, 0);
            for (int i = 0; i < need; ++i) {
                for (const auto &[j, wt] : w[i]) {
                    (void)wt;
                    ++meta.xadj[i + 1];
                    ++meta.xadj[j + 1];
                }
            }
            for (int i = 0; i < need; ++i)
                meta.xadj[i + 1] += meta.xadj[i];
            meta.adjncy.resize(meta.xadj[need]);
            meta.adjwgt.resize(meta.xadj[need]);
            std::vector<int32_t> cur(meta.xadj.begin(),
                                     meta.xadj.end() - 1);
            for (int i = 0; i < need; ++i) {
                for (const auto &[j, wt] : w[i]) {
                    meta.adjncy[cur[i]] = j;
                    meta.adjwgt[cur[i]] = wt;
                    ++cur[i];
                    meta.adjncy[cur[j]] = i;
                    meta.adjwgt[cur[j]] = wt;
                    ++cur[j];
                }
            }
            int32_t k_ways = (need + partitions_per_way - 1) /
                partitions_per_way;
            PartitionOptions mopts;
            mopts.partCapacity = partitions_per_way;
            mopts.seed = opts.seed ^ 0xA117;
            PartitionResult mres = partitionGraph(meta, k_ways, mopts);
            std::vector<int> part_way(mres.k, -1);
            for (size_t i = 0; i < members->size(); ++i) {
                int32_t mp = mres.part[i];
                if (part_way[mp] == -1)
                    part_way[mp] = newWay();
                placeInWay(part_way[mp], (*members)[i]);
            }
        }
    }
    for (int bin : single_bins) {
        int way = -1;
        for (size_t w = 0; w < way_free.size(); ++w) {
            if (way_free[w] > 0) {
                way = static_cast<int>(w);
                break;
            }
        }
        if (way == -1)
            way = newWay();
        placeInWay(way, bin);
    }

    mapped.partitions_.resize(bins.size());
    mapped.location_.assign(a.numStates(), SteLocation{});
    for (size_t p = 0; p < bins.size(); ++p) {
        PartitionInfo &info = mapped.partitions_[p];
        info.states = std::move(bins[p].states);
        int slot = global_slot[p];
        CA_ASSERT(slot >= 0);
        int global_way = slot / partitions_per_way;
        info.way = global_way % ways_per_slice;
        info.slice = global_way / ways_per_slice;
        info.subArray = (slot % partitions_per_way) /
            geom.partitionsPerSubArray();
        for (size_t si = 0; si < info.states.size(); ++si) {
            mapped.location_[info.states[si]] = SteLocation{
                static_cast<uint32_t>(p), static_cast<uint16_t>(si)};
        }
    }

    // ---- Classify edges and allocate G-switch wires. -----------------------
    // One G1-out wire carries all of a source STE's same-way fan-out; one
    // G4-out wire carries all its cross-way fan-out. Destinations consume
    // one in-wire per (remote source, level). Cross-way traffic must ride
    // G4; same-way traffic prefers G1 but may overflow onto spare G4 wires
    // (the 4/8-way switch also reaches partitions of the same way).
    std::vector<std::unordered_set<StateId>> g1_out(bins.size());
    std::vector<std::unordered_set<StateId>> g4_out(bins.size());
    std::vector<std::unordered_set<uint64_t>> g1_in(bins.size());
    std::vector<std::unordered_set<uint64_t>> g4_in(bins.size());
    size_t wire_shortfalls = 0;

    const int g1_budget = design.g1WiresPerPartition;
    const int g4_budget = design.g4WiresPerPartition;

    // Gather (src, dst-partition) -> edges so each pair binds one wire.
    struct PairDests
    {
        StateId src;
        uint32_t dstPartition;
        bool sameWay;
        std::vector<StateId> dests;
    };
    std::vector<PairDests> pairs;
    {
        std::map<std::pair<StateId, uint32_t>, size_t> pair_index;
        for (StateId s = 0; s < a.numStates(); ++s) {
            const SteLocation &src = mapped.location_[s];
            const PartitionInfo &sp = mapped.partitions_[src.partition];
            for (StateId t : a.state(s).out) {
                const SteLocation &dst = mapped.location_[t];
                if (dst.partition == src.partition) {
                    ++mapped.stats_.intraPartitionEdges;
                    continue;
                }
                const PartitionInfo &dp =
                    mapped.partitions_[dst.partition];
                auto key = std::make_pair(s, dst.partition);
                auto it = pair_index.find(key);
                if (it == pair_index.end()) {
                    pair_index.emplace(key, pairs.size());
                    pairs.push_back(PairDests{
                        s, dst.partition,
                        sp.slice == dp.slice && sp.way == dp.way, {}});
                    it = pair_index.find(key);
                }
                pairs[it->second].dests.push_back(t);
            }
        }
    }

    // Pass 1: cross-way pairs (G4 mandatory). Pass 2: same-way pairs.
    for (int pass = 0; pass < 2; ++pass) {
        for (const PairDests &pd : pairs) {
            if ((pass == 0) != !pd.sameWay)
                continue;
            uint32_t sp = mapped.location_[pd.src].partition;
            uint64_t in_key =
                (static_cast<uint64_t>(pd.src) << 32) | pd.dstPartition;
            bool placed = false;
            if (!pd.sameWay) {
                CA_FATAL_IF(!design.gSwitch4 &&
                                design.kind == DesignKind::Performance,
                            "CA_P mapping produced a cross-way edge from "
                                << pd.src << "; component exceeds one way");
                bool src_ok = g4_out[sp].count(pd.src) ||
                    static_cast<int>(g4_out[sp].size()) < g4_budget;
                bool dst_ok =
                    static_cast<int>(g4_in[pd.dstPartition].size()) <
                    g4_budget;
                if (src_ok && dst_ok) {
                    g4_out[sp].insert(pd.src);
                    g4_in[pd.dstPartition].insert(in_key);
                    placed = true;
                }
                mapped.stats_.g4Edges += pd.dests.size();
                for (StateId t : pd.dests)
                    mapped.cross_edges_.push_back(
                        CrossEdge{pd.src, t, true});
            } else {
                bool g1_src_ok = g1_out[sp].count(pd.src) ||
                    static_cast<int>(g1_out[sp].size()) < g1_budget;
                bool g1_dst_ok =
                    static_cast<int>(g1_in[pd.dstPartition].size()) <
                    g1_budget;
                if (g1_src_ok && g1_dst_ok) {
                    g1_out[sp].insert(pd.src);
                    g1_in[pd.dstPartition].insert(in_key);
                    mapped.stats_.g1Edges += pd.dests.size();
                    for (StateId t : pd.dests)
                        mapped.cross_edges_.push_back(
                            CrossEdge{pd.src, t, false});
                    placed = true;
                } else if (design.gSwitch4) {
                    bool g4_src_ok = g4_out[sp].count(pd.src) ||
                        static_cast<int>(g4_out[sp].size()) < g4_budget;
                    bool g4_dst_ok =
                        static_cast<int>(g4_in[pd.dstPartition].size()) <
                        g4_budget;
                    if (g4_src_ok && g4_dst_ok) {
                        g4_out[sp].insert(pd.src);
                        g4_in[pd.dstPartition].insert(in_key);
                        mapped.stats_.g4Edges += pd.dests.size();
                        for (StateId t : pd.dests)
                            mapped.cross_edges_.push_back(
                                CrossEdge{pd.src, t, true});
                        placed = true;
                    }
                }
                if (!placed) {
                    // Record at the preferred level for accounting.
                    g1_out[sp].insert(pd.src);
                    g1_in[pd.dstPartition].insert(in_key);
                    mapped.stats_.g1Edges += pd.dests.size();
                    for (StateId t : pd.dests)
                        mapped.cross_edges_.push_back(
                            CrossEdge{pd.src, t, false});
                }
            }
            if (!placed)
                ++wire_shortfalls;
        }
    }
    (void)wire_shortfalls;

    for (size_t p = 0; p < bins.size(); ++p) {
        PartitionInfo &info = mapped.partitions_[p];
        info.g1OutWires = static_cast<int>(g1_out[p].size());
        info.g4OutWires = static_cast<int>(g4_out[p].size());
        info.g1InWires = static_cast<int>(g1_in[p].size());
        info.g4InWires = static_cast<int>(g4_in[p].size());
        mapped.stats_.maxG1OutWires =
            std::max(mapped.stats_.maxG1OutWires, info.g1OutWires);
        mapped.stats_.maxG4OutWires =
            std::max(mapped.stats_.maxG4OutWires, info.g4OutWires);
        mapped.stats_.maxG1InWires =
            std::max(mapped.stats_.maxG1InWires, info.g1InWires);
        mapped.stats_.maxG4InWires =
            std::max(mapped.stats_.maxG4InWires, info.g4InWires);

        bool violation =
            info.g1OutWires > design.g1WiresPerPartition ||
            info.g1InWires > design.g1WiresPerPartition ||
            info.g4OutWires > design.g4WiresPerPartition ||
            info.g4InWires > design.g4WiresPerPartition;
        if (violation) {
            ++mapped.stats_.budgetViolations;
            CA_FATAL_IF(opts.strictBudgets,
                        "partition " << p << " exceeds wire budget (G1 out "
                                     << info.g1OutWires << "/in "
                                     << info.g1InWires << ", G4 out "
                                     << info.g4OutWires << "/in "
                                     << info.g4InWires << ")");
            CA_WARN("partition " << p << " exceeds wire budget (G1 out "
                                 << info.g1OutWires << ", G4 out "
                                 << info.g4OutWires << ")");
        }
    }

    mapped.stats_.partitions = bins.size();
    mapped.stats_.utilizationMB =
        geom.megabytes(static_cast<int>(bins.size()));
    return mapped;
}

} // namespace detail

namespace {

void
recordMappingMetrics(const MappingStats &stats)
{
    (void)stats; // unused when compiled with CA_TELEMETRY=0
    CA_COUNTER_ADD("ca.compiler.maps", 1);
    CA_COUNTER_ADD("ca.compiler.partitions_mapped", stats.partitions);
    CA_COUNTER_ADD("ca.compiler.g1_edges", stats.g1Edges);
    CA_COUNTER_ADD("ca.compiler.g4_edges", stats.g4Edges);
    CA_COUNTER_ADD("ca.compiler.budget_violations",
                   stats.budgetViolations);
    CA_GAUGE_SET("ca.compiler.utilization_mb", stats.utilizationMB);
    CA_HISTOGRAM_OBSERVE("ca.compiler.states_mapped", stats.states);
}

} // namespace

MappedAutomaton
mapNfa(const Nfa &input, const Design &design, const MapperOptions &opts)
{
    CA_TRACE_SCOPE("ca.compiler.map");
    // The pipeline is randomized (matching order, region growth); when a
    // mapping comes back with wire-budget shortfalls, a reseeded attempt
    // usually finds a feasible one. Keep the best of a few tries.
    std::optional<MappedAutomaton> best;
    for (int attempt = 0; attempt < 4; ++attempt) {
        MapperOptions o = opts;
        o.seed = opts.seed + static_cast<uint64_t>(attempt) * 0x51CE;
        if (attempt > 0)
            o.strictBudgets = false; // already reported once if strict
        MappedAutomaton m = detail::mapNfaOnce(
            input, design, attempt == 0 ? opts : o);
        if (m.stats().budgetViolations == 0) {
            recordMappingMetrics(m.stats());
            return m;
        }
        if (!best ||
            m.stats().budgetViolations < best->stats().budgetViolations)
            best.emplace(std::move(m));
    }
    CA_WARN("mapping retained " << best->stats().budgetViolations
                                << " wire-budget violation(s) after "
                                   "reseeded attempts");
    recordMappingMetrics(best->stats());
    return std::move(*best);
}

MappedAutomaton
mapPerformance(const Nfa &nfa, const MapperOptions &opts)
{
    MapperOptions o = opts;
    o.optimizeSpace = false;
    return mapNfa(nfa, designCaP(), o);
}

MappedAutomaton
mapSpace(const Nfa &nfa, const MapperOptions &opts)
{
    MapperOptions o = opts;
    o.optimizeSpace = true;
    return mapNfa(nfa, designCaS(), o);
}

} // namespace ca
