/**
 * @file
 * The Cache Automaton compiler: NFA → cache arrays + switch configuration.
 *
 * Implements §3.2's three-step mapping algorithm:
 *   1. Connected components (CCs) no larger than a partition are the atomic
 *      units; they are greedily packed, smallest first, onto partitions.
 *   2. CCs larger than a partition are split with multilevel k-way graph
 *      partitioning (our METIS substitute) minimizing inter-partition
 *      transitions, with per-partition capacity 256 states.
 *   3. Partitions are placed into ways/slices; cross-partition transitions
 *      are classified as G-switch-1 (same way) or G-switch-4 (cross way)
 *      and checked against the interconnect wire budgets (16 / 8).
 *
 * Two policies mirror the paper's designs: Performance (CA_P) maps the
 * baseline NFA and keeps CCs within a way; Space (CA_S) runs the prefix
 * merge pipeline first and may span ways through the G4 switch.
 */
#ifndef CA_COMPILER_MAPPING_H
#define CA_COMPILER_MAPPING_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/design.h"
#include "arch/geometry.h"
#include "nfa/nfa.h"

namespace ca {

/** Where one STE landed. */
struct SteLocation
{
    uint32_t partition = 0;
    uint16_t slot = 0; ///< Column within the partition [0, 256).
};

/** One mapped 256-STE partition and its interconnect usage. */
struct PartitionInfo
{
    std::vector<StateId> states; ///< states[slot] = NFA state id.
    int slice = 0;
    int way = 0;
    int subArray = 0;

    // Wire usage (sources / sinks of cross-partition transitions).
    int g1OutWires = 0;
    int g1InWires = 0;
    int g4OutWires = 0;
    int g4InWires = 0;
};

/** A cross-partition transition and the switch level carrying it. */
struct CrossEdge
{
    StateId from = 0;
    StateId to = 0;
    bool viaG4 = false;
};

/** Aggregate mapping metrics (drives Table 1 / Figure 8 reporting). */
struct MappingStats
{
    size_t states = 0;
    size_t connectedComponents = 0;
    size_t largestComponent = 0;
    size_t partitions = 0;
    double utilizationMB = 0.0;
    size_t intraPartitionEdges = 0;
    size_t g1Edges = 0;
    size_t g4Edges = 0;
    int maxG1OutWires = 0;
    int maxG1InWires = 0;
    int maxG4OutWires = 0;
    int maxG4InWires = 0;
    /** Partitions whose wire usage exceeds the design budget. */
    size_t budgetViolations = 0;
};

/** Mapping policy knobs. */
struct MapperOptions
{
    /** Run the CA_S optimization pipeline (prefix merge etc.) first. */
    bool optimizeSpace = false;
    /** Throw CaError on wire-budget violations instead of recording them. */
    bool strictBudgets = false;
    /** Retries (k increments) when graph partitioning is infeasible. */
    int maxPartitionRetries = 14;
    /** Partitioner seed. */
    uint64_t seed = 0xCA5EED;
};

class MappedAutomaton;

namespace detail {
/** One randomized mapping attempt (mapNfa retries over seeds). */
MappedAutomaton mapNfaOnce(const Nfa &nfa, const Design &design,
                           const MapperOptions &opts);
} // namespace detail

/** The compiler's output: placed STEs plus interconnect configuration. */
class MappedAutomaton
{
  public:
    MappedAutomaton(Nfa nfa, Design design);

    /**
     * Reassembles a mapped automaton from externally stored parts — the
     * persist layer's deserialization entry point. Cross-validates every
     * piece (locations vs partition slot lists, cross edges vs NFA edges,
     * slot bounds vs the design) so a corrupted-but-checksum-valid
     * artifact can never produce out-of-bounds indices downstream.
     *
     * @throws CaError on any inconsistency.
     */
    static MappedAutomaton fromParts(Nfa nfa, Design design,
                                     std::vector<SteLocation> locations,
                                     std::vector<PartitionInfo> partitions,
                                     std::vector<CrossEdge> cross_edges,
                                     MappingStats stats);

    const Nfa &nfa() const { return nfa_; }
    const Design &design() const { return design_; }

    const SteLocation &location(StateId s) const { return location_[s]; }
    const std::vector<PartitionInfo> &partitions() const
    {
        return partitions_;
    }
    const std::vector<CrossEdge> &crossEdges() const { return cross_edges_; }

    const MappingStats &stats() const { return stats_; }

    size_t numPartitions() const { return partitions_.size(); }

    /** Cache bytes consumed (partitions * 8 KB). */
    double utilizationMB() const { return stats_.utilizationMB; }

  private:
    friend MappedAutomaton detail::mapNfaOnce(const Nfa &nfa,
                                              const Design &design,
                                              const MapperOptions &opts);

    Nfa nfa_;
    Design design_;
    std::vector<SteLocation> location_;
    std::vector<PartitionInfo> partitions_;
    std::vector<CrossEdge> cross_edges_;
    MappingStats stats_;
};

/**
 * Runs the full mapping pipeline.
 *
 * @throws CaError if a connected component cannot be split within the
 * design's connectivity reach (e.g. a CA_P component larger than one way),
 * or on wire-budget violations when opts.strictBudgets is set.
 */
MappedAutomaton mapNfa(const Nfa &nfa, const Design &design,
                       const MapperOptions &opts = {});

/** Convenience: CA_P policy (baseline NFA, performance design). */
MappedAutomaton mapPerformance(const Nfa &nfa,
                               const MapperOptions &opts = {});

/** Convenience: CA_S policy (space pipeline + space design). */
MappedAutomaton mapSpace(const Nfa &nfa, const MapperOptions &opts = {});

} // namespace ca

#endif // CA_COMPILER_MAPPING_H
