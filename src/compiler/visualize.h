/**
 * @file
 * Graphviz DOT export of a mapped automaton: one cluster per partition,
 * intra-partition edges solid, G-switch-1 edges dashed (blue), G-switch-4
 * edges dotted (red) — the paper's Figure 6 view of a mapping.
 */
#ifndef CA_COMPILER_VISUALIZE_H
#define CA_COMPILER_VISUALIZE_H

#include <string>

#include "compiler/mapping.h"
#include "nfa/dot.h"

namespace ca {

/** Renders @p mapped as a DOT digraph with partition clusters. */
std::string toDot(const MappedAutomaton &mapped,
                  const DotOptions &opts = {});

} // namespace ca

#endif // CA_COMPILER_VISUALIZE_H
