#include "compiler/config_image.h"

#include <map>

#include "core/error.h"
#include "core/serde.h"
#include "telemetry/telemetry.h"

namespace ca {

size_t
SwitchMatrix::enabledCount() const
{
    size_t n = 0;
    for (const auto &row : rowBits)
        n += row.count();
    return n;
}

size_t
ConfigImage::totalBits() const
{
    size_t bits = 0;
    for (const auto &p : partitions) {
        for (const auto &row : p.steRows)
            bits += row.size();
        bits += static_cast<size_t>(p.lSwitch.inputs) * p.lSwitch.outputs;
    }
    return bits;
}

std::vector<uint8_t>
ConfigImage::serialize() const
{
    // Layout (pinned by compiler_test's golden-bytes test): [u32 partition
    // count, little-endian] then per partition: STE rows (row-major, packed
    // LSB-first, no per-row length prefix), L-switch rows, then the
    // start-of-data / all-input / report masks. serde emits every multi-byte
    // value little-endian byte-by-byte, so the image is host-portable.
    std::vector<uint8_t> out;
    serde::putU32(out, static_cast<uint32_t>(partitions.size()));
    for (const auto &p : partitions) {
        for (const auto &row : p.steRows)
            serde::putPackedBits(out, row);
        for (const auto &row : p.lSwitch.rowBits)
            serde::putPackedBits(out, row);
        serde::putPackedBits(out, p.startOfDataMask);
        serde::putPackedBits(out, p.allInputMask);
        serde::putPackedBits(out, p.reportMask);
    }
    return out;
}

ConfigImage
buildConfigImage(const MappedAutomaton &mapped)
{
    CA_TRACE_SCOPE("ca.compiler.config_image");
    const Nfa &nfa = mapped.nfa();
    const Design &design = mapped.design();
    const int width = design.partitionStes;
    const int l_inputs = width + design.g1WiresPerPartition +
        design.g4WiresPerPartition;

    ConfigImage img;
    img.partitions.resize(mapped.numPartitions());

    for (size_t p = 0; p < mapped.numPartitions(); ++p) {
        PartitionConfig &cfg = img.partitions[p];
        const PartitionInfo &info = mapped.partitions()[p];

        cfg.steRows.assign(SymbolSet::kAlphabetSize, BitVector(width));
        cfg.lSwitch.inputs = l_inputs;
        cfg.lSwitch.outputs = width;
        cfg.lSwitch.rowBits.assign(l_inputs, BitVector(width));
        cfg.startOfDataMask = BitVector(width);
        cfg.allInputMask = BitVector(width);
        cfg.reportMask = BitVector(width);
        cfg.g1Sources.assign(design.g1WiresPerPartition, -1);
        cfg.g1Targets.assign(design.g1WiresPerPartition, {});
        cfg.g4Sources.assign(design.g4WiresPerPartition, -1);
        cfg.g4Targets.assign(design.g4WiresPerPartition, {});

        for (size_t slot = 0; slot < info.states.size(); ++slot) {
            const NfaState &st = nfa.state(info.states[slot]);
            // One-hot symbol column: row r bit set iff label contains r.
            for (int sym = st.label.first(); sym >= 0;
                 sym = st.label.next(sym))
                cfg.steRows[sym].set(slot);
            if (st.start == StartType::StartOfData)
                cfg.startOfDataMask.set(slot);
            else if (st.start == StartType::AllInput)
                cfg.allInputMask.set(slot);
            if (st.report)
                cfg.reportMask.set(slot);
        }
    }

    // Intra-partition transitions program the first 256 L-switch rows.
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const SteLocation &src = mapped.location(s);
        for (StateId t : nfa.state(s).out) {
            const SteLocation &dst = mapped.location(t);
            if (dst.partition == src.partition) {
                img.partitions[src.partition]
                    .lSwitch.rowBits[src.slot]
                    .set(dst.slot);
            }
        }
    }

    // Cross edges: allocate G wires per distinct source STE at each level,
    // then program the destination L-switch rows (256+w / 272+w).
    std::map<std::pair<StateId, int>, int> src_wire;  // (state, lvl) -> wire
    std::map<std::pair<uint64_t, uint32_t>, int> dst_wire;

    for (const CrossEdge &e : mapped.crossEdges()) {
        const SteLocation &src = mapped.location(e.from);
        const SteLocation &dst = mapped.location(e.to);
        PartitionConfig &scfg = img.partitions[src.partition];
        PartitionConfig &dcfg = img.partitions[dst.partition];
        int level = e.viaG4 ? 1 : 0;

        auto &sources = e.viaG4 ? scfg.g4Sources : scfg.g1Sources;
        auto skey = std::make_pair(e.from, level);
        auto sit = src_wire.find(skey);
        int sw;
        if (sit == src_wire.end()) {
            sw = -1;
            for (size_t w = 0; w < sources.size(); ++w) {
                if (sources[w] == -1) {
                    sw = static_cast<int>(w);
                    break;
                }
            }
            CA_FATAL_IF(sw == -1,
                        "partition " << src.partition
                                     << " out of G" << (e.viaG4 ? 4 : 1)
                                     << " source wires");
            sources[sw] = src.slot;
            src_wire.emplace(skey, sw);
        } else {
            sw = sit->second;
        }

        auto &targets = e.viaG4 ? dcfg.g4Targets : dcfg.g1Targets;
        auto dkey = std::make_pair(
            (static_cast<uint64_t>(e.from) << 1) | (e.viaG4 ? 1 : 0),
            dst.partition);
        auto dit = dst_wire.find(dkey);
        int dw;
        if (dit == dst_wire.end()) {
            dw = -1;
            for (size_t w = 0; w < targets.size(); ++w) {
                bool used = !targets[w].empty();
                if (!used) {
                    dw = static_cast<int>(w);
                    break;
                }
            }
            CA_FATAL_IF(dw == -1,
                        "partition " << dst.partition
                                     << " out of G" << (e.viaG4 ? 4 : 1)
                                     << " destination wires");
            dst_wire.emplace(dkey, dw);
        } else {
            dw = dit->second;
        }
        targets[dw].push_back(dst.slot);

        // Destination L-switch row: width + dw for G1, width + g1 + dw G4.
        int row = e.viaG4
            ? design.partitionStes + design.g1WiresPerPartition + dw
            : design.partitionStes + dw;
        dcfg.lSwitch.rowBits[row].set(dst.slot);

        img.routes.push_back(ConfigImage::Route{
            src.partition, sw, dst.partition, dw, e.viaG4});
    }

    CA_COUNTER_ADD("ca.compiler.config_images", 1);
    CA_COUNTER_ADD("ca.compiler.config_bits", img.totalBits());
    return img;
}

} // namespace ca
